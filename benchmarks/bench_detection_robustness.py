"""Detection-level robustness: bit errors through the full pyramid path.

Table 2 measures single-window classification accuracy under bit errors;
this bench measures what the deployment actually serves - detection
quality.  Bit-error rates sweep the shared-engine sliding-window/pyramid
stack on both backends (dense extraction buffers, packed cell words, the
stored class model), scored as recall / precision / mean IoU against the
pasted ground truth.  A second sweep prices the reliability subsystem:
the packed model wrapped in a 3-replica :class:`GuardedClassModel` with
one replica corrupted per rate - the guard must hold detection quality at
the clean level.  The hardware-model cost of that protection (guarded vs
unguarded inference cycles/energy) is stamped into the JSON alongside.

Results land in ``benchmarks/results/detection_robustness.{txt,json}``.
"""

import numpy as np
import pytest

from common import CONFIG, fmt_row, write_json, write_report

from repro.hardware.report import protection_overhead_report
from repro.noise import detection_robustness
from repro.pipeline import HDFacePipeline, make_scene

DIM = 1024
WINDOW = 24
SCENE = 64
N_SCENES = 4
RATES = CONFIG["error_rates"]
GUARD_REPLICAS = 3


@pytest.fixture(scope="module")
def pipe():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=CONFIG["hd_epochs"], seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def scenes():
    spots = ((2, 6), (38, 34))
    return [make_scene(SCENE, spots, window=WINDOW, seed_or_rng=20 + i)
            for i in range(N_SCENES)]


@pytest.fixture(scope="module")
def sweep(pipe, scenes):
    return detection_robustness(pipe, scenes, RATES, window=WINDOW,
                                backends=("dense", "packed"), seed_or_rng=7)


@pytest.fixture(scope="module")
def guarded_sweep(pipe, scenes):
    return detection_robustness(pipe, scenes, RATES, window=WINDOW,
                                backends=("packed",), seed_or_rng=7,
                                attack=("model",),
                                guard_replicas=GUARD_REPLICAS)


def test_detection_robustness_report(sweep, guarded_sweep):
    widths = (16, 6, 7, 10, 9)
    lines = [f"{N_SCENES} scenes {SCENE}x{SCENE}, window {WINDOW}, D={DIM}, "
             f"rates {tuple(RATES)}",
             fmt_row(("configuration", "rate", "recall", "precision",
                      "mean_iou"), widths)]
    rows = []
    for backend, rate, row in sweep.rows():
        lines.append(fmt_row((backend, rate, f"{row['recall']:.3f}",
                              f"{row['precision']:.3f}",
                              f"{row['mean_iou']:.3f}"), widths))
        rows.append(dict(row, backend=backend, rate=rate,
                         configuration="unguarded"))
    for backend, rate, row in guarded_sweep.rows():
        label = f"{backend}+guard{GUARD_REPLICAS}"
        lines.append(fmt_row((label, rate, f"{row['recall']:.3f}",
                              f"{row['precision']:.3f}",
                              f"{row['mean_iou']:.3f}"), widths))
        rows.append(dict(row, backend=backend, rate=rate,
                         configuration=f"guarded_r{GUARD_REPLICAS}"))

    protection = []
    lines.append("")
    lines.append("protection cost (hardware model, scrub every query):")
    for p in protection_overhead_report(dim=DIM, replicas=GUARD_REPLICAS):
        lines.append(f"  {p.platform:5s} cycles x{p.cycle_overhead:.2f}  "
                     f"energy x{p.energy_overhead:.2f}  "
                     f"repair {p.repair_cycles:.0f} cycles")
        protection.append({
            "platform": p.platform, "replicas": p.replicas,
            "cycle_overhead": p.cycle_overhead,
            "energy_overhead": p.energy_overhead,
            "repair_cycles": p.repair_cycles,
            "repair_energy": p.repair_energy,
        })
    write_report("detection_robustness", lines)
    write_json("detection_robustness", {
        "config": dict(sweep.config, dim=DIM, guard_replicas=GUARD_REPLICAS),
        "rows": rows,
        "protection": protection,
    })

    # every truth box is found on both clean runs
    for backend in ("dense", "packed"):
        assert sweep.clean(backend)["recall"] > 0.0

    # holographic degradation: moderate rates must not collapse detection
    for backend in ("dense", "packed"):
        assert sweep[backend][RATES[1]]["recall"] >= \
            sweep.clean(backend)["recall"] - 0.5

    # the guard holds the clean operating point at every swept rate
    clean = guarded_sweep["packed"][0.0]
    for rate in RATES:
        assert guarded_sweep["packed"][rate] == clean

"""Memory RAS: recompute-as-repair vs modular redundancy, end to end.

Three gates on the reliability subsystem's tentpole claims:

* **bytes** - a single-replica ``check="ecc"`` guarded model (SEC-DED
  parity sidecar + repair ladder) must cut resident protected bytes by
  >= 2.5x against 3-replica TMR while holding equal-or-better
  post-repair accuracy under the same corruption;
* **soak** - a serving loop over the Fig. 6 scene under a sustained
  bit-error rate on every memory surface (scene cache, item memories,
  class model) must detect and repair (or explicitly degrade) every
  injected corruption - zero silent corruption - with recall within
  0.02 of a clean twin;
* **remat** - ``remat``/``verify`` item-memory store policies must be
  bitwise-equal to ``store`` through the full detection stack on both
  backends.

Results land in ``benchmarks/results/memory_ras.{txt,json}``.
"""

import numpy as np
import pytest

from common import CONFIG, fmt_row, write_json, write_report

from repro.core.hypervector import pack_bits, random_hypervector
from repro.hardware.report import memory_protection_report
from repro.pipeline import (
    HDFacePipeline,
    PyramidDetector,
    SlidingWindowDetector,
    make_scene,
)
from repro.reliability import AdaptiveGuardedModel, GuardedClassModel
from repro.runtime import ResilientVideoDetector, run_ber_soak

DIM = 1024
WINDOW = 24
SCENE = 96
SPOTS = ((0, 24), (48, 60))
SOAK_FRAMES = 6
SOAK_BER = 2e-4
MAX_RECALL_DROP = 0.02
TMR_REPLICAS = 3
MIN_BYTES_RATIO = 2.5


@pytest.fixture(scope="module")
def pipe():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8,
                          magnitude=CONFIG["magnitude"],
                          epochs=CONFIG["hd_epochs"], seed_or_rng=0,
                          store_policy="verify").fit(xtr, ytr)


@pytest.fixture(scope="module")
def fig6_scene():
    return make_scene(SCENE, SPOTS, window=WINDOW, seed_or_rng=7)


# ----------------------------------------------------------------------
# gate (a): bytes vs TMR at equal-or-better post-repair accuracy
# ----------------------------------------------------------------------
def post_repair_accuracy(guard, queries, labels):
    """Accuracy after corruption and one repair pass."""
    guard.corrupt_replica(0, 0.05, seed_or_rng=9)
    guard.scrub(force=True)
    return float((guard.predict(queries) == labels).mean())


@pytest.fixture(scope="module")
def bytes_gate(pipe):
    base = SlidingWindowDetector(pipe, window=WINDOW, stride=8,
                                 backend="packed").packed_model()
    queries = pack_bits(random_hypervector(DIM, 11, shape=(64,)))
    labels = base.predict(queries)
    # the ECC arm is the full recompute-as-repair stack: SEC-DED catches
    # single-bit upsets, the counter-remat rung regenerates rows bitwise
    # under word-burst garbage that no ECC could correct
    ecc = AdaptiveGuardedModel(base, replicas=1, check="ecc", seed_or_rng=0)
    tmr = GuardedClassModel(base, replicas=TMR_REPLICAS, check="checksum",
                            seed_or_rng=0)
    return {
        "ecc_bytes": int(ecc.nbytes),
        "tmr_bytes": int(tmr.nbytes),
        "bytes_ratio": tmr.nbytes / ecc.nbytes,
        "ecc_accuracy": post_repair_accuracy(ecc, queries, labels),
        "tmr_accuracy": post_repair_accuracy(tmr, queries, labels),
        "ecc_rungs": dict(ecc.rungs),
    }


# ----------------------------------------------------------------------
# gate (b): sustained-BER soak on the Fig. 6 scene
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def soak_report(pipe, fig6_scene):
    scene, truth = fig6_scene
    frames = [scene] * SOAK_FRAMES
    truth_by_frame = [list(truth)] * SOAK_FRAMES

    def make_runtime(ladder=None, budget=None):
        det = SlidingWindowDetector(pipe, window=WINDOW, stride=8,
                                    backend="packed", scrub=True)
        runtime = ResilientVideoDetector(
            PyramidDetector(det, score_threshold=0.0), ladder=ladder,
            budget=budget if budget else 10.0, stall_timeout=None,
            scrub_budget=0)
        guard = GuardedClassModel(runtime.base.packed_model(), replicas=1,
                                  check="ecc", seed_or_rng=0)
        runtime.model_override = guard
        runtime.scrubber.add_guard(guard)
        return runtime

    return run_ber_soak(make_runtime, frames, truth_by_frame, ber=SOAK_BER,
                        seed=0, max_recall_drop=MAX_RECALL_DROP)


# ----------------------------------------------------------------------
# gate (c): remat bitwise-equal to store on both backends
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def remat_gate(fig6_scene):
    from repro.datasets import make_face_dataset
    scene, _ = fig6_scene
    xtr, ytr = make_face_dataset(48, size=WINDOW, seed_or_rng=0)
    out = {}
    for backend in ("dense", "packed"):
        scores = {}
        for policy in ("store", "verify", "remat"):
            p = HDFacePipeline(2, dim=512, cell_size=8,
                               magnitude=CONFIG["magnitude"], epochs=5,
                               seed_or_rng=0, store_policy=policy
                               ).fit(xtr, ytr)
            det = SlidingWindowDetector(p, window=WINDOW, stride=8,
                                        backend=backend)
            scores[policy] = det.scan(scene).scores
        out[backend] = {
            "verify_equal": bool(np.array_equal(scores["verify"],
                                                scores["store"])),
            "remat_equal": bool(np.array_equal(scores["remat"],
                                               scores["store"])),
        }
    return out


def test_memory_ras_report(bytes_gate, soak_report, remat_gate):
    lines = [f"memory RAS (D={DIM}, {SCENE}x{SCENE} fig6 scene, "
             f"{SOAK_FRAMES} soak frames at BER {SOAK_BER})",
             "",
             "gate (a): resident protected bytes (class model)",
             fmt_row(("scheme", "bytes", "post-repair acc"), (22, 10, 16)),
             fmt_row((f"TMR r={TMR_REPLICAS}", bytes_gate["tmr_bytes"],
                      f"{bytes_gate['tmr_accuracy']:.3f}"), (22, 10, 16)),
             fmt_row(("ECC+remat r=1", bytes_gate["ecc_bytes"],
                      f"{bytes_gate['ecc_accuracy']:.3f}"), (22, 10, 16)),
             f"  bytes ratio {bytes_gate['bytes_ratio']:.2f}x "
             f"(gate >= {MIN_BYTES_RATIO}x)",
             "",
             "gate (b): sustained-BER soak"]
    injected = soak_report["injected"]
    lines.append(f"  injected {dict(injected)} "
                 f"-> {soak_report['detections']} detected, "
                 f"{soak_report['repairs']} repaired")
    lines.append(f"  cache {soak_report['cache']}")
    lines.append(f"  recall {soak_report['recall_soak']:.3f} soak vs "
                 f"{soak_report['recall_clean']:.3f} clean "
                 f"(drop {soak_report['recall_drop']:+.3f}, "
                 f"gate <= {MAX_RECALL_DROP})")
    for gate, ok in soak_report["gates"].items():
        lines.append(f"  gate {gate:24s} {'PASS' if ok else 'FAIL'}")
    lines.append("")
    lines.append("gate (c): store-policy bitwise equivalence")
    for backend, eq in remat_gate.items():
        lines.append(f"  {backend:6s} verify={eq['verify_equal']} "
                     f"remat={eq['remat_equal']}")
    lines.append("")
    lines.append("hardware model (resident bytes + scrub cycles):")
    protection = []
    for m in memory_protection_report(dim=DIM, n_classes=2,
                                      tmr_replicas=TMR_REPLICAS):
        lines.append(f"  {m.platform:5s} {m.scheme:10s} "
                     f"{m.resident_bytes:8d} B  "
                     f"scrub {m.scrub_cycles:10.0f} cycles  "
                     f"repair {m.repair_cycles:10.0f} cycles")
        protection.append({
            "platform": m.platform, "scheme": m.scheme,
            "replicas": m.replicas, "resident_bytes": m.resident_bytes,
            "scrub_cycles": m.scrub_cycles,
            "repair_cycles": m.repair_cycles,
        })

    write_report("memory_ras", lines)
    write_json("memory_ras", {
        "config": {"dim": DIM, "scene": SCENE, "window": WINDOW,
                   "soak_frames": SOAK_FRAMES, "ber": SOAK_BER,
                   "tmr_replicas": TMR_REPLICAS,
                   "min_bytes_ratio": MIN_BYTES_RATIO,
                   "max_recall_drop": MAX_RECALL_DROP},
        "bytes": bytes_gate,
        "soak": soak_report,
        "remat": remat_gate,
        "protection": protection,
    })

    # gate (a): >= 2.5x lighter at equal-or-better post-repair accuracy
    assert bytes_gate["bytes_ratio"] >= MIN_BYTES_RATIO
    assert bytes_gate["ecc_accuracy"] >= bytes_gate["tmr_accuracy"]

    # gate (b): every injection detected + repaired/degraded, recall holds
    assert sum(soak_report["injected"].values()) > 0
    assert soak_report["passed"], soak_report["gates"]

    # gate (c): remat/verify bitwise-equal to store on both backends
    for eq in remat_gate.values():
        assert eq["verify_equal"] and eq["remat_equal"]

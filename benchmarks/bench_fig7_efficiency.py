"""Figure 7: speedup and energy efficiency of HDFace vs DNN on CPU and FPGA.

Regenerates all four panels from the hardware model at the paper's workload
sizes (Table 1), prints the per-dataset bars, and cross-checks the FPGA
numbers against the cycle-level datapath simulator.

Paper numbers for reference: training 6.1x speed / 3.0x energy on the CPU
and 4.6x / 12.1x on the FPGA; inference 1.4x / 1.7x (CPU) and 2.9x / 2.6x
(FPGA).  The model is calibrated to land in this ballpark (see
EXPERIMENTS.md for the exact deviations); the benches assert the shapes.
"""

import numpy as np
import pytest

from common import fmt_row, write_report

from repro.hardware import (
    HDDatapathSimulator,
    KINTEX7_FPGA,
    fig7_report,
    hd_hog_trace,
    hd_hog_profile,
)

PAPER = {
    ("cpu", "training"): (6.1, 3.0),
    ("fpga", "training"): (4.6, 12.1),
    ("cpu", "inference"): (1.4, 1.7),
    ("fpga", "inference"): (2.9, 2.6),
}


@pytest.fixture(scope="module")
def rows():
    return fig7_report()


def test_fig7_report(rows):
    widths = (8, 6, 10, 10, 10, 12, 12)
    lines = [fmt_row(("dataset", "plat", "phase", "speedup", "energy",
                      "paper_speed", "paper_energy"), widths), "-" * 78]
    for r in rows:
        ps, pe = PAPER[(r.platform, r.phase)]
        lines.append(fmt_row(
            (r.dataset, r.platform, r.phase, f"{r.speedup:.2f}",
             f"{r.energy_efficiency:.2f}", ps, pe), widths))
    lines.append("-" * 78)
    for (plat, phase), (ps, pe) in PAPER.items():
        sel = [r for r in rows if r.platform == plat and r.phase == phase]
        lines.append(fmt_row(
            ("average", plat, phase,
             f"{np.mean([r.speedup for r in sel]):.2f}",
             f"{np.mean([r.energy_efficiency for r in sel]):.2f}", ps, pe),
            widths))
    write_report("fig7_efficiency", lines)


def test_training_wins_everywhere(rows):
    for r in rows:
        if r.phase == "training":
            assert r.speedup > 1.0 and r.energy_efficiency > 1.0


def test_training_margin_larger_than_inference(rows):
    for plat in ("cpu", "fpga"):
        train = np.mean([r.speedup for r in rows
                         if r.platform == plat and r.phase == "training"])
        infer = np.mean([r.speedup for r in rows
                         if r.platform == plat and r.phase == "inference"])
        assert train > infer


def test_fpga_energy_advantage_larger_than_cpu(rows):
    """The paper's FPGA story: HDC's energy edge is biggest in LUT fabric."""
    fpga = np.mean([r.energy_efficiency for r in rows
                    if r.platform == "fpga" and r.phase == "training"])
    cpu_speed = np.mean([r.speedup for r in rows
                         if r.platform == "cpu" and r.phase == "training"])
    assert fpga > 1.0 and cpu_speed > 1.0


def test_simulator_agrees_with_analytic_fpga_cost():
    """Cycle-level simulation vs the analytic compute estimate (within 3x).

    The two models were written independently (vector-op trace expansion vs
    op-class counting); agreement on compute beats for an equally wide
    fabric validates both.  Memory streaming is excluded - the simulator
    models the datapath, the platform model adds the memory bound.
    """
    dim = 4096
    shape = (48, 48)
    lanes = int(KINTEX7_FPGA.throughput["bit"])
    sim = HDDatapathSimulator(lanes=lanes, pipeline_depth=4)
    cycles = sim.run(hd_hog_trace(shape, dim)).cycles
    prof = hd_hog_profile(shape, dim)
    analytic = (prof.get("bit") + prof.get("rng_bit") + prof.get("int_add")) / lanes
    assert 0.3 < cycles / analytic < 3.0


def test_model_evaluation_speed(benchmark):
    """Benchmark: the whole Fig. 7 model evaluates in milliseconds."""
    benchmark(fig7_report)

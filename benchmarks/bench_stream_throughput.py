"""Streaming detection: frame-delta reuse vs full per-frame re-extraction.

The streaming subsystem's claim is that on video, where consecutive
frames share most pixels, ``SharedFeatureEngine.delta_update`` turns the
dominant per-pixel stochastic stages into work proportional to the
*motion*, not the frame.  This bench pins that with a moving-face video
at several motion fractions (the face's dilated bounding box as a share
of the frame): frames/sec of the incremental stream vs the same stream
with ``incremental=False`` (full re-extraction every frame), per-frame
detections asserted identical between the two runs.

Acceptance: >= 2x frames/sec at <= 25% frame motion (asserted on the
largest swept fraction, ~0.25, for both backends).

Results land in ``benchmarks/results/stream_throughput.{txt,json}``.
"""

import time

import pytest

from common import SCALE, fmt_row, write_json, write_report

from repro.datasets.synth import moving_face_sequence
from repro.pipeline import (
    HDFacePipeline,
    PyramidDetector,
    SlidingWindowDetector,
    VideoStreamDetector,
)

DIM = 1024 if SCALE == "smoke" else 2048
SCENE = 96
WINDOW = 24
STRIDE = 8
STEP = 2
N_FRAMES = 8 if SCALE == "smoke" else 24
# face side per motion point: dirty bbox ~= (side + STEP)^2 pixels
MOTION_FACES = {0.05: 19, 0.12: 31, 0.25: 46}
BACKENDS = ("dense", "packed")


@pytest.fixture(scope="module")
def pipe():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


def _run(pipe, frames, backend, incremental):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                backend=backend)
    stream = VideoStreamDetector(
        PyramidDetector(det, score_threshold=0.0), incremental=incremental)
    start = time.perf_counter()
    results = list(stream.run(frames))
    elapsed = time.perf_counter() - start
    # steady-state fps: the first frame is the unavoidable cold extraction
    warm = sum(r.latency for r in results[1:])
    fps = (len(results) - 1) / warm if warm > 0 else 0.0
    return results, stream.stats(), fps, elapsed


@pytest.fixture(scope="module")
def measurements(pipe):
    out = {}
    for fraction, face_side in MOTION_FACES.items():
        frames, _ = moving_face_sequence(SCENE, N_FRAMES, window=face_side,
                                         step=STEP, seed_or_rng=11)
        for backend in BACKENDS:
            inc_results, inc_stats, inc_fps, _ = _run(
                pipe, frames, backend, incremental=True)
            full_results, _, full_fps, _ = _run(
                pipe, frames, backend, incremental=False)
            for a, b in zip(inc_results, full_results):
                assert a.detections == b.detections, (
                    f"delta path diverged ({backend}, motion {fraction}, "
                    f"frame {a.index})")
            out[(fraction, backend)] = {
                "motion_fraction": fraction,
                "face_side": face_side,
                "backend": backend,
                "fps_incremental": inc_fps,
                "fps_full": full_fps,
                "speedup": inc_fps / full_fps if full_fps else 0.0,
                "reused_pixel_fraction": inc_stats["reused_pixel_fraction"],
                "delta_patched": inc_stats["delta_patched"],
                "delta_full": inc_stats["delta_full"],
            }
    return out


def test_stream_throughput_report(measurements):
    widths = (8, 7, 9, 8, 8, 8, 8)
    lines = [f"scene {SCENE}x{SCENE}, window {WINDOW}, stride {STRIDE}, "
             f"D={DIM}, {N_FRAMES} frames, face step {STEP}px; fps excludes "
             f"the cold first frame",
             fmt_row(("backend", "motion", "face_px", "fps_inc", "fps_full",
                      "speedup", "reuse"), widths)]
    rows = []
    for row in measurements.values():
        lines.append(fmt_row(
            (row["backend"], f"{row['motion_fraction']:.2f}",
             row["face_side"], f"{row['fps_incremental']:.2f}",
             f"{row['fps_full']:.2f}", f"{row['speedup']:.2f}x",
             f"{row['reused_pixel_fraction']:.2f}"), widths))
        rows.append(row)
    write_report("stream_throughput", lines)
    write_json("stream_throughput", {
        "config": {"scene": SCENE, "window": WINDOW, "stride": STRIDE,
                   "dim": DIM, "frames": N_FRAMES, "step": STEP},
        "rows": rows,
    })


@pytest.mark.parametrize("backend", BACKENDS)
def test_at_least_2x_at_quarter_frame_motion(measurements, backend):
    """The acceptance criterion: >= 2x fps at <= 25% frame motion."""
    row = measurements[(0.25, backend)]
    assert row["speedup"] >= 2.0, (
        f"{backend}: {row['speedup']:.2f}x at motion 0.25 "
        f"({row['fps_incremental']:.2f} vs {row['fps_full']:.2f} fps)")


@pytest.mark.parametrize("backend", BACKENDS)
def test_speedup_grows_as_motion_shrinks(measurements, backend):
    speedups = [measurements[(f, backend)]["speedup"]
                for f in sorted(MOTION_FACES)]
    assert speedups[0] > speedups[-1], (
        f"{backend}: less motion should mean more reuse, got {speedups}")

"""Section 2 motivation: HOG dominates training cost; original HOG is fragile.

The paper motivates HDFace with two measurements on an ARM A53:

* "HoG takes above 85% of total training time" for a conventional
  HOG+HDC system - reproduced from the op-count model;
* "2% random bit error on HoG feature extraction causes 12% quality loss,
  while the HDC model is significantly robust" - reproduced with the
  fault campaign.
"""

import pytest

from common import CONFIG, write_report

from repro.hardware import (
    CORTEX_A53,
    hdc_learn_profile,
    hog_profile,
    workload_for_dataset,
)
from repro.hardware.opcount import levelid_encoder_profile
from repro.noise import hdface_original_hog_robustness
from repro.pipeline import HOGPipeline


def test_hog_share_of_training_time():
    """Share of conventional HOG + binary-encode + HDC training in HOG.

    The Sec. 2 measurement uses a conventional HDC system: classic HOG
    front end, classical binary record encoding, HDC bundling - where the
    fp32 HOG (sqrt/atan per pixel) dominates everything else.
    """
    w = workload_for_dataset("FACE2")
    shape = (w.image_size, w.image_size)
    hog_t = CORTEX_A53.time(hog_profile(shape, w.n_bins))
    encode_t = CORTEX_A53.time(levelid_encoder_profile(w.dim, w.n_features))
    learn_t = CORTEX_A53.time(hdc_learn_profile(w.dim, w.n_classes)) * 5
    share = hog_t / (hog_t + encode_t + learn_t)
    lines = [
        f"per-sample HOG time        : {hog_t * 1e3:.3f} ms",
        f"per-sample encoding time   : {encode_t * 1e3:.3f} ms",
        f"per-sample HDC learn time  : {learn_t * 1e3:.3f} ms",
        f"HOG share of pipeline      : {share * 100:.1f}% (paper: >85% of training)",
    ]
    write_report("motivation_hog_share", lines)
    assert share > 0.5  # feature extraction dominates the pipeline


def test_two_percent_error_hurts_original_hog(face2):
    """2% bit error on original-representation HOG causes a visible loss."""
    xtr, ytr, xte, yte = face2
    k = int(ytr.max()) + 1
    pipe = HOGPipeline("hdc", k, image_size=xtr.shape[1], dim=CONFIG["dim"],
                       seed_or_rng=0).fit(xtr, ytr)
    res = hdface_original_hog_robustness(pipe, xte, yte, (0.0, 0.02),
                                         bits=16, seed_or_rng=0)
    loss = res.losses()[0.02]
    lines = [
        f"clean accuracy            : {res[0.0]:.3f}",
        f"accuracy at 2% bit error  : {res[0.02]:.3f}",
        f"quality loss              : {loss:.1f} points (paper: 12%)",
    ]
    write_report("motivation_fragility", lines)
    assert loss >= 0.0


def test_shared_engine_modeled_op_reduction():
    """Modeled op savings of sharing feature extraction across windows.

    The same motivation at detection time: with overlapping windows the
    per-window pipeline repeats the expensive per-pixel stages, and the
    repetition factor grows quadratically as the stride shrinks.  The
    op-count model quantifies what the shared-feature engine removes.
    """
    from repro.hardware.opcount import (
        perwindow_detection_profile,
        shared_detection_profile,
    )
    scene, window, dim = (96, 96), 24, CONFIG["dim"]
    lines = [f"scene {scene[0]}x{scene[1]}, window {window}, D={dim} "
             f"(modeled, Cortex-A53)"]
    reductions = {}
    for stride in (window, window // 2, window // 4):
        shared = shared_detection_profile(scene, window, stride, dim)
        perwin = perwindow_detection_profile(scene, window, stride, dim)
        ratio = perwin.total_ops() / shared.total_ops()
        reductions[stride] = ratio
        lines.append(
            f"stride {stride:>2}: per-window {CORTEX_A53.time(perwin)*1e3:8.1f} ms"
            f"  shared {CORTEX_A53.time(shared)*1e3:8.1f} ms"
            f"  op reduction {ratio:5.1f}x")
    write_report("motivation_shared_engine", lines)
    assert reductions[window // 4] > reductions[window]  # grows with overlap
    assert reductions[window // 4] > 5.0


def test_hog_profile_evaluation_speed(benchmark):
    """Benchmark: op-count profile construction cost."""
    benchmark(hog_profile, (512, 512))

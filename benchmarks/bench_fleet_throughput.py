"""Fleet serving: cross-stream batching vs N independent runtimes.

The fleet's claim is consolidation: N streams served from one machine
share the packed datapath (one content-addressed feature cache, one
XOR+popcount pass over every stream's candidate windows via the batch
gate) instead of each stream owning a full engine.  On the fleet-typical
workload - many consumers watching overlapping content - the independent
baseline re-extracts and re-scans the same pixels N times; the fleet
extracts once and scans once, bitwise identically.

This bench pins that: for each swept stream count, aggregate frames/sec
of (a) N fully independent ``ResilientVideoDetector``s (own detector,
own engine, own cache - the no-fleet deployment) vs (b) one
``FleetDispatcher`` over a shared datapath with the batch gate, both
driven through the same async submit path with degradation pinned to the
full rung.  Every stream's detections are asserted bitwise-equal to a
solo synchronous reference run on both sides.

Acceptance: the fleet sustains >= 2x the baseline's aggregate
frames/sec at 8 streams.

Results land in ``benchmarks/results/fleet_throughput.{txt,json}``.
Runnable standalone for CI: ``python benchmarks/bench_fleet_throughput.py
--smoke`` (sets ``REPRO_BENCH_SCALE`` before the sweep and exits
non-zero if the gate fails).
"""

import sys
import time

if __name__ == "__main__":  # set the scale knob before importing common
    import argparse
    import os

    _cli = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    _scale = _cli.add_mutually_exclusive_group()
    _scale.add_argument("--smoke", action="store_true",
                        help="small configuration (default)")
    _scale.add_argument("--full", action="store_true",
                        help="paper-scale configuration")
    _args = _cli.parse_args()
    os.environ["REPRO_BENCH_SCALE"] = "full" if _args.full else "smoke"

from common import SCALE, fmt_row, write_json, write_report

from repro.datasets import make_face_dataset
from repro.datasets.synth import moving_face_sequence
from repro.pipeline import (
    HDFacePipeline,
    PyramidDetector,
    SlidingWindowDetector,
)
from repro.runtime import (
    DegradationLadder,
    FleetDispatcher,
    ResilientVideoDetector,
    Rung,
)

DIM = 1024 if SCALE == "smoke" else 2048
SCENE = 64 if SCALE == "smoke" else 96
WINDOW = 24
STRIDE = 8
N_FRAMES = 6 if SCALE == "smoke" else 16
STREAM_COUNTS = (1, 2, 4, 8)
GATE_STREAMS = 8
GATE_SPEEDUP = 2.0

# both sides serve at the full rung with an unreachable budget: the sweep
# measures throughput, not shedding, and keeps every detection bitwise
# comparable across stream counts and deployments
PINNED = dict(budget=1e9, stall_timeout=None, queue_size=64,
              policy="block")


def build_pipe():
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


def make_detector(pipe):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                backend="packed")
    return PyramidDetector(det, score_threshold=0.0)


def pinned_ladder():
    return DegradationLadder([Rung("full")])


def reference_run(pipe, frames):
    """Solo synchronous detections: the bitwise ground truth."""
    runtime = ResilientVideoDetector(make_detector(pipe),
                                     ladder=pinned_ladder(), **PINNED)
    return [runtime.step(f, meta={"i": i}).detections
            for i, f in enumerate(frames)]


def _submit_all(submit, names, frames):
    for i, frame in enumerate(frames):
        for name in names:
            submit(name, frame, {"i": i})


def run_baseline(pipe, frames, n_streams):
    """N independent runtimes: own engine, own cache, no batching."""
    runtimes = {f"solo{i}": ResilientVideoDetector(
        make_detector(pipe), ladder=pinned_ladder(), **PINNED)
        for i in range(n_streams)}
    for rt in runtimes.values():
        rt.start()
    start = time.perf_counter()
    _submit_all(lambda n, f, m: runtimes[n].submit(f, meta=m),
                list(runtimes), frames)
    results = {name: rt.stop(timeout=120.0)
               for name, rt in runtimes.items()}
    wall = time.perf_counter() - start
    return results, n_streams * len(frames) / wall


def run_fleet(pipe, frames, n_streams):
    """One dispatcher: shared datapath, batch gate, fleet cache."""
    fleet = FleetDispatcher(lambda: make_detector(pipe),
                            max_streams=n_streams, batch_window=0.004,
                            **PINNED)
    names = [f"cam{i}" for i in range(n_streams)]
    for name in names:
        fleet.add_stream(name, ladder=pinned_ladder())
    fleet.start()
    start = time.perf_counter()
    _submit_all(lambda n, f, m: fleet.submit(n, f, meta=m), names, frames)
    results = fleet.stop(timeout=120.0)
    wall = time.perf_counter() - start
    gate = fleet.gate.stats()
    return results, n_streams * len(frames) / wall, gate


def check_bitwise(results, reference, label):
    for name, served in results.items():
        assert len(served) == len(reference), (
            f"{label}/{name}: served {len(served)} of {len(reference)}")
        for r, want in zip(served, reference):
            assert r.mode == "detected", (label, name, r.index, r.mode)
            assert r.detections == want, (
                f"{label}/{name} diverged at frame {r.index}")


def sweep():
    pipe = build_pipe()
    frames, _ = moving_face_sequence(SCENE, N_FRAMES, window=WINDOW,
                                     step=2, seed_or_rng=11)
    frames = list(frames)
    reference = reference_run(pipe, frames)
    rows = []
    for n in STREAM_COUNTS:
        base_results, base_fps = run_baseline(pipe, frames, n)
        fleet_results, fleet_fps, gate = run_fleet(pipe, frames, n)
        check_bitwise(base_results, reference, f"baseline x{n}")
        check_bitwise(fleet_results, reference, f"fleet x{n}")
        rows.append({
            "streams": n,
            "frames_per_stream": len(frames),
            "baseline_fps": round(base_fps, 2),
            "fleet_fps": round(fleet_fps, 2),
            "speedup": round(fleet_fps / base_fps, 2),
            "gate_batches": gate["batches"],
            "mean_requests_per_batch": round(gate["mean_requests"], 2),
            "max_bundles": gate["max_bundles"],
        })
    return rows


def report(rows):
    widths = (8, 14, 12, 9, 9, 13)
    lines = [fmt_row(("streams", "baseline_fps", "fleet_fps", "speedup",
                      "batches", "max_bundles"), widths)]
    for r in rows:
        lines.append(fmt_row((r["streams"], r["baseline_fps"],
                              r["fleet_fps"], r["speedup"],
                              r["gate_batches"], r["max_bundles"]), widths))
    write_report("fleet_throughput", lines)
    gate_row = next(r for r in rows if r["streams"] == GATE_STREAMS)
    write_json("fleet_throughput", {
        "config": {"dim": DIM, "scene": SCENE, "window": WINDOW,
                   "stride": STRIDE, "frames": N_FRAMES,
                   "backend": "packed", "batch_window": 0.004,
                   "stream_counts": list(STREAM_COUNTS)},
        "rows": rows,
        "gate": {"streams": GATE_STREAMS,
                 "speedup": gate_row["speedup"],
                 "required": GATE_SPEEDUP,
                 "passed": gate_row["speedup"] >= GATE_SPEEDUP},
    })
    return gate_row


def test_fleet_throughput():
    """>= 2x aggregate fps at 8 streams, detections bitwise intact."""
    rows = sweep()
    gate_row = report(rows)
    assert gate_row["max_bundles"] >= 2, (
        "the batch gate never merged streams", gate_row)
    assert gate_row["speedup"] >= GATE_SPEEDUP, (
        f"fleet speedup {gate_row['speedup']}x at {GATE_STREAMS} streams "
        f"is below the {GATE_SPEEDUP}x acceptance bar")


if __name__ == "__main__":
    gate_row = report(sweep())
    ok = gate_row["speedup"] >= GATE_SPEEDUP and \
        gate_row["max_bundles"] >= 2
    print(f"gate: {gate_row['speedup']}x at {GATE_STREAMS} streams "
          f"(required {GATE_SPEEDUP}x, max_bundles "
          f"{gate_row['max_bundles']}) -> {'PASS' if ok else 'FAIL'}")
    sys.exit(0 if ok else 1)

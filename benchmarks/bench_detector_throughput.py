"""Detector throughput: shared-feature engine vs per-window paths.

Measures windows/second on the Fig. 6 composite scene for the three
detection engines at two overlaps (stride = window/2 and window/4), records
the table to ``benchmarks/results/detector_throughput.txt`` and pins the
two properties the shared engine is built on:

* the shared and keyed per-window paths produce *bitwise identical*
  detection maps on a fixed seed;
* with overlapping windows the shared engine is several times faster than
  the legacy per-window scan (the speedup grows as the stride shrinks,
  because the whole-image pass is amortized over more windows).

The asserted floor is conservative so the bench stays green on loaded CI
machines; the measured numbers land in the report (and in
``docs/performance.md``).
"""

import time

import numpy as np
import pytest

from common import CONFIG, write_json, write_report

from repro.pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
from repro.profiling import Profiler

WINDOW = 24
SCENE = 96
FACE_SPOTS = ((0, 24), (48, 60))
STRIDES = (WINDOW // 2, WINDOW // 4)


@pytest.fixture(scope="module")
def scene():
    scene_img, _ = make_scene(SCENE, FACE_SPOTS, window=WINDOW, seed_or_rng=7)
    return scene_img


@pytest.fixture(scope="module")
def pipe():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(48, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=CONFIG["dim"], cell_size=8,
                          magnitude=CONFIG["magnitude"], epochs=5,
                          seed_or_rng=0).fit(xtr, ytr)


def _scan_time(pipe, scene, stride, engine):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=stride,
                                engine=engine)
    start = time.perf_counter()
    dmap = det.scan(scene)
    return time.perf_counter() - start, dmap


@pytest.fixture(scope="module")
def measurements(pipe, scene):
    rows = {}
    for stride in STRIDES:
        per_engine = {}
        for engine in ("shared", "perwindow", "legacy"):
            seconds, dmap = _scan_time(pipe, scene, stride, engine)
            per_engine[engine] = (seconds, dmap)
        rows[stride] = per_engine
    return rows


def test_detector_throughput_report(measurements):
    lines = [f"scene {SCENE}x{SCENE}, window {WINDOW}, D={CONFIG['dim']}, "
             f"magnitude={CONFIG['magnitude']}",
             f"{'stride':>6} {'engine':>10} {'windows':>8} "
             f"{'seconds':>8} {'win/s':>8} {'vs legacy':>9}"]
    rows = []
    for stride, per_engine in measurements.items():
        legacy_s = per_engine["legacy"][0]
        for engine, (seconds, dmap) in per_engine.items():
            n = dmap.scores.size
            lines.append(f"{stride:>6} {engine:>10} {n:>8} {seconds:>8.3f} "
                         f"{n / seconds:>8.1f} {legacy_s / seconds:>8.1f}x")
            rows.append({
                "engine": engine, "backend": "dense", "stride": stride,
                "windows": int(n), "seconds": seconds,
                "windows_per_s": n / seconds,
                "speedup_vs_legacy": legacy_s / seconds,
            })
    write_report("detector_throughput", lines)
    write_json("detector_throughput", {
        "config": {"scene": SCENE, "window": WINDOW, "dim": CONFIG["dim"],
                   "magnitude": CONFIG["magnitude"], "strides": list(STRIDES)},
        "rows": rows,
    })


def test_shared_bitwise_equals_perwindow(measurements):
    for per_engine in measurements.values():
        shared = per_engine["shared"][1]
        perwin = per_engine["perwindow"][1]
        assert np.array_equal(shared.scores, perwin.scores)
        assert np.array_equal(shared.detections, perwin.detections)


def test_shared_beats_legacy_with_overlap(measurements):
    # At stride = window/4 the paper-style overlapping scan repeats ~10x of
    # the per-pixel work in the legacy path; even a loaded CI machine sees
    # a large gap.  (Measured locally: ~6-7x, see docs/performance.md.)
    stride = WINDOW // 4
    legacy_s = measurements[stride]["legacy"][0]
    shared_s = measurements[stride]["shared"][0]
    assert shared_s < legacy_s / 2.5


def test_warm_cache_rescan_is_nearly_free(pipe, scene):
    prof = Profiler()
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=WINDOW // 2,
                                engine="shared", profiler=prof)
    cold_s, cold = _scan_time_with(det, scene)
    warm_s, warm = _scan_time_with(det, scene)
    assert np.array_equal(cold.scores, warm.scores)
    assert det.engine.hits == 1 and det.engine.misses == 1
    assert warm_s < cold_s  # fields + cell grid both cached


def _scan_time_with(det, scene):
    start = time.perf_counter()
    dmap = det.scan(scene)
    return time.perf_counter() - start, dmap

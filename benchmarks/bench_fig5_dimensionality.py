"""Figure 5: dimensionality / network-size sweeps and training-time heatmaps.

(a) HDFace accuracy versus hypervector dimensionality (measured) plus
    modeled per-epoch training time per dimensionality (the heatmap).
(b) DNN accuracy versus hidden-layer configuration (measured) plus modeled
    per-epoch training time per configuration, including the Sec. 6.3
    comparison (paper: 0.9 s vs 5.4 s per epoch on the embedded CPU).

Expected shapes: HDFace accuracy grows with D and saturates; DNN accuracy
peaks at a mid-to-large hidden size; HDFace's per-epoch time beats the
best DNN's.
"""

import numpy as np
import pytest

from common import CONFIG, fmt_row, write_report

from repro.hardware import CORTEX_A53, epoch_time_grid, workload_for_dataset
from repro.learning import MLPClassifier
from repro.pipeline import HDFacePipeline

HIDDEN_CONFIGS = ((16, 16), (64, 64), (256, 256), (1024, 1024))


@pytest.fixture(scope="module")
def dim_sweep(face2):
    xtr, ytr, xte, yte = face2
    k = int(ytr.max()) + 1
    accs = {}
    for dim in CONFIG["dims_sweep"]:
        pipe = HDFacePipeline(k, dim=dim, cell_size=8,
                              magnitude=CONFIG["magnitude"],
                              epochs=CONFIG["hd_epochs"], seed_or_rng=0)
        accs[dim] = pipe.fit(xtr, ytr).score(xte, yte)
    return accs


@pytest.fixture(scope="module")
def hidden_sweep(hog_features):
    # EMOTION is the task where capacity matters (binary faces saturate
    # at every width), matching Fig. 5b's visible accuracy differences.
    ftr, ytr, fte, yte = hog_features["EMOTION"]
    k = int(ytr.max()) + 1
    accs = {}
    for hidden in HIDDEN_CONFIGS:
        net = MLPClassifier(ftr.shape[1], k, hidden=hidden,
                            epochs=CONFIG["dnn_epochs"], seed_or_rng=0)
        accs[hidden] = net.fit(ftr, ytr).score(fte, yte)
    return accs


def test_fig5a_accuracy_vs_dimension(dim_sweep):
    """HDFace accuracy improves with D and saturates (paper: max at 4k)."""
    dims = sorted(dim_sweep)
    w = epoch_time_grid(workload_for_dataset("EMOTION"), CORTEX_A53,
                        dims=dims)[0]
    widths = (8, 10, 16)
    lines = [fmt_row(("D", "accuracy", "s/epoch (model)"), widths), "-" * 36]
    for d in dims:
        lines.append(fmt_row((d, f"{dim_sweep[d]:.3f}", f"{w[d]:.2f}"), widths))
    lines.append("")
    lines.append("paper shape: accuracy rises with D then saturates; "
                 "epoch time grows linearly with D")
    write_report("fig5a_dimensionality", lines)

    assert dim_sweep[dims[-1]] >= dim_sweep[dims[0]] - 0.02
    best = max(dim_sweep.values())
    assert dim_sweep[dims[-1]] > best - 0.1  # saturation, not collapse
    assert w[dims[-1]] > w[dims[0]]


def test_fig5b_accuracy_vs_hidden(hidden_sweep):
    """DNN accuracy vs hidden sizes plus modeled epoch times."""
    grid = epoch_time_grid(workload_for_dataset("EMOTION"), CORTEX_A53,
                           hidden_configs=HIDDEN_CONFIGS)[1]
    widths = (14, 10, 16)
    lines = [fmt_row(("hidden", "accuracy", "s/epoch (model)"), widths), "-" * 42]
    for hidden in HIDDEN_CONFIGS:
        lines.append(fmt_row(
            (f"{hidden[0]}x{hidden[1]}", f"{hidden_sweep[hidden]:.3f}",
             f"{grid[hidden]:.2f}"), widths))
    lines.append("")
    lines.append("paper shape: accuracy peaks at large hidden sizes; "
                 "epoch time grows with layer width")
    write_report("fig5b_dnn_config", lines)

    accs = [hidden_sweep[h] for h in HIDDEN_CONFIGS]
    assert max(accs[1:]) >= accs[0] - 0.02  # wider nets are not worse
    assert grid[HIDDEN_CONFIGS[-1]] > grid[HIDDEN_CONFIGS[0]]


def test_sec63_epoch_time_comparison():
    """Sec. 6.3: HDFace's epoch is several times cheaper than the DNN's
    (paper: 0.9 s vs 5.4 s on the A53 at best configurations)."""
    w = workload_for_dataset("EMOTION")
    hd, dnn = epoch_time_grid(w, CORTEX_A53, dims=(4096,),
                              hidden_configs=((1024, 1024),))
    ratio = dnn[(1024, 1024)] / hd[4096]
    lines = [
        f"HDFace (D=4k)      : {hd[4096]:.2f} s/epoch (paper: 0.9 s)",
        f"DNN (1024x1024)    : {dnn[(1024, 1024)]:.2f} s/epoch (paper: 5.4 s)",
        f"ratio              : {ratio:.2f}x (paper: 6.0x)",
    ]
    write_report("sec63_epoch_times", lines)
    assert ratio > 1.5


def test_hdface_extraction_scaling(benchmark, face2):
    """Benchmark: single-image hyperspace extraction at the sweep's top D."""
    from repro.features import HDHOGExtractor
    ext = HDHOGExtractor(dim=CONFIG["dims_sweep"][-1], cell_size=8,
                         magnitude="l1", seed_or_rng=0)
    img = face2[0][0]
    benchmark(ext.extract, img)

"""Planner-vs-hand-ladder parity on the serving workload.

The degradation ladder used to be a hand-tuned table
(:func:`repro.runtime.default_ladder`).  The execution planner derives
the same artifact from the hardware cost model - rung *i* is the plan
chosen at ``budget * shrink^i`` - and closes a measure -> refit ->
replan autotuning loop from the live profiler.  This bench gates the
replacement: the autotuned planner ladder must **match or beat** the
hand-tuned ladder's served p95 processing latency at equal recall on
the same synthetic serving workload, in both regimes that matter:

* ``headroom`` - the budget is 3x the clean cold median frame cost, so
  a correct ladder serves every frame at (or near) the full rung;
* ``tight`` - the budget is 0.25x the cold median, below even the warm
  steady-state frame cost (frame-delta reuse makes warm frames several
  times cheaper than cold ones), so frames miss at the full rung and
  the ladder must shed to get back inside.

Frames are pumped synchronously (``runtime.step``), so the measured
latency is pure processing cost - exactly what the ladder controls -
with no producer/queue noise.  The planner run replans every 8 frames,
so the committed numbers exercise the refit loop, not just the static
plan choice.  Results land in ``benchmarks/results/planner.{txt,json}``.
"""

import time

import pytest

from common import SCALE, fmt_row, write_json, write_report

from repro.datasets import make_face_dataset
from repro.datasets.synth import moving_face_sequence
from repro.pipeline import HDFacePipeline, PyramidDetector, SlidingWindowDetector
from repro.runtime import ResilientVideoDetector, default_ladder
from repro.runtime.chaos import _served_recall

DIM = 512 if SCALE == "smoke" else 1024
SCENE = 64
WINDOW = 24
STRIDE = 8
N_FRAMES = 24 if SCALE == "smoke" else 48
REPLAN_EVERY = 8
#: timing tolerance for the p95 parity gate - the recall side is exact,
#: the latency side runs on whatever machine executes the bench
P95_TOLERANCE = 1.25
RECALL_EPS = 0.02


@pytest.fixture(scope="module")
def pipe():
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def video():
    frames, truth = moving_face_sequence(SCENE, N_FRAMES, window=WINDOW,
                                         step=2, seed_or_rng=11)
    return frames, {i: [t] for i, t in enumerate(truth)}


def _detector(pipe):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                backend="packed")
    return PyramidDetector(det, score_threshold=0.0)


@pytest.fixture(scope="module")
def median_cost(pipe, video):
    """Clean median full-rung frame time over distinct frames."""
    frames, _ = video
    cal = _detector(pipe)
    samples = []
    for frame in frames[:3]:
        t0 = time.perf_counter()
        cal.detect(frame)
        samples.append(time.perf_counter() - t0)
    return sorted(samples)[len(samples) // 2]


def _serve_once(pipe, frames, truth_by_frame, budget, *, planner):
    kwargs = {"planner": True, "replan_every": REPLAN_EVERY} if planner \
        else {"ladder": default_ladder("packed")}
    runtime = ResilientVideoDetector(
        _detector(pipe), budget=budget, stall_timeout=None, **kwargs)
    results = {}
    for i, frame in enumerate(frames):
        results[i] = runtime.step(frame, meta={"frame": i})
    stats = runtime.stats()
    recall, n_scored, _ = _served_recall(results, truth_by_frame)
    return {
        "ladder": "planner" if planner else "hand",
        "rungs": [r.name for r in runtime.scheduler.ladder.rungs],
        "recall": recall,
        "frames_scored": n_scored,
        "proc_p50": stats["proc_p50"],
        "proc_p95": stats["proc_p95"],
        "deepest_rung": stats["max_rung"],
        "final_rung": stats["rung_name"],
        "deadline_misses": stats["deadline_misses"],
        "replans": stats["replans"],
        "planner": stats["planner"],
    }


@pytest.fixture(scope="module")
def regimes(pipe, video, median_cost):
    """Both ladders in both regimes, best of 2 interleaved repeats each.

    Repeats are interleaved (hand, planner, hand, planner) and the
    lower-p95 repeat is kept per ladder: external load on a shared
    runner only ever *inflates* the latency tail and throttling bursts
    last longer than one serve, so interleaving exposes both ladders to
    the same conditions and the minimum measures the ladders, not the
    neighbours.
    """
    frames, truth_by_frame = video
    out = {}
    for regime, factor in (("headroom", 3.0), ("tight", 0.25)):
        budget = factor * median_cost
        rows = {"hand": [], "planner": []}
        for _ in range(2):
            for kind in ("hand", "planner"):
                rows[kind].append(_serve_once(
                    pipe, frames, truth_by_frame, budget,
                    planner=kind == "planner"))
        out[regime] = {"budget": budget}
        for kind in ("hand", "planner"):
            out[regime][kind] = min(rows[kind],
                                    key=lambda r: r["proc_p95"])
    return out


def test_planner_matches_hand_ladder(regimes):
    """The parity gate: p95 <= hand x tolerance at equal recall, both regimes."""
    for regime, row in regimes.items():
        hand, auto = row["hand"], row["planner"]
        assert auto["recall"] >= hand["recall"] - RECALL_EPS, \
            (regime, auto["recall"], hand["recall"])
        assert auto["proc_p95"] <= hand["proc_p95"] * P95_TOLERANCE, \
            (regime, auto["proc_p95"], hand["proc_p95"])


def test_refit_loop_ran(regimes):
    """The committed numbers must exercise measure -> refit -> replan."""
    for row in regimes.values():
        auto = row["planner"]
        assert auto["replans"] >= N_FRAMES // REPLAN_EVERY - 1
        assert auto["planner"]["cost_model"]["refits"] >= 1


def test_report(regimes, median_cost):
    widths = (10, 9, 11, 7, 11, 11, 8, 8)
    lines = [
        f"planner-derived ladder vs hand-tuned ladder (D={DIM}, "
        f"{N_FRAMES} frames, {SCENE}px, synchronous pump)",
        f"clean median frame cost: {median_cost:.4f}s; planner replans "
        f"every {REPLAN_EVERY} frames",
        "",
        fmt_row(("regime", "ladder", "budget", "recall", "proc_p50",
                 "proc_p95", "deepest", "replans"), widths),
    ]
    for regime, row in regimes.items():
        for kind in ("hand", "planner"):
            r = row[kind]
            lines.append(fmt_row(
                (regime, r["ladder"], f"{row['budget']:.4f}s",
                 f"{r['recall']:.2f}", f"{r['proc_p50']:.4f}s",
                 f"{r['proc_p95']:.4f}s", r["deepest_rung"],
                 r["replans"]), widths))
    for regime, row in regimes.items():
        lines.append("")
        lines.append(f"{regime}: hand rungs    {row['hand']['rungs']}")
        lines.append(f"{regime}: planner rungs {row['planner']['rungs']}")
    write_report("planner", lines)
    write_json("planner", {
        "dim": DIM, "frames": N_FRAMES, "scene": SCENE,
        "median_cost_s": median_cost,
        "p95_tolerance": P95_TOLERANCE, "recall_eps": RECALL_EPS,
        "replan_every": REPLAN_EVERY,
        "regimes": regimes,
    })

"""Hypervector capacity sweep (the Sec. 6.3 capacity narrative).

The paper attributes the accuracy-vs-D trend to hypervector memorization
capacity.  This bench measures it directly: member similarity of bundles
versus bundle size (against the closed-form ``sqrt(2/(pi n))`` law) and
cleanup recall versus dimensionality - the mechanism behind Fig. 5a.
"""

import numpy as np

from common import fmt_row, write_report

from repro.core.capacity import (
    capacity_estimate,
    expected_member_similarity,
    measure_member_similarity,
    measure_recall_accuracy,
)

BUNDLE_SIZES = (3, 9, 27, 81)
DIMS = (512, 2048, 8192)


def test_capacity_report():
    widths = (8, 12, 12, 12)
    lines = [fmt_row(("n", "theory", "measured", ""), widths), "-" * 44]
    for n in BUNDLE_SIZES:
        theory = expected_member_similarity(n)
        measured = measure_member_similarity(8192, n, trials=20, seed_or_rng=0)
        lines.append(fmt_row(
            (n, f"{theory:.4f}", f"{measured:.4f}", ""), widths))
    lines.append("")
    lines.append(fmt_row(("D", "capacity", "recall@cap/2", "recall@4cap"), widths))
    lines.append("-" * 50)
    for dim in DIMS:
        cap = capacity_estimate(dim, n_distractors=100)
        below = measure_recall_accuracy(dim, max(cap // 2, 2), trials=15,
                                        seed_or_rng=0)
        above = measure_recall_accuracy(dim, cap * 4, trials=15, seed_or_rng=0)
        lines.append(fmt_row(
            (dim, cap, f"{below:.2f}", f"{above:.2f}"), widths))
    lines.append("")
    lines.append("shape: member similarity follows sqrt(2/(pi n)); capacity "
                 "and recall grow with D (the Sec. 6.3 mechanism)")
    write_report("capacity", lines)


def test_member_similarity_matches_theory():
    for n in (9, 27):
        measured = measure_member_similarity(8192, n, trials=20, seed_or_rng=1)
        assert abs(measured - expected_member_similarity(n)) < 0.04


def test_recall_improves_with_dimension():
    n_items = capacity_estimate(512, 100) * 4
    low = measure_recall_accuracy(512, n_items, trials=15, seed_or_rng=0)
    high = measure_recall_accuracy(8192, n_items, trials=15, seed_or_rng=0)
    assert high >= low


def test_bundle_throughput(benchmark):
    """Benchmark: majority bundling of 64 hypervectors at D=4096."""
    from repro.core import bundle, random_hypervector
    hvs = random_hypervector(4096, 0, shape=(64,))
    benchmark(bundle, hvs)

"""Table 1: dataset inventory, plus generation-throughput benchmarks.

Regenerates the paper's dataset table (names, image sizes, class counts,
training-set sizes) from the registry, shows the reduced benchmark-scale
splits actually used, and benchmarks the synthetic generators that stand in
for the originals.
"""

import numpy as np

from common import CONFIG, fmt_row, write_report

from repro.datasets import SPECS, load, make_face_dataset, names


def test_table1_report(datasets):
    """Print Table 1 at paper scale alongside the generated splits."""
    widths = (8, 12, 4, 9, 10, 9)
    lines = [
        fmt_row(("name", "n (paper)", "k", "train", "train@run", "test@run"), widths),
        "-" * 60,
    ]
    for name in names():
        paper = SPECS[(name, "paper")]
        xtr, ytr, xte, yte = datasets[name]
        lines.append(fmt_row(
            (name, f"{paper.image_size}x{paper.image_size}", paper.n_classes,
             paper.train_size, len(xtr), len(xte)), widths,
        ))
        # sanity: generated data matches the configured bench contract
        assert ytr.max() + 1 == paper.n_classes
        assert xtr.shape[1] == CONFIG["datasets"][name]["size"]
    write_report("table1_datasets", lines)


def test_generated_labels_balanced(datasets):
    """Each generated split covers every class."""
    for name, (xtr, ytr, xte, yte) in datasets.items():
        k = int(ytr.max()) + 1
        assert len(np.unique(ytr)) == k, name
        assert len(np.unique(yte)) == k, name


def test_face_generation_throughput(benchmark):
    """Benchmark: images/second of the synthetic face generator."""
    result = benchmark(lambda: make_face_dataset(8, size=48, seed_or_rng=0))
    assert result[0].shape == (8, 48, 48)


def test_emotion_generation_throughput(benchmark):
    """Benchmark: images/second of the emotion generator."""
    from repro.datasets import make_emotion_dataset
    result = benchmark(lambda: make_emotion_dataset(7, size=48, seed_or_rng=0))
    assert result[0].shape == (7, 48, 48)

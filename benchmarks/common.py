"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and writes its
rows to ``benchmarks/results/<name>.txt`` (also echoed to stdout when pytest
runs with ``-s``).  Set ``REPRO_BENCH_SCALE=full`` for the larger
configurations; the default ``smoke`` scale keeps the whole harness in the
minutes range while preserving every qualitative shape.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark scale: "smoke" (default, laptop-minutes) or "full".
SCALE = os.environ.get("REPRO_BENCH_SCALE", "smoke")

#: Per-scale knobs used across benches.  ``datasets`` gives, per Table 1
#: task, the generated image size, split sizes and the dimensionality the
#: accuracy benches use for it (the 7-class task needs the full D=4k).
CONFIG = {
    "smoke": {
        "datasets": {
            # the 7-class task needs high dimensionality (Fig. 5a): D=8k
            "EMOTION": {"size": 48, "train": 105, "test": 49, "dim": 8192},
            "FACE1": {"size": 32, "train": 80, "test": 60, "dim": 2048},
            "FACE2": {"size": 32, "train": 80, "test": 60, "dim": 2048},
        },
        "dim": 2048,
        "dims_sweep": (512, 1024, 2048, 4096),
        "magnitude": "l1",
        "hd_epochs": 10,
        "dnn_hidden": (128, 128),
        "dnn_epochs": 30,
        "error_rates": (0.0, 0.02, 0.08, 0.14),
        "robust_dims": (1024, 4096),
        "fig2_dims": (512, 1024, 2048, 4096, 8192),
        "fig2_trials": 200,
    },
    "full": {
        "datasets": {
            "EMOTION": {"size": 48, "train": 280, "test": 140, "dim": 4096},
            "FACE1": {"size": 64, "train": 160, "test": 80, "dim": 4096},
            "FACE2": {"size": 48, "train": 200, "test": 100, "dim": 4096},
        },
        "dim": 4096,
        "dims_sweep": (1024, 2048, 4096, 8192, 10240),
        "magnitude": "l2_scaled",
        "hd_epochs": 20,
        "dnn_hidden": (256, 256),
        "dnn_epochs": 40,
        "error_rates": (0.0, 0.01, 0.02, 0.04, 0.08, 0.12, 0.14),
        "robust_dims": (1024, 4096, 10240),
        "fig2_dims": (512, 1024, 2048, 4096, 8192, 10240),
        "fig2_trials": 500,
    },
}[SCALE]


def write_report(name, lines):
    """Persist one benchmark's table to results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n=== {name} (scale={SCALE}) ===")
    print(text)
    return text


def write_json(name, payload):
    """Persist machine-readable results to results/<name>.json.

    ``payload`` should carry the run configuration alongside the measured
    rows (wall time, windows/s, backend, ...) so the perf trajectory can be
    diffed across commits; the scale knob is stamped in automatically.

    The payload is canonicalized first (keys stringified via a JSON
    round-trip, then sorted), so the committed file is byte-identical to
    re-encoding its own parse - ``tests/test_bench_results.py`` holds
    every committed result to that and to having a ``.txt`` twin from
    :func:`write_report`.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = json.loads(json.dumps(payload, sort_keys=True, default=float))
    payload.setdefault("scale", SCALE)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def fmt_row(cells, widths):
    """Fixed-width row formatting for the report tables."""
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))

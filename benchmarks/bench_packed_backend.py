"""Packed vs dense backend: throughput, cache footprint, accuracy gap.

The packed backend exists for the steady-state serving regime the engine's
LRU cache creates: once a scene's fields are cached (pyramid rescans,
tracking, parameter sweeps), a scan is assembly + classification, and
that is where the uint64 XOR/popcount path replaces the float loop.  This
bench pins the three claims on the Fig. 6 scene (96x96, window 24,
D=4096):

* **warm-scan throughput** - packed >= 2x dense at equal stride (cold
  scans are reported too; they are dominated by the backend-independent
  stochastic fields pass);
* **cache footprint** - packed scene entries are >= 6x smaller (the ~8x
  of the ISSUE minus bookkeeping that packing cannot shrink);
* **accuracy** - the dense/packed detection gap, quantified as window
  agreement plus per-backend precision/recall against the pasted faces
  (the packed path sign-quantizes per-cell histograms before bundling, so
  it is BinaryHDCEngine-faithful, not bit-identical to dense).

Plus the pyramid worker pool: detections must be identical at any worker
count (speedup is asserted only on multi-core machines).

Results land in ``benchmarks/results/packed_backend.{txt,json}``.
"""

import os
import time

import numpy as np
import pytest

from common import fmt_row, write_json, write_report

from repro.pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
from repro.pipeline.multiscale import PyramidDetector

DIM = 4096  # the acceptance point: the paper's D=4k sweet spot
WINDOW = 24
SCENE = 96
STRIDE = WINDOW // 2
FACE_SPOTS = ((0, 24), (48, 60))
WARM_REPS = 5


@pytest.fixture(scope="module")
def scene_truth():
    return make_scene(SCENE, FACE_SPOTS, window=WINDOW, seed_or_rng=7)


@pytest.fixture(scope="module")
def pipe():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


def _timed_scans(pipe, scene, backend):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                engine="shared", backend=backend)
    start = time.perf_counter()
    dmap = det.scan(scene)
    cold = time.perf_counter() - start
    warm_times = []
    for _ in range(WARM_REPS):
        start = time.perf_counter()
        rescan = det.scan(scene)
        warm_times.append(time.perf_counter() - start)
        assert np.array_equal(rescan.scores, dmap.scores)
    return det, dmap, cold, float(np.median(warm_times))


def _window_truth(truth, n_wy, n_wx):
    """Windows essentially coincident with a pasted face (>= 90% overlap).

    Half-covered neighbors are deliberately excluded: no backend fires on
    them, so counting them as positives would just depress every recall.
    """
    hits = np.zeros((n_wy, n_wx), dtype=bool)
    for iy in range(n_wy):
        for ix in range(n_wx):
            y, x = iy * STRIDE, ix * STRIDE
            for ty, tx, tw in truth:
                oy = max(0, min(y + WINDOW, ty + tw) - max(y, ty))
                ox = max(0, min(x + WINDOW, tx + tw) - max(x, tx))
                if oy * ox >= 0.9 * WINDOW * WINDOW:
                    hits[iy, ix] = True
    return hits


def _precision_recall(detections, hits):
    tp = float(np.logical_and(detections, hits).sum())
    precision = tp / max(float(detections.sum()), 1.0)
    recall = tp / max(float(hits.sum()), 1.0)
    return precision, recall


@pytest.fixture(scope="module")
def measurements(pipe, scene_truth):
    scene, truth = scene_truth
    out = {}
    for backend in ("dense", "packed"):
        out[backend] = _timed_scans(pipe, scene, backend)
    return out


def test_packed_backend_report(measurements, scene_truth):
    _, truth = scene_truth
    lines = [f"scene {SCENE}x{SCENE}, window {WINDOW}, stride {STRIDE}, "
             f"D={DIM}, warm = median of {WARM_REPS} cached rescans",
             f"{'backend':>8} {'cold_s':>8} {'warm_s':>8} {'warm win/s':>11} "
             f"{'cache MB':>9} {'precision':>10} {'recall':>7}"]
    rows = []
    hits = None
    for backend, (det, dmap, cold, warm) in measurements.items():
        n = dmap.scores.size
        if hits is None:
            hits = _window_truth(truth, *dmap.scores.shape)
        precision, recall = _precision_recall(dmap.detections, hits)
        cache_bytes = det.engine.cache_info()["bytes"]
        lines.append(f"{backend:>8} {cold:>8.3f} {warm:>8.4f} "
                     f"{n / warm:>11.1f} {cache_bytes / 1e6:>9.2f} "
                     f"{precision:>10.2f} {recall:>7.2f}")
        rows.append({
            "engine": "shared", "backend": backend, "stride": STRIDE,
            "windows": int(n), "cold_seconds": cold, "warm_seconds": warm,
            "windows_per_s_warm": n / warm, "cache_bytes": int(cache_bytes),
            "precision": precision, "recall": recall,
        })
    dense = measurements["dense"]
    packed = measurements["packed"]
    agreement = float(
        (dense[1].detections == packed[1].detections).mean())
    lines.append(f"dense/packed window agreement: {agreement:.3f}, "
                 f"warm speedup {dense[3] / packed[3]:.1f}x, "
                 f"cache shrink {dense[0].engine.cache_info()['bytes'] / packed[0].engine.cache_info()['bytes']:.1f}x")
    write_report("packed_backend", lines)
    write_json("packed_backend", {
        "config": {"scene": SCENE, "window": WINDOW, "stride": STRIDE,
                   "dim": DIM, "warm_reps": WARM_REPS},
        "rows": rows,
        "agreement": agreement,
        "warm_speedup": dense[3] / packed[3],
    })


def test_packed_warm_scan_at_least_2x_faster(measurements):
    dense_warm = measurements["dense"][3]
    packed_warm = measurements["packed"][3]
    assert packed_warm * 2.0 <= dense_warm, (
        f"packed warm {packed_warm:.4f}s vs dense warm {dense_warm:.4f}s")


def test_packed_cache_entries_6x_smaller(measurements):
    dense_bytes = measurements["dense"][0].engine.cache_info()["bytes"]
    packed_bytes = measurements["packed"][0].engine.cache_info()["bytes"]
    assert packed_bytes * 6 <= dense_bytes


def test_accuracy_gap_is_bounded(measurements, scene_truth):
    """The packed backend must still be a working detector on this scene."""
    _, truth = scene_truth
    _, dmap_d, _, _ = measurements["dense"]
    _, dmap_p, _, _ = measurements["packed"]
    hits = _window_truth(truth, *dmap_d.scores.shape)
    agreement = float((dmap_d.detections == dmap_p.detections).mean())
    assert agreement >= 0.6
    _, recall_p = _precision_recall(dmap_p.detections, hits)
    assert recall_p >= 0.5


def test_pyramid_workers_identical_scores(pipe, scene_truth):
    scene, _ = scene_truth
    times = {}
    results = {}
    for workers in (1, 4):
        det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                    engine="shared", backend="packed",
                                    workers=workers)
        pyr = PyramidDetector(det, scale_step=1.5, workers=workers)
        start = time.perf_counter()  # cold: level extraction overlaps
        results[workers] = pyr.detect(scene)
        times[workers] = time.perf_counter() - start
    assert results[1] == results[4]
    write_json("packed_pyramid_workers", {
        "config": {"scene": SCENE, "window": WINDOW, "stride": STRIDE,
                   "dim": DIM, "scale_step": 1.5, "backend": "packed"},
        "cold_seconds": {str(w): t for w, t in times.items()},
        "cpu_count": os.cpu_count(),
    })
    widths = (10, 14)
    lines = [f"packed pyramid level-parallel scan (scene {SCENE}px, "
             f"D={DIM}, {os.cpu_count()} cpus)",
             fmt_row(("workers", "cold seconds"), widths)]
    lines += [fmt_row((w, f"{t:.4f}"), widths)
              for w, t in sorted(times.items())]
    write_report("packed_pyramid_workers", lines)
    if (os.cpu_count() or 1) >= 2:
        # level scans overlap across threads; on a single-core runner the
        # pool is pure overhead, so the timing claim is multi-core only
        assert times[4] < times[1]

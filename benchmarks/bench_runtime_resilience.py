"""Chaos campaign for the resilient serving runtime.

Three scripted failure scenarios drive
:class:`repro.runtime.ResilientVideoDetector` end to end through
:func:`repro.runtime.run_chaos`:

* ``load_spike`` - a burst of injected per-frame contention above the
  budget; the degradation ladder must shed work (and ideally climb back
  after the burst) while served processing p95 stays inside the budget.
* ``stall_poison`` - a soft stall (cancellable), a hard stall (wedges
  the consumer; only a watchdog restart recovers), and poison frames of
  three kinds; the loop must survive with every stall recovered and
  every poison frame quarantined *without* contaminating the engine's
  scene cache.
* ``bit_faults`` - packed bit flips in the feature datapath plus a
  corrupted stored class model, the Table-2 robustness story running
  inside the serving loop.

Every scenario is gated (no crashes, stalls recovered, poison
quarantined + uncached, recall within tolerance of a clean run pinned at
the deepest rung used, processing p95 within budget) and the reports -
plus the truncated-dimension accuracy-vs-words curve behind the ladder's
``truncated`` rung - land in ``benchmarks/results/runtime_resilience.
{txt,json}``.

The per-frame latency budget is calibrated per machine (3x the clean
median over distinct frames), so the scenarios exercise the same control
behavior on a laptop and a loaded CI runner.
"""

import time

import pytest

from common import SCALE, fmt_row, write_json, write_report

from repro.datasets import make_face_dataset
from repro.datasets.synth import moving_face_sequence
from repro.pipeline import HDFacePipeline, PyramidDetector, SlidingWindowDetector
from repro.runtime import ChaosScenario, ResilientVideoDetector, run_chaos

DIM = 1024 if SCALE == "smoke" else 2048
SCENE = 64
WINDOW = 24
STRIDE = 8
N_FRAMES = 24 if SCALE == "smoke" else 48
MAX_RECALL_DROP = 0.05


@pytest.fixture(scope="module")
def pipe():
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def video():
    frames, truth = moving_face_sequence(SCENE, N_FRAMES, window=WINDOW,
                                         step=2, seed_or_rng=11)
    return frames, [[t] for t in truth]


def _detector(pipe):
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                backend="packed")
    return PyramidDetector(det, score_threshold=0.0)


@pytest.fixture(scope="module")
def budget(pipe, video):
    """3x the clean median full-rung frame time, on distinct frames."""
    frames, _ = video
    cal = _detector(pipe)
    samples = []
    for frame in frames[:3]:
        t0 = time.perf_counter()
        cal.detect(frame)
        samples.append(time.perf_counter() - t0)
    return 3.0 * sorted(samples)[len(samples) // 2]


def _factory(pipe, budget_s, stall_timeout):
    def make_runtime(ladder=None, budget=None):
        return ResilientVideoDetector(
            _detector(pipe), budget=budget if budget else budget_s,
            ladder=ladder, stall_timeout=stall_timeout,
            queue_size=4, policy="block", recover_after=4)
    return make_runtime


def _scenarios(budget_s, stall_timeout):
    n = N_FRAMES
    soft = 2.0 * stall_timeout   # > stall_timeout: cancel stage fires
    hard = 3.2 * stall_timeout   # > stall_timeout + grace: restart fires
    # served contention per spiked frame: with the full-rung detect cost
    # (~budget/3) on top it stays inside the budget, but it outpaces the
    # producer, so queue wait forces the ladder down until the cheap
    # degraded rungs drain the backlog
    spike = 0.5 * budget_s
    return {
        "load_spike": ChaosScenario(
            "load_spike",
            spikes={i: spike for i in range(n // 4, n // 2)},
            seed=0),
        "stall_poison": ChaosScenario(
            "stall_poison",
            stalls={n // 5: soft},
            hard_stalls={n // 2: hard},
            poison={n // 3: "nan", 2 * n // 3: "shape",
                    max(3 * n // 4, 3): "constant"},
            seed=1),
        "bit_faults": ChaosScenario(
            "bit_faults",
            fault_rate=0.001,
            model_fault_rate=0.001,
            seed=2),
    }


@pytest.fixture(scope="module")
def reports(pipe, video, budget):
    frames, truth = video
    stall_timeout = 1.5 * budget
    make_runtime = _factory(pipe, budget, stall_timeout)
    out = {}
    # producer pacing: at the clean full-rung service rate (~budget/3)
    # the loop is stable at rung 0 absent chaos, so the spike/stall
    # trajectories isolate the injected failure rather than intake burst.
    # bit_faults gets extra headroom: fault-armed frames bypass the
    # engine's scene cache (corrupted features are never cached), so
    # every frame pays a cold extraction; the slower pace keeps the run
    # at the full rung and the recall gate then measures pure fault
    # impact on the holographic representation, not ladder degradation.
    paces = {"bit_faults": 0.6 * budget}
    for name, scenario in _scenarios(budget, stall_timeout).items():
        t0 = time.perf_counter()
        report = run_chaos(make_runtime, frames, truth, scenario,
                           pace=paces.get(name, budget / 3.0),
                           max_recall_drop=MAX_RECALL_DROP,
                           p95_tolerance=1.0)
        report["wall_seconds"] = time.perf_counter() - t0
        out[name] = report
    return out


@pytest.fixture(scope="module")
def truncation_curve(pipe):
    """Accuracy of word-prefix classification vs words used (the rung-2
    dial), measured on held-out face/non-face windows."""
    from repro.pipeline.engine import SharedFeatureEngine

    xte, yte = make_face_dataset(80, size=WINDOW, seed_or_rng=5)
    engine = SharedFeatureEngine(pipe.extractor, backend="packed")
    queries = [engine.window_queries(img, [(0, 0)], WINDOW)[0] for img in xte]
    import numpy as np
    queries = np.stack(queries)
    det = SlidingWindowDetector(pipe, window=WINDOW, backend="packed")
    model = det.packed_model()
    full_pred = model.predict(queries)
    curve = []
    total = model.n_words
    words_grid = sorted({max(1, round(total * f))
                         for f in (0.125, 0.25, 0.375, 0.5, 0.75, 1.0)})
    for words in words_grid:
        trunc = model.truncated(words)
        pred = trunc.predict(queries)
        curve.append({
            "words": int(words),
            "dim": int(trunc.dim),
            "fraction": words / total,
            "accuracy": float((pred == yte).mean()),
            "matches_full": bool((pred == full_pred).all()),
        })
    assert curve[-1]["matches_full"], (
        "full-prefix truncated model must be bitwise-consistent with the "
        "full-dimension model")
    return {"dim": DIM, "n_words": int(total),
            "full_accuracy": float((full_pred == yte).mean()),
            "points": curve}


class TestChaosGates:
    def test_load_spike_survives_and_degrades(self, reports):
        r = reports["load_spike"]
        assert r["passed"], r["gates"]
        assert r["deepest_rung"] > 0, "the spike must shed at least one rung"
        assert r["stats"]["incidents"].get("rung_degraded", 0) >= 1

    def test_stall_poison_recovers_everything(self, reports):
        r = reports["stall_poison"]
        assert r["passed"], r["gates"]
        wd = r["stats"]["watchdog"]
        assert wd["cancels"] >= 1, "the soft stall must be cancelled"
        assert wd["restarts"] >= 1, "the hard stall must restart the consumer"
        assert r["stats"]["quarantined"] == 3
        assert r["stats"]["crashes"] == 0

    def test_bit_faults_within_recall_bound(self, reports):
        r = reports["bit_faults"]
        assert r["passed"], r["gates"]
        counts = r["incidents"]["counts"]
        assert counts.get("fault_injected", 0) == 2  # datapath + model

    def test_all_scenarios_zero_crashes(self, reports):
        assert all(r["stats"]["crashes"] == 0 for r in reports.values())


class TestTruncationCurve:
    def test_monotone_tail_and_exact_head(self, truncation_curve):
        pts = truncation_curve["points"]
        # the holographic dial: more words never ends up worse overall
        assert pts[-1]["accuracy"] >= pts[0]["accuracy"]
        assert pts[-1]["accuracy"] == truncation_curve["full_accuracy"]


def test_write_results(reports, truncation_curve, budget):
    widths = (14, 8, 8, 10, 10, 10, 10, 8)
    lines = [fmt_row(("scenario", "passed", "frames", "recall", "clean",
                      "proc_p95", "deepest", "crashes"), widths)]
    for name, r in reports.items():
        lines.append(fmt_row((
            name, r["passed"], r["stats"]["frames"],
            f"{r['recall_chaos']:.3f}", f"{r['recall_clean']:.3f}",
            f"{r['stats']['proc_p95'] * 1e3:.1f}ms",
            r["deepest_rung_name"], r["stats"]["crashes"]), widths))
    lines.append("")
    lines.append(fmt_row(("words", "dim", "fraction", "accuracy"),
                         (8, 8, 10, 10)))
    for p in truncation_curve["points"]:
        lines.append(fmt_row((p["words"], p["dim"], f"{p['fraction']:.3f}",
                              f"{p['accuracy']:.3f}"), (8, 8, 10, 10)))
    write_report("runtime_resilience", lines)
    write_json("runtime_resilience", {
        "config": {"dim": DIM, "scene": SCENE, "window": WINDOW,
                   "stride": STRIDE, "n_frames": N_FRAMES,
                   "budget_seconds": budget,
                   "max_recall_drop": MAX_RECALL_DROP},
        "scenarios": reports,
        "truncation_curve": truncation_curve,
    })

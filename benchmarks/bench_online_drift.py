"""Online-adaptation benchmark: guarded continual learning under drift.

The self-healing story of the online-learning stack, gated end to end:

* **Drift gate** - a labeled drifting patch stream
  (:func:`repro.datasets.drifting_face_patches`: fresh face identities
  every step, shrinking to half the window and defocusing along a
  monotone ramp) is classified by two copies of the same trained model.
  The *frozen* copy's recall must decay along the ramp (the drift is
  real); the *adaptive* copy - an
  :class:`~repro.reliability.AdaptiveGuardedModel` fed its own confident
  predictions through the same drift-gated snapshot/propose/rollback
  discipline :class:`~repro.runtime.adapt.OnlineAdapter` uses in the
  serving loop - must hold final-quarter recall at or above
  ``ADAPTIVE_FLOOR`` while the frozen copy falls below
  ``FROZEN_CEILING``.

* **Specificity gate** - after riding the ramp, the adapted model must
  still *reject* non-face clutter: self-training on confident positives
  must not collapse the face class onto everything.

* **Static-serving gate** - zero regression when nothing drifts: a
  serving runtime with ``adapt=True`` run over a static-appearance
  moving-face clip must propose nothing, leave the model rows bitwise
  untouched, and serve detections identical to a frozen runtime's.

The model is trained in the *binary query domain* (``fit_queries`` on
the engine's packed window queries): the engine sign-quantizes per
(cell, bin) before bundling, so a dense-trained classifier and the
packed queries it serves against live in measurably different feature
distributions - domain alignment is what gives the clean-stream margins
the headroom the drift signal consumes.

Results land in ``benchmarks/results/online_drift.{txt,json}``.
"""

import numpy as np
import pytest

from common import SCALE, fmt_row, write_json, write_report

from repro.core.hypervector import as_rng, unpack_bits
from repro.datasets import (
    drifting_face_patches,
    make_face_dataset,
    moving_face_sequence,
)
from repro.datasets.faces import draw_nonface
from repro.learning.online import OnlineUpdate
from repro.pipeline import HDFacePipeline, PyramidDetector, SlidingWindowDetector
from repro.reliability import AdaptiveGuardedModel
from repro.runtime import ResilientVideoDetector
from repro.runtime.adapt import DriftDetector
from repro.runtime.checkpoint import load_model_state, model_state

DIM = 2048 if SCALE == "smoke" else 4096
WINDOW = 24
STRIDE = 8
TRAIN = 96 if SCALE == "smoke" else 160
N_STEPS = 48 if SCALE == "smoke" else 64
BATCH = 6 if SCALE == "smoke" else 8
WARMUP = N_STEPS // 4          # undrifted steps before the ramp starts
MIN_SCALE = 0.5                # the face shrinks to half the window ...
MAX_BLUR = 1.5                 # ... and defocuses up to this sigma
SCENE = 48
N_FRAMES = 16 if SCALE == "smoke" else 32

#: Guard / drift configuration under test.  Small ``max_planes`` gives
#: the online counters fast exponential forgetting (old appearance
#: decays as new appearance accumulates); ``max_step_frac`` bounds how
#: far any single committed update may move a class row.
GUARD = dict(prior=4, max_planes=5, max_step_frac=0.15)
DRIFT = dict(window=6, warmup=6, drift_threshold=0.08, freeze_threshold=0.95)

ADAPTIVE_FLOOR = 0.9     # final-quarter recall with guarded updates
FROZEN_CEILING = 0.5     # final-quarter recall without any updates
SPECIFICITY_FLOOR = 0.9  # non-face rejection after riding the ramp


@pytest.fixture(scope="module")
def aligned():
    """Detector whose classifier is trained in the packed query domain."""
    xtr, ytr = make_face_dataset(TRAIN, size=WINDOW, seed_or_rng=0)
    pipe = HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                backend="packed")
    queries = _patch_queries(det, list(xtr))
    pipe.fit_queries(unpack_bits(queries, DIM).astype(np.float32), ytr)
    return det


def _patch_queries(det, patches):
    """Each window-sized patch as one packed engine query."""
    return np.concatenate([det.engine.window_queries(p, [(0, 0)], WINDOW)
                           for p in patches])


def _margins(model, queries, face):
    sims = model.similarities(queries)
    others = np.delete(sims, face, axis=1).max(axis=1)
    return sims[:, face] - others


def _quarters(values):
    n = len(values)
    return [float(np.mean(values[q * n // 4:(q + 1) * n // 4]))
            for q in range(4)]


def _run_stream(det, adapt):
    """Classify the drifting stream; optionally self-train through the guard.

    The adaptive arm mirrors :class:`repro.runtime.adapt.OnlineAdapter`
    exactly - margin drift signal, drift-gated proposals, snapshot /
    propose / rollback - but feeds the model its own confident positives
    instead of tracker output, isolating the classifier-level question:
    can guarded self-training follow the ramp?
    """
    face = det.face_class
    batches, progress = drifting_face_patches(
        N_STEPS, BATCH, size=WINDOW, warmup=WARMUP, min_scale=MIN_SCALE,
        max_blur=MAX_BLUR, seed_or_rng=7)
    model = AdaptiveGuardedModel(det.packed_model(), seed_or_rng=0, **GUARD)
    drift = DriftDetector(**DRIFT)
    recalls, applied, rejected, rollbacks = [], 0, 0, 0
    for i, batch in enumerate(batches):
        queries = _patch_queries(det, batch)
        margins = _margins(model, queries, face)
        recalls.append(float(np.mean(margins > 0)))
        if not adapt:
            continue
        state = drift.observe(float(np.mean(margins)))
        confident = queries[margins > 0]
        if state == "drifting" and len(confident):
            snapshot = model_state(model)
            verdict = model.propose(OnlineUpdate(face, confident, frame=i))
            if verdict["applied"]:
                applied += 1
            else:
                rejected += 1
                load_model_state(model, snapshot)
                rollbacks += 1
    return {
        "recalls": recalls,
        "quarters": _quarters(recalls),
        "progress": progress,
        "applied": applied,
        "rejected": rejected,
        "rollbacks": rollbacks,
        "drift": drift.stats(),
        "model": model,
    }


@pytest.fixture(scope="module")
def frozen_run(aligned):
    return _run_stream(aligned, adapt=False)


@pytest.fixture(scope="module")
def adaptive_run(aligned):
    return _run_stream(aligned, adapt=True)


def _make_runtime(det, adapt):
    from repro.pipeline.stream import TemporalTracker

    return ResilientVideoDetector(
        PyramidDetector(det, score_threshold=0.0), budget=10.0,
        tracker=TemporalTracker(min_hits=1), stall_timeout=None,
        queue_size=8, policy="block", adapt=adapt,
        adapt_kwargs={"seed_or_rng": 0} if adapt else None)


@pytest.fixture(scope="module")
def static_serving(aligned):
    """Frozen vs adaptive serving runs over a static-appearance clip."""
    frames, _ = moving_face_sequence(SCENE, N_FRAMES, window=WINDOW, step=2,
                                     seed_or_rng=11)
    adaptive = _make_runtime(aligned, adapt=True)
    frozen = _make_runtime(aligned, adapt=False)
    clean_rows = adaptive.adapter.model.replicas.copy()
    results = {
        "adaptive": list(adaptive.run(frames)),
        "frozen": list(frozen.run(frames)),
        "clean_rows": clean_rows,
        "adaptive_rt": adaptive,
    }
    return results


class TestDriftGate:
    def test_frozen_recall_decays(self, frozen_run):
        quarters = frozen_run["quarters"]
        assert quarters[0] > ADAPTIVE_FLOOR      # the task starts solved
        assert quarters[-1] < FROZEN_CEILING, quarters

    def test_adaptive_recall_holds(self, adaptive_run):
        quarters = adaptive_run["quarters"]
        assert quarters[-1] >= ADAPTIVE_FLOOR, quarters

    def test_adaptation_beats_frozen_late_in_the_ramp(self, frozen_run,
                                                      adaptive_run):
        for q in (2, 3):
            assert adaptive_run["quarters"][q] >= frozen_run["quarters"][q]

    def test_updates_were_committed_through_the_guard(self, adaptive_run):
        assert adaptive_run["applied"] >= 1
        # nothing on this clean (unpoisoned) stream should be vetoed
        assert adaptive_run["rejected"] == 0
        assert adaptive_run["rollbacks"] == 0

    def test_drift_detector_saw_the_ramp(self, adaptive_run):
        kinds = {(a, b) for _, a, b in adaptive_run["drift"]["transitions"]}
        assert ("stable", "drifting") in kinds
        # adaptation kept margins off the floor: never escalated to frozen
        assert all(b != "frozen" for _, _, b in
                   adaptive_run["drift"]["transitions"])


class TestSpecificityGate:
    def test_adapted_model_still_rejects_clutter(self, aligned, adaptive_run):
        rng = as_rng(99)
        nonfaces = [draw_nonface(WINDOW, rng) for _ in range(24)]
        queries = _patch_queries(aligned, nonfaces)
        margins = _margins(adaptive_run["model"], queries, aligned.face_class)
        specificity = float(np.mean(margins < 0))
        assert specificity >= SPECIFICITY_FLOOR, specificity


class TestStaticServingGate:
    def test_detections_bitwise_match_frozen(self, static_serving):
        pairs = zip(static_serving["adaptive"], static_serving["frozen"])
        for a, f in pairs:
            assert a.detections == f.detections
            assert a.mode == f.mode

    def test_no_proposals_and_model_untouched(self, static_serving):
        stats = static_serving["adaptive_rt"].stats()["adapt"]
        assert stats["proposals"] == 0
        assert stats["applied"] == 0
        model = static_serving["adaptive_rt"].adapter.model
        assert np.array_equal(model.replicas, static_serving["clean_rows"])


def test_write_results(frozen_run, adaptive_run, static_serving, aligned):
    widths = (9, 10, 8, 8)
    lines = [
        f"Online drift adaptation (scale={SCALE}, dim={DIM}, "
        f"steps={N_STEPS}x{BATCH}, warmup={WARMUP})",
        f"ramp: shrink to {MIN_SCALE} of window, defocus to "
        f"sigma {MAX_BLUR}",
        "",
        fmt_row(("quarter", "progress", "frozen", "adaptive"), widths),
    ]
    for q in range(4):
        seg = slice(q * N_STEPS // 4, (q + 1) * N_STEPS // 4)
        prog = float(np.mean(frozen_run["progress"][seg]))
        lines.append(fmt_row(
            (f"Q{q + 1}", f"{prog:.2f}", f"{frozen_run['quarters'][q]:.3f}",
             f"{adaptive_run['quarters'][q]:.3f}"), widths))
    drift = adaptive_run["drift"]
    model_stats = adaptive_run["model"].stats()
    lines += [
        "",
        f"guarded updates: applied={adaptive_run['applied']} "
        f"rejected={adaptive_run['rejected']} "
        f"rollbacks={adaptive_run['rollbacks']} "
        f"counter_decays={model_stats['counter_decays']}",
        f"drift detector: state={drift['state']} "
        f"shift={drift['shift']:.3f} "
        f"transitions={len(drift['transitions'])}",
        f"static serving: frames={N_FRAMES} proposals=0 "
        "detections bitwise-equal frozen",
    ]
    write_report("online_drift", lines)
    write_json("online_drift", {
        "dim": DIM,
        "steps": N_STEPS,
        "batch": BATCH,
        "warmup": WARMUP,
        "min_scale": MIN_SCALE,
        "max_blur": MAX_BLUR,
        "guard": GUARD,
        "drift_detector": DRIFT,
        "frozen_quarters": frozen_run["quarters"],
        "adaptive_quarters": adaptive_run["quarters"],
        "applied": adaptive_run["applied"],
        "rejected": adaptive_run["rejected"],
        "rollbacks": adaptive_run["rollbacks"],
        "counter_decays": model_stats["counter_decays"],
        "drift": {k: v for k, v in drift.items() if k != "transitions"},
        "static_frames": N_FRAMES,
    })

"""Ablations of HDFace's design choices (beyond the paper's own figures).

Quantifies the decisions DESIGN.md calls out:

* **decorrelated squaring** - the paper's ``V (x) V`` with a shared sign
  stream degenerates to 1; the rotation-decorrelated square is what makes
  the magnitude stage work.
* **gamma compression** - square-root compression of magnitudes/counts is
  what lifts query similarity above the stochastic noise floor.
* **adaptive learning** - novelty-weighted + iterative refinement versus
  plain single-pass bundling.
* **packed binary backend** - XOR+popcount Hamming kernel versus the dense
  int8 path (the FPGA-native representation).
"""

import numpy as np
import pytest

from common import CONFIG, fmt_row, write_report

from repro.core import (
    StochasticCodec,
    pack_bits,
    packed_hamming_distance,
    random_hypervector,
)
from repro.learning import HDCClassifier
from repro.pipeline import HDFacePipeline


def test_ablation_decorrelated_squaring():
    """Naive self-product claims a^2 = 1; decorrelated squaring is correct."""
    codec = StochasticCodec(8192, 0)
    values = np.linspace(-0.9, 0.9, 30)
    hv = codec.construct(values)
    naive = codec.decode(codec.multiply(hv, hv))
    correct = codec.decode(codec.square(hv))
    naive_err = float(np.abs(naive - values**2).mean())
    correct_err = float(np.abs(correct - values**2).mean())
    lines = [
        f"naive V*V mean error        : {naive_err:.3f}",
        f"decorrelated square error   : {correct_err:.3f}",
    ]
    write_report("ablation_squaring", lines)
    assert naive_err > 10 * correct_err


def test_ablation_gamma_compression(face2):
    """Gamma compression should help (or at least not hurt) accuracy."""
    xtr, ytr, xte, yte = face2
    k = int(ytr.max()) + 1
    accs = {}
    for gamma in (False, True):
        pipe = HDFacePipeline(k, dim=CONFIG["dim"], cell_size=8,
                              magnitude="l1", gamma=gamma,
                              epochs=CONFIG["hd_epochs"], seed_or_rng=0)
        accs[gamma] = pipe.fit(xtr, ytr).score(xte, yte)
    lines = [
        f"gamma off : {accs[False]:.3f}",
        f"gamma on  : {accs[True]:.3f}",
    ]
    write_report("ablation_gamma", lines)
    assert accs[True] >= accs[False] - 0.08


def test_ablation_adaptive_learning(face2):
    """Adaptive refinement versus plain single-pass bundling."""
    xtr, ytr, xte, yte = face2
    k = int(ytr.max()) + 1
    pipe = HDFacePipeline(k, dim=CONFIG["dim"], cell_size=8,
                          magnitude=CONFIG["magnitude"],
                          epochs=CONFIG["hd_epochs"], seed_or_rng=0)
    qtr = pipe.extract(xtr)
    qte = pipe.extract(xte)
    scores = {}
    for label, kwargs in (
        ("single-pass plain", dict(epochs=0, adaptive=False)),
        ("single-pass adaptive", dict(epochs=0, adaptive=True)),
        ("adaptive + refinement", dict(epochs=CONFIG["hd_epochs"], adaptive=True)),
    ):
        clf = HDCClassifier(k, seed_or_rng=0, **kwargs).fit(qtr, ytr)
        scores[label] = clf.score(qte, yte)
    widths = (24, 10)
    lines = [fmt_row(("configuration", "accuracy"), widths), "-" * 36]
    for label, acc in scores.items():
        lines.append(fmt_row((label, f"{acc:.3f}"), widths))
    write_report("ablation_adaptive", lines)
    assert scores["adaptive + refinement"] >= scores["single-pass plain"] - 0.05


def test_ablation_packed_backend_equivalence():
    """Packed XOR+popcount Hamming equals the dense computation."""
    rng = np.random.default_rng(0)
    a = random_hypervector(4096, rng, shape=(32,))
    b = random_hypervector(4096, rng, shape=(32,))
    dense = (a != b).sum(axis=1)
    packed = packed_hamming_distance(pack_bits(a), pack_bits(b))
    assert (dense == packed).all()


def test_packed_hamming_throughput(benchmark):
    """Benchmark: packed Hamming kernel (the FPGA-native similarity)."""
    rng = np.random.default_rng(0)
    a = pack_bits(random_hypervector(4096, rng, shape=(256,)))
    b = pack_bits(random_hypervector(4096, rng))
    benchmark(packed_hamming_distance, a, b)


def test_dense_hamming_throughput(benchmark):
    """Benchmark: dense int8 Hamming for comparison with the packed path."""
    rng = np.random.default_rng(0)
    a = random_hypervector(4096, rng, shape=(256,))
    b = random_hypervector(4096, rng)
    benchmark(lambda: (a != b).sum(axis=1))

"""Shared fixtures for the benchmark harness.

Expensive artifacts (datasets, trained pipelines, extracted features) are
session-scoped and reused across benches so the harness regenerates every
table and figure in one pytest invocation.
"""

import numpy as np
import pytest

from common import CONFIG

from repro.pipeline import HOGPipeline


@pytest.fixture(autouse=True)
def _benchmark_everywhere(benchmark):
    """Pull the ``benchmark`` fixture into every test in this directory.

    The harness is meant to be driven as ``pytest benchmarks/
    --benchmark-only``; pytest-benchmark would skip the table-generating
    tests (which measure correctness/shape, not time) because they do not
    request the fixture themselves.  Depending on it here keeps the whole
    harness - reports and timings - in one invocation.
    """
    return benchmark


@pytest.fixture(scope="session")
def datasets():
    """All three Table 1 task analogs at the configured bench sizes."""
    from repro.datasets import make_emotion_dataset, make_face_dataset

    out = {}
    for name, spec in CONFIG["datasets"].items():
        maker = make_emotion_dataset if name == "EMOTION" else make_face_dataset
        xtr, ytr = maker(spec["train"], size=spec["size"], seed_or_rng=0)
        xte, yte = maker(spec["test"], size=spec["size"], seed_or_rng=1)
        out[name] = (xtr, ytr, xte, yte)
    return out


@pytest.fixture(scope="session")
def face2(datasets):
    """The FACE2 split, the workhorse binary task."""
    return datasets["FACE2"]


@pytest.fixture(scope="session")
def hog_features(datasets):
    """Classic HOG features per dataset (shared by every baseline)."""
    feats = {}
    for name, (xtr, ytr, xte, yte) in datasets.items():
        pipe = HOGPipeline("svm", int(ytr.max()) + 1, image_size=xtr.shape[1])
        feats[name] = (pipe.features(xtr), ytr, pipe.features(xte), yte)
    return feats

"""Figure 6: sliding-window detection maps at different dimensionalities.

Builds a composite scene (clutter background + faces at known positions),
scans it with HDFace detectors at low and high D, renders the detection
maps, and scores them against ground truth.  Expected shape: the low-D
detector mispredicts windows that the D>=4k detector gets right (the
paper's blue-box comparison), i.e. window-level accuracy improves with D.
"""

import numpy as np
import pytest

from common import CONFIG, write_report

from repro.pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
from repro.viz import ascii_map, render_detection, write_pgm

WINDOW = 24
SCENE = 96
FACE_SPOTS = ((0, 24), (48, 60))


@pytest.fixture(scope="module")
def scene():
    return make_scene(SCENE, FACE_SPOTS, window=WINDOW, seed_or_rng=7)


@pytest.fixture(scope="module")
def train_set():
    from repro.datasets import make_face_dataset
    from common import SCALE
    n = 96 if SCALE == "smoke" else 200
    return make_face_dataset(n, size=WINDOW, seed_or_rng=0)


def _truth_map(grid, stride, truth):
    """Window-level ground truth: True where a window aligns with a face."""
    out = np.zeros(grid, dtype=bool)
    for iy in range(grid[0]):
        for ix in range(grid[1]):
            y, x = iy * stride, ix * stride
            for fy, fx, fw in truth:
                overlap_y = max(0, min(y + WINDOW, fy + fw) - max(y, fy))
                overlap_x = max(0, min(x + WINDOW, fx + fw) - max(x, fx))
                if overlap_y * overlap_x >= 0.6 * fw * fw:
                    out[iy, ix] = True
    return out


@pytest.fixture(scope="module")
def detection_maps(scene, train_set):
    scene_img, truth = scene
    xtr, ytr = train_set
    maps = {}
    for dim in CONFIG["robust_dims"]:
        pipe = HDFacePipeline(2, dim=dim, cell_size=8,
                              magnitude=CONFIG["magnitude"],
                              epochs=CONFIG["hd_epochs"], seed_or_rng=0)
        pipe.fit(xtr, ytr)
        det = SlidingWindowDetector(pipe, window=WINDOW, stride=WINDOW // 2,
                                    engine="shared")
        maps[dim] = det.scan(scene_img)
    return maps, truth, scene_img


def test_fig6_detection_report(detection_maps, tmp_path_factory):
    maps, truth, scene_img = detection_maps
    out_dir = tmp_path_factory.mktemp("fig6")
    lines = []
    accs = {}
    for dim, dmap in maps.items():
        truth_map = _truth_map(dmap.detections.shape, dmap.stride, truth)
        acc = float((dmap.detections == truth_map).mean())
        accs[dim] = acc
        lines.append(f"D={dim}: window-level accuracy {acc:.3f}")
        lines.append("detections:")
        lines.append(ascii_map(dmap.detections))
        lines.append("ground truth:")
        lines.append(ascii_map(truth_map))
        lines.append("")
        write_pgm(out_dir / f"detection_D{dim}.pgm",
                  render_detection(scene_img, dmap))
    lines.append("paper shape: low-D mispredicts windows that D>=4k gets right")
    write_report("fig6_detection_maps", lines)
    assert (out_dir / f"detection_D{CONFIG['robust_dims'][0]}.pgm").exists()


def test_high_dim_at_least_as_accurate(detection_maps):
    maps, truth, _ = detection_maps
    dims = sorted(maps)
    accs = {}
    for dim in dims:
        dmap = maps[dim]
        truth_map = _truth_map(dmap.detections.shape, dmap.stride, truth)
        accs[dim] = float((dmap.detections == truth_map).mean())
    assert accs[dims[-1]] >= accs[dims[0]] - 0.05


def test_faces_score_above_background(detection_maps):
    maps, truth, _ = detection_maps
    dmap = maps[max(maps)]
    truth_map = _truth_map(dmap.detections.shape, dmap.stride, truth)
    if truth_map.any() and (~truth_map).any():
        assert dmap.scores[truth_map].mean() > dmap.scores[~truth_map].mean()


@pytest.mark.parametrize("engine", ["shared", "legacy"])
def test_scan_throughput(benchmark, detection_maps, scene, engine):
    """Benchmark: full-scene scan at the smallest configured D, per engine.

    See bench_detector_throughput for the systematic shared-vs-legacy
    comparison across strides; this is the one-number Fig. 6 smoke timing.
    """
    scene_img, _ = scene
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(16, size=WINDOW, seed_or_rng=0)
    pipe = HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
                          epochs=3, seed_or_rng=0).fit(xtr, ytr)
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=WINDOW,
                                engine=engine)
    benchmark.pedantic(det.scan, args=(scene_img,), rounds=1, iterations=1)

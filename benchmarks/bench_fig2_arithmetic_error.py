"""Figure 2: relative error of the stochastic primitives vs dimensionality.

Regenerates the three panels (construction, average, multiplication) plus
the square-root and division series, checks the ``1/sqrt(D)`` decay the
figure shows, and benchmarks the primitive throughput.
"""

import numpy as np

from common import CONFIG, fmt_row, write_report

from repro.core import StochasticCodec
from repro.core.analysis import error_vs_dimension

OPERATIONS = ("construction", "average", "multiplication", "sqrt", "divide")


def test_fig2_error_series():
    """Print measured mean-absolute error per operation per dimensionality."""
    dims = CONFIG["fig2_dims"]
    trials = CONFIG["fig2_trials"]
    series = {
        op: error_vs_dimension(dims, op, trials=max(trials // (4 if op in ("sqrt", "divide") else 1), 20), seed=0)
        for op in OPERATIONS
    }
    widths = (16,) + (10,) * len(dims)
    lines = [fmt_row(("operation",) + tuple(f"D={d}" for d in dims), widths),
             "-" * (16 + 12 * len(dims))]
    for op in OPERATIONS:
        lines.append(fmt_row(
            (op,) + tuple(f"{series[op][d]:.4f}" for d in dims), widths))
    lines.append("")
    lines.append("paper shape: error decreases with D for every operation")
    write_report("fig2_arithmetic_error", lines)

    # The figure's claim: monotone decay (allowing small-sample jitter on
    # the iterative ops) and roughly 1/sqrt(D) scaling for the core three.
    for op in ("construction", "average", "multiplication"):
        errs = [series[op][d] for d in dims]
        assert errs[-1] < errs[0] / 2, op
    ratio = series["construction"][dims[0]] / series["construction"][dims[-1]]
    expected = np.sqrt(dims[-1] / dims[0])
    assert 0.4 * expected < ratio < 2.5 * expected


def test_construction_throughput(benchmark):
    """Benchmark: batched construction of 1k values at D=4096."""
    codec = StochasticCodec(4096, 0)
    values = np.linspace(-1, 1, 1000)
    benchmark(codec.construct, values)


def test_multiplication_throughput(benchmark):
    """Benchmark: batched stochastic multiplication at D=4096."""
    codec = StochasticCodec(4096, 0)
    a = codec.construct(np.linspace(-1, 1, 1000))
    b = codec.construct(np.linspace(1, -1, 1000))
    benchmark(codec.multiply, a, b)


def test_sqrt_throughput(benchmark):
    """Benchmark: batched binary-search square root at D=4096."""
    codec = StochasticCodec(4096, 0)
    a = codec.construct(np.linspace(0, 1, 256))
    benchmark(codec.sqrt, a, 8)

"""Figure 4: classification accuracy of HDFace vs DNN vs SVM on all datasets.

Four systems per dataset, exactly the paper's comparison:

* ``HDC (orig-HOG)``  - classic HOG + nonlinear encoder + HDC (config 1);
* ``HDFace (stoch)``  - HOG fully in hyperspace + HDC (config 2);
* ``DNN``             - classic HOG + MLP;
* ``SVM``             - classic HOG + linear SVM.

Expected shape: HDC-based systems competitive with (or better than) DNN and
SVM, and the stochastic-HOG configuration within a few points of the
original-space configuration ("the same quality of detection").
"""

import numpy as np
import pytest

from common import CONFIG, fmt_row, write_report

from repro.learning import HDCClassifier, LinearSVM, MLPClassifier, NonlinearEncoder
from repro.pipeline import HDFacePipeline

SYSTEMS = ("HDC(orig-HOG)", "HDFace(stoch)", "DNN", "SVM")


@pytest.fixture(scope="module")
def accuracy_table(datasets, hog_features):
    table = {}
    for name, (xtr, ytr, xte, yte) in datasets.items():
        k = int(ytr.max()) + 1
        ftr, _, fte, _ = hog_features[name]
        row = {}

        dim = CONFIG["datasets"][name]["dim"]
        enc = NonlinearEncoder(dim, ftr.shape[1], seed_or_rng=0)
        hdc = HDCClassifier(k, epochs=20, seed_or_rng=0).fit(enc.encode(ftr), ytr)
        row["HDC(orig-HOG)"] = hdc.score(enc.encode(fte), yte)

        pipe = HDFacePipeline(k, dim=dim, cell_size=8,
                              magnitude=CONFIG["magnitude"],
                              epochs=CONFIG["hd_epochs"], seed_or_rng=0)
        pipe.fit(xtr, ytr)
        row["HDFace(stoch)"] = pipe.score(xte, yte)

        dnn = MLPClassifier(ftr.shape[1], k, hidden=CONFIG["dnn_hidden"],
                            epochs=CONFIG["dnn_epochs"], seed_or_rng=0).fit(ftr, ytr)
        row["DNN"] = dnn.score(fte, yte)

        svm = LinearSVM(ftr.shape[1], k, epochs=20, seed_or_rng=0).fit(ftr, ytr)
        row["SVM"] = svm.score(fte, yte)
        table[name] = row
    return table


def test_fig4_report(accuracy_table):
    """Print the Fig. 4 grouped-bar data as a table."""
    widths = (8,) + (15,) * len(SYSTEMS)
    lines = [fmt_row(("dataset",) + SYSTEMS, widths), "-" * 70]
    for name, row in accuracy_table.items():
        lines.append(fmt_row(
            (name,) + tuple(f"{row[s]:.3f}" for s in SYSTEMS), widths))
    means = {s: np.mean([r[s] for r in accuracy_table.values()]) for s in SYSTEMS}
    lines.append("-" * 70)
    lines.append(fmt_row(
        ("mean",) + tuple(f"{means[s]:.3f}" for s in SYSTEMS), widths))
    lines.append("")
    lines.append("paper shape: HDC >= DNN >= SVM on average; stochastic HOG "
                 "within a few points of original-space HOG")
    write_report("fig4_accuracy", lines)


def test_every_system_above_chance(accuracy_table, datasets):
    for name, row in accuracy_table.items():
        k = int(datasets[name][1].max()) + 1
        for system, acc in row.items():
            assert acc > 1.0 / k + 0.05, f"{system} on {name}: {acc}"


def test_hdc_competitive_with_dnn(accuracy_table):
    """Paper: HDC accuracy is on average >= DNN's (3.9 points in the paper);
    we require it within a small margin in the reduced setting."""
    hdc = np.mean([r["HDC(orig-HOG)"] for r in accuracy_table.values()])
    dnn = np.mean([r["DNN"] for r in accuracy_table.values()])
    assert hdc > dnn - 0.08


def test_stochastic_hog_matches_original(accuracy_table):
    """Paper: 'our stochastic hyperdimensional feature extraction provides
    the same quality of detection as feature extraction in original space'
    - on the binary tasks, where the reduced-scale bench has headroom."""
    for name, row in accuracy_table.items():
        if name == "EMOTION":
            continue  # 7-class at smoke scale is noise-limited
        assert row["HDFace(stoch)"] > row["HDC(orig-HOG)"] - 0.2, name


def test_hdface_training_throughput(benchmark, face2):
    """Benchmark: end-to-end HDFace fit on a small training set."""
    xtr, ytr = face2[0][:16], face2[1][:16]
    k = int(face2[1].max()) + 1

    def train():
        return HDFacePipeline(k, dim=1024, cell_size=8, magnitude="l1",
                              epochs=3, seed_or_rng=0).fit(xtr, ytr)

    benchmark.pedantic(train, rounds=1, iterations=1)

"""Table 2: quality loss under random bit errors for every system.

Reproduces all three blocks of the paper's robustness table:

* DNN at 16/8/4-bit weight precision (bit errors in stored weights);
* HDFace+HoG+Learn (fully hyperspace) at several D - errors in the
  hypervector pipeline and the stored class model;
* HDFace+Learn (HOG on the original fixed-point representation) - errors
  in the feature-extraction datapath.

Expected shapes: the hyperspace rows degrade the least; the original-
representation rows lose the holographic advantage; within the DNN block,
higher precision means higher clean accuracy but worse degradation.
"""

import numpy as np
import pytest

from common import CONFIG, fmt_row, write_report

from repro.learning import MLPClassifier
from repro.noise import (
    dnn_robustness,
    hdface_hyperspace_robustness,
    hdface_original_hog_robustness,
)
from repro.pipeline import HDFacePipeline, HOGPipeline

RATES = CONFIG["error_rates"]
DNN_BITS = (16, 8, 4)


@pytest.fixture(scope="module")
def table(face2, hog_features):
    xtr, ytr, xte, yte = face2
    ftr, _, fte, _ = hog_features["FACE2"]
    k = int(ytr.max()) + 1
    rows = {}

    mlp = MLPClassifier(ftr.shape[1], k, hidden=CONFIG["dnn_hidden"],
                        epochs=CONFIG["dnn_epochs"], seed_or_rng=0).fit(ftr, ytr)
    full_acc = mlp.score(fte, yte)
    for bits in DNN_BITS:
        rows[f"DNN {bits}-bit"] = dnn_robustness(
            mlp, fte, yte, RATES, bits, reference_accuracy=full_acc,
            seed_or_rng=0)

    for dim in CONFIG["robust_dims"]:
        pipe = HDFacePipeline(k, dim=dim, cell_size=8,
                              magnitude=CONFIG["magnitude"],
                              epochs=CONFIG["hd_epochs"], seed_or_rng=0)
        pipe.fit(xtr, ytr)
        rows[f"HDFace+HoG+Learn D={dim}"] = hdface_hyperspace_robustness(
            pipe, xte, yte, RATES, seed_or_rng=0)

    orig = HOGPipeline("hdc", k, image_size=xtr.shape[1], dim=CONFIG["dim"],
                       seed_or_rng=0).fit(xtr, ytr)
    rows["HDFace+Learn (orig HOG, 16b)"] = hdface_original_hog_robustness(
        orig, xte, yte, RATES, bits=16, seed_or_rng=0)
    return rows


def test_table2_report(table):
    widths = (30,) + (8,) * len(RATES)
    header = ("system",) + tuple(f"{int(r * 100)}%" for r in RATES)
    lines = [fmt_row(header, widths), "-" * (30 + 10 * len(RATES))]
    for name, res in table.items():
        losses = res.losses()
        lines.append(fmt_row(
            (name,) + tuple(f"{losses[r]:.1f}" for r in RATES), widths))
    lines.append("")
    lines.append("cells are quality loss in accuracy points (paper Table 2)")
    lines.append("paper shape: hyperspace HDFace ~flat; orig-HOG HDFace and "
                 "high-precision DNN degrade sharply")
    write_report("table2_robustness", lines)


def test_hyperspace_rows_most_robust(table):
    """At the highest rate, the best hyperspace row beats the DNN rows and
    the original-representation row."""
    top_rate = RATES[-1]
    hyper = min(res.losses()[top_rate] for name, res in table.items()
                if name.startswith("HDFace+HoG"))
    dnn16 = table["DNN 16-bit"].losses()[top_rate]
    orig = table["HDFace+Learn (orig HOG, 16b)"].losses()[top_rate]
    assert hyper <= dnn16 + 5.0
    assert hyper <= orig + 5.0


def test_dnn_precision_fragility_order(table):
    """16-bit loses more than 4-bit at the highest error rate (allowing a
    few points of small-sample noise)."""
    top_rate = RATES[-1]
    assert (table["DNN 16-bit"].losses()[top_rate]
            >= table["DNN 4-bit"].losses()[top_rate] - 8.0)


def test_dnn_clean_accuracy_monotone_in_precision(table):
    assert table["DNN 16-bit"][0.0] >= table["DNN 4-bit"][0.0] - 0.05


def test_higher_dim_more_robust(table):
    """Within HDFace, larger D keeps losses at or below smaller D."""
    dims = CONFIG["robust_dims"]
    top_rate = RATES[-1]
    low = table[f"HDFace+HoG+Learn D={dims[0]}"].losses()[top_rate]
    high = table[f"HDFace+HoG+Learn D={dims[-1]}"].losses()[top_rate]
    assert high <= low + 8.0


def test_losses_grow_with_rate(table):
    """Hyperspace rows degrade monotonically with the error rate.

    Only the HDFace rows are asserted: the fragile systems (orig-HOG,
    16-bit DNN) saturate near chance at the very first rates and then
    fluctuate, so rate-monotonicity is not meaningful for them.
    """
    for name, res in table.items():
        if not name.startswith("HDFace+HoG"):
            continue
        losses = res.losses()
        assert losses[RATES[-1]] >= losses[RATES[1]] - 10.0, name


def test_injection_throughput(benchmark):
    """Benchmark: hypervector fault injection bandwidth."""
    from repro.noise import flip_bipolar
    from repro.core import random_hypervector
    hv = random_hypervector(4096, 0, shape=(64,))
    benchmark(flip_bipolar, hv, 0.05, 0)

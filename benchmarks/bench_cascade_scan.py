"""Cascade early-exit scan vs the flat packed backend on the Fig. 6 scene.

The packed backend made warm scans assembly + classification; the cascade
makes them *sublinear* in that product: windows can be rejected after the
first 16 of 64 model words (a calibrated prefix bound), and only every
third grid position is even seeded (the dense re-scan opens locally
around positive seeds).  This bench pins the PR's acceptance gate on the
Fig. 6 scene (96x96, window 24, D=4096) at a dense stride-2 grid:

* **warm-scan speedup** - calibrated cascade >= 5x the flat packed scan
  (both warm: median of cached rescans, fields pass amortized);
* **equal recall** - the cascade's window-level recall against the pasted
  faces matches the flat packed scan's (and the cascade never invents a
  detection, so precision cannot drop);
* **escalation accounting** - the measured per-stage survivor fractions
  (the numbers ``docs/cascade.md`` quotes and
  ``repro.hardware.opcount.cascade_scan_profile`` prices).

Calibration is *truth-anchored* (``CascadeCalibrator.calibrate(truth=)``):
the fn budget protects ground-truth face windows on held-out scenes, so
borderline background windows cannot drag the prefix bound loose.  The
stage schedule [16, 64] skips narrower prefixes - on this model the
margin noise at 4-8 words swamps the face/clutter separation, so a
4-word stage would be pure overhead (docs/cascade.md walks the math).

Results land in ``benchmarks/results/cascade_scan.{txt,json}``.
"""

import time

import numpy as np
import pytest

from common import write_json, write_report

from repro.pipeline import (
    CascadeCalibrator,
    HDFacePipeline,
    SlidingWindowDetector,
    make_scene,
)

DIM = 4096
WINDOW = 24
SCENE = 96
STRIDE = 2  # dense overlapping grid: 37x37 = 1369 windows
FACE_SPOTS = ((0, 24), (48, 60))
WARM_REPS = 5
FN_BUDGET = 0.02
STAGE_WORDS = (16, 64)
SEED_FACTOR = 3
REFINE_BAND = 0.0  # refine only around strictly-positive seeds


@pytest.fixture(scope="module")
def scene_truth():
    return make_scene(SCENE, FACE_SPOTS, window=WINDOW, seed_or_rng=7)


@pytest.fixture(scope="module")
def pipe():
    from repro.datasets import make_face_dataset
    xtr, ytr = make_face_dataset(96, size=WINDOW, seed_or_rng=0)
    return HDFacePipeline(2, dim=DIM, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=0).fit(xtr, ytr)


@pytest.fixture(scope="module")
def calibration(pipe):
    """Truth-anchored thresholds fitted on held-out scenes."""
    det = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                engine="shared", backend="packed")
    spots = (((12, 12), (60, 36)), ((0, 60), (36, 0)), ((24, 48),),
             ((60, 60), (12, 36)), ((48, 12),), ((0, 0), (48, 48)),
             ((36, 60),), ((72, 24), (12, 72)))
    scenes, truths = [], []
    for seed, sp in enumerate(spots, start=101):
        scene, truth = make_scene(SCENE, sp, window=WINDOW, seed_or_rng=seed)
        scenes.append(scene)
        truths.append(truth)
    return CascadeCalibrator(det, words=list(STAGE_WORDS),
                             fn_budget=FN_BUDGET).calibrate(scenes,
                                                            truth=truths)


def _warm_scan(det, scene):
    """Cold scan once, then the median of WARM_REPS cached rescans."""
    dmap = det.scan(scene)
    times = []
    for _ in range(WARM_REPS):
        start = time.perf_counter()
        rescan = det.scan(scene)
        times.append(time.perf_counter() - start)
        assert np.array_equal(rescan.scores, dmap.scores)
    return dmap, float(np.median(times))


def _window_truth(truth, n_wy, n_wx):
    """Windows essentially coincident with a pasted face (>= 90% overlap)."""
    hits = np.zeros((n_wy, n_wx), dtype=bool)
    for iy in range(n_wy):
        for ix in range(n_wx):
            y, x = iy * STRIDE, ix * STRIDE
            for ty, tx, tw in truth:
                oy = max(0, min(y + WINDOW, ty + tw) - max(y, ty))
                ox = max(0, min(x + WINDOW, tx + tw) - max(x, tx))
                if oy * ox >= 0.9 * WINDOW * WINDOW:
                    hits[iy, ix] = True
    return hits


def _recall(detections, hits):
    tp = float(np.logical_and(detections, hits).sum())
    return tp / max(float(hits.sum()), 1.0)


@pytest.fixture(scope="module")
def measurements(pipe, scene_truth, calibration):
    scene, _ = scene_truth
    flat = SlidingWindowDetector(pipe, window=WINDOW, stride=STRIDE,
                                 engine="shared", backend="packed")
    cascade = SlidingWindowDetector(
        pipe, window=WINDOW, stride=STRIDE, engine="shared",
        backend="packed",
        cascade={"calibration": calibration, "seed_factor": SEED_FACTOR,
                 "refine_band": REFINE_BAND})
    flat_map, flat_warm = _warm_scan(flat, scene)
    cascade_map, cascade_warm = _warm_scan(cascade, scene)
    stats = cascade.cascade_scanner().last_stats
    return {"flat": (flat_map, flat_warm),
            "cascade": (cascade_map, cascade_warm, stats)}


def test_cascade_scan_report(measurements, scene_truth, calibration):
    _, truth = scene_truth
    flat_map, flat_warm = measurements["flat"]
    cascade_map, cascade_warm, stats = measurements["cascade"]
    hits = _window_truth(truth, *flat_map.scores.shape)
    n = flat_map.scores.size
    speedup = flat_warm / cascade_warm
    lines = [
        f"scene {SCENE}x{SCENE}, window {WINDOW}, stride {STRIDE}, "
        f"D={DIM} ({(DIM + 63) // 64} words), warm = median of "
        f"{WARM_REPS} cached rescans",
        f"calibration: fn_budget {FN_BUDGET} over {calibration.accepted} "
        f"truth-window positives ({calibration.windows} windows, 8 "
        f"held-out scenes)",
        f"{'scan':>8} {'warm_s':>9} {'win/s':>9} {'recall':>7}",
        f"{'flat':>8} {flat_warm:>9.4f} {n / flat_warm:>9.0f} "
        f"{_recall(flat_map.detections, hits):>7.2f}",
        f"{'cascade':>8} {cascade_warm:>9.4f} {n / cascade_warm:>9.0f} "
        f"{_recall(cascade_map.detections, hits):>7.2f}",
        f"warm speedup {speedup:.1f}x",
        f"window grid: {stats['seeded']} seeded + {stats['refined']} "
        f"refined of {stats['windows']} ({stats['skipped']} never scored)",
        f"{'stage':>6} {'words':>6} {'threshold':>10} {'evaluated':>10} "
        f"{'rejected':>9} {'survive':>8}",
    ]
    stage_rows = []
    for si, st in enumerate(stats["stages"]):
        ev, rej = st["evaluated"], st["rejected"]
        survive = (ev - rej) / ev if ev else 0.0
        lines.append(f"{si:>6} {st['words']:>6} {st['threshold']:>10.4f} "
                     f"{ev:>10} {rej:>9} {survive:>8.2f}")
        stage_rows.append({"stage": si, "words": st["words"],
                           "threshold": st["threshold"], "evaluated": ev,
                           "rejected": rej, "survive_fraction": survive})
    write_report("cascade_scan", lines)
    write_json("cascade_scan", {
        "config": {"scene": SCENE, "window": WINDOW, "stride": STRIDE,
                   "dim": DIM, "warm_reps": WARM_REPS,
                   "fn_budget": FN_BUDGET, "seed_factor": SEED_FACTOR,
                   "refine_band": REFINE_BAND},
        "calibration": calibration.to_dict(),
        "flat": {"warm_seconds": flat_warm,
                 "recall": _recall(flat_map.detections, hits)},
        "cascade": {"warm_seconds": cascade_warm,
                    "recall": _recall(cascade_map.detections, hits),
                    "seeded": stats["seeded"], "refined": stats["refined"],
                    "skipped": stats["skipped"], "stages": stage_rows},
        "warm_speedup": speedup,
    })


def test_cascade_warm_scan_at_least_5x_faster(measurements):
    flat_warm = measurements["flat"][1]
    cascade_warm = measurements["cascade"][1]
    assert cascade_warm * 5.0 <= flat_warm, (
        f"cascade warm {cascade_warm:.4f}s vs flat warm {flat_warm:.4f}s "
        f"({flat_warm / cascade_warm:.1f}x)")


def test_cascade_recall_matches_flat_scan(measurements, scene_truth):
    _, truth = scene_truth
    flat_map, _ = measurements["flat"]
    cascade_map = measurements["cascade"][0]
    hits = _window_truth(truth, *flat_map.scores.shape)
    assert _recall(cascade_map.detections, hits) >= \
        _recall(flat_map.detections, hits)
    # early exit can only reject: the cascade never invents a detection
    assert not (cascade_map.detections & ~flat_map.detections).any()


def test_majority_of_windows_never_reach_full_width(measurements):
    """The sublinearity claim: most grid windows are either never seeded
    (coarse grid, no promising neighbor) or rejected on a word prefix -
    only a minority is ever scored against the full 64-word model."""
    stats = measurements["cascade"][2]
    full_stage = stats["stages"][-1]
    assert full_stage["evaluated"] <= 0.5 * stats["windows"]

"""Seven-class emotion detection with HDFace (the EMOTION benchmark).

Trains HDFace on the synthetic FER-analog emotion dataset, compares it
against the DNN and SVM baselines over the *same* HOG features (paper
Fig. 4's protocol), and prints a confusion matrix plus the dimensionality
trend of Fig. 5a / Fig. 6b: emotion predictions are unreliable at D=1k and
stabilize at D=4k.

Run:  python examples/emotion_detection_demo.py
"""

import numpy as np

from repro import HDFacePipeline, HOGPipeline
from repro.datasets import EMOTIONS, make_emotion_dataset
from repro.learning import confusion_matrix
from repro.viz import ascii_image


def main():
    size = 48
    print("Generating the synthetic emotion dataset (7 classes) ...")
    train_x, train_y = make_emotion_dataset(280, size=size, seed_or_rng=0)
    test_x, test_y = make_emotion_dataset(70, size=size, seed_or_rng=1)

    print("A 'happy' sample and a 'surprise' sample:")
    for wanted in ("happy", "surprise"):
        idx = int(np.argmax(train_y == EMOTIONS.index(wanted)))
        print(f"--- {wanted} ---")
        print(ascii_image(train_x[idx], width=40))

    print("\nBaselines over classic HOG features:")
    for kind, kwargs in (("svm", {}), ("dnn", {"hidden": (128, 128)})):
        pipe = HOGPipeline(kind, 7, image_size=size, seed_or_rng=0, **kwargs)
        acc = pipe.fit(train_x, train_y).score(test_x, test_y)
        print(f"  {kind.upper():4s}: {acc:.3f}")

    print("\nHDFace at increasing dimensionality (Fig. 5a / 6b trend):")
    best = None
    for dim in (1024, 4096):
        pipe = HDFacePipeline(7, dim=dim, cell_size=8, magnitude="l1",
                              epochs=20, seed_or_rng=0)
        acc = pipe.fit(train_x, train_y).score(test_x, test_y)
        print(f"  D={dim:5d}: {acc:.3f}")
        best = pipe

    print("\nConfusion matrix of the D=4096 model (rows = truth):")
    pred = best.predict(test_x)
    mat = confusion_matrix(test_y, pred, n_classes=7)
    header = "          " + " ".join(f"{e[:4]:>5s}" for e in EMOTIONS)
    print(header)
    for i, row in enumerate(mat):
        print(f"{EMOTIONS[i]:>9s} " + " ".join(f"{v:5d}" for v in row))

    print("\nPaper shape: low-D predictions are noisy; D=4k separates the "
          "expressive classes (happy/surprise) cleanly while neighbouring "
          "emotions (fear/surprise, sad/angry) still confuse - as in FER.")


if __name__ == "__main__":
    main()

"""Quickstart: train HDFace on synthetic faces and classify new images.

Runs the full paper pipeline end to end in under a minute:

1. generate a synthetic face / no-face dataset (the FACE2 analog);
2. train HDFace - hyperspace HOG feature extraction feeding the adaptive
   HDC classifier - at a reduced dimensionality;
3. evaluate on held-out images and inspect per-class similarities;
4. peek under the hood: decode one image's hyperspace HOG histogram and
   compare it against the classic original-space HOG.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HDFacePipeline
from repro.datasets import make_face_dataset
from repro.features import HOGDescriptor
from repro.viz import ascii_image


def main():
    size = 32
    print("Generating synthetic face / no-face data ...")
    train_x, train_y = make_face_dataset(120, size=size, seed_or_rng=0)
    test_x, test_y = make_face_dataset(40, size=size, seed_or_rng=1)

    print("One training face:")
    face_idx = int(np.argmax(train_y == 1))
    print(ascii_image(train_x[face_idx], width=size))

    print("\nTraining HDFace (D=2048, hyperspace HOG -> HDC) ...")
    pipe = HDFacePipeline(
        n_classes=2, dim=2048, cell_size=8, magnitude="l1",
        epochs=10, seed_or_rng=0,
    ).fit(train_x, train_y)

    acc = pipe.score(test_x, test_y)
    print(f"held-out accuracy: {acc:.3f}")

    sims = pipe.similarities(test_x[:5])
    print("\nper-class similarities for five test images "
          "(no-face, face) vs truth:")
    for row, label in zip(sims, test_y[:5]):
        print(f"  [{row[0]:+.3f} {row[1]:+.3f}]  truth={'face' if label else 'no-face'}")

    print("\nUnder the hood: hyperspace HOG vs classic HOG on one image")
    result = pipe.extractor.extract_histogram(test_x[0])
    decoded = pipe.extractor.readout_histogram(result)
    classic = HOGDescriptor(cell_size=8, n_bins=8,
                            magnitude="l1").cell_features(test_x[0])
    corr = np.corrcoef(decoded.ravel(), classic.ravel())[0, 1]
    print(f"  correlation between decoded hyperspace HOG and classic HOG: "
          f"{corr:.3f}")
    print("  (everything HDFace computed stayed in the +-1 hypervector "
          "domain until this readout)")


if __name__ == "__main__":
    main()

"""Online on-device learning and multi-scale detection (paper Sec. 1 & 7).

Demonstrates the two deployment-facing capabilities the paper motivates:

1. **Online learning** - HDFace absorbs data in streaming batches via
   ``partial_fit`` (no stored dataset, no revisiting), the "online
   on-device learning" advantage of hyperdimensional classification.
   Accuracy is tracked batch by batch.
2. **Multi-scale detection** - a detector trained at one window size finds
   a *larger* face through the image pyramid, with non-maximum suppression
   merging overlapping hits.

Run:  python examples/online_learning_demo.py
"""

import numpy as np

from repro import HDFacePipeline
from repro.datasets import make_face_dataset
from repro.pipeline import PyramidDetector, SlidingWindowDetector, make_scene

WINDOW = 24


def online_learning():
    print("=== online (streaming) learning ===")
    pipe = HDFacePipeline(2, dim=2048, cell_size=8, magnitude="l1",
                          epochs=5, seed_or_rng=0)
    test_x, test_y = make_face_dataset(60, size=WINDOW, seed_or_rng=99)
    test_q = pipe.extract(test_x)
    for batch in range(5):
        x, y = make_face_dataset(24, size=WINDOW, seed_or_rng=batch)
        pipe.classifier.partial_fit(pipe.extract(x), y)
        acc = float((pipe.predict_queries(test_q) == test_y).mean())
        print(f"  after batch {batch + 1} ({24 * (batch + 1):3d} samples "
              f"seen): held-out accuracy {acc:.3f}")
    print("  (each batch was seen exactly once - single-pass memorization)")
    return pipe


def multiscale(pipe):
    print("\n=== multi-scale detection ===")
    scene, truth = make_scene(96, [(20, 28)], window=48, seed_or_rng=5)
    print(f"scene contains one 48x48 face at (20, 28); the detector's "
          f"window is {WINDOW}x{WINDOW}")
    base = SlidingWindowDetector(pipe, window=WINDOW, stride=WINDOW // 2)
    detector = PyramidDetector(base, scale_step=2.0, score_threshold=0.0)
    detections = detector.detect(scene)
    print(f"{len(detections)} detections after non-maximum suppression:")
    for d in detections[:5]:
        print(f"  box ({d.y:5.1f}, {d.x:5.1f}) size {d.size:5.1f} "
              f"score {d.score:+.3f}")
    big = [d for d in detections if d.size > WINDOW]
    if big:
        print("the pyramid found the over-sized face "
              f"(best large box at ({big[0].y:.0f}, {big[0].x:.0f}))")


def main():
    pipe = online_learning()
    multiscale(pipe)


if __name__ == "__main__":
    main()

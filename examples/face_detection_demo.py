"""Sliding-window face detection over a composite scene (paper Fig. 6).

Builds a cluttered scene with faces pasted at known positions, trains
HDFace detectors at two dimensionalities, scans the scene with an
overlapping window, and renders the detection maps - reproducing the
paper's visual comparison where the low-D detector mispredicts windows
that the D=4k detector gets right.

Writes PGM overlays (viewable with any image tool) next to this script.

Run:  python examples/face_detection_demo.py
"""

from pathlib import Path

import numpy as np

from repro import HDFacePipeline, SlidingWindowDetector
from repro.datasets import make_face_dataset
from repro.pipeline import make_scene
from repro.viz import ascii_image, ascii_map, render_detection, write_pgm

WINDOW = 24
SCENE_SIZE = 96
FACE_SPOTS = ((0, 24), (48, 60))
DIMS = (512, 4096)


def main():
    out_dir = Path(__file__).parent
    print("Composing a test scene with faces at", FACE_SPOTS)
    scene, truth = make_scene(SCENE_SIZE, FACE_SPOTS, window=WINDOW,
                              seed_or_rng=7)
    print(ascii_image(scene, width=64))

    print("\nGenerating training data ...")
    train_x, train_y = make_face_dataset(160, size=WINDOW, seed_or_rng=0)

    for dim in DIMS:
        print(f"\n--- HDFace detector at D={dim} ---")
        pipe = HDFacePipeline(2, dim=dim, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=0).fit(train_x, train_y)
        detector = SlidingWindowDetector(pipe, window=WINDOW,
                                         stride=WINDOW // 2)
        result = detector.scan(scene)
        print("detection map (# = face window):")
        print(ascii_map(result.detections))
        n_hits = int(result.detections.sum())
        print(f"{n_hits} windows flagged "
              f"({result.detections.size} scanned)")
        overlay = render_detection(scene, result)
        path = out_dir / f"detection_D{dim}.pgm"
        write_pgm(path, overlay)
        print(f"overlay written to {path}")

    print("\nPaper shape: the low-D map flags spurious windows; "
          "the D=4k map concentrates on the true face locations.")


if __name__ == "__main__":
    main()

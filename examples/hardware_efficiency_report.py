"""Hardware efficiency walkthrough (paper Fig. 7 and Sec. 6.5).

Uses the op-count cost models and the cycle-level datapath simulator to
answer: *why* does HDFace map so well to an FPGA, and where do the paper's
speedup/energy numbers come from?

Prints, for each Table 1 workload:

* the operation mix of the HDFace pipeline vs the HOG+DNN baseline;
* modeled training/inference time and energy on the Cortex-A53 and the
  Kintex-7, with the speedup/efficiency ratios next to the paper's;
* a cycle-level simulation of the FPGA datapath with lane utilization.

Run:  python examples/hardware_efficiency_report.py
"""

from repro.hardware import (
    CORTEX_A53,
    KINTEX7_FPGA,
    HDDatapathSimulator,
    dnn_inference_cost,
    dnn_training_cost,
    fig7_report,
    hd_hog_profile,
    hd_hog_trace,
    hdface_inference_cost,
    hdface_training_cost,
    hog_profile,
    workload_for_dataset,
)

PAPER = {
    ("cpu", "training"): (6.1, 3.0),
    ("fpga", "training"): (4.6, 12.1),
    ("cpu", "inference"): (1.4, 1.7),
    ("fpga", "inference"): (2.9, 2.6),
}


def show_op_mix():
    w = workload_for_dataset("EMOTION")
    shape = (w.image_size, w.image_size)
    hd = hd_hog_profile(shape, w.dim)
    fp = hog_profile(shape)
    print("per-image operation mix (EMOTION, 48x48, D=4096):")
    print(f"  HDFace pipeline : {hd.get('bit'):.2e} bit ops, "
          f"{hd.get('int_add'):.2e} int adds, {hd.get('rng_bit'):.2e} rng bits, "
          f"0 float ops")
    print(f"  classic HOG     : {fp.get('fp_mul') + fp.get('fp_add'):.2e} float "
          f"ops, {fp.get('fp_atan'):.2e} atan, {fp.get('fp_sqrt'):.2e} sqrt")
    print("  -> HDFace trades float transcendentals for massive, regular "
          "bitwise parallelism: LUT fabric, not DSPs.\n")


def show_costs():
    print("modeled end-to-end costs (paper Table 1 workload sizes):")
    for name in ("EMOTION", "FACE1", "FACE2"):
        w = workload_for_dataset(name)
        print(f"\n  {name} ({w.image_size}x{w.image_size}, "
              f"{w.n_train} training images)")
        for key, plat in (("cpu", CORTEX_A53), ("fpga", KINTEX7_FPGA)):
            ht, he = hdface_training_cost(w, plat)
            dt, de = dnn_training_cost(w, plat)
            it_h, ie_h = hdface_inference_cost(w, plat)
            it_d, ie_d = dnn_inference_cost(w, plat)
            print(f"    {plat.name:16s} train: HDFace {ht:9.1f}s vs DNN "
                  f"{dt:9.1f}s  ({dt / ht:5.2f}x, paper "
                  f"{PAPER[(key, 'training')][0]}x)")
            print(f"    {'':16s} infer: HDFace {it_h * 1e3:8.2f}ms vs DNN "
                  f"{it_d * 1e3:8.2f}ms ({it_d / it_h:5.2f}x, paper "
                  f"{PAPER[(key, 'inference')][0]}x)")
            del he, de, ie_h, ie_d


def show_simulation():
    print("\ncycle-level FPGA datapath simulation (one 48x48 image, D=4096):")
    lanes = int(KINTEX7_FPGA.throughput["bit"])
    sim = HDDatapathSimulator(lanes=lanes, pipeline_depth=4)
    res = sim.run(hd_hog_trace((48, 48), 4096))
    print(f"  lanes            : {res.lanes}")
    print(f"  cycles           : {res.cycles:,}")
    print(f"  lane utilization : {res.utilization * 100:.1f}%")
    print(f"  latency @200 MHz : {res.seconds(KINTEX7_FPGA.freq_hz) * 1e3:.2f} ms")
    print(f"  stall cycles     : {res.stall_cycles:,} "
          "(binary-search readback dependencies)")


def show_summary():
    print("\nFig. 7 summary (averages across datasets):")
    rows = fig7_report()
    for (plat, phase), (ps, pe) in PAPER.items():
        sel = [r for r in rows if r.platform == plat and r.phase == phase]
        speed = sum(r.speedup for r in sel) / len(sel)
        energy = sum(r.energy_efficiency for r in sel) / len(sel)
        print(f"  {plat:4s} {phase:9s}: {speed:6.2f}x speed "
              f"(paper {ps}x), {energy:6.2f}x energy (paper {pe}x)")


def main():
    show_op_mix()
    show_costs()
    show_simulation()
    show_summary()


if __name__ == "__main__":
    main()

"""Bit-error robustness comparison (paper Table 2, condensed).

Injects random bit errors into three systems trained on the same task:

* HDFace with feature extraction *and* learning in hyperspace;
* an HDC classifier fed by HOG running on the original fixed-point
  representation;
* a quantized DNN (16-bit and 4-bit weights).

Prints the quality-loss table and the paper's headline: the holographic
representation barely notices error rates that cripple the original
datapath and the high-precision DNN.

Run:  python examples/robustness_demo.py
"""

from repro import HDFacePipeline, HOGPipeline
from repro.datasets import make_face_dataset
from repro.learning import MLPClassifier
from repro.noise import (
    dnn_robustness,
    hdface_hyperspace_robustness,
    hdface_original_hog_robustness,
)

RATES = (0.0, 0.02, 0.08, 0.14)


def main():
    size = 32
    print("Generating data and training the three systems ...")
    train_x, train_y = make_face_dataset(120, size=size, seed_or_rng=0)
    test_x, test_y = make_face_dataset(60, size=size, seed_or_rng=1)

    hdface = HDFacePipeline(2, dim=4096, cell_size=8, magnitude="l1",
                            epochs=10, seed_or_rng=0).fit(train_x, train_y)

    orig = HOGPipeline("hdc", 2, image_size=size, dim=4096,
                       seed_or_rng=0).fit(train_x, train_y)

    hog = HOGPipeline("svm", 2, image_size=size)
    ftr, fte = hog.features(train_x), hog.features(test_x)
    mlp = MLPClassifier(ftr.shape[1], 2, hidden=(128, 128), epochs=30,
                        seed_or_rng=0).fit(ftr, train_y)
    full_acc = mlp.score(fte, test_y)

    print("Running fault campaigns ...")
    rows = {
        "HDFace (hyperspace HOG+learn)": hdface_hyperspace_robustness(
            hdface, test_x, test_y, RATES, seed_or_rng=0),
        "HDC over original-space HOG": hdface_original_hog_robustness(
            orig, test_x, test_y, RATES, bits=16, seed_or_rng=0),
        "DNN 16-bit weights": dnn_robustness(
            mlp, fte, test_y, RATES, 16, reference_accuracy=full_acc,
            seed_or_rng=0),
        "DNN 4-bit weights": dnn_robustness(
            mlp, fte, test_y, RATES, 4, reference_accuracy=full_acc,
            seed_or_rng=0),
    }

    print("\nquality loss (accuracy points) per bit-error rate:")
    header = f"{'system':34s}" + "".join(f"{str(int(r * 100)) + '%':>7s}" for r in RATES)
    print(header)
    print("-" * len(header))
    for name, res in rows.items():
        losses = res.losses()
        print(f"{name:34s}" + "".join(f"{losses[r]:7.1f}" for r in RATES))

    print("\nPaper shape (Table 2): the fully-hyperspace row stays nearly "
          "flat; errors in the original HOG datapath or in high-precision "
          "DNN weights cost many points at the same rates.")


if __name__ == "__main__":
    main()

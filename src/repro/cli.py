"""Command-line interface: train, evaluate, detect and report.

Run as ``python -m repro <command>``:

``train``
    Generate a synthetic dataset, train an HDFace pipeline, report
    held-out accuracy and (optionally) save the model to ``.npz``.
``evaluate``
    Load a saved model and score it on freshly generated data.
``detect``
    Load (or quickly train) a face model and scan a generated scene,
    printing the detection map and writing a PGM overlay.  With
    ``--cascade`` the scan runs the multi-stage early-exit cascade
    (packed backend), optionally with a ``--calibration`` file.
``calibrate``
    Fit cascade rejection thresholds on held-out synthetic scenes and
    write the calibration JSON that ``detect --cascade --calibration``
    and the serving runtime consume.
``report``
    Print the hardware-model efficiency report (Fig. 7), the Sec. 6.3
    per-epoch comparison, and the guarded-model protection overhead.
``robustness``
    Train a small face model, sweep a bit-error rate through the full
    detection path (both backends) and write the recall/precision/IoU
    table to a JSON results file.
``stream``
    Run the streaming detector over a synthetic moving-face video:
    frame-delta feature reuse, temporal tracking, and per-frame
    latency / cache-reuse reporting.
``serve``
    Run the resilient serving runtime over a synthetic video - deadline
    scheduler with the degradation ladder, watchdog recovery, input
    quarantine - optionally under an injected chaos scenario (stalls,
    poison frames, packed bit faults), with gated exit status for CI.
    With ``--streams N`` the runtime serves a fleet of N concurrent
    streams through one shared packed datapath with cross-stream window
    batching and fleet-aware shedding.

All data is synthetic and seeded, so every invocation is reproducible.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser():
    """The argparse grammar (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HDFace: holographic face detection (DAC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an HDFace pipeline")
    train.add_argument("--task", choices=("face", "emotion"), default="face")
    train.add_argument("--dim", type=int, default=4096)
    train.add_argument("--size", type=int, default=32, help="image side")
    train.add_argument("--train-samples", type=int, default=120)
    train.add_argument("--test-samples", type=int, default=60)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--magnitude", choices=("l1", "l2_scaled"), default="l1")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", metavar="PATH", help="write the model .npz")

    evaluate = sub.add_parser("evaluate", help="score a saved model")
    evaluate.add_argument("model", help="path to a saved .npz model")
    evaluate.add_argument("--task", choices=("face", "emotion"), default="face")
    evaluate.add_argument("--size", type=int, default=32)
    evaluate.add_argument("--samples", type=int, default=60)
    evaluate.add_argument("--seed", type=int, default=1)

    detect = sub.add_parser("detect", help="scan a synthetic scene")
    detect.add_argument("--model", help="saved model (trains one if omitted)")
    detect.add_argument("--dim", type=int, default=2048)
    detect.add_argument("--scene-size", type=int, default=96)
    detect.add_argument("--window", type=int, default=24)
    detect.add_argument("--seed", type=int, default=7)
    detect.add_argument("--stride", type=int, default=None,
                        help="window step in pixels (default: window / 2)")
    detect.add_argument("--engine", choices=("shared", "perwindow", "legacy"),
                        default="shared",
                        help="shared-feature engine (fast), keyed per-window "
                             "reference, or the legacy crop path")
    detect.add_argument("--backend", choices=("dense", "packed"),
                        default="dense",
                        help="dense float hot path, or bit-packed uint64 "
                             "XOR+popcount (shared engine only)")
    detect.add_argument("--workers", type=int, default=1,
                        help="threads for the strip-parallel fields pass "
                             "(shared engine)")
    detect.add_argument("--cascade", action="store_true",
                        help="multi-stage early-exit cascade scan "
                             "(requires --backend packed)")
    detect.add_argument("--calibration", metavar="JSON",
                        help="cascade calibration from `repro calibrate` "
                             "(default: analytic Hoeffding bounds)")
    detect.add_argument("--plan", choices=("auto",), default=None,
                        help="'auto': let the cost-model execution planner "
                             "pick the scan knobs under --deadline and run "
                             "the scene through the planned pyramid path")
    detect.add_argument("--deadline", type=float, default=0.1,
                        help="frame deadline in seconds for --plan auto "
                             "(the planner picks the highest-quality plan "
                             "whose predicted cost fits)")
    detect.add_argument("--profile", action="store_true",
                        help="print stage timings, op counts and the modeled "
                             "Cortex-A53 time for the scan")
    detect.add_argument("--output", metavar="PGM", help="overlay image path")

    calibrate = sub.add_parser(
        "calibrate", help="fit cascade rejection thresholds")
    calibrate.add_argument("--model",
                           help="saved model (trains one if omitted)")
    calibrate.add_argument("--dim", type=int, default=2048)
    calibrate.add_argument("--window", type=int, default=24)
    calibrate.add_argument("--scene-size", type=int, default=96)
    calibrate.add_argument("--scenes", type=int, default=6,
                           help="held-out calibration scenes")
    calibrate.add_argument("--stride", type=int, default=None,
                           help="window step in pixels (default: window / 2)")
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.add_argument("--fn-budget", type=float, default=0.01,
                           help="per-stage false-negative budget")
    calibrate.add_argument("--method", choices=("empirical", "hoeffding"),
                           default="empirical",
                           help="data-fitted quantile bound, or the "
                                "distribution-free analytic bound")
    calibrate.add_argument("--words", default=None,
                           help="comma-separated cumulative stage word "
                                "budgets (default: geometric schedule)")
    calibrate.add_argument("--output", metavar="JSON",
                           default="cascade_calibration.json",
                           help="calibration file to write")

    report = sub.add_parser("report", help="hardware efficiency report")
    report.add_argument("--dim", type=int, default=4096)
    report.add_argument("--incidents", metavar="JSON",
                        help="serving/chaos output JSON (from serve "
                             "--output); prints per-kind incident counters")
    report.add_argument("--guard-replicas", type=int, default=3,
                        help="replica count priced in the protection-"
                             "overhead section")

    robust = sub.add_parser(
        "robustness", help="detection-level fault-injection campaign")
    robust.add_argument("--rates", default="0,0.01,0.05",
                        help="comma-separated bit-error rates to sweep")
    robust.add_argument("--images", type=int, default=8,
                        help="number of test scenes")
    robust.add_argument("--backend", choices=("dense", "packed", "both"),
                        default="both",
                        help="backend under test; the dense reference sweep "
                             "always runs for comparison (dense = dense only)")
    robust.add_argument("--dim", type=int, default=512)
    robust.add_argument("--scene-size", type=int, default=48)
    robust.add_argument("--window", type=int, default=24)
    robust.add_argument("--stride", type=int, default=None)
    robust.add_argument("--seed", type=int, default=0)
    robust.add_argument("--attack", choices=("features", "model", "both"),
                        default="both", help="fault surface to corrupt")
    robust.add_argument("--guard-replicas", type=int, default=0,
                        help="odd replica count: protect the packed model "
                             "with a GuardedClassModel and corrupt one "
                             "replica instead of the live model")
    robust.add_argument("--surfaces", default=None,
                        help="comma-separated extra memory surfaces to "
                             "corrupt at each rate: 'items' (base/pixel/bin "
                             "hypervector tables) and/or 'cache' (the "
                             "shared-feature scene cache)")
    robust.add_argument("--output", metavar="JSON",
                        default="benchmarks/results/detection_robustness.json",
                        help="results file (written via benchmarks.common "
                             "when available)")
    robust.add_argument("--max-recall-drop", type=float, default=None,
                        help="exit non-zero if any backend loses more "
                             "recall than this vs its clean run")

    stream = sub.add_parser(
        "stream", help="streaming detection over a synthetic video")
    stream.add_argument("--frames", type=int, default=12,
                        help="number of synthetic video frames")
    stream.add_argument("--dim", type=int, default=1024)
    stream.add_argument("--scene-size", type=int, default=64)
    stream.add_argument("--window", type=int, default=24)
    stream.add_argument("--stride", type=int, default=None,
                        help="window step in pixels (default: window / 3)")
    stream.add_argument("--step", type=int, default=2,
                        help="face displacement per frame in pixels")
    stream.add_argument("--seed", type=int, default=7)
    stream.add_argument("--backend", choices=("dense", "packed"),
                        default="dense")
    stream.add_argument("--no-incremental", action="store_true",
                        help="disable frame-delta reuse (full re-extraction "
                             "per frame, the baseline)")
    stream.add_argument("--queue-size", type=int, default=4)
    stream.add_argument("--policy", choices=("drop_oldest", "block"),
                        default="drop_oldest")
    stream.add_argument("--profile", action="store_true",
                        help="print the stage table incl. the delta stages")

    serve = sub.add_parser(
        "serve", help="resilient serving runtime over a synthetic video")
    serve.add_argument("--frames", type=int, default=24,
                       help="number of synthetic video frames")
    serve.add_argument("--dim", type=int, default=1024)
    serve.add_argument("--scene-size", type=int, default=64)
    serve.add_argument("--window", type=int, default=24)
    serve.add_argument("--stride", type=int, default=None,
                       help="window step in pixels (default: window / 3)")
    serve.add_argument("--step", type=int, default=2,
                       help="face displacement per frame in pixels")
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--backend", choices=("dense", "packed"),
                       default="packed")
    serve.add_argument("--scrub-budget", type=int, default=None,
                       help="background memory-RAS scrubber budget in bytes "
                            "swept per frame (0 = full sweep every frame; "
                            "omit to disable the scrubber)")
    serve.add_argument("--budget", type=float, default=None,
                       help="per-frame latency budget in seconds (default: "
                            "adaptive, 3x the measured clean median)")
    serve.add_argument("--stall-timeout", type=float, default=None,
                       help="watchdog stall timeout in seconds (default: "
                            "4x the budget)")
    serve.add_argument("--queue-size", type=int, default=4)
    serve.add_argument("--streams", type=int, default=1,
                       help="number of concurrent streams; > 1 serves a "
                            "fleet with cross-stream window batching")
    serve.add_argument("--batch-window", type=float, default=0.002,
                       help="fleet batch-gate wait in seconds (collects "
                            "other streams' windows before one packed pass)")
    serve.add_argument("--chaos", action="store_true",
                       help="inject the standard chaos scenario: a soft "
                            "stall, a hard stall, poison frames, and "
                            "packed datapath bit faults")
    serve.add_argument("--adapt", action="store_true",
                       help="arm guarded online adaptation (packed backend "
                            "only): drift-gated harvesting of confirmed "
                            "tracks into a replicated, vetted class model; "
                            "with --chaos the scenario also injects a "
                            "label-poisoning update that must be detected "
                            "and rolled back")
    serve.add_argument("--planner", action="store_true",
                       help="derive the degradation ladder from the cost-"
                            "model execution planner (rungs become planner-"
                            "chosen Plans under a shrinking budget) and "
                            "autotune it from live profiler measurements")
    serve.add_argument("--replan-every", type=int, default=None,
                       help="with --planner: refit the cost model and "
                            "replan the ladder every N frames")
    serve.add_argument("--fault-rate", type=float, default=0.001,
                       help="packed bit-fault rate for the chaos datapath "
                            "injection")
    serve.add_argument("--stall", type=float, default=None,
                       help="injected stall duration in seconds (default: "
                            "3x the stall timeout)")
    serve.add_argument("--p95-tolerance", type=float, default=3.0,
                       help="chaos gate: p95 must stay within "
                            "budget * tolerance")
    serve.add_argument("--max-recall-drop", type=float, default=0.05,
                       help="chaos gate: served recall may trail the "
                            "rung-pinned clean run by at most this")
    serve.add_argument("--checkpoint", metavar="NPZ",
                       help="save the runtime state checkpoint here at the "
                            "end of the run")
    serve.add_argument("--output", metavar="JSON",
                       help="write the chaos report / serve stats JSON here")
    serve.add_argument("--profile", action="store_true",
                       help="print the stage table with latency percentiles")
    return parser


def _write_results_json(path, payload, out):
    """Write a results JSON in ``benchmarks.common.write_json``'s format.

    Canonical encoding (string keys, sorted, 2-space indent, trailing
    newline) plus the bench scale stamp, so CLI-written artifacts that
    land in ``benchmarks/results/`` satisfy the same consistency bar as
    the benchmark harness's own (``tests/test_bench_results.py``).
    """
    import json
    import os

    payload = json.loads(json.dumps(payload, sort_keys=True, default=float))
    payload.setdefault("scale", os.environ.get("REPRO_BENCH_SCALE", "smoke"))
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"results written to {path}", file=out)


def _make_data(task, n, size, seed):
    from .datasets import make_emotion_dataset, make_face_dataset
    maker = make_emotion_dataset if task == "emotion" else make_face_dataset
    return maker(n, size=size, seed_or_rng=seed)


def _cmd_train(args, out):
    from .pipeline import HDFacePipeline
    from .pipeline.serialization import save_pipeline

    n_classes = 7 if args.task == "emotion" else 2
    xtr, ytr = _make_data(args.task, args.train_samples, args.size, args.seed)
    xte, yte = _make_data(args.task, args.test_samples, args.size, args.seed + 1)
    print(f"training HDFace (task={args.task}, D={args.dim}, "
          f"{args.train_samples} samples) ...", file=out)
    pipe = HDFacePipeline(n_classes, dim=args.dim, cell_size=8,
                          magnitude=args.magnitude, epochs=args.epochs,
                          seed_or_rng=args.seed)
    pipe.fit(xtr, ytr)
    print(f"train accuracy: {pipe.score(xtr, ytr):.3f}", file=out)
    print(f"test accuracy : {pipe.score(xte, yte):.3f}", file=out)
    if args.save:
        save_pipeline(pipe, args.save)
        print(f"model saved to {args.save}", file=out)
    return 0


def _cmd_evaluate(args, out):
    from .pipeline.serialization import load_pipeline

    pipe = load_pipeline(args.model, seed_or_rng=args.seed)
    x, y = _make_data(args.task, args.samples, args.size, args.seed)
    print(f"accuracy on {args.samples} fresh samples: "
          f"{pipe.score(x, y):.3f}", file=out)
    return 0


def _cmd_detect(args, out):
    from .pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
    from .viz import ascii_map, render_detection, write_pgm

    if args.model:
        from .pipeline.serialization import load_pipeline
        pipe = load_pipeline(args.model, seed_or_rng=args.seed)
    else:
        from .datasets import make_face_dataset
        xtr, ytr = make_face_dataset(96, size=args.window, seed_or_rng=args.seed)
        pipe = HDFacePipeline(2, dim=args.dim, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=args.seed)
        pipe.fit(xtr, ytr)
    rng = np.random.default_rng(args.seed)
    spots = []
    margin = args.scene_size - args.window
    for _ in range(2):
        spots.append((int(rng.integers(0, margin + 1)),
                      int(rng.integers(0, margin + 1))))
    scene, truth = make_scene(args.scene_size, spots, window=args.window,
                              seed_or_rng=args.seed)
    profiler = None
    if args.profile:
        from .profiling import Profiler
        profiler = Profiler()
    cascade = None
    if args.cascade:
        if args.backend != "packed" or args.engine != "shared":
            print("error: --cascade requires --backend packed with the "
                  "shared engine", file=out)
            return 2
        if args.calibration:
            from .pipeline import CascadeCalibration
            cascade = CascadeCalibration.load(args.calibration)
        else:
            cascade = True
    detector = SlidingWindowDetector(pipe, window=args.window,
                                     stride=args.stride or args.window // 2,
                                     engine=args.engine, profiler=profiler,
                                     backend=args.backend,
                                     workers=args.workers, cascade=cascade)
    if args.plan:
        return _detect_planned(args, out, detector, scene, truth)
    result = detector.scan(scene)
    print(f"faces pasted at {truth}", file=out)
    print("detection map (# = face window):", file=out)
    print(ascii_map(result.detections), file=out)
    if cascade is not None:
        stats = detector.cascade_scanner().last_stats
        print(f"cascade: {stats['seeded']} seeded + {stats['refined']} "
              f"refined of {stats['windows']} windows "
              f"({stats['skipped']} skipped)", file=out)
        for i, st in enumerate(stats["stages"]):
            print(f"  stage {i}: {st['words']:3d} words  threshold "
                  f"{st['threshold']:+.4f}  evaluated {st['evaluated']:4d}  "
                  f"rejected {st['rejected']:4d}", file=out)
    if profiler is not None:
        n_windows = result.scores.size
        seconds = profiler.total_seconds()
        print(profiler.table(
            f"profile ({args.engine} engine, {args.backend} backend)"),
            file=out)
        print(f"throughput: {n_windows / seconds:.1f} windows/s "
              f"({n_windows} windows in {seconds:.3f}s)", file=out)
        totals = profiler.op_totals()
        if totals:
            from .hardware.opcount import profile_from_counts
            from .hardware.platforms import CORTEX_A53
            prof = profile_from_counts(totals, label=f"{args.engine} scan")
            print(f"modeled Cortex-A53 time for the counted ops: "
                  f"{CORTEX_A53.time(prof):.3f}s", file=out)
    if args.output:
        write_pgm(args.output, render_detection(scene, result))
        print(f"overlay written to {args.output}", file=out)
    return 0


def _detect_planned(args, out, detector, scene, truth):
    """The ``detect --plan auto`` path: cost-model planner + execute_plan."""
    import time

    from .pipeline import PyramidDetector, execute_plan
    from .runtime import ExecutionPlanner

    base = PyramidDetector(detector, score_threshold=0.0)
    planner = ExecutionPlanner.from_detector(base, frame_shape=scene.shape)
    plan = planner.plan(args.deadline, frame_shape=scene.shape,
                        name="cli-auto")
    predicted = planner.estimate(plan, scene.shape)
    print(f"plan: {plan.describe()}", file=out)
    print(f"predicted cost {predicted * 1e3:.3f} ms against deadline "
          f"{args.deadline * 1e3:.1f} ms "
          f"({len(planner.candidates(scene.shape))} candidates)", file=out)
    t0 = time.perf_counter()
    detections = execute_plan(base, scene, plan)
    elapsed = time.perf_counter() - t0
    print(f"faces pasted at {truth}", file=out)
    print(f"{len(detections)} detections in {elapsed * 1e3:.1f} ms:",
          file=out)
    for d in detections:
        print(f"  ({d.y:5.1f},{d.x:5.1f}) size {d.size:4.1f} "
              f"score {d.score:+.4f}", file=out)
    if args.profile:
        prof = detector.profiler
        if prof is not None:
            print(prof.table(f"planned scan ({args.engine} engine, "
                             f"{args.backend} backend)"), file=out)
    return 0


def _cmd_calibrate(args, out):
    from .pipeline import (CascadeCalibrator, HDFacePipeline,
                           SlidingWindowDetector)

    if args.model:
        from .pipeline.serialization import load_pipeline
        pipe = load_pipeline(args.model, seed_or_rng=args.seed)
    else:
        from .datasets import make_face_dataset
        xtr, ytr = make_face_dataset(96, size=args.window,
                                     seed_or_rng=args.seed)
        print(f"training face model (D={args.dim}) ...", file=out)
        pipe = HDFacePipeline(2, dim=args.dim, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=args.seed)
        pipe.fit(xtr, ytr)
    detector = SlidingWindowDetector(pipe, window=args.window,
                                     stride=args.stride or args.window // 2,
                                     backend="packed")
    words = None
    if args.words:
        words = [int(w) for w in args.words.split(",") if w.strip()]
    scenes = [s for s, _ in _random_scenes(args.scenes, args.scene_size,
                                           args.window, args.seed + 500)]
    print(f"calibrating on {len(scenes)} held-out scenes "
          f"(fn budget {args.fn_budget}, method {args.method}) ...", file=out)
    cal = CascadeCalibrator(detector, words=words, fn_budget=args.fn_budget,
                            method=args.method).calibrate(scenes)
    print(f"measured {cal.windows} windows ({cal.accepted} accepted by the "
          f"full model):", file=out)
    for i, (stage, esc) in enumerate(zip(cal.stages, cal.escalation)):
        print(f"  stage {i}: {stage.words:3d} words  threshold "
              f"{stage.threshold:+.4f}  escalation {esc:.3f}", file=out)
    cal.save(args.output)
    print(f"calibration written to {args.output}", file=out)
    return 0


def _cmd_report(args, out):
    from .hardware import (
        epoch_time_grid,
        fig7_report,
        protection_overhead_report,
        workload_for_dataset,
    )
    from .hardware.platforms import CORTEX_A53

    rows = fig7_report(dim=args.dim)
    print("Fig. 7 (hardware model):", file=out)
    for r in rows:
        print(f"  {r.dataset:8s} {r.platform:5s} {r.phase:9s} "
              f"speedup {r.speedup:6.2f}x  energy {r.energy_efficiency:6.2f}x",
              file=out)
    hd, dnn = epoch_time_grid(workload_for_dataset("EMOTION", dim=args.dim),
                              CORTEX_A53, dims=(args.dim,),
                              hidden_configs=((1024, 1024),))
    ratio = dnn[(1024, 1024)] / hd[args.dim]
    print(f"per-epoch (Sec. 6.3): HDFace {hd[args.dim]:.2f}s vs "
          f"DNN {dnn[(1024, 1024)]:.2f}s ({ratio:.1f}x)", file=out)
    print(f"protection overhead (guarded class model, "
          f"R={args.guard_replicas}, scrub every query):", file=out)
    for p in protection_overhead_report(dim=args.dim,
                                        replicas=args.guard_replicas):
        print(f"  {p.platform:5s} infer {p.unguarded_cycles:8.0f} -> "
              f"{p.guarded_cycles:8.0f} cycles ({p.cycle_overhead:5.2f}x)  "
              f"energy {p.energy_overhead:5.2f}x  "
              f"repair {p.repair_cycles:8.0f} cycles", file=out)
    from .hardware import memory_protection_report

    mem_rows = memory_protection_report(dim=args.dim,
                                        tmr_replicas=max(args.guard_replicas,
                                                         3))
    tmr_bytes = {r.platform: r.resident_bytes
                 for r in mem_rows if r.scheme == "tmr"}
    print("memory protection schemes (resident bytes + scrub ops):",
          file=out)
    for m in mem_rows:
        ratio = tmr_bytes[m.platform] / m.resident_bytes
        print(f"  {m.platform:5s} {m.scheme:10s} R={m.replicas}  "
              f"{m.resident_bytes:8d} B ({ratio:5.2f}x lighter than TMR)  "
              f"scrub {m.scrub_cycles:8.0f} cycles  "
              f"repair {m.repair_cycles:8.0f} cycles", file=out)
    if args.incidents:
        counts = _incident_counts_from_json(args.incidents)
        print(f"incident counters ({args.incidents}):", file=out)
        if not counts:
            print("  (no incidents recorded)", file=out)
        for kind in sorted(counts):
            print(f"  {kind:20s} {counts[kind]:6d}", file=out)
    return 0


def _incident_counts_from_json(path):
    """Aggregate per-kind incident counters from a serving/chaos JSON.

    Accepts every shape the runtime writes: plain ``stats()`` payloads
    (``incidents`` is already a counts dict), chaos reports
    (``incidents`` is an ``IncidentLog.payload()`` with a ``counts``
    key), and fleet payloads (per-stream stats nested under ``streams``).
    Counters from every nesting level are summed.
    """
    import json

    with open(path) as fh:
        payload = json.load(fh)
    totals = {}

    def absorb(counts):
        for kind, n in counts.items():
            if isinstance(n, (int, float)):
                totals[kind] = totals.get(kind, 0) + int(n)

    def walk(node):
        if isinstance(node, dict):
            inc = node.get("incidents")
            if isinstance(inc, dict):
                counts = inc.get("counts", inc)
                if isinstance(counts, dict):
                    absorb(counts)
            for key, value in node.items():
                if key != "incidents":
                    walk(value)
        elif isinstance(node, list):
            for item in node:
                walk(item)

    walk(payload)
    return totals


def _random_scenes(n, scene_size, window, seed):
    """Seeded test scenes with 1-2 non-overlapping faces each."""
    from .pipeline import make_scene

    rng = np.random.default_rng(seed)
    margin = scene_size - window
    scenes = []
    for i in range(n):
        spots = [(int(rng.integers(0, margin + 1)),
                  int(rng.integers(0, margin + 1)))]
        for _ in range(8):  # second face, if a disjoint spot turns up
            y, x = (int(rng.integers(0, margin + 1)),
                    int(rng.integers(0, margin + 1)))
            if max(abs(y - spots[0][0]), abs(x - spots[0][1])) >= window:
                spots.append((y, x))
                break
        scenes.append(make_scene(scene_size, spots, window=window,
                                 seed_or_rng=seed + 1 + i))
    return scenes


def _cmd_robustness(args, out):
    from .datasets import make_face_dataset
    from .noise import detection_robustness
    from .pipeline import HDFacePipeline

    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    backends = ("dense",) if args.backend == "dense" else ("dense", "packed")
    attack = ("features", "model") if args.attack == "both" else (args.attack,)
    surfaces = tuple(s.strip() for s in (args.surfaces or "").split(",")
                     if s.strip())

    xtr, ytr = make_face_dataset(96, size=args.window, seed_or_rng=args.seed)
    print(f"training face model (D={args.dim}) ...", file=out)
    pipe = HDFacePipeline(2, dim=args.dim, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=args.seed).fit(xtr, ytr)
    scenes = _random_scenes(args.images, args.scene_size, args.window,
                            args.seed)
    n_truth = sum(len(t) for _, t in scenes)
    print(f"sweeping rates {rates} over {args.images} scenes "
          f"({n_truth} faces), backends {list(backends)}, "
          f"attack {list(attack)}"
          + (f", surfaces {list(surfaces)}" if surfaces else "")
          + " ...", file=out)
    res = detection_robustness(
        pipe, scenes, rates, window=args.window, stride=args.stride,
        backends=backends, seed_or_rng=args.seed + 1000, attack=attack,
        guard_replicas=args.guard_replicas, surfaces=surfaces)

    for backend, rate, row in res.rows():
        print(f"  {backend:6s} rate {rate:5.3f}  "
              f"recall {row['recall']:.3f}  precision {row['precision']:.3f}  "
              f"mean IoU {row['mean_iou']:.3f}  "
              f"({row['n_detections']} detections)", file=out)
    for backend in backends:
        print(f"  {backend:6s} worst recall drop vs clean: "
              f"{res.recall_drop(backend):.3f}", file=out)

    _write_results_json(args.output, res.payload(), out)

    if args.max_recall_drop is not None:
        worst = max(res.recall_drop(b) for b in backends)
        if worst > args.max_recall_drop:
            print(f"FAIL: recall drop {worst:.3f} exceeds "
                  f"--max-recall-drop {args.max_recall_drop}", file=out)
            return 1
        print(f"recall drop {worst:.3f} within tolerance "
              f"{args.max_recall_drop}", file=out)
    return 0


def _cmd_stream(args, out):
    from .datasets import make_face_dataset
    from .datasets.synth import moving_face_sequence
    from .pipeline import (HDFacePipeline, PyramidDetector,
                           SlidingWindowDetector, VideoStreamDetector)

    xtr, ytr = make_face_dataset(96, size=args.window, seed_or_rng=args.seed)
    print(f"training face model (D={args.dim}) ...", file=out)
    pipe = HDFacePipeline(2, dim=args.dim, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=args.seed).fit(xtr, ytr)
    frames, truth = moving_face_sequence(
        args.scene_size, args.frames, window=args.window, step=args.step,
        seed_or_rng=args.seed)
    profiler = None
    if args.profile:
        from .profiling import Profiler
        profiler = Profiler()
    detector = SlidingWindowDetector(pipe, window=args.window,
                                     stride=args.stride or args.window // 3,
                                     backend=args.backend)
    stream = VideoStreamDetector(
        PyramidDetector(detector, score_threshold=0.0),
        incremental=not args.no_incremental, queue_size=args.queue_size,
        policy=args.policy, profiler=profiler)
    print(f"streaming {args.frames} frames "
          f"({args.scene_size}px scene, face step {args.step}px, "
          f"{args.backend} backend, "
          f"incremental={'off' if args.no_incremental else 'on'}) ...",
          file=out)
    for result, (ty, tx, _) in zip(stream.run(frames), truth):
        top = result.tracks[0] if result.tracks else None
        where = (f"track {top.track_id} at ({top.y:5.1f},{top.x:5.1f}) "
                 f"score {top.score:+.3f}" if top else "no confirmed track")
        print(f"  frame {result.index:3d}  truth ({ty:3d},{tx:3d})  "
              f"{result.reuse['mode']:5s}  "
              f"{result.latency * 1e3:6.1f} ms  {where}", file=out)
    s = stream.stats()
    print(f"throughput: {s['fps']:.2f} frames/s  "
          f"(latency p50 {s['latency_p50'] * 1e3:.1f} ms, "
          f"max {s['latency_max'] * 1e3:.1f} ms)", file=out)
    print(f"delta updates: {s['delta_patched']} patched, "
          f"{s['delta_full']} full, {s['delta_reused']} reused; "
          f"pixel reuse {s['reused_pixel_fraction']:.1%}", file=out)
    print(f"tracks: {s['tracks_confirmed']} confirmed of "
          f"{s['tracks_alive']} alive", file=out)
    if profiler is not None:
        print(profiler.table(f"stream profile ({args.backend} backend)"),
              file=out)
    return 0


def _cmd_serve(args, out):
    import time

    from .datasets import make_face_dataset
    from .datasets.synth import moving_face_sequence
    from .pipeline import (HDFacePipeline, PyramidDetector,
                           SlidingWindowDetector)
    from .runtime import (ChaosScenario, ResilientVideoDetector, run_chaos,
                          save_runtime)

    xtr, ytr = make_face_dataset(96, size=args.window, seed_or_rng=args.seed)
    print(f"training face model (D={args.dim}) ...", file=out)
    pipe = HDFacePipeline(2, dim=args.dim, cell_size=8, magnitude="l1",
                          epochs=10, seed_or_rng=args.seed).fit(xtr, ytr)
    frames, truth = moving_face_sequence(
        args.scene_size, args.frames, window=args.window, step=args.step,
        seed_or_rng=args.seed)
    stride = args.stride or args.window // 3

    def make_detector():
        det = SlidingWindowDetector(pipe, window=args.window, stride=stride,
                                    backend=args.backend)
        return PyramidDetector(det, score_threshold=0.0)

    budget = args.budget
    if budget is None:
        # adaptive: 3x the median clean full-rung frame time on this
        # machine, sampled on *distinct* frames so the engine's scene
        # cache cannot fake a near-zero baseline
        cal = make_detector()
        samples = []
        for frame in frames[: min(3, len(frames))]:
            t0 = time.perf_counter()
            cal.detect(frame)
            samples.append(time.perf_counter() - t0)
        budget = 3.0 * sorted(samples)[len(samples) // 2]
        print(f"calibrated budget: {budget * 1e3:.1f} ms/frame "
              f"(3x clean median)", file=out)
    stall_timeout = args.stall_timeout or 4.0 * budget
    if args.streams > 1:
        return _serve_fleet(args, out, frames, truth, make_detector,
                            budget, stall_timeout)
    made = []

    def make_runtime(ladder=None, budget_override=None, **kwargs):
        kwargs.setdefault("budget", budget_override or budget)
        kwargs.setdefault("scrub_budget", args.scrub_budget)
        if args.planner:
            kwargs.setdefault("planner", True)
            kwargs.setdefault("replan_every", args.replan_every)
        if args.adapt:
            kwargs.setdefault("adapt", True)
            kwargs.setdefault("adapt_kwargs", {"seed_or_rng": args.seed})
        runtime = ResilientVideoDetector(
            make_detector(), ladder=ladder, stall_timeout=stall_timeout,
            queue_size=args.queue_size, policy="block", **kwargs)
        made.append(runtime)
        return runtime

    report = None
    if args.chaos:
        n = args.frames
        stall = args.stall or 3.0 * stall_timeout
        label_poison = {max(3 * n // 4, 3): "label"} if args.adapt else {}
        scenario = ChaosScenario(
            "cli-serve",
            stalls={max(n // 4, 1): stall},
            hard_stalls={max(n // 2, 2): stall},
            poison={max(n // 3, 1): "nan", max(2 * n // 3, 3): "shape"},
            label_poison=label_poison,
            fault_rate=args.fault_rate,
            seed=args.seed)
        print(f"chaos scenario: soft stall @{max(n // 4, 1)}, hard stall "
              f"@{max(n // 2, 2)}, poison @{sorted(scenario.poison)}, "
              f"datapath fault rate {args.fault_rate}"
              + (f", label poison @{sorted(label_poison)}"
                 if label_poison else ""), file=out)
        report = run_chaos(
            lambda ladder=None, budget=None: make_runtime(ladder, budget),
            frames, [[t] for t in truth], scenario,
            max_recall_drop=args.max_recall_drop,
            p95_tolerance=args.p95_tolerance)
        runtime = made[0]
        s = report["stats"]
        print(f"served {s['frames']} frames ({s['predicted']} predicted, "
              f"{s['cancelled']} cancelled, {s['quarantined']} quarantined, "
              f"{s['crashes']} crashes)", file=out)
        print(f"latency p50/p95/p99: {s['latency_p50'] * 1e3:.1f} / "
              f"{s['latency_p95'] * 1e3:.1f} / {s['latency_p99'] * 1e3:.1f} "
              f"ms submit-to-done; processing p95 {s['proc_p95'] * 1e3:.1f} "
              f"ms (budget {budget * 1e3:.1f} ms)", file=out)
        print(f"watchdog: {s['watchdog']['cancels']} cancels, "
              f"{s['watchdog']['restarts']} restarts; deepest rung "
              f"{report['deepest_rung_name']}", file=out)
        print(f"recall: chaos {report['recall_chaos']:.3f} vs rung-pinned "
              f"clean {report['recall_clean']:.3f} "
              f"(drop {report['recall_drop']:+.3f}, unserved "
              f"{report['frames_unserved']})", file=out)
        for gate, ok in report["gates"].items():
            print(f"  gate {gate:20s} {'PASS' if ok else 'FAIL'}", file=out)
    else:
        runtime = make_runtime()
        runtime.start()
        for i, frame in enumerate(frames):
            runtime.submit(frame, meta={"frame": i})
        runtime.stop()
        for r in runtime.completed:
            top = r.tracks[0] if r.tracks else None
            where = (f"track {top.track_id} at ({top.y:5.1f},{top.x:5.1f})"
                     if top else "no confirmed track")
            print(f"  frame {r.index:3d}  {r.mode:9s}  rung {r.rung:9s}  "
                  f"{r.latency * 1e3:6.1f} ms  {where}", file=out)
        s = runtime.stats()
        print(f"served {s['frames']} frames at {s['fps']:.2f} fps; "
              f"latency p50/p95/p99: {s['latency_p50'] * 1e3:.1f} / "
              f"{s['latency_p95'] * 1e3:.1f} / {s['latency_p99'] * 1e3:.1f} "
              f"ms (budget {budget * 1e3:.1f} ms, "
              f"{s['deadline_misses']} misses)", file=out)
        if s["rung_transitions"]:
            print(f"rung transitions: {s['rung_transitions']}", file=out)
        if s["incidents"]:
            print(f"incidents: {s['incidents']}", file=out)
        if args.planner:
            rungs = runtime.scheduler.ladder.rungs
            print(f"planner ladder: {', '.join(r.name for r in rungs)} "
                  f"({s['replans']} replans)", file=out)

    scrub_stats = made[0].stats().get("scrubber") if made else None
    if scrub_stats:
        print(f"scrubber: {scrub_stats['ticks']} ticks scanned "
              f"{scrub_stats['bytes_scanned']} B over "
              f"{len(scrub_stats['targets'])} surfaces; "
              f"{scrub_stats['detected']} detected, "
              f"{scrub_stats['repaired']} repaired, "
              f"{scrub_stats['unrepairable']} unrepairable", file=out)
    adapt_stats = made[0].stats().get("adapt") if made else None
    if adapt_stats:
        drift = adapt_stats["drift"]
        print(f"adapt: state {drift['state']} (shift {drift['shift']:+.3f}); "
              f"{adapt_stats['proposals']} proposals, "
              f"{adapt_stats['applied']} applied, "
              f"{adapt_stats['rejected']} rejected, "
              f"{adapt_stats['rollbacks']} rollbacks", file=out)
    if args.checkpoint and made:
        save_runtime(made[0], args.checkpoint)
        print(f"runtime checkpoint saved to {args.checkpoint}", file=out)
    if args.profile and made:
        print(made[0].profiler.table(
            f"serve profile ({args.backend} backend)"), file=out)
    if args.output:
        payload = report if report is not None else made[0].stats()
        _write_results_json(args.output, payload, out)
    if report is not None and not report["passed"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: chaos gates failed: {failed}", file=out)
        return 1
    return 0


def _serve_fleet(args, out, frames, truth, make_detector, budget,
                 stall_timeout):
    """The ``serve --streams N`` path: fleet dispatcher + batch gate."""
    from .runtime import ChaosScenario, FleetDispatcher, run_fleet_chaos

    fleet = FleetDispatcher(
        make_detector, budget=budget, max_streams=args.streams,
        batch_window=args.batch_window, stall_timeout=stall_timeout,
        queue_size=args.queue_size, policy="block", adapt=args.adapt,
        planner=args.planner, scrub_budget=args.scrub_budget,
        guard_kwargs={"seed_or_rng": args.seed} if args.adapt else None)
    names = [f"cam{i}" for i in range(args.streams)]
    for i, name in enumerate(names):
        fleet.add_stream(name, priority=float(i))
    print(f"fleet: {args.streams} streams sharing one packed datapath "
          f"(batch window {args.batch_window * 1e3:.1f} ms, budget "
          f"{budget * 1e3:.1f} ms/frame)", file=out)

    report = None
    if args.chaos:
        n = args.frames
        stall = args.stall or 3.0 * stall_timeout
        victim = names[0]
        label_poison = {max(2 * n // 3, 3): "label"} if args.adapt else {}
        scenario = ChaosScenario(
            "cli-fleet",
            stalls={max(n // 3, 1): stall},
            poison={max(n // 2, 2): "nan"},
            label_poison=label_poison,
            fault_rate=args.fault_rate,
            seed=args.seed)
        print(f"fleet chaos: victim {victim} (soft stall "
              f"@{max(n // 3, 1)}, poison @{max(n // 2, 2)}, fault rate "
              f"{args.fault_rate}"
              + (f", label poison @{sorted(label_poison)}"
                 if label_poison else "")
              + f"); {args.streams - 1} healthy streams "
              f"must hold p95", file=out)
        report = run_fleet_chaos(fleet, frames, [[t] for t in truth],
                                 {victim: scenario},
                                 p95_tolerance=args.p95_tolerance)
        for name, s in report["streams"].items():
            print(f"  {name:6s} {s['role']:7s}  {s['frames']:3d} frames  "
                  f"proc p95 {s['proc_p95'] * 1e3:7.1f} ms  recall "
                  f"{s['recall']:.3f}  watchdog "
                  f"{s['watchdog']['cancels']}c/"
                  f"{s['watchdog']['restarts']}r", file=out)
        for gate, ok in report["gates"].items():
            print(f"  gate {gate:20s} {'PASS' if ok else 'FAIL'}", file=out)
    else:
        fleet.start()
        for i, frame in enumerate(frames):
            for name in names:
                fleet.submit(name, frame, meta={"frame": i})
        fleet.stop()

    stats = fleet.stats()
    f = stats["fleet"]
    print(f"fleet served {f['frames']} frames at {f['aggregate_fps']:.2f} "
          f"aggregate fps; gate: {f['gate']['batches']} batches, "
          f"{f['gate']['mean_requests']:.1f} scans/batch (max "
          f"{f['gate']['max_bundles']} streams together)", file=out)
    actions = f["scheduler"]["actions"]
    if actions:
        print(f"fleet scheduler actions: {actions}", file=out)
    if f.get("scrubber"):
        sc = f["scrubber"]
        print(f"fleet scrubber: {sc['ticks']} ticks scanned "
              f"{sc['bytes_scanned']} B over {len(sc['targets'])} shared "
              f"surfaces; {sc['detected']} detected, {sc['repaired']} "
              f"repaired, {sc['unrepairable']} unrepairable", file=out)
    if args.profile:
        print(f["profile_table"], file=out)
    if args.output:
        payload = report if report is not None else stats
        _write_results_json(args.output, payload, out)
    if report is not None and not report["passed"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: fleet chaos gates failed: {failed}", file=out)
        return 1
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "detect": _cmd_detect,
        "calibrate": _cmd_calibrate,
        "report": _cmd_report,
        "robustness": _cmd_robustness,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

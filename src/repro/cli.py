"""Command-line interface: train, evaluate, detect and report.

Run as ``python -m repro <command>``:

``train``
    Generate a synthetic dataset, train an HDFace pipeline, report
    held-out accuracy and (optionally) save the model to ``.npz``.
``evaluate``
    Load a saved model and score it on freshly generated data.
``detect``
    Load (or quickly train) a face model and scan a generated scene,
    printing the detection map and writing a PGM overlay.
``report``
    Print the hardware-model efficiency report (Fig. 7) and the
    Sec. 6.3 per-epoch comparison.

All data is synthetic and seeded, so every invocation is reproducible.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser():
    """The argparse grammar (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HDFace: holographic face detection (DAC'22 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser("train", help="train an HDFace pipeline")
    train.add_argument("--task", choices=("face", "emotion"), default="face")
    train.add_argument("--dim", type=int, default=4096)
    train.add_argument("--size", type=int, default=32, help="image side")
    train.add_argument("--train-samples", type=int, default=120)
    train.add_argument("--test-samples", type=int, default=60)
    train.add_argument("--epochs", type=int, default=10)
    train.add_argument("--magnitude", choices=("l1", "l2_scaled"), default="l1")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", metavar="PATH", help="write the model .npz")

    evaluate = sub.add_parser("evaluate", help="score a saved model")
    evaluate.add_argument("model", help="path to a saved .npz model")
    evaluate.add_argument("--task", choices=("face", "emotion"), default="face")
    evaluate.add_argument("--size", type=int, default=32)
    evaluate.add_argument("--samples", type=int, default=60)
    evaluate.add_argument("--seed", type=int, default=1)

    detect = sub.add_parser("detect", help="scan a synthetic scene")
    detect.add_argument("--model", help="saved model (trains one if omitted)")
    detect.add_argument("--dim", type=int, default=2048)
    detect.add_argument("--scene-size", type=int, default=96)
    detect.add_argument("--window", type=int, default=24)
    detect.add_argument("--seed", type=int, default=7)
    detect.add_argument("--stride", type=int, default=None,
                        help="window step in pixels (default: window / 2)")
    detect.add_argument("--engine", choices=("shared", "perwindow", "legacy"),
                        default="shared",
                        help="shared-feature engine (fast), keyed per-window "
                             "reference, or the legacy crop path")
    detect.add_argument("--backend", choices=("dense", "packed"),
                        default="dense",
                        help="dense float hot path, or bit-packed uint64 "
                             "XOR+popcount (shared engine only)")
    detect.add_argument("--workers", type=int, default=1,
                        help="threads for the strip-parallel fields pass "
                             "(shared engine)")
    detect.add_argument("--profile", action="store_true",
                        help="print stage timings, op counts and the modeled "
                             "Cortex-A53 time for the scan")
    detect.add_argument("--output", metavar="PGM", help="overlay image path")

    report = sub.add_parser("report", help="hardware efficiency report")
    report.add_argument("--dim", type=int, default=4096)
    return parser


def _make_data(task, n, size, seed):
    from .datasets import make_emotion_dataset, make_face_dataset
    maker = make_emotion_dataset if task == "emotion" else make_face_dataset
    return maker(n, size=size, seed_or_rng=seed)


def _cmd_train(args, out):
    from .pipeline import HDFacePipeline
    from .pipeline.serialization import save_pipeline

    n_classes = 7 if args.task == "emotion" else 2
    xtr, ytr = _make_data(args.task, args.train_samples, args.size, args.seed)
    xte, yte = _make_data(args.task, args.test_samples, args.size, args.seed + 1)
    print(f"training HDFace (task={args.task}, D={args.dim}, "
          f"{args.train_samples} samples) ...", file=out)
    pipe = HDFacePipeline(n_classes, dim=args.dim, cell_size=8,
                          magnitude=args.magnitude, epochs=args.epochs,
                          seed_or_rng=args.seed)
    pipe.fit(xtr, ytr)
    print(f"train accuracy: {pipe.score(xtr, ytr):.3f}", file=out)
    print(f"test accuracy : {pipe.score(xte, yte):.3f}", file=out)
    if args.save:
        save_pipeline(pipe, args.save)
        print(f"model saved to {args.save}", file=out)
    return 0


def _cmd_evaluate(args, out):
    from .pipeline.serialization import load_pipeline

    pipe = load_pipeline(args.model, seed_or_rng=args.seed)
    x, y = _make_data(args.task, args.samples, args.size, args.seed)
    print(f"accuracy on {args.samples} fresh samples: "
          f"{pipe.score(x, y):.3f}", file=out)
    return 0


def _cmd_detect(args, out):
    from .pipeline import HDFacePipeline, SlidingWindowDetector, make_scene
    from .viz import ascii_map, render_detection, write_pgm

    if args.model:
        from .pipeline.serialization import load_pipeline
        pipe = load_pipeline(args.model, seed_or_rng=args.seed)
    else:
        from .datasets import make_face_dataset
        xtr, ytr = make_face_dataset(96, size=args.window, seed_or_rng=args.seed)
        pipe = HDFacePipeline(2, dim=args.dim, cell_size=8, magnitude="l1",
                              epochs=10, seed_or_rng=args.seed)
        pipe.fit(xtr, ytr)
    rng = np.random.default_rng(args.seed)
    spots = []
    margin = args.scene_size - args.window
    for _ in range(2):
        spots.append((int(rng.integers(0, margin + 1)),
                      int(rng.integers(0, margin + 1))))
    scene, truth = make_scene(args.scene_size, spots, window=args.window,
                              seed_or_rng=args.seed)
    profiler = None
    if args.profile:
        from .profiling import Profiler
        profiler = Profiler()
    detector = SlidingWindowDetector(pipe, window=args.window,
                                     stride=args.stride or args.window // 2,
                                     engine=args.engine, profiler=profiler,
                                     backend=args.backend,
                                     workers=args.workers)
    result = detector.scan(scene)
    print(f"faces pasted at {truth}", file=out)
    print("detection map (# = face window):", file=out)
    print(ascii_map(result.detections), file=out)
    if profiler is not None:
        n_windows = result.scores.size
        seconds = profiler.total_seconds()
        print(profiler.table(
            f"profile ({args.engine} engine, {args.backend} backend)"),
            file=out)
        print(f"throughput: {n_windows / seconds:.1f} windows/s "
              f"({n_windows} windows in {seconds:.3f}s)", file=out)
        totals = profiler.op_totals()
        if totals:
            from .hardware.opcount import profile_from_counts
            from .hardware.platforms import CORTEX_A53
            prof = profile_from_counts(totals, label=f"{args.engine} scan")
            print(f"modeled Cortex-A53 time for the counted ops: "
                  f"{CORTEX_A53.time(prof):.3f}s", file=out)
    if args.output:
        write_pgm(args.output, render_detection(scene, result))
        print(f"overlay written to {args.output}", file=out)
    return 0


def _cmd_report(args, out):
    from .hardware import epoch_time_grid, fig7_report, workload_for_dataset
    from .hardware.platforms import CORTEX_A53

    rows = fig7_report(dim=args.dim)
    print("Fig. 7 (hardware model):", file=out)
    for r in rows:
        print(f"  {r.dataset:8s} {r.platform:5s} {r.phase:9s} "
              f"speedup {r.speedup:6.2f}x  energy {r.energy_efficiency:6.2f}x",
              file=out)
    hd, dnn = epoch_time_grid(workload_for_dataset("EMOTION", dim=args.dim),
                              CORTEX_A53, dims=(args.dim,),
                              hidden_configs=((1024, 1024),))
    ratio = dnn[(1024, 1024)] / hd[args.dim]
    print(f"per-epoch (Sec. 6.3): HDFace {hd[args.dim]:.2f}s vs "
          f"DNN {dnn[(1024, 1024)]:.2f}s ({ratio:.1f}x)", file=out)
    return 0


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "train": _cmd_train,
        "evaluate": _cmd_evaluate,
        "detect": _cmd_detect,
        "report": _cmd_report,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Hypervector capacity analysis: how much a bundle can memorize.

Section 6.3 of the paper attributes the accuracy-vs-dimensionality trend
to "the capacity of each hypervector to learn and memorize information".
This module quantifies that with the classical Kanerva analysis:

* a bundle of ``n`` random bipolar hypervectors keeps expected similarity
  ``delta ~ sqrt(2 / (pi n))`` to each member (majority-vote attenuation);
* a member is still recoverable by cleanup against ``k`` distractors while
  that similarity stands a few standard deviations (``~1/sqrt(D)``) above
  zero - giving the classic ``n_max = O(D / log k)`` capacity law.

Both the closed forms and Monte-Carlo measurement harnesses are provided;
the measurement is what the capacity bench plots.
"""

from __future__ import annotations

import numpy as np

from .hypervector import as_rng, random_hypervector
from .ops import bundle, nearest, similarity

__all__ = [
    "expected_member_similarity",
    "capacity_estimate",
    "measure_member_similarity",
    "measure_recall_accuracy",
]


def expected_member_similarity(n_items):
    """Expected ``delta(bundle, member)`` for a bundle of ``n`` random HVs.

    For large odd ``n``, the majority of ``n`` i.i.d. signs agrees with any
    single one with probability ``1/2 + 1/sqrt(2 pi n)`` (normal
    approximation), giving ``delta ~ sqrt(2 / (pi n))``.
    """
    if n_items <= 0:
        raise ValueError("n_items must be positive")
    if n_items == 1:
        return 1.0
    return float(np.sqrt(2.0 / (np.pi * n_items)))


def capacity_estimate(dim, n_distractors, sigma_margin=4.0):
    """Largest bundle size whose members stay recoverable by cleanup.

    Recovery needs the member similarity ``sqrt(2/(pi n))`` to exceed the
    distractor noise floor ``sigma_margin / sqrt(D)`` (a few standard
    deviations, widened with the distractor count):

    ``n_max ~ 2 D / (pi * margin^2)`` with
    ``margin = sigma_margin * sqrt(log(k+1))``-ish growth in ``k``.
    """
    if dim <= 0 or n_distractors < 0:
        raise ValueError("dim must be positive, n_distractors non-negative")
    margin = sigma_margin * np.sqrt(max(np.log(n_distractors + 2), 1.0))
    return max(int(2.0 * dim / (np.pi * margin**2)), 1)


def measure_member_similarity(dim, n_items, trials=20, seed_or_rng=None):
    """Monte-Carlo mean ``delta(bundle, member)``."""
    rng = as_rng(seed_or_rng)
    sims = []
    for _ in range(trials):
        hvs = random_hypervector(dim, rng, shape=(n_items,))
        b = bundle(hvs, rng=rng)
        sims.append(float(similarity(b, hvs[0])))
    return float(np.mean(sims))


def measure_recall_accuracy(dim, n_items, n_distractors=100, trials=20,
                            seed_or_rng=None):
    """Fraction of bundle members correctly recovered by cleanup.

    For each trial, bundle ``n_items`` random vectors, then ask the cleanup
    (nearest of member + distractors) to identify one member.
    """
    rng = as_rng(seed_or_rng)
    hits = 0
    for _ in range(trials):
        members = random_hypervector(dim, rng, shape=(n_items,))
        distractors = random_hypervector(dim, rng, shape=(n_distractors,))
        memory = np.concatenate([members[:1], distractors])
        b = bundle(members, rng=rng)
        hits += int(nearest(b.astype(np.float64), memory) == 0)
    return hits / trials

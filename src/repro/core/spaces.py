"""Item and level memories: symbol and pixel-intensity hypervector codebooks.

Two codebooks appear in HDFace:

* :class:`ItemMemory` - an associative store of independent random
  hypervectors for discrete symbols (cell positions, histogram bins, class
  labels).  Independent random hypervectors in high dimension are nearly
  orthogonal, so bound/bundled records can be decomposed again by a cleanup
  search.

* :class:`LevelMemory` - the paper's *base hypervector generation*
  (Section 3, Fig. 1a): two random hypervectors represent the extreme
  colours (black/white) and intermediate intensities are produced by vector
  quantization, taking a growing fraction of components from one extreme so
  that ``delta(H_mid, H_white) ~= delta(H_mid, H_black) ~= 0.5``.
"""

from __future__ import annotations

import numpy as np

from .hypervector import as_rng, random_hypervector
from .ops import nearest, similarity

__all__ = ["ItemMemory", "LevelMemory"]


class ItemMemory:
    """Associative memory of independent random hypervectors.

    Parameters
    ----------
    dim:
        Hypervector dimensionality.
    seed_or_rng:
        Source of randomness; vectors are drawn lazily on first access so
        the memory only stores the symbols actually used.

    Examples
    --------
    >>> mem = ItemMemory(dim=1024, seed_or_rng=0)
    >>> face = mem["face"]
    >>> mem.cleanup(face)
    'face'
    """

    def __init__(self, dim, seed_or_rng=None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self._rng = as_rng(seed_or_rng)
        self._vectors = {}
        self._order = []

    def __getitem__(self, symbol):
        """Return (drawing if needed) the hypervector for ``symbol``."""
        if symbol not in self._vectors:
            self._vectors[symbol] = random_hypervector(self.dim, self._rng)
            self._order.append(symbol)
        return self._vectors[symbol]

    def __contains__(self, symbol):
        return symbol in self._vectors

    def __len__(self):
        return len(self._vectors)

    def symbols(self):
        """Symbols in insertion order."""
        return list(self._order)

    def matrix(self):
        """All stored vectors stacked ``(n_symbols, dim)`` in insertion order."""
        if not self._order:
            return np.zeros((0, self.dim), dtype=np.int8)
        return np.stack([self._vectors[s] for s in self._order])

    def cleanup(self, query, metric="cosine"):
        """Return the stored symbol most similar to ``query``.

        This is HDC's noise-tolerant associative recall: even heavily
        corrupted queries resolve to the right symbol because independent
        codewords sit ~0 similarity apart.
        """
        if not self._order:
            raise LookupError("cleanup on empty ItemMemory")
        idx = int(nearest(np.asarray(query), self.matrix(), metric=metric))
        return self._order[idx]


class LevelMemory:
    """Correlative intensity codebook between two extreme hypervectors.

    ``levels`` hypervectors interpolate between ``low`` (e.g. black) and
    ``high`` (e.g. white): level ``j`` copies a random - but *nested* -
    subset of ``round(j / (levels-1) * D)`` components from the high vector
    and the rest from the low vector.  Nesting the flipped subsets makes the
    code *correlative*: adjacent intensities get nearly identical
    hypervectors, distant intensities nearly orthogonal ones, exactly the
    property HOG gradients need to survive the trip through hyperspace.

    Parameters
    ----------
    dim:
        Hypervector dimensionality ``D``.
    levels:
        Number of quantization levels (the paper's ``2**n`` for ``n``-bit
        pixels; 256 by default).
    low, high:
        Optional explicit extreme hypervectors; drawn at random if omitted.
    seed_or_rng:
        Randomness source for the extremes and for the flip order.
    """

    def __init__(self, dim, levels=256, low=None, high=None, seed_or_rng=None):
        if levels < 2:
            raise ValueError(f"levels must be >= 2, got {levels}")
        rng = as_rng(seed_or_rng)
        self.dim = int(dim)
        self.levels = int(levels)
        self.low = random_hypervector(dim, rng) if low is None else np.asarray(low, np.int8)
        self.high = random_hypervector(dim, rng) if high is None else np.asarray(high, np.int8)
        if self.low.shape != (self.dim,) or self.high.shape != (self.dim,):
            raise ValueError("low/high must have shape (dim,)")
        # A single random permutation of component indices defines which
        # components flip first; level j takes the first k_j permuted
        # components from `high`, guaranteeing nested (correlative) codes.
        self._flip_order = rng.permutation(self.dim)
        counts = np.round(np.linspace(0.0, self.dim, self.levels)).astype(np.int64)
        table = np.tile(self.low, (self.levels, 1))
        for j, k in enumerate(counts):
            idx = self._flip_order[:k]
            table[j, idx] = self.high[idx]
        self._table = table.astype(np.int8)

    @property
    def table(self):
        """The full ``(levels, dim)`` codebook (read-only view)."""
        view = self._table.view()
        view.flags.writeable = False
        return view

    def encode_level(self, level):
        """Hypervector(s) for integer level indices in ``[0, levels)``."""
        level = np.asarray(level)
        if ((level < 0) | (level >= self.levels)).any():
            raise ValueError("level index out of range")
        return self._table[level]

    def encode(self, value, vmin=0.0, vmax=1.0):
        """Hypervector(s) for continuous values by nearest-level quantization.

        ``value`` may be a scalar or an array (e.g. a whole image); the
        result appends a dimension axis, so an ``(H, W)`` image becomes the
        ``(H, W, D)`` stack of pixel hypervectors of Fig. 1a.
        """
        value = np.asarray(value, dtype=np.float64)
        if vmax <= vmin:
            raise ValueError("vmax must exceed vmin")
        frac = np.clip((value - vmin) / (vmax - vmin), 0.0, 1.0)
        idx = np.round(frac * (self.levels - 1)).astype(np.int64)
        return self._table[idx]

    def decode(self, hv):
        """Recover the level fraction in ``[0, 1]`` most similar to ``hv``.

        Uses the similarity to the extremes rather than a full table scan:
        ``delta(hv, high)`` grows linearly with the flipped fraction.
        """
        hv = np.asarray(hv)
        sim_high = similarity(hv, self.high)
        sim_low = similarity(hv, self.low)
        # sim_high - sim_low spans ~[-1, 1] from level 0 to level L-1.
        return np.clip((sim_high - sim_low + 1.0) / 2.0, 0.0, 1.0)

"""The classical HDC algebra: bundling, binding, permutation, similarity.

These are the three primitives the paper builds on (Section 4.1):

* **Bundling** ``(+)`` - elementwise majority; memorizes a set of
  hypervectors into one that stays similar to each input.
* **Binding** ``(*)`` - elementwise product; associates two hypervectors
  into one that is dissimilar to both but preserves distances.
* **Permutation** ``(rho)`` - a single rotational shift; encodes position.

Similarity ``delta`` follows the paper's definition
``delta(V1, V2) = (V1 . V2) / D`` plus the Hamming variant that the binary
hardware uses.  All functions are batched over leading axes.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bundle",
    "bind",
    "permute",
    "similarity",
    "cosine_similarity",
    "hamming_similarity",
    "nearest",
]


def bundle(hvs, rng=None, axis=0):
    """Bundle hypervectors by elementwise majority vote.

    Parameters
    ----------
    hvs:
        Array of shape ``(n, ..., D)`` (or any axis selected by ``axis``)
        holding the hypervectors to memorize together.
    rng:
        Optional generator used to break ties (even vote counts).  Without a
        generator, ties break deterministically toward ``+1``; passing a
        generator gives the unbiased randomized tie-break that keeps bundles
        of two vectors exactly half-similar to each in expectation.
    axis:
        Axis along which to bundle.

    Returns
    -------
    numpy.ndarray
        ``int8`` bipolar bundle with the bundling axis removed.
    """
    stack = np.asarray(hvs)
    total = stack.sum(axis=axis, dtype=np.int64)
    out = np.sign(total).astype(np.int8)
    ties = out == 0
    if ties.any():
        if rng is None:
            out[ties] = 1
        else:
            out[ties] = rng.choice(np.array([-1, 1], dtype=np.int8), size=int(ties.sum()))
    return out


def bind(a, b):
    """Bind two hypervectors with the elementwise product (self-inverse)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.dtype == np.int8 and b.dtype == np.int8:
        # Bipolar fast path: the product of +-1 values stays within int8.
        return a * b
    return (a.astype(np.int16) * b.astype(np.int16)).astype(np.int8)


def permute(hv, shifts=1):
    """Apply the rotational permutation ``rho`` (roll along the last axis).

    ``permute(hv, k)`` rotates by ``k``; negative ``k`` inverts.  Rotation
    preserves all pairwise similarities while making the result nearly
    orthogonal to the input, which is why Section 4 uses it to preserve
    position - and why :mod:`repro.core.stochastic` uses it to decorrelate an
    operand from itself before squaring.
    """
    return np.roll(np.asarray(hv), shifts, axis=-1)


def similarity(a, b):
    """The paper's similarity ``delta(a, b) = (a . b) / D``.

    Accepts batched inputs that broadcast against each other; the dot product
    is taken over the last axis.  For bipolar inputs the result lies in
    ``[-1, 1]``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return (a * b).sum(axis=-1) / a.shape[-1]


def cosine_similarity(a, b, eps=1e-12):
    """Cosine similarity; identical to ``delta`` for bipolar vectors but also
    valid for the float class-accumulator hypervectors used in learning."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    num = (a * b).sum(axis=-1)
    den = np.linalg.norm(a, axis=-1) * np.linalg.norm(b, axis=-1)
    return num / np.maximum(den, eps)


def hamming_similarity(a, b):
    """Fraction of matching components, in ``[0, 1]``.

    Related to ``delta`` by ``delta = 2 * hamming_similarity - 1`` for
    bipolar vectors; this is the metric the packed binary backend computes
    with XOR + popcount.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    return (a == b).mean(axis=-1)


def nearest(query, memory, metric="cosine"):
    """Index of the most similar row of ``memory`` for each query.

    Parameters
    ----------
    query:
        Array ``(..., D)``.
    memory:
        Array ``(k, D)`` of reference hypervectors (e.g. class vectors).
    metric:
        ``"cosine"``, ``"dot"`` (the paper's delta) or ``"hamming"``.

    Returns
    -------
    numpy.ndarray
        Integer indices shaped like ``query`` without its last axis.
    """
    query = np.asarray(query, dtype=np.float64)
    memory = np.asarray(memory, dtype=np.float64)
    if metric == "cosine":
        scores = cosine_similarity(query[..., None, :], memory)
    elif metric == "dot":
        scores = similarity(query[..., None, :], memory)
    elif metric == "hamming":
        scores = hamming_similarity(query[..., None, :], memory)
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return scores.argmax(axis=-1)

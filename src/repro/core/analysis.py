"""Error analysis of the stochastic primitives (reproduces paper Fig. 2).

Every stochastic primitive decodes to its true value plus zero-mean noise
whose standard deviation shrinks as ``1 / sqrt(D)``.  This module provides
both the closed-form predictions and Monte-Carlo measurement harnesses; the
Fig. 2 bench plots measured mean absolute error against dimensionality for
construction, weighted average, and multiplication, and checks the
``1/sqrt(D)`` decay.

Theory (signs ``s_i`` i.i.d. with mean ``a``):

* construction: ``Var[decode] = (1 - a^2) / D``
* average (p=1/2): a fresh Bernoulli selection between two sign streams, so
  ``Var = (1 - m^2) / D`` with ``m = (a + b) / 2``
* multiplication: product stream has mean ``ab``;
  ``Var = (1 - (ab)^2) / D`` for independent operands.
"""

from __future__ import annotations

import numpy as np

from .hypervector import as_rng
from .stochastic import StochasticCodec

__all__ = [
    "construction_std",
    "average_std",
    "multiplication_std",
    "measure_construction_error",
    "measure_average_error",
    "measure_multiplication_error",
    "measure_sqrt_error",
    "measure_divide_error",
    "error_vs_dimension",
]


def construction_std(value, dim):
    """Predicted std of ``decode(construct(value))`` about ``value``."""
    value = np.asarray(value, dtype=np.float64)
    return np.sqrt(np.maximum(1.0 - value**2, 0.0) / dim)


def average_std(a, b, dim, p=0.5):
    """Predicted std of the decoded weighted average of ``a`` and ``b``."""
    m = p * np.asarray(a, np.float64) + (1 - p) * np.asarray(b, np.float64)
    return np.sqrt(np.maximum(1.0 - m**2, 0.0) / dim)


def multiplication_std(a, b, dim):
    """Predicted std of the decoded product of independent ``a``, ``b``."""
    ab = np.asarray(a, np.float64) * np.asarray(b, np.float64)
    return np.sqrt(np.maximum(1.0 - ab**2, 0.0) / dim)


def _sample_values(n, rng, low=-1.0, high=1.0):
    return rng.uniform(low, high, size=n)


def measure_construction_error(dim, trials=200, seed_or_rng=None):
    """Mean absolute decode error of construction over random values."""
    rng = as_rng(seed_or_rng)
    codec = StochasticCodec(dim, rng)
    values = _sample_values(trials, rng)
    decoded = codec.decode(codec.construct(values))
    return float(np.abs(decoded - values).mean())


def measure_average_error(dim, trials=200, seed_or_rng=None):
    """Mean absolute error of the stochastic average of random value pairs."""
    rng = as_rng(seed_or_rng)
    codec = StochasticCodec(dim, rng)
    a = _sample_values(trials, rng)
    b = _sample_values(trials, rng)
    avg = codec.add_half(codec.construct(a), codec.construct(b))
    return float(np.abs(codec.decode(avg) - (a + b) / 2).mean())


def measure_multiplication_error(dim, trials=200, seed_or_rng=None):
    """Mean absolute error of the stochastic product of random value pairs."""
    rng = as_rng(seed_or_rng)
    codec = StochasticCodec(dim, rng)
    a = _sample_values(trials, rng)
    b = _sample_values(trials, rng)
    prod = codec.multiply(codec.construct(a), codec.construct(b))
    return float(np.abs(codec.decode(prod) - a * b).mean())


def measure_sqrt_error(dim, trials=50, iters=12, seed_or_rng=None):
    """Mean absolute error of the binary-search square root on [0, 1]."""
    rng = as_rng(seed_or_rng)
    codec = StochasticCodec(dim, rng)
    a = _sample_values(trials, rng, low=0.0, high=1.0)
    root = codec.sqrt(codec.construct(a), iters=iters)
    return float(np.abs(codec.decode(root) - np.sqrt(a)).mean())


def measure_divide_error(dim, trials=50, iters=12, seed_or_rng=None):
    """Mean absolute error of binary-search division with ``|a| <= |b|``."""
    rng = as_rng(seed_or_rng)
    codec = StochasticCodec(dim, rng)
    b = rng.uniform(0.3, 1.0, size=trials) * rng.choice([-1.0, 1.0], size=trials)
    ratio = rng.uniform(-1.0, 1.0, size=trials)
    a = ratio * b
    q = codec.divide(codec.construct(a), codec.construct(b), iters=iters)
    return float(np.abs(codec.decode(q) - ratio).mean())


def error_vs_dimension(dims, operation="construction", trials=200, seed=0):
    """Measured mean absolute error for each dimensionality in ``dims``.

    ``operation`` is one of ``construction``, ``average``, ``multiplication``,
    ``sqrt``, ``divide``.  Returns a dict ``{dim: error}`` - the data series
    behind Fig. 2.
    """
    measure = {
        "construction": measure_construction_error,
        "average": measure_average_error,
        "multiplication": measure_multiplication_error,
        "sqrt": measure_sqrt_error,
        "divide": measure_divide_error,
    }.get(operation)
    if measure is None:
        raise ValueError(f"unknown operation {operation!r}")
    return {int(d): measure(int(d), trials=trials, seed_or_rng=seed) for d in dims}

"""Position-keyed deterministic noise streams for stochastic hypervector ops.

The :class:`repro.core.stochastic.StochasticCodec` draws its randomness from
a *stateful* generator: the bits a fair-coin average consumes depend on every
draw that happened before it.  That is fine for one-shot extraction, but it
makes shared computation impossible to validate - a sliding-window detector
that extracts overlapping windows from cached whole-image intermediates can
never reproduce what a per-window re-extraction would have drawn.

:class:`KeyedNoise` removes the order dependence.  Each ``(seed, stage,
row)`` triple names one reproducible stream (a counter-based Philox
generator keyed by a hash of the stage name mixed with the row index), and
asking for a row of a stage always replays the same values no matter how
many other draws happened in between.  A consumer that addresses its draws
by *absolute scene position* - generate the rows its region covers, slice
the columns of interest - therefore gets bitwise-identical randomness
whether it processes the scene in one pass, in cache-sized row strips,
window by window, or in any other decomposition.  This is the property the
shared-feature detection engine's equivalence test rests on (see
``docs/performance.md``).

Row granularity (rather than one monolithic stream per stage) is what makes
the addressing cheap: a consumer touching rows ``[r0, r1)`` generates only
those rows' streams, so strip-wise extraction pays no redundant RNG.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["KeyedNoise", "RematerializingItemMemory", "replay_generator",
           "stage_key"]

_MASK63 = (1 << 63) - 1
_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def stage_key(stage):
    """Stable 64-bit key for a stage name (independent of ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2s(str(stage).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _mix(value):
    """splitmix64 finalizer: decorrelates sequential key material."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


class KeyedNoise:
    """Deterministic, (stage, row)-addressable randomness source.

    Parameters
    ----------
    seed:
        Base seed shared by every stream this instance produces.  Two
        instances with the same seed replay identical streams.

    Examples
    --------
    >>> noise = KeyedNoise(0)
    >>> a = noise.coin_mask("gx", 3, 2, 64)     # rows 3-4, 64 lanes each
    >>> b = noise.coin_mask("gx", 3, 2, 64)     # replay, any time later
    >>> bool((a == b).all())
    True
    >>> c = noise.coin_mask("gx", 4, 1, 64)     # row 4 alone: same values
    >>> bool((a[1] == c[0]).all())
    True
    """

    def __init__(self, seed):
        self.seed = int(seed) & _MASK63
        self._stage_keys = {}

    def _row_generator(self, stage, row):
        """A fresh counter-based generator for ``(seed, stage, row)``."""
        skey = self._stage_keys.get(stage)
        if skey is None:
            skey = stage_key(stage)
            self._stage_keys[stage] = skey
        key2 = _mix((skey + int(row) * _GOLDEN) & _MASK64)
        return np.random.Generator(
            np.random.Philox(key=np.array([self.seed, key2], dtype=np.uint64))
        )

    # ------------------------------------------------------------------
    def coin_mask(self, stage, row0, n_rows, row_elems):
        """Fair-coin selection masks: ``(n_rows, row_elems)`` int8, 0 / -1.

        Row ``i`` of the result is the stream of absolute row ``row0 + i``,
        regardless of how the request is split.  The layout matches what
        :meth:`StochasticCodec.average` uses for its 0.5-weight fast path,
        so ``(a & m) | (b & ~m)`` implements the stochastic half-sum.
        """
        n_rows = int(n_rows)
        row_elems = int(row_elems)
        n_bytes = (row_elems + 7) // 8
        buf = np.empty((n_rows, n_bytes), dtype=np.uint8)
        for i in range(n_rows):
            gen = self._row_generator(stage, int(row0) + i)
            buf[i] = gen.integers(0, 256, size=n_bytes, dtype=np.uint8)
        bits = np.unpackbits(buf, axis=1)[:, :row_elems]
        return (0 - bits).view(np.int8)

    def uniform(self, stage, row0, n_rows, row_elems):
        """float32 uniforms in [0, 1): ``(n_rows, row_elems)``.

        Same row addressing as :meth:`coin_mask`; used for the stochastic
        construction draws.
        """
        n_rows = int(n_rows)
        row_elems = int(row_elems)
        buf = np.empty((n_rows, row_elems), dtype=np.float32)
        for i in range(n_rows):
            gen = self._row_generator(stage, int(row0) + i)
            buf[i] = gen.random(row_elems, dtype=np.float32)
        return buf


def replay_generator(state):
    """Fresh :class:`numpy.random.Generator` replaying a captured state.

    ``state`` is a ``bit_generator.state`` dict captured *before* some draw;
    the returned generator reproduces that draw bitwise.  This is the
    primitive behind rematerializable item memories: capture the state,
    let the original generator advance, regenerate on demand.
    """
    bitgen = getattr(np.random, state["bit_generator"])()
    bitgen.state = state
    return np.random.Generator(bitgen)


class RematerializingItemMemory:
    """An item memory that can be *recomputed* instead of trusted.

    HDC item memories (base / level / position hypervectors) are pure
    functions of their generator seed, so keeping them resident is a
    choice, not a necessity.  This wrapper holds the zero-argument
    ``regen`` closure that reproduces the array bitwise and offers three
    store policies:

    ``store``
        Resident array, no protection - the classic baseline.  Bit errors
        persist until someone else notices.
    ``verify``
        Resident array plus an 8-byte content digest.  :meth:`scrub`
        detects corruption and repairs it by exact regeneration.
    ``remat``
        Nothing resident beyond the digest: every :meth:`array` call
        regenerates.  ~0 resident bytes, and corruption is structurally
        impossible - there is no long-lived copy to corrupt.

    All three policies return bitwise-identical arrays (test-enforced),
    so the policy is purely a memory/compute trade.
    """

    POLICIES = ("store", "verify", "remat")

    def __init__(self, regen, policy="store", name="item", golden=None,
                 on_repair=None):
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; expected one of {self.POLICIES}")
        self._regen = regen
        self.policy = policy
        self.name = str(name)
        self._on_repair = on_repair
        # ``golden`` lets a caller hand over an already-materialized copy
        # (e.g. one built by the live generator whose state ``regen``
        # replays) instead of paying a second regeneration here.
        golden = np.asarray(regen() if golden is None else golden)
        self.shape = golden.shape
        self.dtype = golden.dtype
        self._digest = self._hash(golden)
        self._resident = golden if policy in ("store", "verify") else None
        self.accesses = 0
        self.remats = 0
        self.scrub_checks = 0
        self.scrub_repairs = 0

    @classmethod
    def from_array(cls, arr, policy="store", name="item", on_repair=None):
        """Adopt an externally produced array (e.g. a deserialized table).

        A pristine private copy becomes the regeneration source, so the
        ``verify`` / ``remat`` policies work for memories whose generator
        state was not captured - at the cost of keeping that copy
        resident inside the closure.
        """
        pristine = np.array(arr, copy=True)
        pristine.setflags(write=False)
        return cls(lambda: pristine.copy(), policy=policy, name=name,
                   on_repair=on_repair)

    @staticmethod
    def _hash(arr):
        return hashlib.blake2s(np.ascontiguousarray(arr).tobytes(),
                               digest_size=8).digest()

    def array(self):
        """The item memory's contents (resident copy or regenerated)."""
        self.accesses += 1
        if self._resident is not None:
            return self._resident
        self.remats += 1
        return np.asarray(self._regen())

    @property
    def nbytes(self):
        """Resident bytes (0 under the ``remat`` policy)."""
        return 0 if self._resident is None else int(self._resident.nbytes)

    def verify(self):
        """True when the resident copy (if any) matches its golden digest."""
        if self._resident is None:
            return True
        return self._hash(self._resident) == self._digest

    def scrub(self):
        """One scrub pass: digest-check and repair by regeneration.

        Only the ``verify`` policy both detects and repairs; ``store``
        deliberately has no detection contract, and ``remat`` has nothing
        resident to check.  Returns per-pass counts.
        """
        checked = repaired = 0
        if self.policy == "verify" and self._resident is not None:
            checked = 1
            self.scrub_checks += 1
            if not self.verify():
                regenerated = np.asarray(self._regen())
                if self._hash(regenerated) != self._digest:
                    raise RuntimeError(
                        f"item memory {self.name!r}: regeneration no longer "
                        f"matches the golden digest - regen closure corrupt")
                # in-place write so aliases of the resident array (e.g. a
                # codec's basis vector) see the repair too
                self._resident[...] = regenerated
                self.remats += 1
                self.scrub_repairs += 1
                repaired = 1
                if self._on_repair is not None:
                    self._on_repair(self._resident)
        return {"name": self.name, "policy": self.policy,
                "checked": checked, "repaired": repaired,
                "bytes": self.nbytes}

    def restore(self):
        """Regenerate and write back the resident copy unconditionally.

        The fault-campaign cleanup primitive: unlike :meth:`scrub` it
        works under every policy (including ``store``, which has no
        detection contract) and never checks first.  No-op under
        ``remat``.
        """
        if self._resident is None:
            return
        self._resident[...] = np.asarray(self._regen())
        self.remats += 1
        if self._on_repair is not None:
            self._on_repair(self._resident)

    def corrupt(self, rate, seed_or_rng=None):
        """Inject bit errors into the resident copy (fault surface for tests).

        Bipolar ``int8`` memories get sign flips (the dense fault model);
        any other dtype gets low-bit flips through a byte view.  Returns
        the number of corrupted elements (0 under ``remat``: nothing
        resident to corrupt).
        """
        if self._resident is None:
            return 0
        rng = (seed_or_rng if isinstance(seed_or_rng, np.random.Generator)
               else np.random.default_rng(seed_or_rng))
        if self._resident.dtype == np.int8:
            mask = rng.random(self._resident.shape) < rate
            self._resident[mask] = -self._resident[mask]
            return int(mask.sum())
        view = self._resident.reshape(-1).view(np.uint8)
        mask = rng.random(view.shape) < rate
        view[mask] ^= np.uint8(1)
        return int(mask.sum())

    def stats(self):
        return {"name": self.name, "policy": self.policy,
                "nbytes": self.nbytes, "accesses": self.accesses,
                "remats": self.remats, "scrub_checks": self.scrub_checks,
                "scrub_repairs": self.scrub_repairs}

"""Position-keyed deterministic noise streams for stochastic hypervector ops.

The :class:`repro.core.stochastic.StochasticCodec` draws its randomness from
a *stateful* generator: the bits a fair-coin average consumes depend on every
draw that happened before it.  That is fine for one-shot extraction, but it
makes shared computation impossible to validate - a sliding-window detector
that extracts overlapping windows from cached whole-image intermediates can
never reproduce what a per-window re-extraction would have drawn.

:class:`KeyedNoise` removes the order dependence.  Each ``(seed, stage,
row)`` triple names one reproducible stream (a counter-based Philox
generator keyed by a hash of the stage name mixed with the row index), and
asking for a row of a stage always replays the same values no matter how
many other draws happened in between.  A consumer that addresses its draws
by *absolute scene position* - generate the rows its region covers, slice
the columns of interest - therefore gets bitwise-identical randomness
whether it processes the scene in one pass, in cache-sized row strips,
window by window, or in any other decomposition.  This is the property the
shared-feature detection engine's equivalence test rests on (see
``docs/performance.md``).

Row granularity (rather than one monolithic stream per stage) is what makes
the addressing cheap: a consumer touching rows ``[r0, r1)`` generates only
those rows' streams, so strip-wise extraction pays no redundant RNG.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["KeyedNoise", "stage_key"]

_MASK63 = (1 << 63) - 1
_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def stage_key(stage):
    """Stable 64-bit key for a stage name (independent of ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2s(str(stage).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def _mix(value):
    """splitmix64 finalizer: decorrelates sequential key material."""
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK64
    return value ^ (value >> 31)


class KeyedNoise:
    """Deterministic, (stage, row)-addressable randomness source.

    Parameters
    ----------
    seed:
        Base seed shared by every stream this instance produces.  Two
        instances with the same seed replay identical streams.

    Examples
    --------
    >>> noise = KeyedNoise(0)
    >>> a = noise.coin_mask("gx", 3, 2, 64)     # rows 3-4, 64 lanes each
    >>> b = noise.coin_mask("gx", 3, 2, 64)     # replay, any time later
    >>> bool((a == b).all())
    True
    >>> c = noise.coin_mask("gx", 4, 1, 64)     # row 4 alone: same values
    >>> bool((a[1] == c[0]).all())
    True
    """

    def __init__(self, seed):
        self.seed = int(seed) & _MASK63
        self._stage_keys = {}

    def _row_generator(self, stage, row):
        """A fresh counter-based generator for ``(seed, stage, row)``."""
        skey = self._stage_keys.get(stage)
        if skey is None:
            skey = stage_key(stage)
            self._stage_keys[stage] = skey
        key2 = _mix((skey + int(row) * _GOLDEN) & _MASK64)
        return np.random.Generator(
            np.random.Philox(key=np.array([self.seed, key2], dtype=np.uint64))
        )

    # ------------------------------------------------------------------
    def coin_mask(self, stage, row0, n_rows, row_elems):
        """Fair-coin selection masks: ``(n_rows, row_elems)`` int8, 0 / -1.

        Row ``i`` of the result is the stream of absolute row ``row0 + i``,
        regardless of how the request is split.  The layout matches what
        :meth:`StochasticCodec.average` uses for its 0.5-weight fast path,
        so ``(a & m) | (b & ~m)`` implements the stochastic half-sum.
        """
        n_rows = int(n_rows)
        row_elems = int(row_elems)
        n_bytes = (row_elems + 7) // 8
        buf = np.empty((n_rows, n_bytes), dtype=np.uint8)
        for i in range(n_rows):
            gen = self._row_generator(stage, int(row0) + i)
            buf[i] = gen.integers(0, 256, size=n_bytes, dtype=np.uint8)
        bits = np.unpackbits(buf, axis=1)[:, :row_elems]
        return (0 - bits).view(np.int8)

    def uniform(self, stage, row0, n_rows, row_elems):
        """float32 uniforms in [0, 1): ``(n_rows, row_elems)``.

        Same row addressing as :meth:`coin_mask`; used for the stochastic
        construction draws.
        """
        n_rows = int(n_rows)
        row_elems = int(row_elems)
        buf = np.empty((n_rows, row_elems), dtype=np.float32)
        for i in range(n_rows):
            gen = self._row_generator(stage, int(row0) + i)
            buf[i] = gen.random(row_elems, dtype=np.float32)
        return buf

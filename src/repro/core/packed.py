"""Batched compute kernels over bit-packed (``uint64``) hypervectors.

The paper's hardware story (Sec. 6.5) processes *binary* hypervectors as
64-bit words: XOR gates bind, popcount trees measure similarity, and
majority (thresholded popcount) bundles.  :mod:`repro.core.hypervector`
provides the representation (:func:`~repro.core.hypervector.pack_bits` /
:func:`~repro.core.hypervector.unpack_bits`); this module provides the
*batched operations* on it, so the detection pipeline can run its hot path
on words that are 64x denser than the ``int8`` bipolar arrays:

* :func:`packed_bind` - the bipolar component-wise product.  Under the
  ``+1 -> 1`` bit convention the product's sign bit is the **XNOR** of the
  operand bits, i.e. one XOR plus a complement per word lane.
* :func:`packed_majority` - majority-vote bundling across a feature axis,
  computed entirely in the packed domain with bit-sliced vertical counters
  (the software mirror of a carry-save adder tree) and a bit-sliced
  threshold comparator.  No unpacking, no integer tensors.
* :func:`pairwise_hamming` / :func:`packed_nearest` - the XOR + popcount
  similarity search of the FPGA datapath, batched as ``(n, k)``.
* :class:`PackedClassModel` - a sign-quantized, packed class-hypervector
  matrix with the exact inference semantics of
  :class:`repro.learning.binary_inference.BinaryHDCEngine` (Hamming argmin
  against the sign-quantized model), reusable by the detection engine.

Every function is dimension-aware: pad bits (``D`` not a multiple of 64)
are masked out of results and never counted.
"""

from __future__ import annotations

import numpy as np

from .hypervector import (
    pack_bits,
    packed_hamming_distance,
    packed_tail_mask,
    packed_words,
)

__all__ = [
    "packed_bind",
    "packed_majority",
    "pairwise_hamming",
    "packed_nearest",
    "block_dim",
    "PackedClassModel",
    "TruncatedClassModel",
]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ZERO = np.uint64(0)


def packed_bind(a, b, dim):
    """Bipolar multiply in the packed domain: per-lane XNOR, pads cleared.

    With ``+1 -> 1`` bits, ``(+1)*(+1) = (+1)`` and ``(+1)*(-1) = (-1)``
    make the product bit ``NOT (a XOR b)``.  The complement would set the
    pad bits of the last word, so they are masked back to zero - results
    stay interchangeable with :func:`~repro.core.hypervector.pack_bits`
    output.  ``a`` and ``b`` broadcast over leading axes.
    """
    out = ~np.bitwise_xor(np.asarray(a, np.uint64), np.asarray(b, np.uint64))
    return out & packed_tail_mask(dim)


def _plane_count(n_features):
    """Bit planes needed to count up to ``n_features`` votes."""
    return max(int(n_features), 1).bit_length()


def packed_majority(packed, dim, valid=None):
    """Majority-vote bundling over the feature axis, in the packed domain.

    Parameters
    ----------
    packed:
        ``(..., F, W)`` uint64 sign bits (``+1 -> 1``) of ``F`` features,
        each ``W = packed_words(dim)`` words wide.
    dim:
        Real component count; pad bits of the result are zeroed.
    valid:
        Optional ``(..., F)`` boolean mask; invalid features cast no vote
        (their lanes are zeroed and the majority threshold shrinks
        accordingly).  With zero valid features every component ties.

    Returns
    -------
    numpy.ndarray
        ``(..., W)`` uint64: bit ``d`` is 1 iff at least half of the valid
        features have bit ``d`` set - the sign (``0 -> +1`` convention) of
        the bipolar component-wise sum.  Ties resolve to ``+1``, matching
        the sign-quantization convention used everywhere else.

    Notes
    -----
    The per-component vote counts are accumulated as *bit-sliced vertical
    counters*: plane ``i`` holds bit ``i`` of the running count for all 64
    components of a word at once, and adding a feature is a ripple-carry
    over the planes (one XOR + one AND each).  The ``count >= threshold``
    readout is a bit-sliced magnitude comparator over the same planes.
    This is exactly the carry-save adder + comparator tree an FPGA majority
    gate synthesizes to, executed on 64-component word lanes.
    """
    words = np.asarray(packed, dtype=np.uint64)
    if words.ndim < 2:
        raise ValueError(f"expected (..., F, W) packed array, got {words.shape}")
    batch = words.shape[:-2]
    n_feat = words.shape[-2]
    n_words = words.shape[-1]
    if n_words != packed_words(dim):
        raise ValueError(
            f"dim {dim} needs {packed_words(dim)} words, got {n_words}")
    tail = packed_tail_mask(dim)
    if n_feat == 0:
        # no votes: every component ties, and ties resolve to +1
        return np.broadcast_to(tail, batch + (n_words,)).copy()

    if valid is not None:
        valid = np.asarray(valid, dtype=bool)
        if valid.shape != batch + (n_feat,):
            raise ValueError(
                f"valid mask {valid.shape} does not match features "
                f"{batch + (n_feat,)}")
        lane_mask = np.where(valid[..., None], _ONES, _ZERO)
        votes = valid.sum(axis=-1, dtype=np.int64)
    else:
        votes = np.full(batch, n_feat, dtype=np.int64) if batch else n_feat

    n_planes = _plane_count(n_feat)
    planes = [np.zeros(batch + (n_words,), dtype=np.uint64)
              for _ in range(n_planes)]
    for f in range(n_feat):
        carry = words[..., f, :]
        if valid is not None:
            carry = carry & lane_mask[..., f, :]
        for i in range(n_planes):
            plane = planes[i]
            planes[i] = plane ^ carry
            carry = plane & carry

    # threshold: sign(2*count - V) >= 0  <=>  count >= ceil(V / 2)
    thresh = ((np.asarray(votes, dtype=np.uint64) + np.uint64(1))
              >> np.uint64(1))[..., None]
    greater = np.zeros(batch + (n_words,), dtype=np.uint64)
    equal = np.full(batch + (n_words,), _ONES, dtype=np.uint64)
    for i in reversed(range(n_planes)):
        t_bit = (thresh >> np.uint64(i)) & np.uint64(1)
        t_mask = np.where(t_bit.astype(bool), _ONES, _ZERO)
        greater |= equal & planes[i] & ~t_mask
        equal &= ~(planes[i] ^ t_mask)
    return (greater | equal) & tail


def pairwise_hamming(queries, model, dim=None):
    """Hamming distances of every query to every model row: ``(n, k)``.

    ``queries`` is ``(n, W)`` (or ``(W,)``), ``model`` is ``(k, W)``;
    ``dim`` masks pad bits before counting.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
    m = np.atleast_2d(np.asarray(model, dtype=np.uint64))
    return packed_hamming_distance(q[:, None, :], m[None, :, :], dim=dim)


def block_dim(dim, word_start, word_stop):
    """Real component count of the word block ``[word_start, word_stop)``.

    Words before the last hold 64 components each; the final word of a
    ``dim``-component vector holds only the tail.  The cascade scanner
    scores one block at a time, so its partial Hamming counts need the
    honest per-block denominator.
    """
    total = packed_words(dim)
    w0, w1 = int(word_start), int(word_stop)
    if not 0 <= w0 < w1 <= total:
        raise ValueError(
            f"word block [{word_start}, {word_stop}) out of range for "
            f"dim {dim} ({total} words)")
    return min(64 * w1, int(dim)) - 64 * w0


def packed_nearest(queries, model, dim=None):
    """Hamming-nearest model row per query: ``(labels, distances)``.

    The packed analogue of a similarity search - ``distances`` is the
    ``(n, k)`` matrix from :func:`pairwise_hamming` and ``labels`` its
    argmin, which is the Hamming-argmin inference rule of the FPGA
    datapath (ties resolve to the lowest class index, matching
    ``numpy.argmin`` and :class:`~repro.learning.binary_inference.
    BinaryHDCEngine`).
    """
    distances = pairwise_hamming(queries, model, dim=dim)
    return distances.argmin(axis=1), distances


class PackedClassModel:
    """Sign-quantized, bit-packed class model for Hamming-argmin inference.

    The detection engine's packed backend classifies window queries against
    this object with one XOR + popcount pass; the semantics are identical
    to :class:`repro.learning.binary_inference.BinaryHDCEngine` (sign
    quantization with ``0 -> +1``, Hamming argmin), just factored so the
    model can be built once and shared by batched callers that already
    hold *packed* queries.

    Parameters
    ----------
    model_bipolar:
        ``(n_classes, D)`` array of ``+1`` / ``-1``.
    """

    def __init__(self, model_bipolar):
        model = np.asarray(model_bipolar)
        if model.ndim != 2:
            raise ValueError(f"model must be (n_classes, D), got {model.shape}")
        self.n_classes, self.dim = model.shape
        self.packed = pack_bits(model.astype(np.int8, copy=False))

    @classmethod
    def from_classifier(cls, classifier):
        """Build from a fitted HDC classifier (sign-quantize ``class_hvs_``)."""
        if getattr(classifier, "class_hvs_", None) is None:
            raise RuntimeError("classifier is not fitted")
        model = np.sign(classifier.class_hvs_)
        model[model == 0] = 1
        return cls(model.astype(np.int8))

    @property
    def nbytes(self):
        """Stored model size in bytes (the packed hardware footprint)."""
        return int(self.packed.nbytes)

    def corrupted(self, rate, seed_or_rng=None):
        """Copy of this model with bit errors at ``rate`` in the stored words.

        The fault surface of the robustness campaigns: each of the ``dim``
        real bits of every class row flips independently
        (:func:`repro.reliability.faults.flip_packed_words`); pad bits are
        never touched.  The original model is left intact.
        """
        from ..reliability.faults import flip_packed_words
        clone = object.__new__(PackedClassModel)
        clone.n_classes = self.n_classes
        clone.dim = self.dim
        clone.packed = flip_packed_words(self.packed, self.dim, rate,
                                         seed_or_rng)
        return clone

    @property
    def n_words(self):
        """Packed words per class row (``ceil(dim / 64)``)."""
        return packed_words(self.dim)

    def truncated(self, words):
        """A :class:`TruncatedClassModel` view scoring the first ``words`` words.

        The holographic accuracy dial: information is spread uniformly over
        the components, so any word-prefix of the model is itself a valid
        (lower-dimensional) model and classification quality degrades
        smoothly - not catastrophically - as the prefix shrinks.  With
        ``words >= n_words`` the view is bitwise identical to the full
        model.
        """
        return TruncatedClassModel(self, words)

    def distances(self, packed_queries):
        """Hamming distance of each packed query to each class: ``(n, k)``."""
        return pairwise_hamming(packed_queries, self.packed, dim=self.dim)

    def distance_block(self, packed_queries, word_start, word_stop):
        """Partial Hamming distances over words ``[word_start, word_stop)``.

        The cascade scanner's incremental rescoring kernel: because Hamming
        distance is a sum over disjoint word blocks, the distance already
        paid for on a narrow prefix never has to be recomputed when a
        window escalates - the next stage scores only the *new* words and
        adds the counts:

        ``distances(q) == sum(distance_block(q, a, b) over a partition)``

        ``packed_queries`` may carry the block's words alone (shape
        ``(n, word_stop - word_start)``, as produced by the engine's
        prefix assembly) or the full query width (the block is sliced
        out).  Pad bits are masked when the block covers the final word.
        """
        w0, w1 = int(word_start), int(word_stop)
        bdim = block_dim(self.dim, w0, w1)
        q = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
        if q.shape[-1] != w1 - w0:
            q = q[:, w0:w1]
        return pairwise_hamming(q, self.packed[:, w0:w1], dim=bdim)

    def similarities(self, packed_queries):
        """Normalized similarities ``1 - 2 * hamming / D`` in ``[-1, 1]``.

        This is exactly the dot product of the underlying bipolar vectors
        divided by ``D``, so downstream margin logic written for cosine
        similarities keeps its sign semantics.
        """
        return 1.0 - 2.0 * self.distances(packed_queries) / float(self.dim)

    def predict(self, packed_queries):
        """Label of the Hamming-nearest class per packed query."""
        return self.distances(packed_queries).argmin(axis=1)


class TruncatedClassModel:
    """Word-prefix view of a :class:`PackedClassModel`: fewer words, same API.

    Scores queries against only the first ``words`` ``uint64`` words of
    each class row (and of each query), i.e. against a ``min(64 * words,
    D)``-component prefix of the holographic representation.  Because HDC
    spreads information uniformly across components (the uHD runtime-
    scaling observation), the prefix is itself a well-formed class model:
    accuracy falls smoothly as ``words`` shrinks while the XOR + popcount
    classification cost falls linearly - the degradation ladder's
    truncated-dimension rung.

    Exposes ``distances`` / ``similarities`` / ``predict`` with the same
    conventions as the full model (``dim`` is the *effective* prefix
    dimension, so similarity normalization stays honest), which makes it a
    drop-in ``model=`` substitute for
    :meth:`repro.pipeline.detector.SlidingWindowDetector.scan`.

    **Consistency guarantee:** when ``words`` covers every word of the
    base model, results are *bitwise identical* to the base model's - the
    prefix mask equals the base pad mask, so every popcount sees exactly
    the same bits.
    """

    def __init__(self, model, words):
        if not isinstance(model, PackedClassModel):
            model = PackedClassModel(model)
        total = packed_words(model.dim)
        w = int(words)
        if not 1 <= w <= total:
            raise ValueError(
                f"words must be in [1, {total}] for dim {model.dim}, got {words}")
        self.base = model
        self.words = w
        self.n_classes = model.n_classes
        #: Effective component count of the prefix (pads never counted).
        self.dim = min(64 * w, model.dim)

    @property
    def nbytes(self):
        """Bytes of model actually read per inference pass."""
        return int(self.base.packed[:, : self.words].nbytes)

    def distances(self, packed_queries):
        """Prefix Hamming distances ``(n, k)``: XOR + popcount on ``words`` words.

        Queries may carry their full word count (the prefix is sliced off)
        or arrive already truncated.
        """
        q = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
        return pairwise_hamming(q[:, : self.words],
                                self.base.packed[:, : self.words],
                                dim=self.dim)

    def similarities(self, packed_queries):
        """Normalized similarities ``1 - 2 * hamming / dim_effective``."""
        return 1.0 - 2.0 * self.distances(packed_queries) / float(self.dim)

    def predict(self, packed_queries):
        """Label of the prefix-Hamming-nearest class per packed query."""
        return self.distances(packed_queries).argmin(axis=1)

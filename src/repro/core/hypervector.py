"""Hypervector primitives: generation, validation, and bit-packing.

A *hypervector* in this library is a NumPy array whose last axis has length
``D`` (the dimensionality, typically 1,000-10,000) and whose elements are the
bipolar values ``+1`` / ``-1`` stored as ``int8``.  All operations in
:mod:`repro.core` are batched: an array of shape ``(..., D)`` is treated as a
stack of hypervectors and processed in one vectorized NumPy call, which is how
HDFace processes every pixel of an image simultaneously.

The binary view used by the paper's hardware (Section 6.5) maps ``+1 -> 1``
and ``-1 -> 0``.  :func:`pack_bits` / :func:`unpack_bits` convert between the
dense bipolar representation and a 64x smaller ``uint64`` packed form whose
Hamming arithmetic uses population counts - the exact operation an FPGA LUT
fabric executes.  The packed backend exists so the hardware model in
:mod:`repro.hardware` is exercised against a faithful software reference.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "DEFAULT_DIM",
    "as_rng",
    "random_hypervector",
    "is_bipolar",
    "ensure_bipolar",
    "to_binary",
    "from_binary",
    "pack_bits",
    "unpack_bits",
    "packed_popcount",
    "packed_hamming_distance",
    "packed_words",
    "packed_tail_mask",
]

#: Default dimensionality used across the library.  The paper identifies
#: ``D = 4k`` as the accuracy/efficiency sweet spot (Fig. 5a).
DEFAULT_DIM = 4096


def as_rng(seed_or_rng=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or None.

    Every stochastic component in the library accepts a ``seed_or_rng``
    argument and normalizes it through this helper, so experiments are
    reproducible end-to-end from a single integer seed.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def random_hypervector(dim, seed_or_rng=None, p=0.5, shape=()):
    """Draw random bipolar hypervector(s).

    Parameters
    ----------
    dim:
        Dimensionality ``D`` of each hypervector.
    seed_or_rng:
        Seed or generator for reproducibility.
    p:
        Probability that a component equals ``+1``.  ``p = 0.5`` gives the
        dense random hypervectors used for item memories; other values give
        the biased vectors of Section 4.1 ("+1 appears with probability p").
    shape:
        Leading batch shape; the result has shape ``shape + (dim,)``.

    Returns
    -------
    numpy.ndarray
        ``int8`` array of ``+1``/``-1`` with shape ``shape + (dim,)``.
    """
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = as_rng(seed_or_rng)
    draws = rng.random(tuple(shape) + (dim,))
    return np.where(draws < p, 1, -1).astype(np.int8)


def is_bipolar(hv) -> bool:
    """Return True if every element of ``hv`` is exactly ``+1`` or ``-1``."""
    arr = np.asarray(hv)
    return bool(np.isin(arr, (-1, 1)).all())


def ensure_bipolar(hv, name="hypervector"):
    """Validate and return ``hv`` as an ``int8`` bipolar array.

    Raises
    ------
    ValueError
        If any element is not ``+1`` or ``-1``.
    """
    arr = np.asarray(hv)
    if not is_bipolar(arr):
        raise ValueError(f"{name} must contain only +1/-1 elements")
    return arr.astype(np.int8, copy=False)


def to_binary(hv):
    """Map a bipolar hypervector to the {0, 1} domain (``+1 -> 1``)."""
    return ((np.asarray(hv) + 1) // 2).astype(np.uint8)


def from_binary(bits):
    """Map a {0, 1} hypervector back to the bipolar domain (``1 -> +1``)."""
    return (np.asarray(bits).astype(np.int16) * 2 - 1).astype(np.int8)


def packed_words(dim):
    """Number of ``uint64`` words a ``dim``-component hypervector packs into."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    return (int(dim) + 63) // 64


def packed_tail_mask(dim):
    """``(packed_words(dim),)`` uint64 mask that zeroes the pad bits.

    :func:`pack_bits` stores component ``i`` at bit ``i % 64`` of word
    ``i // 64`` (little bit order), so when ``dim`` is not a multiple of 64
    the pad occupies the *high* bits of the last word.  ANDing with this
    mask clears them, which keeps popcount-based arithmetic truthful on
    words whose pads were set by a complementing operation (e.g. the XNOR
    bind in :mod:`repro.core.packed`).
    """
    mask = np.full(packed_words(dim), np.uint64(0xFFFFFFFFFFFFFFFF),
                   dtype=np.uint64)
    rem = int(dim) % 64
    if rem:
        mask[-1] = (np.uint64(1) << np.uint64(rem)) - np.uint64(1)
    return mask


def pack_bits(hv):
    """Pack a bipolar hypervector into ``uint64`` words (``+1 -> 1`` bit).

    The last axis of length ``D`` becomes ``ceil(D / 64)`` words; if ``D`` is
    not a multiple of 64 the tail bits are zero (and :func:`unpack_bits`
    needs the original ``dim`` to drop them).  Empty leading batch shapes
    pack to empty word arrays of the right trailing width.
    """
    bits = to_binary(hv)
    dim = bits.shape[-1]
    pad = (-dim) % 64
    if pad:
        bits = np.concatenate(
            [bits, np.zeros(bits.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    words = np.packbits(bits, axis=-1, bitorder="little")
    return words.view(np.uint64) if words.flags["C_CONTIGUOUS"] else np.ascontiguousarray(words).view(np.uint64)


def unpack_bits(words, dim):
    """Unpack ``uint64`` words produced by :func:`pack_bits` to bipolar form."""
    words = np.asarray(words, dtype=np.uint64)
    expected = packed_words(dim)
    if words.shape[-1] != expected:
        raise ValueError(
            f"dim {dim} needs {expected} words per vector, got {words.shape[-1]}")
    as_bytes = np.ascontiguousarray(words).view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")[..., :dim]
    return from_binary(bits)


def packed_popcount(words, dim=None):
    """Population count per packed hypervector (sum over the word axis).

    ``dim`` - when given - masks the pad bits of the last word before
    counting, so vectors whose pads were polluted (by complementing ops or
    fault injection on the raw words) still count only their ``dim`` real
    components.  Arrays straight out of :func:`pack_bits` have zero pads
    and need no mask.
    """
    words = np.asarray(words, dtype=np.uint64)
    if dim is not None:
        words = words & packed_tail_mask(dim)
    if hasattr(np, "bitwise_count"):
        counts = np.bitwise_count(words)
    else:  # pragma: no cover - exercised only on NumPy < 2.0
        counts = np.unpackbits(
            np.ascontiguousarray(words).view(np.uint8), axis=-1
        ).sum(axis=-1, dtype=np.int64)
        return counts
    return counts.sum(axis=-1, dtype=np.int64)


def packed_hamming_distance(a, b, dim=None):
    """Hamming distance between packed hypervectors (XOR + popcount).

    This is the FPGA-native similarity kernel of Section 6.5: a LUT computes
    XOR, a popcount tree reduces it.  ``a`` and ``b`` broadcast against each
    other over leading axes; ``dim`` masks pad bits (see
    :func:`packed_popcount`).
    """
    xor = np.bitwise_xor(np.asarray(a, np.uint64), np.asarray(b, np.uint64))
    return packed_popcount(xor, dim=dim)

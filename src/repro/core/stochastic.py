"""Stochastic arithmetic over binary hypervectors (HDFace Section 4).

This module is the paper's core contribution: a stochastic-computing-style
number system in which a bipolar hypervector ``V_a`` *represents* the scalar
``a`` in ``[-1, 1]`` through its similarity to a fixed basis vector ``V_1``:

    ``delta(V_a, V_1) = mean(V_a * V_1) = a``.

Writing ``V_a[i] = s_i * V_1[i]`` with i.i.d. signs ``P(s_i = +1) = (1+a)/2``
makes the whole system a product of independent Bernoulli streams, which
yields the operations of Section 4.2:

=================  ==========================================================
operation          implementation
=================  ==========================================================
construction       draw each component from ``V_1`` w.p. ``(1+a)/2``, else
                   from ``-V_1``
weighted average   pick each component from operand A w.p. ``p`` else B;
                   represents ``p*a + q*b`` (so ``(a+-b)/2`` gives add/sub)
multiplication     elementwise ``V_a * V_b * V_1`` - the paper's "copy the
                   basis where operands agree" XNOR rule
square             multiply by a *decorrelated* self-copy (see below)
square root        binary search with hyperspace comparison (paper Sec. 4.2)
division           binary search ``V_b (x) V_x ~= V_a``
comparison         sign of the decoded half-difference ``(a - b)/2``
=================  ==========================================================

**Decorrelation.** The paper squares gradients as ``V_G (x) V_G``, but with a
shared sign stream that expression degenerates to ``V_1`` (it would claim
``a * a = 1``).  :meth:`StochasticCodec.decorrelate` fixes this with the
paper's own permutation primitive: it rotates the *sign stream*
``s = V * V_1`` by one position and re-attaches the basis, producing an
equally valid representation of ``a`` whose signs are elementwise independent
of the original.  ``square`` and every self-multiplication in the HOG
pipeline go through it; the ablation bench quantifies what breaks without it.

All methods are batched: scalars may be arrays of any shape ``S`` and
hypervectors arrays of shape ``S + (D,)``; one call processes every pixel of
an image.
"""

from __future__ import annotations

import numpy as np

from .hypervector import DEFAULT_DIM, as_rng, ensure_bipolar, random_hypervector
from .ops import bind, permute

__all__ = ["StochasticCodec"]


def _bool_mask(bools):
    """Bool array -> int8 mask of 0 / -1 (all-ones) for bitwise selection."""
    return (0 - np.asarray(bools).view(np.int8)).view(np.int8)


def _bitselect(mask, a, b):
    """``where(mask, a, b)`` for int8 arrays via bitwise ops.

    ``mask`` must contain only 0 (select ``b``) or -1 (select ``a``) and
    broadcasts against the operands.  On two's-complement int8 this is
    exact for arbitrary values and roughly an order of magnitude faster
    than ``np.where`` for the multi-megabyte hypervector tensors the HOG
    pipeline streams.
    """
    return (a & mask) | (b & ~mask)


class StochasticCodec:
    """Encoder/decoder and arithmetic unit for stochastic hypervectors.

    Parameters
    ----------
    dim:
        Hypervector dimensionality ``D``.  Larger ``D`` shrinks the relative
        error of every primitive as ``1/sqrt(D)`` (paper Fig. 2).
    seed_or_rng:
        Randomness source for construction and averaging choices.
    basis:
        Optional explicit basis vector ``V_1``; drawn at random if omitted.

    Examples
    --------
    >>> codec = StochasticCodec(dim=8192, seed_or_rng=0)
    >>> v = codec.construct(0.5)
    >>> round(float(codec.decode(v)), 1)
    0.5
    """

    def __init__(self, dim=DEFAULT_DIM, seed_or_rng=None, basis=None):
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = int(dim)
        self.rng = as_rng(seed_or_rng)
        if basis is None:
            basis = random_hypervector(self.dim, self.rng)
        self.basis = ensure_bipolar(basis, "basis")
        if self.basis.shape != (self.dim,):
            raise ValueError("basis must have shape (dim,)")
        self._neg_basis = (-self.basis).astype(np.int8)

    # ------------------------------------------------------------------
    # encode / decode
    # ------------------------------------------------------------------
    def construct(self, values):
        """Construct hypervector(s) representing ``values`` in ``[-1, 1]``.

        ``values`` may be a scalar or an array of shape ``S``; the result has
        shape ``S + (D,)``.  Values outside ``[-1, 1]`` raise, because the
        representation saturates there (paper Sec. 4.1).
        """
        values = np.asarray(values, dtype=np.float64)
        if (np.abs(values) > 1.0 + 1e-9).any():
            raise ValueError("stochastic values must lie in [-1, 1]")
        p_plus = ((1.0 + values[..., None]) / 2.0).astype(np.float32)
        draws = self.rng.random(values.shape + (self.dim,), dtype=np.float32)
        mask = _bool_mask(draws < p_plus)
        return _bitselect(mask, self.basis, self._neg_basis)

    def decode(self, hv):
        """Recover the represented scalar(s): ``mean(hv * basis)`` over D."""
        hv = np.asarray(hv)
        if hv.dtype == np.int8:
            # Bipolar fast path: the elementwise product stays in int8.
            return (hv * self.basis).sum(axis=-1, dtype=np.int64) / self.dim
        return (hv.astype(np.float64) * self.basis).sum(axis=-1) / self.dim

    def zero(self, shape=()):
        """Fresh representation(s) of 0 (used as search bounds and padding)."""
        return self.construct(np.zeros(shape))

    def one(self, shape=()):
        """Representation(s) of 1 - broadcast copies of the basis itself."""
        return np.broadcast_to(self.basis, tuple(shape) + (self.dim,)).copy()

    # ------------------------------------------------------------------
    # linear operations
    # ------------------------------------------------------------------
    def negate(self, hv):
        """``V_{-a} = -V_a`` (paper Sec. 4.1)."""
        return (-np.asarray(hv, np.int8)).astype(np.int8)

    def average(self, a, b, p=0.5):
        """Weighted average: pick each component from ``a`` w.p. ``p`` else ``b``.

        Represents ``p * val(a) + (1-p) * val(b)``.  ``p`` may be a scalar or
        an array broadcastable to the batch shape (not per-dimension).
        """
        a = np.asarray(a, np.int8)
        b = np.asarray(b, np.int8)
        p_arr = np.asarray(p, dtype=np.float32)
        if ((p_arr < 0) | (p_arr > 1)).any():
            raise ValueError("weight p must lie in [0, 1]")
        out_shape = np.broadcast_shapes(a.shape, b.shape)
        if p_arr.ndim == 0 and float(p_arr) == 0.5:
            # Fair-coin fast path (the add/sub workhorse): one random *bit*
            # per component instead of a float draw.
            n_bytes = (out_shape[-1] + 7) // 8
            raw = self.rng.integers(0, 256, size=out_shape[:-1] + (n_bytes,), dtype=np.uint8)
            bits = np.unpackbits(raw, axis=-1)[..., : out_shape[-1]]
            mask = (0 - bits).view(np.int8)
        else:
            mask = _bool_mask(self.rng.random(out_shape, dtype=np.float32) < p_arr[..., None])
        return _bitselect(mask, a, b)

    def add_half(self, a, b):
        """Representation of ``(a + b) / 2`` - stochastic addition."""
        return self.average(a, b, 0.5)

    def sub_half(self, a, b):
        """Representation of ``(a - b) / 2`` - stochastic subtraction.

        This is exactly the gradient rule of Sec. 4.3:
        ``V_{(C2 - C0)/2} = V_{C2} (+) (-V_{C0})``.
        """
        return self.average(a, self.negate(b), 0.5)

    def scale(self, hv, factor):
        """Representation of ``factor * a`` for ``factor`` in ``[0, 1]``.

        Implemented as a weighted average with a fresh zero vector.
        """
        factor = np.asarray(factor, dtype=np.float64)
        if ((factor < 0) | (factor > 1)).any():
            raise ValueError("scale factor must lie in [0, 1]")
        hv = np.asarray(hv, np.int8)
        return self.average(hv, self.zero(hv.shape[:-1]), factor)

    def mean(self, hvs, weights=None, axis=0):
        """N-ary weighted average along ``axis`` (one component pick per slot).

        Represents ``sum_k w_k * val_k`` with ``w`` normalized to 1.  This is
        how HOG histogram accumulation stays inside ``[-1, 1]``: the running
        bundle always represents the *mean* contribution, a fixed rescale of
        the true histogram sum.
        """
        stack = np.asarray(hvs, np.int8)
        stack = np.moveaxis(stack, axis, 0)
        n = stack.shape[0]
        if weights is None:
            probs = np.full(n, 1.0 / n)
        else:
            probs = np.asarray(weights, dtype=np.float64)
            if probs.shape != (n,):
                raise ValueError("weights must match the averaged axis length")
            if (probs < 0).any() or probs.sum() <= 0:
                raise ValueError("weights must be non-negative and not all zero")
            probs = probs / probs.sum()
        if weights is None:
            choices = self.rng.integers(0, n, size=stack.shape[1:])
        else:
            choices = self.rng.choice(n, size=stack.shape[1:], p=probs)
        return np.take_along_axis(stack, choices[None], axis=0)[0]

    # ------------------------------------------------------------------
    # multiplicative operations
    # ------------------------------------------------------------------
    def multiply(self, a, b):
        """Stochastic multiplication ``V_a (x) V_b = V_a * V_b * V_1``.

        Copies the basis sign where the operands agree and its negation where
        they differ (the paper's rule).  Correct when the operands' sign
        streams are independent - which holds for separately constructed
        values.  For self-products use :meth:`square`, or pass one operand
        through :meth:`decorrelate` first.
        """
        prod = bind(bind(np.asarray(a, np.int8), np.asarray(b, np.int8)), self.basis)
        return prod

    def decorrelate(self, hv, shift=1):
        """Equivalent representation with a rotated (independent) sign stream.

        Extracts ``s = V * V_1``, applies the HDC permutation ``rho`` to it,
        and re-attaches the basis.  The result represents the same value but
        is elementwise independent of the input, enabling self-multiplication.
        """
        if shift % self.dim == 0:
            raise ValueError("shift must not be a multiple of dim (no-op)")
        signs = bind(np.asarray(hv, np.int8), self.basis)
        return bind(permute(signs, shift), self.basis)

    def square(self, hv):
        """Representation of ``a**2`` via decorrelated self-multiplication."""
        return self.multiply(hv, self.decorrelate(hv))

    # ------------------------------------------------------------------
    # comparison and iterative operations
    # ------------------------------------------------------------------
    def compare(self, a, b, tolerance=0.0):
        """Three-way comparison of represented values: returns -1, 0 or +1.

        The paper compares by building the ``alpha`` vector
        ``0.5 V_a (+) 0.5 (-V_b)`` (representing ``(a - b)/2``) and reading
        its sign via the similarity with the basis.  Differencing the two
        similarity readouts directly - ``delta(V_a, V_1) - delta(V_b, V_1)``
        - is the same decision statistic (identical expectation, lower
        variance, same hardware primitive), so that is what we compute; the
        explicit alpha construction is :meth:`alpha_vector`.  With
        ``tolerance > 0``, differences smaller than the tolerance (in value
        units) count as equal - the "statistical margins of error" of the
        square-root procedure.
        """
        diff = self.decode(np.asarray(a, np.int8)) - self.decode(np.asarray(b, np.int8))
        out = np.sign(diff)
        if tolerance > 0:
            out = np.where(np.abs(diff) <= tolerance, 0.0, out)
        return out.astype(np.int64) if out.ndim else int(out)

    def sign_of(self, hv, tolerance=0.0):
        """Sign of the represented value(s): compare against zero.

        Equivalent to ``compare(hv, zero(...))`` but without constructing a
        zero hypervector, since ``delta(V_0, V_1) = 0`` exactly in
        expectation.  Returns -1 / 0 / +1 per batch element.
        """
        diff = self.decode(np.asarray(hv, np.int8))
        out = np.sign(diff)
        if tolerance > 0:
            out = np.where(np.abs(diff) <= tolerance, 0.0, out)
        return out.astype(np.int64) if out.ndim else int(out)

    def alpha_vector(self, a, b):
        """The paper's explicit comparison vector ``0.5 V_a (+) 0.5 (-V_b)``.

        Represents ``(a - b) / 2``; its decoded sign is the comparison
        result (see :meth:`compare`).
        """
        return self.sub_half(a, b)

    def noise_floor(self, k=3.0):
        """Typical decode noise magnitude ``k / sqrt(D)`` for thresholds."""
        return k / np.sqrt(self.dim)

    def sqrt(self, hv, iters=12):
        """Representation of ``sqrt(a)`` for ``a`` in ``[0, 1]`` (Sec. 4.2).

        Binary search entirely in hyperspace: maintain ``V_low``/``V_high``
        hypervectors, take their average as the midpoint, square it with the
        decorrelated product, and compare against the operand.  Negative
        inputs (possible here only through stochastic noise on a true 0) are
        clamped by the search itself, which simply converges to 0.
        """
        hv = np.asarray(hv, np.int8)
        batch = hv.shape[:-1]
        low = self.zero(batch)
        high = self.one(batch)
        target = self.decode(hv)  # loop-invariant similarity readout
        for _ in range(int(iters)):
            mid = self.add_half(low, high)
            mid_sq = self.square(mid)
            mask = _bool_mask(self.decode(mid_sq) > target)[..., None]
            high = _bitselect(mask, mid, high)
            low = _bitselect(mask, low, mid)
        return self.add_half(low, high)

    def divide(self, a, b, iters=12):
        """Representation of ``a / b`` via binary search (|a| <= |b| required).

        Signs are handled in hyperspace by conditional negation; magnitudes
        by searching ``x`` in ``[0, 1]`` such that ``V_|b| (x) V_x ~= V_|a|``.
        The result is exact only when ``|a/b| <= 1`` (otherwise it saturates
        at ``+-1``), mirroring the bounded stochastic number range.
        """
        a = np.asarray(a, np.int8)
        b = np.asarray(b, np.int8)
        batch = np.broadcast_shapes(a.shape[:-1], b.shape[:-1])
        a = np.broadcast_to(a, batch + (self.dim,)).astype(np.int8)
        b = np.broadcast_to(b, batch + (self.dim,)).astype(np.int8)
        sign_a = np.asarray(self.sign_of(a))
        sign_b = np.asarray(self.sign_of(b))
        # Conditional negation: multiply by the comparison sign (+1 for 0).
        flip_a = np.where(sign_a < 0, -1, 1).astype(np.int8)
        flip_b = np.where(sign_b < 0, -1, 1).astype(np.int8)
        abs_a = (a * flip_a[..., None]).astype(np.int8)
        abs_b = (b * flip_b[..., None]).astype(np.int8)
        low = self.zero(batch)
        high = self.one(batch)
        target = self.decode(abs_a)  # loop-invariant similarity readout
        for _ in range(int(iters)):
            mid = self.add_half(low, high)
            # abs_b's sign stream must be independent of mid's; mid is built
            # from fresh zero/one draws, so a plain product is valid.
            prod = self.multiply(abs_b, mid)
            mask = _bool_mask(self.decode(prod) > target)[..., None]
            high = _bitselect(mask, mid, high)
            low = _bitselect(mask, low, mid)
        quotient = self.add_half(low, high)
        result_sign = np.where((sign_a * sign_b) < 0, -1, 1).astype(np.int8)
        return (quotient * result_sign[..., None]).astype(np.int8)

    def rerandomize(self, hv):
        """Decode-and-reconstruct: a fresh representation of the same value.

        The heavyweight alternative to :meth:`decorrelate`; useful after long
        operation chains to reset accumulated sign-stream correlation.
        """
        return self.construct(np.clip(self.decode(hv), -1.0, 1.0))

"""Core hyperdimensional computing substrate.

Exports the HDC algebra (:mod:`~repro.core.ops`), hypervector utilities
(:mod:`~repro.core.hypervector`), the item/level codebooks
(:mod:`~repro.core.spaces`), the stochastic arithmetic codec
(:mod:`~repro.core.stochastic`) and its error analysis
(:mod:`~repro.core.analysis`).
"""

from .capacity import (
    capacity_estimate,
    expected_member_similarity,
    measure_member_similarity,
    measure_recall_accuracy,
)
from .keyed_noise import KeyedNoise, RematerializingItemMemory, replay_generator
from .hypervector import (
    DEFAULT_DIM,
    as_rng,
    from_binary,
    is_bipolar,
    pack_bits,
    packed_hamming_distance,
    packed_popcount,
    random_hypervector,
    to_binary,
    unpack_bits,
)
from .packed import (
    PackedClassModel,
    packed_bind,
    packed_majority,
    packed_nearest,
    pairwise_hamming,
)
from .ops import (
    bind,
    bundle,
    cosine_similarity,
    hamming_similarity,
    nearest,
    permute,
    similarity,
)
from .spaces import ItemMemory, LevelMemory
from .stochastic import StochasticCodec

__all__ = [
    "DEFAULT_DIM",
    "as_rng",
    "random_hypervector",
    "is_bipolar",
    "to_binary",
    "from_binary",
    "pack_bits",
    "unpack_bits",
    "packed_popcount",
    "packed_hamming_distance",
    "packed_bind",
    "packed_majority",
    "packed_nearest",
    "pairwise_hamming",
    "PackedClassModel",
    "bundle",
    "bind",
    "permute",
    "similarity",
    "cosine_similarity",
    "hamming_similarity",
    "nearest",
    "ItemMemory",
    "LevelMemory",
    "StochasticCodec",
    "KeyedNoise",
    "RematerializingItemMemory",
    "replay_generator",
    "capacity_estimate",
    "expected_member_similarity",
    "measure_member_similarity",
    "measure_recall_accuracy",
]

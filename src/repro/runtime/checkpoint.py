"""Checkpoint/restore for the resilient serving runtime.

The *model* already serializes (:mod:`repro.pipeline.serialization`); what
dies with a crashed worker is the *runtime* state: which faces are being
tracked and with what lifecycle counters, which degradation rung the
scheduler had settled on, and how many frames/misses/incidents have been
counted.  A replacement worker restored from the checkpoint resumes
exactly there - its tracker reports the same confirmed faces on the next
frame, its ladder does not restart at ``full`` under the very overload
that killed its predecessor, and its counters keep the fleet dashboard
monotone.

The format follows :mod:`repro.pipeline.serialization`: one compressed
``.npz``, array-first (tracks are a single ``(n, 8)`` float matrix),
``allow_pickle=False`` on load, and an explicit format version.  Restore
is *exact*: ``save -> restore -> save`` round-trips bitwise, and a
restored runtime produces identical detections on the same frame tail
(its first frame falls back to full extraction, which the engine
guarantees is bitwise-identical to the delta path it replaces).
"""

from __future__ import annotations

import json

import numpy as np

from ..pipeline.stream import Track

__all__ = ["runtime_state", "load_runtime_state", "save_runtime",
           "restore_runtime"]

_FORMAT_VERSION = 1

#: Column layout of the packed track matrix.
_TRACK_FIELDS = ("track_id", "y", "x", "size", "score", "hits", "misses",
                 "age")


def _tracks_matrix(tracks):
    """Pack tracks into ``(n, 8)`` floats + a confirmed bitmask."""
    mat = np.zeros((len(tracks), len(_TRACK_FIELDS)), dtype=np.float64)
    confirmed = np.zeros(len(tracks), dtype=np.bool_)
    for i, t in enumerate(tracks):
        mat[i] = [t.track_id, t.y, t.x, t.size, t.score, t.hits, t.misses,
                  t.age]
        confirmed[i] = t.confirmed
    return mat, confirmed


def runtime_state(runtime):
    """Snapshot a :class:`~repro.runtime.serving.ResilientVideoDetector`.

    Returns a JSON-safe dict (tracks as lists) capturing every piece of
    mutable state a replacement worker needs: tracker tracks and id
    counter, scheduler rung + run counters + miss total, frame counters,
    and the quarantine accounting.  The engine's scene cache is *not*
    checkpointed - it is a content-addressed cache, repopulated with
    bitwise-identical entries on the first frame after restore.
    """
    with runtime._state_lock:
        sched = runtime.scheduler
        return {
            "format_version": _FORMAT_VERSION,
            "tracks": [[t.track_id, t.y, t.x, t.size, t.score, t.hits,
                        t.misses, t.age, int(t.confirmed)]
                       for t in runtime.tracker.tracks],
            "tracker_next_id": runtime.tracker._next_id,
            "tracker_frames": runtime.tracker.frames,
            "rung": sched.rung,
            "over_run": sched.over_run,
            "under_run": sched.under_run,
            "deadline_misses": sched.deadline_misses,
            "next_index": runtime._next_index,
            "frames_in": runtime.frames_in,
            "frames_done": runtime.frames_done,
            "predicted": runtime.predicted,
            "cancelled": runtime.cancelled,
            "crashes": runtime.crashes,
            "quarantine_passed": runtime.quarantine.passed,
            "quarantine_rejected": dict(runtime.quarantine.rejected),
        }


def load_runtime_state(runtime, state, frame=-1):
    """Install a :func:`runtime_state` snapshot into ``runtime``.

    The tracker, scheduler and counters are overwritten; the engine cache
    and completed-results list are left alone (the former repopulates
    identically, the latter belongs to the worker that produced it).
    Records a ``checkpoint_restored`` incident.
    """
    version = int(state["format_version"])
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported runtime checkpoint v{version}")
    with runtime._state_lock:
        runtime.tracker.tracks = [
            Track(int(r[0]), float(r[1]), float(r[2]), float(r[3]),
                  float(r[4]), hits=int(r[5]), misses=int(r[6]),
                  age=int(r[7]), confirmed=bool(r[8]))
            for r in state["tracks"]]
        runtime.tracker._next_id = int(state["tracker_next_id"])
        runtime.tracker.frames = int(state["tracker_frames"])
        sched = runtime.scheduler
        sched.rung = sched.ladder.clamp(int(state["rung"]))
        sched.over_run = int(state["over_run"])
        sched.under_run = int(state["under_run"])
        sched.deadline_misses = int(state["deadline_misses"])
        runtime._next_index = int(state["next_index"])
        runtime.frames_in = int(state["frames_in"])
        runtime.frames_done = int(state["frames_done"])
        runtime.predicted = int(state["predicted"])
        runtime.cancelled = int(state["cancelled"])
        runtime.crashes = int(state["crashes"])
        runtime.quarantine.passed = int(state["quarantine_passed"])
        runtime.quarantine.rejected = {
            k: int(v) for k, v in state["quarantine_rejected"].items()}
        runtime._prev_levels = None  # next frame re-extracts (bit-identical)
    runtime.incidents.record("checkpoint_restored", frame=frame,
                             rung=sched.current.name,
                             tracks=len(runtime.tracker.tracks))
    return runtime


def save_runtime(runtime, path, frame=-1):
    """Persist the runtime state to one compressed ``.npz``.

    Records a ``checkpoint_saved`` incident and returns the state dict
    that was written.
    """
    state = runtime_state(runtime)
    mat, confirmed = _tracks_matrix(runtime.tracker.tracks)
    scalars = {k: v for k, v in state.items()
               if k not in ("tracks", "quarantine_rejected")}
    np.savez_compressed(
        path,
        tracks=mat,
        tracks_confirmed=confirmed,
        quarantine_rejected=np.bytes_(
            json.dumps(state["quarantine_rejected"]).encode()),
        **scalars,
    )
    runtime.incidents.record("checkpoint_saved", frame=frame,
                             tracks=len(runtime.tracker.tracks),
                             rung=runtime.scheduler.current.name)
    return state


def restore_runtime(runtime, path, frame=-1):
    """Load a :func:`save_runtime` checkpoint into ``runtime``.

    Returns the state dict that was installed (identical to what a
    subsequent :func:`runtime_state` reports).
    """
    with np.load(path, allow_pickle=False) as data:
        mat = np.atleast_2d(np.asarray(data["tracks"], dtype=np.float64))
        confirmed = np.asarray(data["tracks_confirmed"], dtype=np.bool_)
        tracks = [[int(r[0]), float(r[1]), float(r[2]), float(r[3]),
                   float(r[4]), int(r[5]), int(r[6]), int(r[7]), int(c)]
                  for r, c in zip(mat, confirmed) if r.size]
        state = {
            "format_version": int(data["format_version"]),
            "tracks": tracks,
            "quarantine_rejected": json.loads(
                bytes(data["quarantine_rejected"]).decode()),
        }
        for key in ("tracker_next_id", "tracker_frames", "rung", "over_run",
                    "under_run", "deadline_misses", "next_index", "frames_in",
                    "frames_done", "predicted", "cancelled", "crashes",
                    "quarantine_passed"):
            state[key] = int(data[key])
    load_runtime_state(runtime, state, frame=frame)
    return state

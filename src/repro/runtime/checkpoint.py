"""Checkpoint/restore for the resilient serving runtime.

The *model* already serializes (:mod:`repro.pipeline.serialization`); what
dies with a crashed worker is the *runtime* state: which faces are being
tracked and with what lifecycle counters, which degradation rung the
scheduler had settled on, and how many frames/misses/incidents have been
counted.  A replacement worker restored from the checkpoint resumes
exactly there - its tracker reports the same confirmed faces on the next
frame, its ladder does not restart at ``full`` under the very overload
that killed its predecessor, and its counters keep the fleet dashboard
monotone.

The format follows :mod:`repro.pipeline.serialization`: one compressed
``.npz``, array-first (tracks are a single ``(n, 8)`` float matrix),
``allow_pickle=False`` on load, and an explicit format version.  Restore
is *exact*: ``save -> restore -> save`` round-trips bitwise, and a
restored runtime produces identical detections on the same frame tail
(its first frame falls back to full extraction, which the engine
guarantees is bitwise-identical to the delta path it replaces).
"""

from __future__ import annotations

import json

import numpy as np

from ..pipeline.stream import Track

__all__ = ["CheckpointVersionError", "runtime_state", "load_runtime_state",
           "save_runtime", "restore_runtime", "model_state",
           "load_model_state", "save_model", "restore_model"]

#: v1: runtime-state payloads keyed ``format_version``.
#: v2: explicit ``version`` schema field on every payload (runtime and
#: model checkpoints) with :class:`CheckpointVersionError` on mismatch.
_FORMAT_VERSION = 2


class CheckpointVersionError(ValueError):
    """A checkpoint payload is missing its schema version or carries one
    this build cannot restore.  Raised *before* any field is touched, so a
    half-compatible payload can never install a torn state."""


def _check_version(payload, kind):
    """Validate the ``version`` field of a checkpoint payload (dict or
    npz mapping); returns the version.  ``format_version`` (the v1 key)
    is recognized so old payloads fail with "unsupported v1", not
    "missing version"."""
    if "version" in payload:
        version = int(payload["version"])
    elif "format_version" in payload:
        version = int(payload["format_version"])
    else:
        raise CheckpointVersionError(
            f"{kind} checkpoint has no schema version field "
            f"(expected 'version'); not a v{_FORMAT_VERSION} checkpoint")
    if version != _FORMAT_VERSION:
        raise CheckpointVersionError(
            f"unsupported {kind} checkpoint v{version} "
            f"(this build reads v{_FORMAT_VERSION})")
    return version

#: Column layout of the packed track matrix.
_TRACK_FIELDS = ("track_id", "y", "x", "size", "score", "hits", "misses",
                 "age")


def _tracks_matrix(tracks):
    """Pack tracks into ``(n, 8)`` floats + a confirmed bitmask."""
    mat = np.zeros((len(tracks), len(_TRACK_FIELDS)), dtype=np.float64)
    confirmed = np.zeros(len(tracks), dtype=np.bool_)
    for i, t in enumerate(tracks):
        mat[i] = [t.track_id, t.y, t.x, t.size, t.score, t.hits, t.misses,
                  t.age]
        confirmed[i] = t.confirmed
    return mat, confirmed


def runtime_state(runtime):
    """Snapshot a :class:`~repro.runtime.serving.ResilientVideoDetector`.

    Returns a JSON-safe dict (tracks as lists) capturing every piece of
    mutable state a replacement worker needs: tracker tracks and id
    counter, scheduler rung + run counters + miss total, frame counters,
    and the quarantine accounting.  The engine's scene cache is *not*
    checkpointed - it is a content-addressed cache, repopulated with
    bitwise-identical entries on the first frame after restore.
    """
    with runtime._state_lock:
        sched = runtime.scheduler
        return {
            "version": _FORMAT_VERSION,
            "tracks": [[t.track_id, t.y, t.x, t.size, t.score, t.hits,
                        t.misses, t.age, int(t.confirmed)]
                       for t in runtime.tracker.tracks],
            "tracker_next_id": runtime.tracker._next_id,
            "tracker_frames": runtime.tracker.frames,
            "rung": sched.rung,
            "over_run": sched.over_run,
            "under_run": sched.under_run,
            "deadline_misses": sched.deadline_misses,
            "next_index": runtime._next_index,
            "frames_in": runtime.frames_in,
            "frames_done": runtime.frames_done,
            "predicted": runtime.predicted,
            "cancelled": runtime.cancelled,
            "crashes": runtime.crashes,
            "quarantine_passed": runtime.quarantine.passed,
            "quarantine_rejected": dict(runtime.quarantine.rejected),
        }


def load_runtime_state(runtime, state, frame=-1):
    """Install a :func:`runtime_state` snapshot into ``runtime``.

    The tracker, scheduler and counters are overwritten; the engine cache
    and completed-results list are left alone (the former repopulates
    identically, the latter belongs to the worker that produced it).
    Records a ``checkpoint_restored`` incident.
    """
    _check_version(state, "runtime")
    with runtime._state_lock:
        runtime.tracker.tracks = [
            Track(int(r[0]), float(r[1]), float(r[2]), float(r[3]),
                  float(r[4]), hits=int(r[5]), misses=int(r[6]),
                  age=int(r[7]), confirmed=bool(r[8]))
            for r in state["tracks"]]
        runtime.tracker._next_id = int(state["tracker_next_id"])
        runtime.tracker.frames = int(state["tracker_frames"])
        sched = runtime.scheduler
        sched.rung = sched.ladder.clamp(int(state["rung"]))
        sched.over_run = int(state["over_run"])
        sched.under_run = int(state["under_run"])
        sched.deadline_misses = int(state["deadline_misses"])
        runtime._next_index = int(state["next_index"])
        runtime.frames_in = int(state["frames_in"])
        runtime.frames_done = int(state["frames_done"])
        runtime.predicted = int(state["predicted"])
        runtime.cancelled = int(state["cancelled"])
        runtime.crashes = int(state["crashes"])
        runtime.quarantine.passed = int(state["quarantine_passed"])
        runtime.quarantine.rejected = {
            k: int(v) for k, v in state["quarantine_rejected"].items()}
        runtime._prev_levels = None  # next frame re-extracts (bit-identical)
    runtime.incidents.record("checkpoint_restored", frame=frame,
                             rung=sched.current.name,
                             tracks=len(runtime.tracker.tracks))
    return runtime


def save_runtime(runtime, path, frame=-1):
    """Persist the runtime state to one compressed ``.npz``.

    Records a ``checkpoint_saved`` incident and returns the state dict
    that was written.
    """
    state = runtime_state(runtime)
    mat, confirmed = _tracks_matrix(runtime.tracker.tracks)
    scalars = {k: v for k, v in state.items()
               if k not in ("tracks", "quarantine_rejected")}
    np.savez_compressed(
        path,
        tracks=mat,
        tracks_confirmed=confirmed,
        quarantine_rejected=np.bytes_(
            json.dumps(state["quarantine_rejected"]).encode()),
        **scalars,
    )
    runtime.incidents.record("checkpoint_saved", frame=frame,
                             tracks=len(runtime.tracker.tracks),
                             rung=runtime.scheduler.current.name)
    return state


def restore_runtime(runtime, path, frame=-1):
    """Load a :func:`save_runtime` checkpoint into ``runtime``.

    Returns the state dict that was installed (identical to what a
    subsequent :func:`runtime_state` reports).
    """
    with np.load(path, allow_pickle=False) as data:
        version = _check_version(data, "runtime")
        mat = np.atleast_2d(np.asarray(data["tracks"], dtype=np.float64))
        confirmed = np.asarray(data["tracks_confirmed"], dtype=np.bool_)
        tracks = [[int(r[0]), float(r[1]), float(r[2]), float(r[3]),
                   float(r[4]), int(r[5]), int(r[6]), int(r[7]), int(c)]
                  for r, c in zip(mat, confirmed) if r.size]
        state = {
            "version": version,
            "tracks": tracks,
            "quarantine_rejected": json.loads(
                bytes(data["quarantine_rejected"]).decode()),
        }
        for key in ("tracker_next_id", "tracker_frames", "rung", "over_run",
                    "under_run", "deadline_misses", "next_index", "frames_in",
                    "frames_done", "predicted", "cancelled", "crashes",
                    "quarantine_passed"):
            state[key] = int(data[key])
    load_runtime_state(runtime, state, frame=frame)
    return state


# ----------------------------------------------------------------------
# adaptive-model checkpoints
# ----------------------------------------------------------------------
# An online-adapting class model is runtime state too: its replica rows,
# golden digests and bundling counters change while serving, and the
# adapter snapshots/restores them around every proposed update (the
# rejection-rollback contract of
# :class:`repro.reliability.guard.AdaptiveGuardedModel`).  The same
# payload persisted to disk lets a replacement worker resume with the
# *adapted* model instead of the offline-trained one.

def model_state(model):
    """Versioned in-memory snapshot of an adaptive guarded model.

    Thin wrapper over ``model.state_dict()`` that stamps the checkpoint
    schema version, so snapshots taken for rollback and payloads written
    by :func:`save_model` validate identically on the way back in.
    """
    state = model.state_dict()
    state["version"] = _FORMAT_VERSION
    return state


def load_model_state(model, state):
    """Install a :func:`model_state` snapshot bitwise; returns ``model``."""
    _check_version(state, "model")
    model.load_state_dict(state)
    return model


def save_model(model, path):
    """Persist an adaptive guarded model to one compressed ``.npz``.

    Array-first like :func:`save_runtime`: replica words, probes and the
    per-replica counter planes are stored as native arrays; digests and
    scalar ledgers ride in one JSON blob.  Returns the state dict.
    """
    state = model_state(model)
    counters = state["counters"]
    arrays = {
        "version": state["version"],
        "replicas": state["replicas"],
        "canary_golden": state["canary_golden"],
        "probes": state["probes"],
        "probe_labels": state["probe_labels"],
    }
    for r, snap in enumerate(counters):
        arrays[f"counter_planes_{r}"] = snap["planes"]
        arrays[f"counter_totals_{r}"] = snap["totals"]
    meta = {
        "golden": [bytes(d).hex() for d in state["golden"]],
        "counters": [{k: int(snap[k]) for k in ("prior", "updates", "decays")}
                     for snap in counters],
        "applied": state["applied"],
        "rejected": state["rejected"],
        "outvoted": state["outvoted"],
        "degraded_classes": sorted(state["degraded_classes"]),
    }
    np.savez_compressed(path, meta=np.bytes_(json.dumps(meta).encode()),
                        **arrays)
    return state


def restore_model(model, path):
    """Load a :func:`save_model` checkpoint into ``model``.

    Returns the installed state dict (identical to what a subsequent
    :func:`model_state` reports, version stamp included).
    """
    with np.load(path, allow_pickle=False) as data:
        version = _check_version(data, "model")
        meta = json.loads(bytes(data["meta"]).decode())
        counters = []
        for r, scalars in enumerate(meta["counters"]):
            counters.append({
                "planes": np.asarray(data[f"counter_planes_{r}"],
                                     dtype=np.uint64),
                "totals": np.asarray(data[f"counter_totals_{r}"],
                                     dtype=np.int64),
                **scalars,
            })
        state = {
            "version": version,
            "replicas": np.asarray(data["replicas"], dtype=np.uint64),
            "golden": [bytes.fromhex(d) for d in meta["golden"]],
            "canary_golden": np.asarray(data["canary_golden"]),
            "counters": counters,
            "probes": np.asarray(data["probes"], dtype=np.uint64),
            "probe_labels": np.asarray(data["probe_labels"]),
            "applied": int(meta["applied"]),
            "rejected": int(meta["rejected"]),
            "outvoted": int(meta["outvoted"]),
            "degraded_classes": set(meta["degraded_classes"]),
        }
    load_model_state(model, state)
    return state

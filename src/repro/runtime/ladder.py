"""Deadline-aware degradation ladder: shed work rung by rung, climb back.

HDFace's holographic representation gives the serving layer something a
DNN detector does not have: *continuous* accuracy dials.  Every rung of
the ladder below trades a measured amount of recall for a measured amount
of latency, and every rung is reversible the moment load drops:

====  ===============  ====================================================
rung  name             what is shed
====  ===============  ====================================================
0     ``full``         nothing - configured stride, all pyramid levels,
                       full-dimension classification
1     ``coarse``       scan-grid density: stride doubled, deepest pyramid
                       levels dropped (the tracker coasts large faces)
2     ``truncated``    classification dimension: windows are scored
                       against a *word-prefix* of the packed class model
                       (:class:`repro.core.packed.TruncatedClassModel`) -
                       the holographic accuracy dial, linear cost in words
3     ``skip``         whole frames: only every ``keyframe_every``-th
                       frame is detected (at rung-2 cost); the frames in
                       between are *predicted* from the temporal tracker's
                       coasting state
====  ===============  ====================================================

The :class:`DeadlineScheduler` moves along the ladder from observed
latency: a run of frames over the budget steps down one rung
(``degrade_after`` consecutive misses, so one GC pause does not shed
work), and a run of frames comfortably under budget
(``recover_after`` below ``headroom * budget``) climbs back up one rung -
asymmetric hysteresis, because degrading late blows the latency SLO while
recovering early just re-degrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hypervector import packed_words

__all__ = ["Rung", "DegradationLadder", "DeadlineScheduler",
           "FleetScheduler", "default_ladder", "cascade_ladder"]


@dataclass(frozen=True)
class Rung:
    """One ladder position: the knob settings for a frame at this load.

    Attributes
    ----------
    name:
        Stable identifier, reported in stats and incidents.
    stride_scale:
        Multiplier on the detector's configured stride (1 = full grid).
    max_levels:
        Scan only the first N pyramid levels (None = all).
    prefix_fraction:
        Fraction of the packed class model's words used for
        classification (1.0 = full dimension; packed backend only).
    keyframe_every:
        Detect every k-th frame and predict the rest from the tracker
        (1 = detect every frame).
    word_budget:
        Absolute model-word cap for classification (packed backend
        only); takes precedence over ``prefix_fraction``.  The natural
        unit for cascade-aware ladders: a rung's budget matches a
        cascade stage's cumulative word count, so degrading one rung
        sheds exactly one escalation stage
        (:func:`cascade_ladder`).
    """

    name: str
    stride_scale: int = 1
    max_levels: int | None = None
    prefix_fraction: float = 1.0
    keyframe_every: int = 1
    word_budget: int | None = None

    def __post_init__(self):
        if self.stride_scale < 1:
            raise ValueError("stride_scale must be at least 1")
        if self.max_levels is not None and self.max_levels < 1:
            raise ValueError("max_levels must be at least 1 or None")
        if not 0.0 < self.prefix_fraction <= 1.0:
            raise ValueError("prefix_fraction must be in (0, 1]")
        if self.keyframe_every < 1:
            raise ValueError("keyframe_every must be at least 1")
        if self.word_budget is not None and self.word_budget < 1:
            raise ValueError("word_budget must be at least 1 or None")

    def prefix_words(self, dim):
        """Model words this rung scores against, for dimension ``dim``."""
        total = packed_words(dim)
        if self.word_budget is not None:
            return max(1, min(int(self.word_budget), total))
        if self.prefix_fraction >= 1.0:
            return total
        return max(1, int(round(self.prefix_fraction * total)))


def default_ladder(backend="packed"):
    """The standard four-rung ladder (truncation rungs need ``packed``).

    The dense backend has no word-prefix dial, so its ladder substitutes
    a second grid-coarsening rung - the shape (4 rungs, monotone cost
    shedding) is identical, only the mechanism differs.
    """
    if backend == "packed":
        return DegradationLadder([
            Rung("full"),
            Rung("coarse", stride_scale=2, max_levels=3),
            Rung("truncated", stride_scale=2, max_levels=3,
                 prefix_fraction=0.5),
            Rung("skip", stride_scale=2, max_levels=2,
                 prefix_fraction=0.25, keyframe_every=3),
        ])
    return DegradationLadder([
        Rung("full"),
        Rung("coarse", stride_scale=2, max_levels=3),
        Rung("coarser", stride_scale=3, max_levels=2),
        Rung("skip", stride_scale=3, max_levels=2, keyframe_every=3),
    ])


def cascade_ladder(stage_words, max_levels=3, keyframe_every=3):
    """A ladder whose truncation rungs reuse a cascade's word schedule.

    Instead of forking the degradation planner for cascade-mode
    detectors, the cascade's own stage budgets *become* the ladder's
    word budgets: degrading one rung caps the escalation depth at the
    next-narrower stage (``max_words`` through :meth:`repro.pipeline.
    multiscale.PyramidDetector.detect`), so the serving path and the
    cascade share one notion of "how many words this frame gets".
    ``stage_words`` is the ascending cumulative schedule (e.g.
    ``[s.words for s in scanner.stages]``); the widest stage is the
    ``full`` rung, each narrower stage gets a ``cascade{w}`` rung, and
    the narrowest also powers the final skip-and-predict rung.
    """
    words = sorted({int(w) for w in stage_words})
    if not words or words[0] < 1:
        raise ValueError(f"stage_words must be positive, got {stage_words}")
    rungs = [Rung("full"),
             Rung("coarse", stride_scale=2, max_levels=max_levels)]
    for w in reversed(words[:-1]):
        rungs.append(Rung(f"cascade{w}", stride_scale=2,
                          max_levels=max_levels, word_budget=w))
    rungs.append(Rung("skip", stride_scale=2,
                      max_levels=max(1, max_levels - 1),
                      word_budget=words[0], keyframe_every=keyframe_every))
    return DegradationLadder(rungs)


class DegradationLadder:
    """An ordered list of rungs, cheapest-last, with transition recording."""

    def __init__(self, rungs):
        rungs = list(rungs)
        if not rungs:
            raise ValueError("ladder needs at least one rung")
        names = [r.name for r in rungs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rung names: {names}")
        self.rungs = rungs
        self.transitions = []

    def __len__(self):
        return len(self.rungs)

    def __getitem__(self, index):
        return self.rungs[index]

    def clamp(self, index):
        """Nearest valid rung index."""
        return max(0, min(int(index), len(self.rungs) - 1))

    def record_transition(self, frame, old, new):
        """Remember one rung change (for stats and the chaos report)."""
        self.transitions.append(
            {"frame": int(frame), "from": self.rungs[old].name,
             "to": self.rungs[new].name})


class DeadlineScheduler:
    """Latency-budget feedback controller over a :class:`DegradationLadder`.

    Parameters
    ----------
    budget:
        Per-frame latency budget in seconds (submit-to-done, queue wait
        included).  The p95 the chaos harness gates on is measured
        against this number.
    ladder:
        The rungs to move along.
    degrade_after:
        Consecutive over-budget frames before stepping down one rung.
    recover_after:
        Consecutive frames under ``headroom * budget`` before climbing
        back up one rung.
    headroom:
        Recovery threshold fraction - climbing exactly at the budget
        boundary would oscillate, so recovery requires real slack.

    The controller is deliberately memoryless beyond the two run
    counters: p95-style statistics are *reported* (via the profiler's
    percentile window) but the control law acts on consecutive runs,
    which reacts in ``degrade_after`` frames instead of waiting for a
    percentile window to turn over.
    """

    def __init__(self, budget, ladder, degrade_after=2, recover_after=10,
                 headroom=0.6):
        if budget <= 0:
            raise ValueError("budget must be positive seconds")
        if degrade_after < 1 or recover_after < 1:
            raise ValueError("degrade_after / recover_after must be >= 1")
        if not 0.0 < headroom <= 1.0:
            raise ValueError("headroom must be in (0, 1]")
        self.budget = float(budget)
        self.ladder = ladder
        self.degrade_after = int(degrade_after)
        self.recover_after = int(recover_after)
        self.headroom = float(headroom)
        self.rung = 0
        self.min_rung = 0
        self.over_run = 0
        self.under_run = 0
        self.deadline_misses = 0

    @property
    def current(self):
        """The active :class:`Rung`."""
        return self.ladder[self.rung]

    def observe(self, latency, frame=-1):
        """Feed one frame's latency; returns the (possibly new) rung index.

        A latency over the budget counts toward degradation *and* resets
        the recovery run (and vice versa), so one controller state is
        always a pure run length.
        """
        latency = float(latency)
        if latency > self.budget:
            self.deadline_misses += 1
            self.over_run += 1
            self.under_run = 0
            if (self.over_run >= self.degrade_after
                    and self.rung < len(self.ladder) - 1):
                old, self.rung = self.rung, self.rung + 1
                self.ladder.record_transition(frame, old, self.rung)
                self.over_run = 0
        elif latency <= self.headroom * self.budget:
            self.under_run += 1
            self.over_run = 0
            if self.under_run >= self.recover_after \
                    and self.rung > self.min_rung:
                old, self.rung = self.rung, self.rung - 1
                self.ladder.record_transition(frame, old, self.rung)
                self.under_run = 0
        else:
            # inside the hysteresis band: hold position, decay both runs
            self.over_run = 0
            self.under_run = 0
        return self.rung

    def set_rung(self, index, frame=-1):
        """Force a rung (checkpoint restore, operator override)."""
        index = self.ladder.clamp(index)
        if index != self.rung:
            self.ladder.record_transition(frame, self.rung, index)
        self.rung = index
        self.over_run = 0
        self.under_run = 0
        return self.rung

    def set_min_rung(self, index, frame=-1):
        """Set a degradation *floor*: recovery never climbs above it.

        The fleet scheduler's per-stream handle: raising a stream's floor
        sheds its work even while its own latencies look healthy (they
        would - the machine-wide overload shows up on *other* streams'
        queues first), and lowering the floor lets the ordinary recovery
        hysteresis climb back.  Raising the floor above the current rung
        degrades immediately.
        """
        index = self.ladder.clamp(index)
        self.min_rung = index
        if self.rung < index:
            old, self.rung = self.rung, index
            self.ladder.record_transition(frame, old, self.rung)
            self.over_run = 0
            self.under_run = 0
        return self.min_rung

    def stats(self):
        """Controller state snapshot for reports and checkpoints."""
        return {"budget": self.budget, "rung": self.rung,
                "rung_name": self.current.name,
                "min_rung": self.min_rung,
                "deadline_misses": self.deadline_misses,
                "over_run": self.over_run, "under_run": self.under_run,
                "transitions": list(self.ladder.transitions)}


class FleetScheduler:
    """Fleet-wide shedding policy over many per-stream schedulers.

    Each stream keeps its own :class:`DeadlineScheduler` (per-stream
    latency feedback stays honest), but on one machine the streams share
    CPU: when the *fleet* is behind, any stream's shed work frees cycles
    for every other stream.  A uniform response (degrade everyone) sheds
    far more quality than needed, so this controller degrades
    *selectively*: under sustained pressure it raises the degradation
    floor (:meth:`DeadlineScheduler.set_min_rung`) of the cheapest
    stream first - lowest ``priority``, then least-behind, so the
    latency-critical and already-struggling streams keep their quality -
    and restores floors in the opposite order once the fleet is calm.

    Parameters
    ----------
    priorities:
        Optional ``{stream: float}``; higher = more important = shed
        last, restored first.  Unlisted streams default to 0.
    pressure_threshold:
        Fraction of streams over budget that counts as fleet pressure.
    degrade_after / recover_after:
        Consecutive pressured / fully-calm ticks before one floor is
        raised / lowered - the same asymmetric hysteresis as the
        per-stream controller, one action per trigger so the fleet
        sheds in measured steps.

    Drive it with :meth:`tick` once per batching round (the
    :class:`repro.runtime.fleet.FleetDispatcher` does this), feeding
    each stream's recent latency-to-budget ratio.
    """

    def __init__(self, priorities=None, pressure_threshold=0.5,
                 degrade_after=2, recover_after=6):
        if not 0.0 < pressure_threshold <= 1.0:
            raise ValueError("pressure_threshold must be in (0, 1]")
        if degrade_after < 1 or recover_after < 1:
            raise ValueError("degrade_after / recover_after must be >= 1")
        self.schedulers = {}
        self.priorities = dict(priorities or {})
        self.pressure_threshold = float(pressure_threshold)
        self.degrade_after = int(degrade_after)
        self.recover_after = int(recover_after)
        self.hot_run = 0
        self.calm_run = 0
        self.ticks = 0
        self.actions = []

    def register(self, name, scheduler, priority=None):
        """Attach one stream's :class:`DeadlineScheduler`."""
        self.schedulers[str(name)] = scheduler
        if priority is not None:
            self.priorities[str(name)] = float(priority)

    def _rank(self, name, loads):
        return (self.priorities.get(name, 0.0),
                float(loads.get(name, 0.0)), name)

    def tick(self, loads):
        """Feed one round of per-stream load ratios (latency / budget).

        Returns the action taken this tick (``{"action": "shed" |
        "restore", "stream": ..., "min_rung": ...}``) or None.
        """
        self.ticks += 1
        if not loads:
            return None
        over = sum(1 for r in loads.values() if float(r) > 1.0)
        pressure = over / len(loads)
        if pressure >= self.pressure_threshold:
            self.hot_run += 1
            self.calm_run = 0
            if self.hot_run >= self.degrade_after:
                self.hot_run = 0
                return self._shed(loads)
        elif over == 0:
            self.calm_run += 1
            self.hot_run = 0
            if self.calm_run >= self.recover_after:
                self.calm_run = 0
                return self._restore(loads)
        else:
            # some streams behind but below fleet pressure: hold position
            self.hot_run = 0
            self.calm_run = 0
        return None

    def _shed(self, loads):
        candidates = [n for n, s in self.schedulers.items()
                      if s.min_rung < len(s.ladder) - 1]
        if not candidates:
            return None
        name = min(candidates, key=lambda n: self._rank(n, loads))
        sched = self.schedulers[name]
        floor = sched.set_min_rung(sched.min_rung + 1, frame=-self.ticks)
        action = {"tick": self.ticks, "action": "shed", "stream": name,
                  "min_rung": int(floor)}
        self.actions.append(action)
        return action

    def _restore(self, loads):
        candidates = [n for n, s in self.schedulers.items()
                      if s.min_rung > 0]
        if not candidates:
            return None
        name = max(candidates, key=lambda n: self._rank(n, loads))
        sched = self.schedulers[name]
        floor = sched.set_min_rung(sched.min_rung - 1, frame=-self.ticks)
        action = {"tick": self.ticks, "action": "restore", "stream": name,
                  "min_rung": int(floor)}
        self.actions.append(action)
        return action

    def stats(self):
        """Controller snapshot: floors, runs, and the action log."""
        return {"ticks": self.ticks, "hot_run": self.hot_run,
                "calm_run": self.calm_run,
                "pressure_threshold": self.pressure_threshold,
                "floors": {n: int(s.min_rung)
                           for n, s in self.schedulers.items()},
                "actions": list(self.actions)}

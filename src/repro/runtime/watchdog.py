"""Stall watchdog: detect hung frame processing, cancel, then restart.

A serving loop can hang in ways no exception handler sees - a pathological
input driving a quadratic corner, a stuck I/O dependency, a livelocked
native call.  The watchdog is the escalation path, a two-stage state
machine per frame:

``watching`` --(frame exceeds ``stall_timeout``)--> ``cancelling``
    The frame's cancel event is set.  Processing checks it at its
    cooperative checkpoints (between pyramid levels, before
    classification, inside injected chaos stalls) and aborts the frame
    with :class:`FrameCancelled` - state intact, next frame proceeds.

``cancelling`` --(no reaction within ``grace``)--> ``restarting``
    The consumer thread is wedged somewhere that honors no flag.  The
    watchdog fires the restart callback: the runtime bumps its
    *generation* counter, abandons the wedged thread (whose eventual
    result will be discarded as stale), and spawns a fresh consumer that
    resumes from the shared state - tracker, ladder rung, counters and
    engine cache all survive, because they live on the runtime, not the
    thread.

Both escalations are recorded as incidents by the runtime's callbacks.
The watchdog itself is policy-free: it knows timestamps and callbacks,
nothing about detection.
"""

from __future__ import annotations

import threading
import time

__all__ = ["FrameCancelled", "Watchdog"]


class FrameCancelled(RuntimeError):
    """Raised inside frame processing when the watchdog cancelled it."""


class _BusyFrame:
    """Watchdog-side record of the frame currently being processed."""

    __slots__ = ("token", "frame", "started_at", "cancelled", "restarted")

    def __init__(self, token, frame, started_at):
        self.token = token
        self.frame = frame
        self.started_at = started_at
        self.cancelled = False
        self.restarted = False


class Watchdog:
    """Monitors frame-processing heartbeats and escalates stalls.

    Parameters
    ----------
    stall_timeout:
        Seconds a single frame may process before the cancel stage fires.
    grace:
        Additional seconds after cancellation before the restart stage
        fires (default: ``stall_timeout``).
    interval:
        Poll period of the monitor thread (default: a quarter of the
        stall timeout, floored at 10 ms).
    on_cancel / on_restart:
        Callbacks ``f(frame_index)`` for the two escalation stages.
    clock:
        Injectable time source for deterministic tests.
    """

    def __init__(self, stall_timeout, grace=None, interval=None,
                 on_cancel=None, on_restart=None, clock=time.monotonic):
        if stall_timeout <= 0:
            raise ValueError("stall_timeout must be positive seconds")
        self.stall_timeout = float(stall_timeout)
        self.grace = float(grace) if grace is not None else self.stall_timeout
        if self.grace < 0:
            raise ValueError("grace must be non-negative")
        self.interval = (float(interval) if interval is not None
                         else max(self.stall_timeout / 4.0, 0.01))
        self.on_cancel = on_cancel
        self.on_restart = on_restart
        self._clock = clock
        self._lock = threading.Lock()
        self._busy = None
        self._next_token = 0
        self._stop = threading.Event()
        self._thread = None
        self.cancels = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # heartbeat API (called by the consumer thread)
    # ------------------------------------------------------------------
    def frame_started(self, frame_index):
        """Mark a frame as in flight; returns a token for frame_finished."""
        with self._lock:
            self._next_token += 1
            token = self._next_token
            self._busy = _BusyFrame(token, int(frame_index), self._clock())
            return token

    def frame_finished(self, token):
        """Clear the in-flight mark - only if ``token`` is still current.

        A consumer abandoned by the restart stage eventually finishes its
        stuck frame; its stale token must not clear the *new* consumer's
        heartbeat, hence the token check.
        """
        with self._lock:
            if self._busy is not None and self._busy.token == token:
                self._busy = None

    # ------------------------------------------------------------------
    # monitoring
    # ------------------------------------------------------------------
    def poll(self):
        """One monitor pass; returns the stage fired (None/"cancel"/"restart").

        Exposed for deterministic tests; the background thread just calls
        this on its interval.
        """
        with self._lock:
            busy = self._busy
            if busy is None:
                return None
            elapsed = self._clock() - busy.started_at
            fire_cancel = (not busy.cancelled
                           and elapsed > self.stall_timeout)
            fire_restart = (busy.cancelled and not busy.restarted
                            and elapsed > self.stall_timeout + self.grace)
            if fire_cancel:
                busy.cancelled = True
                self.cancels += 1
            if fire_restart:
                busy.restarted = True
                self.restarts += 1
                # the wedged frame is abandoned: stop watching it so the
                # replacement consumer starts from a clean heartbeat
                self._busy = None
        # callbacks run outside the lock: they take runtime locks
        if fire_cancel and self.on_cancel is not None:
            self.on_cancel(busy.frame)
            return "cancel"
        if fire_restart and self.on_restart is not None:
            self.on_restart(busy.frame)
            return "restart"
        if fire_cancel:
            return "cancel"
        if fire_restart:
            return "restart"
        return None

    def _run(self):
        while not self._stop.wait(self.interval):
            self.poll()

    def start(self):
        """Start the monitor thread (idempotent)."""
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(target=self._run, daemon=True,
                                            name="repro-watchdog")
            self._thread.start()
        return self

    def stop(self):
        """Stop the monitor thread and clear any heartbeat."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        with self._lock:
            self._busy = None

    def stats(self):
        """Escalation counters."""
        return {"cancels": self.cancels, "restarts": self.restarts}

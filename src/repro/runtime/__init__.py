"""Resilient serving runtime: keep detection alive, on time, and honest.

The streaming stack (:mod:`repro.pipeline.stream`) makes detection
*fast*; this package makes it *survivable*.  It wraps the pyramid
detector in a serving loop that holds a per-frame latency budget under
overload by shedding work along an explicit degradation ladder (exploiting
HDFace's holographic truncated-dimension dial), recovers from stalls with
a two-stage watchdog, rejects poison inputs at a quarantine gate before
they can contaminate the feature cache, checkpoints its mutable state,
and ships with a chaos harness that injects all of the above and gates on
the recall/latency contract.  See ``docs/runtime.md``.
"""

from .chaos import (SOAK_SURFACES, ChaosInjector, ChaosScenario,
                    poison_frame, run_ber_soak, run_chaos, run_fleet_chaos)
from .adapt import DriftDetector, OnlineAdapter
from .checkpoint import (CheckpointVersionError, load_model_state,
                         load_runtime_state, model_state, restore_model,
                         restore_runtime, runtime_state, save_model,
                         save_runtime)
from .fleet import AdmissionError, BatchGate, FleetDispatcher
from .ladder import (DeadlineScheduler, DegradationLadder, FleetScheduler,
                     PlannerLadder, Rung, cascade_ladder, default_ladder)
from .planner import CostModel, ExecutionPlanner
from .quarantine import InputQuarantine, PoisonFrameError
from .serving import ResilientVideoDetector, ServeFrameResult
from .watchdog import FrameCancelled, Watchdog

__all__ = [
    "ResilientVideoDetector",
    "ServeFrameResult",
    "Rung",
    "DegradationLadder",
    "PlannerLadder",
    "DeadlineScheduler",
    "default_ladder",
    "cascade_ladder",
    "CostModel",
    "ExecutionPlanner",
    "Watchdog",
    "FrameCancelled",
    "InputQuarantine",
    "PoisonFrameError",
    "ChaosScenario",
    "ChaosInjector",
    "poison_frame",
    "run_chaos",
    "run_ber_soak",
    "run_fleet_chaos",
    "SOAK_SURFACES",
    "FleetDispatcher",
    "FleetScheduler",
    "BatchGate",
    "AdmissionError",
    "runtime_state",
    "load_runtime_state",
    "save_runtime",
    "restore_runtime",
    "CheckpointVersionError",
    "model_state",
    "load_model_state",
    "save_model",
    "restore_model",
    "DriftDetector",
    "OnlineAdapter",
]

"""Online adaptation in the serving loop: drift detection + guarded updates.

The serving runtime keeps detection *alive*; this module keeps it
*accurate* as the scene drifts away from the training set (ROADMAP item
2: illumination/pose drift over long-lived streams).  Two pieces:

* :class:`DriftDetector` - a windowed score-distribution shift monitor
  over the tracker's confirmed-track margins.  Adaptation is not free
  (every update risks absorbing a bad label), so the adapter only
  proposes updates while the detector says ``drifting``: scores have
  slipped relative to the frozen warm-up reference, but not so far that
  the tracker itself is untrustworthy (``frozen``).  On a static scene
  the state stays ``stable``, zero updates are proposed, and served
  detections remain *bitwise* what a frozen model serves.

* :class:`OnlineAdapter` - the loop closing tracker output back into the
  class model.  Confirmed tracks (``min_hits`` survivors - detections
  the temporal hysteresis already vouched for) are harvested as weak
  labels: their windows re-assembled into packed queries through the
  engine's cached scene fields (cheap - the frame was just scanned) and
  proposed to an :class:`~repro.reliability.guard.AdaptiveGuardedModel`
  as bundling updates.  Every proposal is bracketed by the checkpoint
  machinery: snapshot before, restore on rejection - so a vetoed update
  (label poisoning, update storm, class collapse) leaves the model
  bitwise untouched and counted in :attr:`rollbacks`.

The chaos harness arms :meth:`OnlineAdapter.poison_next` /
:meth:`OnlineAdapter.storm_next` to turn the next harvest into an
attack; the gates in :mod:`repro.runtime.chaos` then require the guard
to detect, outvote and roll back without losing clean recall.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.hypervector import packed_tail_mask
from ..learning.online import OnlineUpdate
from .checkpoint import load_model_state, model_state

__all__ = ["DriftDetector", "OnlineAdapter"]

#: Drift-detector states, in escalation order.
DRIFT_STATES = ("warmup", "stable", "drifting", "frozen")


class DriftDetector:
    """Windowed score-distribution shift over the serving margins.

    The first ``warmup`` observations freeze the *reference* - what
    "trained-distribution" margins look like on this stream.  After
    that, each observation lands in a bounded recent window and the
    relative drop ``(ref_mean - recent_mean) / max(|ref_mean|, eps)``
    classifies the stream:

    * ``stable`` - drop below ``drift_threshold``: the model still fits;
      adapting would only absorb label noise, so the adapter holds.
    * ``drifting`` - drop in ``[drift_threshold, freeze_threshold)``:
      scores are sliding but tracking still works; adapt.
    * ``frozen`` - drop at/above ``freeze_threshold``: the tracker's own
      output is no longer trustworthy as labels; freeze the model and
      ride it out (better a stale model than one trained on garbage).

    A recovering stream walks back down the same thresholds, so the
    states are re-entrant in both directions.
    """

    def __init__(self, window=30, warmup=10, drift_threshold=0.1,
                 freeze_threshold=0.8, eps=1e-6):
        if int(warmup) < 1:
            raise ValueError(f"warmup must be >= 1, got {warmup}")
        if not 0.0 < float(drift_threshold) < float(freeze_threshold):
            raise ValueError(
                "need 0 < drift_threshold < freeze_threshold, got "
                f"{drift_threshold} / {freeze_threshold}")
        self.warmup = int(warmup)
        self.drift_threshold = float(drift_threshold)
        self.freeze_threshold = float(freeze_threshold)
        self.eps = float(eps)
        self.reference = []
        self.recent = deque(maxlen=int(window))
        self.observed = 0
        self.transitions = []

    @property
    def state(self):
        """Current state: one of :data:`DRIFT_STATES`."""
        if len(self.reference) < self.warmup:
            return "warmup"
        s = self.shift()
        if s >= self.freeze_threshold:
            return "frozen"
        if s >= self.drift_threshold:
            return "drifting"
        return "stable"

    def shift(self):
        """Relative drop of the recent mean below the reference mean.

        Positive = scores have fallen (drift); zero/negative = at or
        above reference.  Zero until both windows have data.
        """
        if len(self.reference) < self.warmup or not self.recent:
            return 0.0
        ref = float(np.mean(self.reference))
        rec = float(np.mean(self.recent))
        return (ref - rec) / max(abs(ref), self.eps)

    def observe(self, score):
        """Feed one frame's score signal; returns the new state."""
        self.observed += 1
        before = self.state
        if len(self.reference) < self.warmup:
            self.reference.append(float(score))
        else:
            self.recent.append(float(score))
        after = self.state
        if after != before:
            self.transitions.append((self.observed, before, after))
        return after

    def stats(self):
        return {
            "state": self.state,
            "shift": self.shift(),
            "observed": self.observed,
            "reference_mean": float(np.mean(self.reference))
            if self.reference else 0.0,
            "recent_mean": float(np.mean(self.recent))
            if self.recent else 0.0,
            "transitions": list(self.transitions),
        }


class OnlineAdapter:
    """Closes the tracker -> class-model loop with guarded updates.

    Parameters
    ----------
    runtime:
        The owning :class:`~repro.runtime.serving.ResilientVideoDetector`
        (packed backend).  The adapter reads its engine, base detector
        and profiler; the runtime calls :meth:`observe` once per
        detected frame, after the tracker update.
    model:
        The :class:`~repro.reliability.guard.AdaptiveGuardedModel`
        serving this stream (usually also installed as the runtime's
        ``model_override``).  Shared across streams in a fleet - the
        model's own lock serializes cross-stream proposals.
    drift:
        A :class:`DriftDetector` (default-configured if omitted).  Fleet
        streams each get their own, so one stream's drift cannot push
        another stream's updates through.
    label:
        Class id the harvested windows vote for (default: the base
        detector's ``face_class``).
    max_updates_per_frame:
        Proposal budget per frame; harvests beyond it are *suppressed*
        (counted, not proposed) - the update-storm throttle.
    """

    def __init__(self, runtime, model, drift=None, label=None,
                 max_updates_per_frame=2):
        self.runtime = runtime
        self.model = model
        self.drift = drift if drift is not None else DriftDetector()
        base = runtime.base
        self.label = int(label) if label is not None else base.face_class
        self.max_updates_per_frame = int(max_updates_per_frame)
        self.harvested = 0
        self.proposals = 0
        self.applied = 0
        self.rejected = 0
        self.rollbacks = 0
        self.outvoted = 0
        self.stable_skips = 0
        self.frozen_skips = 0
        self.storm_suppressed = 0
        self.poison_injected = 0
        self.poison_rejected = 0
        self.poison_outvoted = 0
        self._poison_kind = None
        self._storm = 0

    # ------------------------------------------------------------------
    # chaos arming (see repro.runtime.chaos)
    # ------------------------------------------------------------------
    def poison_next(self, kind="label"):
        """Arm the next observed frame with a poisoned update.

        ``"label"`` - the whole update is adversarial: complement-of-row
        votes at twice the model's prior, enough to rewrite the class if
        unguarded.  Every replica sees it, so the step/probe vetting is
        the only defense - the gate expects *rejected + rolled back*.

        ``"replica"`` - delivery corruption: replica 1 alone receives
        the poisoned payload while the others see the clean harvest -
        the gate expects *outvoted* (and the clean majority to commit).
        """
        if kind not in ("label", "replica"):
            raise ValueError(f"unknown poison kind {kind!r}")
        self._poison_kind = kind

    def storm_next(self, n):
        """Arm the next observed frame with ``n`` back-to-back updates.

        The update-storm scenario: everything past the per-frame budget
        must be suppressed, and what is proposed must still pass the
        per-proposal vetting.
        """
        self._storm = max(int(n), 0)

    # ------------------------------------------------------------------
    # the per-frame hook
    # ------------------------------------------------------------------
    def _poison_rows(self, n):
        """Complement-of-row votes: the strongest wrong-label payload."""
        row = np.asarray(self.model.replicas[0, self.label])
        poison = row ^ packed_tail_mask(self.model.dim)
        return np.repeat(poison[None], n, axis=0)

    def _confirmed_queries(self, frame, tracks):
        """Packed queries of the confirmed native-size tracks' windows."""
        window = self.runtime.base.window
        h, w = frame.shape
        if h < window or w < window:
            return None
        origins = []
        for t in tracks:
            if not t.confirmed or abs(t.size - window) > 0.5:
                continue  # scaled pyramid levels: coordinates are not
                # base-window cells; harvest only native-size tracks
            y = min(max(int(round(t.y)), 0), h - window)
            x = min(max(int(round(t.x)), 0), w - window)
            origins.append((y, x))
        if not origins:
            return None
        return self.runtime.engine.window_queries(frame, origins, window)

    def _margin_signal(self, queries):
        """Mean model margin of the tracked windows - the drift signal.

        Computed from the tracks' *window queries* against the current
        model, not from the tracker's detection scores: detection scores
        are censored at the detector's threshold (a window that slid
        below it produced no detection, so its decay would be invisible
        to the drift monitor), while a confirmed track's window can be
        re-scored every frame, including while it coasts.
        """
        sims = self.model.similarities(queries)
        label = sims[:, self.label]
        others = np.delete(sims, self.label, axis=1).max(axis=1)
        return float(np.mean(label - others))

    def _harvest(self, queries, index):
        """Confirmed-track queries -> one packed bundling update."""
        if queries is None:
            return None
        self.harvested += len(queries)
        return OnlineUpdate(self.label, queries, frame=index)

    def _propose(self, update):
        """Snapshot -> propose -> restore-on-reject; returns the verdict."""
        snapshot = model_state(self.model)
        verdict = self.model.propose(update)
        self.proposals += 1
        self.outvoted += len(verdict["diverged"])
        if verdict["applied"]:
            self.applied += 1
        else:
            self.rejected += 1
            load_model_state(self.model, snapshot)
            self.rollbacks += 1
        if update.source == "poison":
            if not verdict["applied"]:
                self.poison_rejected += 1
            if verdict["diverged"]:
                self.poison_outvoted += 1
        return verdict

    def observe(self, frame, tracks, index=-1):
        """Per-frame adaptation step; returns the proposal verdicts.

        Called by the runtime after the tracker update of a detected
        frame (under its state lock - proposals here serialize with the
        model's own lock as well, so fleet-shared models stay
        consistent).  Feeds the drift detector, decides adapt vs. freeze,
        harvests confirmed tracks, and runs any armed chaos payloads.
        """
        queries = self._confirmed_queries(frame, tracks)
        if queries is not None:
            state = self.drift.observe(self._margin_signal(queries))
        else:
            state = self.drift.state
        armed = self._poison_kind is not None or self._storm > 0
        verdicts = []
        if state == "drifting" or armed:
            clean = self._harvest(queries, index)
            verdicts.extend(self._run_proposals(clean, state, index))
        elif state == "frozen":
            self.frozen_skips += 1
        elif state == "stable":
            self.stable_skips += 1
        self._publish(state)
        return verdicts

    def _run_proposals(self, clean, state, index):
        """Order the frame's proposals: armed chaos first, then clean."""
        updates = []
        if self._poison_kind is not None:
            kind, self._poison_kind = self._poison_kind, None
            poison = self._poison_rows(2 * self.model.prior)
            if kind == "label":
                updates.append(OnlineUpdate(self.label, poison,
                                            source="poison", frame=index))
            else:
                base_payload = clean.queries if clean is not None else \
                    np.asarray(self.model.replicas[:1, self.label])
                updates.append(OnlineUpdate(
                    self.label, base_payload, source="poison", frame=index,
                    replica_payloads={1: poison}))
            self.poison_injected += 1
        if self._storm > 0 and clean is not None:
            storm, self._storm = self._storm, 0
            updates.extend(
                OnlineUpdate(clean.label, clean.queries, source="storm",
                             frame=index)
                for _ in range(storm))
        elif clean is not None and state == "drifting":
            updates.append(clean)
        verdicts = []
        for update in updates:
            if len(verdicts) >= self.max_updates_per_frame:
                self.storm_suppressed += len(updates) - len(verdicts)
                break
            verdicts.append(self._propose(update))
        return verdicts

    def _publish(self, state):
        """Mirror the adaptation ledger into the runtime's profiler."""
        prof = self.runtime.profiler
        prof.set_counter("adapt_state", state)
        prof.set_counter("adapt_proposals", self.proposals)
        prof.set_counter("adapt_applied", self.applied)
        prof.set_counter("adapt_rejected", self.rejected)
        prof.set_counter("adapt_rollbacks", self.rollbacks)
        prof.set_counter("adapt_outvoted", self.outvoted)
        prof.set_counter("guard_scrubs", self.model.scrubs)
        prof.set_counter("guard_repaired", self.model.repaired)

    def stats(self):
        """The adaptation ledger plus the drift detector's view."""
        return {
            "label": self.label,
            "harvested": self.harvested,
            "proposals": self.proposals,
            "applied": self.applied,
            "rejected": self.rejected,
            "rollbacks": self.rollbacks,
            "outvoted": self.outvoted,
            "stable_skips": self.stable_skips,
            "frozen_skips": self.frozen_skips,
            "storm_suppressed": self.storm_suppressed,
            "poison_injected": self.poison_injected,
            "poison_rejected": self.poison_rejected,
            "poison_outvoted": self.poison_outvoted,
            "drift": self.drift.stats(),
            "model": self.model.stats(),
        }

"""Chaos harness: inject failures into the serving runtime, gate on SLOs.

Reliability claims that are only exercised by unit tests die in
production, so the runtime ships with its own adversary.  A
:class:`ChaosScenario` scripts a deterministic failure timeline over a
frame stream - processing stalls (soft ones that honor the cancel flag
and hard ones that wedge the consumer), poison frames, packed bit faults
in the feature datapath, corrupted stored class models, and load spikes -
and :func:`run_chaos` drives the runtime through it end to end, then
checks the contract:

* the loop never crashes (``crashes == 0``);
* every stall is recovered by the watchdog (cancel or restart);
* every poison frame is quarantined, and none of them contaminated the
  engine's content-addressed scene cache;
* served recall stays within ``max_recall_drop`` of a *clean* run pinned
  at the deepest degradation rung the chaos run reached (degrading under
  attack is the design; detecting worse than the rung explains is a bug);
* the p95 of served frame *processing* latency stays within the budget
  (times an explicit tolerance) - processing cost is what the ladder
  controls, so this is the "degradation bought back the deadline" check;
  submit-to-done latency (which also carries the queue wait frames
  inherit from an upstream stall) is reported alongside, ungated;
* on adapting runtimes (``adapt=True``), scripted online-learning
  attacks (``label_poison``, ``update_storm``) must be caught at the
  model's door: poisoned updates detected (rejected or outvoted) and
  rolled back, storms throttled to the proposal budget - with the recall
  gate proving clean recall survived the attack.

The verdict plus the full incident trail is returned JSON-ready for
``benchmarks/bench_runtime_resilience.py`` and the CI chaos-smoke job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..noise.campaign import _match_detections
from ..pipeline.engine import scene_key
from ..reliability.faults import DetectionFaultInjector
from .ladder import DegradationLadder
from .watchdog import FrameCancelled

__all__ = ["ChaosScenario", "ChaosInjector", "poison_frame", "run_chaos",
           "run_ber_soak", "run_fleet_chaos", "POISON_KINDS",
           "SOAK_SURFACES"]

#: Poison payloads the harness can forge (quarantine reason they trip).
POISON_KINDS = ("nan", "inf", "constant", "shape", "ndim", "dtype")

#: Memory surfaces the continuous-BER soak can bombard (see
#: :func:`run_ber_soak`): the engine's scene cache, the extractor's item
#: memories, and the (guarded) class model.
SOAK_SURFACES = ("cache", "items", "model")


def poison_frame(kind, shape=(64, 64), rng=None):
    """Forge one poison frame of the given kind (see :data:`POISON_KINDS`)."""
    h, w = shape
    base = (rng.random((h, w)) if rng is not None
            else np.linspace(0.0, 1.0, h * w).reshape(h, w))
    if kind == "nan":
        bad = base.copy()
        bad[:: max(h // 8, 1)] = np.nan
        return bad
    if kind == "inf":
        bad = base.copy()
        bad[h // 2, :] = np.inf
        return bad
    if kind == "constant":
        return np.full((h, w), 0.5)
    if kind == "shape":
        return base[: h // 2, : w // 2]
    if kind == "ndim":
        return base[None, ...]
    if kind == "dtype":
        return np.full((h, w), "x", dtype=object)
    raise ValueError(f"unknown poison kind {kind!r}; "
                     f"expected one of {POISON_KINDS}")


@dataclass
class ChaosScenario:
    """A scripted failure timeline, keyed by *submitted* frame number.

    Attributes
    ----------
    name:
        Scenario label for the report.
    stalls:
        ``{frame: seconds}`` soft stalls - the injected delay polls the
        watchdog's cancel flag, modelling a slow-but-cooperative
        dependency.
    hard_stalls:
        ``{frame: seconds}`` hard stalls - the delay ignores the cancel
        flag, modelling a wedged native call; only the watchdog's
        consumer restart recovers these.
    poison:
        ``{frame: kind}`` frames replaced with :func:`poison_frame`
        payloads at submit time.
    spikes:
        ``{frame: seconds}`` load spikes - extra per-frame latency
        (contention from a noisy neighbour) that the ladder must absorb;
        unlike stalls, spikes are *served* frames and count toward the
        latency gates.
    fault_rate:
        Packed bit-fault rate armed in the feature datapath
        (:class:`~repro.reliability.faults.DetectionFaultInjector`)
        during ``fault_frames``.
    fault_frames:
        ``(start, end)`` half-open submitted-frame window for the
        datapath faults; None arms them for the whole run.
    model_fault_rate:
        When positive, the stored packed class model is corrupted at this
        per-bit rate for the entire run
        (:meth:`~repro.core.packed.PackedClassModel.corrupted`).
    label_poison:
        ``{frame: kind}`` online-learning attacks (``adapt=True``
        runtimes): at the given frame the adapter's *next* harvested
        update is replaced with a poisoned one -
        :meth:`~repro.runtime.adapt.OnlineAdapter.poison_next` kinds
        ``"label"`` (adversarial votes, must be rejected + rolled back)
        or ``"replica"`` (one replica's payload corrupted in delivery,
        must be outvoted).
    update_storm:
        ``{frame: n}`` update storms: the adapter is armed to propose
        ``n`` back-to-back copies of its next harvest
        (:meth:`~repro.runtime.adapt.OnlineAdapter.storm_next`); the
        per-frame proposal budget must suppress the excess.
    seed:
        Randomness for fault positions.
    """

    name: str
    stalls: dict = field(default_factory=dict)
    hard_stalls: dict = field(default_factory=dict)
    poison: dict = field(default_factory=dict)
    spikes: dict = field(default_factory=dict)
    fault_rate: float = 0.0
    fault_frames: tuple | None = None
    model_fault_rate: float = 0.0
    label_poison: dict = field(default_factory=dict)
    update_storm: dict = field(default_factory=dict)
    seed: int = 0

    def payload(self):
        """JSON-safe scenario description for the report."""
        return {
            "name": self.name,
            "stalls": {int(k): float(v) for k, v in self.stalls.items()},
            "hard_stalls": {int(k): float(v)
                            for k, v in self.hard_stalls.items()},
            "poison": {int(k): str(v) for k, v in self.poison.items()},
            "spikes": {int(k): float(v) for k, v in self.spikes.items()},
            "fault_rate": self.fault_rate,
            "fault_frames": (list(self.fault_frames)
                             if self.fault_frames else None),
            "model_fault_rate": self.model_fault_rate,
            "label_poison": {int(k): str(v)
                             for k, v in self.label_poison.items()},
            "update_storm": {int(k): int(v)
                             for k, v in self.update_storm.items()},
            "seed": self.seed,
        }


class ChaosInjector:
    """The runtime's ``pre_frame`` hook, acting out one scenario.

    Runs in the consumer thread immediately before a frame's detection
    work, so its stalls occupy exactly the processing slot the watchdog
    monitors, and its per-frame arming of the datapath injector is
    synchronous with the frame it targets.
    """

    def __init__(self, scenario, runtime):
        self.scenario = scenario
        self.runtime = runtime
        self.injector = None
        if scenario.fault_rate > 0.0:
            self.injector = DetectionFaultInjector(
                scenario.fault_rate, runtime.base.pipeline.dim,
                seed_or_rng=scenario.seed)
        self.stalled = []

    def _frame_number(self, index, meta):
        if meta and "frame" in meta:
            return int(meta["frame"])
        return int(index)

    def __call__(self, index, frame, meta, cancel):
        sc = self.scenario
        i = self._frame_number(index, meta)
        if self.injector is not None:
            lo, hi = sc.fault_frames or (0, float("inf"))
            self.runtime.injector = (self.injector if lo <= i < hi else None)
        adapter = getattr(self.runtime, "adapter", None)
        if adapter is not None:
            kind = sc.label_poison.get(i)
            if kind is not None:
                adapter.poison_next(kind)
            storm = sc.update_storm.get(i)
            if storm is not None:
                adapter.storm_next(storm)
        hard = sc.hard_stalls.get(i)
        if hard is not None:
            self.stalled.append(i)
            time.sleep(hard)  # ignores the cancel flag: a wedged call
        soft = sc.stalls.get(i)
        if soft is not None:
            self.stalled.append(i)
            deadline = time.monotonic() + soft
            while time.monotonic() < deadline:
                if cancel is not None and cancel.is_set():
                    raise FrameCancelled(f"soft stall at frame {i} cancelled")
                time.sleep(0.005)
        spike = sc.spikes.get(i)
        if spike is not None:
            time.sleep(spike)  # served load: counts toward latency gates


def _adapt_gates(runtime, scenario):
    """Online-learning chaos gates (armed scenarios, adapting runtimes).

    * ``poison_update_detected`` - every consumed poisoned update was
      caught by the guard: rejected by the vetting (label kind) or its
      diverging replica outvoted (replica kind).
    * ``poison_update_rolled_back`` - every rejected poison was restored
      from the pre-proposal snapshot (the adapter's rollback ledger
      covers it); clean-recall preservation is the existing
      ``recall_within_bound`` / healthy-stream gates.
    * ``storm_throttled`` - the proposal budget suppressed everything an
      update storm pushed past ``max_updates_per_frame``.
    """
    adapter = getattr(runtime, "adapter", None)
    if adapter is None or not (scenario.label_poison
                               or scenario.update_storm):
        return {}
    a = adapter.stats()
    gates = {}
    if scenario.label_poison:
        injected = a["poison_injected"]
        gates["poison_update_detected"] = (
            injected >= 1
            and a["poison_rejected"] + a["poison_outvoted"] >= injected)
        if any(k == "label" for k in scenario.label_poison.values()):
            gates["poison_update_rolled_back"] = (
                a["poison_rejected"] >= 1
                and a["rollbacks"] >= a["poison_rejected"])
    if scenario.update_storm:
        budget = adapter.max_updates_per_frame
        expected = sum(max(int(n) - budget, 0)
                       for n in scenario.update_storm.values())
        gates["storm_throttled"] = a["storm_suppressed"] >= expected
    return gates


def _served_recall(results, truth_by_frame, iou_match=0.25):
    """Mean per-frame recall of what the runtime *served*, plus unserved.

    Detected frames are scored on their detections; predicted (tracker
    coasting) and quarantined/cancelled frames on their confirmed tracks -
    that is the output a consumer of the serving API actually sees.
    Frames the runtime never produced a result for (queue-dropped, or
    discarded as stale after a consumer restart) are *excluded* from the
    recall mean and counted separately - they are already gated through
    the stall-recovery and crash gates, and folding them in as zeros
    would make the recall gate measure injection count, not detection
    quality.  Returns ``(recall, n_scored, n_unserved)``.
    """
    recalls, unserved = [], 0
    for frame_no, truth in truth_by_frame.items():
        if not truth:
            continue
        result = results.get(frame_no)
        if result is None:
            unserved += 1
            continue
        boxes = result.detections if result.mode == "detected" \
            else result.tracks
        matched = _match_detections(boxes, truth, iou_match)
        recalls.append(len(matched) / len(truth))
    recall = float(np.mean(recalls)) if recalls else 1.0
    return recall, len(recalls), unserved


def run_chaos(make_runtime, frames, truth, scenario, pace=0.0,
              max_recall_drop=0.05, p95_tolerance=1.0, iou_match=0.25,
              stop_timeout=30.0):
    """Drive a runtime through a chaos scenario and gate the outcome.

    Parameters
    ----------
    make_runtime:
        Zero-config factory returning a fresh, un-started
        :class:`~repro.runtime.serving.ResilientVideoDetector`; also
        called with ``ladder=``/``budget=`` overrides to build the
        rung-pinned clean twin the recall gate compares against.
    frames:
        The clean frame sequence (poison substitutions happen here).
    truth:
        Per-frame ground-truth boxes ``[(y, x, size), ...]`` (one list
        per frame) for recall scoring.
    scenario:
        The :class:`ChaosScenario` to act out.
    pace:
        Producer inter-frame sleep in seconds (0 = submit full speed;
        combined with the bounded queue this is itself a load spike).
    max_recall_drop:
        Gate: served recall may trail the rung-pinned clean run by at
        most this much (absolute).
    p95_tolerance:
        Gate: served p95 *processing* latency must stay within
        ``budget * p95_tolerance``.
    stop_timeout:
        Drain deadline handed to ``runtime.stop``.

    Returns
    -------
    dict:
        JSON-ready report: scenario, runtime stats, incident trail,
        recall comparison, and per-gate verdicts under ``"gates"`` with
        the overall ``"passed"``.
    """
    frames = [np.asarray(f) for f in frames]
    truth_by_frame = {i: list(t) for i, t in enumerate(truth)}

    runtime = make_runtime()
    injector = ChaosInjector(scenario, runtime)
    runtime.pre_frame = injector
    if runtime.quarantine.expect_shape is None and frames:
        # streams have a fixed camera geometry; arming the expectation
        # makes wrong-shape poison rejectable
        runtime.quarantine.expect_shape = tuple(frames[0].shape)
    if scenario.fault_rate > 0.0:
        runtime.incidents.record("fault_injected", surface="datapath",
                                 rate=scenario.fault_rate)
    if scenario.model_fault_rate > 0.0:
        clean_model = runtime.base.packed_model()
        runtime.model_override = clean_model.corrupted(
            scenario.model_fault_rate, seed_or_rng=scenario.seed)
        runtime.incidents.record("fault_injected", surface="model",
                                 rate=scenario.model_fault_rate)

    poison_keys = set()
    runtime.start()
    try:
        for i, frame in enumerate(frames):
            payload = frame
            kind = scenario.poison.get(i)
            if kind is not None:
                payload = poison_frame(kind, frame.shape)
                if kind in ("nan", "inf", "constant"):
                    poison_keys.add(scene_key(
                        np.asarray(payload, dtype=np.float64)))
            runtime.submit(payload, meta={"frame": i})
            if pace:
                time.sleep(pace)
    finally:
        runtime.stop(timeout=stop_timeout)
    stats = runtime.stats()

    # --- rung-pinned clean twin for the recall comparison -------------
    ladder = runtime.scheduler.ladder
    deepest = stats["max_rung"]
    clean = make_runtime(
        ladder=DegradationLadder([ladder.rungs[deepest]]), budget=1e9)
    clean_results = {}
    for i, frame in enumerate(frames):
        clean_results[i] = clean.step(frame, meta={"frame": i})

    served = {r.meta["frame"]: r for r in runtime.completed
              if r.meta and "frame" in r.meta}
    recall_chaos, n_scored, unserved = _served_recall(
        served, truth_by_frame, iou_match)
    recall_clean, _, _ = _served_recall(clean_results, truth_by_frame,
                                        iou_match)
    recall_drop = recall_clean - recall_chaos

    # --- gates --------------------------------------------------------
    n_stalls = len(scenario.stalls) + len(scenario.hard_stalls)
    wd = stats["watchdog"]
    cache_contaminated = any(key in runtime.engine._cache
                             for key in poison_keys)
    budget = runtime.scheduler.budget
    gates = {
        "no_crashes": stats["crashes"] == 0,
        "stalls_recovered": wd["cancels"] + wd["restarts"] >= n_stalls,
        "poison_quarantined":
            stats["quarantined"] == len(scenario.poison),
        "poison_not_cached": not cache_contaminated,
        "recall_within_bound": recall_drop <= max_recall_drop,
        "p95_within_budget":
            stats["proc_p95"] <= budget * p95_tolerance,
    }
    gates.update(_adapt_gates(runtime, scenario))
    return {
        "scenario": scenario.payload(),
        "n_frames": len(frames),
        "pace": pace,
        "budget": budget,
        "p95_tolerance": p95_tolerance,
        "max_recall_drop": max_recall_drop,
        "stats": {k: v for k, v in stats.items()
                  if k != "rung_transitions"},
        "rung_transitions": stats["rung_transitions"],
        "deepest_rung": deepest,
        "deepest_rung_name": ladder.rungs[deepest].name,
        "incidents": runtime.incidents.payload(),
        "adapt": (runtime.adapter.stats()
                  if getattr(runtime, "adapter", None) is not None else None),
        "recall_chaos": recall_chaos,
        "recall_clean": recall_clean,
        "recall_drop": recall_drop,
        "frames_scored": n_scored,
        "frames_unserved": unserved,
        "gates": gates,
        "passed": all(gates.values()),
    }


def _inject_ber(runtime, surfaces, ber, rng):
    """One injection round: sustained bit errors across the armed surfaces.

    Returns per-surface injected counts (cache: corrupted buffers; items:
    flipped elements; model: flipped stored bits).  Digests and parity are
    never refreshed - detection is the runtime's job.
    """
    from ..reliability.faults import flip_packed_words
    injected = dict.fromkeys(surfaces, 0)
    if "cache" in surfaces:
        injected["cache"] += runtime.engine.corrupt_cache(ber, rng)
    if "items" in surfaces:
        extractor = getattr(runtime.engine, "extractor", None)
        if hasattr(extractor, "item_memories"):
            for memory in extractor.item_memories().values():
                injected["items"] += memory.corrupt(ber, rng)
    if "model" in surfaces:
        model = runtime.model_override
        if model is not None and hasattr(model, "replicas"):
            lock = getattr(model, "_lock", None)
            if lock is not None:
                lock.acquire()
            try:
                flipped = flip_packed_words(model.replicas, model.dim,
                                            ber, rng)
                injected["model"] += int(
                    np.bitwise_count(model.replicas ^ flipped).sum())
                model.replicas[...] = flipped
            finally:
                if lock is not None:
                    lock.release()
    return injected


def run_ber_soak(make_runtime, frames, truth, ber=1e-4,
                 surfaces=SOAK_SURFACES, inject_every=1, seed=0,
                 max_recall_drop=0.02, iou_match=0.25):
    """Serve under a sustained bit-error rate on every memory surface.

    The memory-RAS endurance test: where :func:`run_chaos` scripts
    discrete failures, this soak *continuously* flips stored bits - in
    the engine's scene cache, the extractor's item memories and the
    (guarded) class model - at rate ``ber`` per frame for the whole run,
    while the runtime's repair machinery (hit-time ECC + recompute,
    :class:`~repro.reliability.scrubber.MemoryScrubber` background
    sweeps, the guard's repair ladder) races to keep serving clean.
    Frames are stepped synchronously so each frame's injection round is
    deterministic.

    Gates
    -----
    * ``no_crashes`` - the loop survived the whole soak;
    * ``corruption_detected`` - the injected corruption was *seen*
      (digest mismatches / guard detections / item-memory repairs > 0);
    * ``zero_silent_corruption`` - after a final full sweep, every
      surface is digest-clean or *explicitly* degraded: the cache
      reports no residual mismatch, every item memory verifies, and the
      guard scrubs clean (its unrepaired classes are flagged in
      ``degraded_classes``, never silent);
    * ``recall_within_bound`` - served recall trails a clean twin
      (rung-pinned like :func:`run_chaos`) by at most
      ``max_recall_drop``.

    ``make_runtime`` should enable the protections under test
    (``scrub_budget=``, engine ``scrub=True``, protective item-memory
    ``store_policy``, a guarded ``model_override``); an unprotected
    runtime fails the silent-corruption gate by construction - which is
    the point.
    """
    frames = [np.asarray(f) for f in frames]
    truth_by_frame = {i: list(t) for i, t in enumerate(truth)}
    surfaces = tuple(surfaces)
    unknown = set(surfaces) - set(SOAK_SURFACES)
    if unknown:
        raise ValueError(f"unknown soak surfaces {sorted(unknown)}; "
                         f"expected among {SOAK_SURFACES}")
    rng = np.random.default_rng(seed)

    runtime = make_runtime()
    for surface in surfaces:
        runtime.incidents.record("fault_injected", surface=surface,
                                 rate=float(ber), mode="soak")
    injected = dict.fromkeys(surfaces, 0)
    results = {}
    for i, frame in enumerate(frames):
        if i % max(int(inject_every), 1) == 0:
            for surface, count in _inject_ber(runtime, surfaces, ber,
                                              rng).items():
                injected[surface] += count
        result = runtime.step(frame, meta={"frame": i})
        if result is not None:
            results[i] = result
    # final full sweep: last-round injections must not outlive the run
    scrubber = getattr(runtime, "scrubber", None)
    if scrubber is not None:
        scrubber.sweep(frame=len(frames))
    stats = runtime.stats()

    # --- residual-state audit (the zero-silent-corruption gate) -------
    cache_residual = runtime.engine.scrub_cache()
    item_stats, items_clean = [], True
    extractor = getattr(runtime.engine, "extractor", None)
    if hasattr(extractor, "item_memories"):
        for memory in extractor.item_memories().values():
            items_clean &= memory.verify()
            item_stats.append(memory.stats())
    model = runtime.model_override
    guard_stats, model_residual = None, 0
    if model is not None and hasattr(model, "scrub"):
        model_residual = model.scrub(force=True)
        guard_stats = model.stats()

    # --- rung-pinned clean twin for the recall comparison -------------
    ladder = runtime.scheduler.ladder
    deepest = stats["max_rung"]
    clean = make_runtime(
        ladder=DegradationLadder([ladder.rungs[deepest]]), budget=1e9)
    clean_results = {}
    for i, frame in enumerate(frames):
        clean_results[i] = clean.step(frame, meta={"frame": i})
    recall_soak, n_scored, _ = _served_recall(results, truth_by_frame,
                                              iou_match)
    recall_clean, _, _ = _served_recall(clean_results, truth_by_frame,
                                        iou_match)
    recall_drop = recall_clean - recall_soak

    info = runtime.engine.cache_info()
    detections = (info["scrub_mismatches"]
                  + sum(s["scrub_repairs"] for s in item_stats)
                  + (guard_stats["detected"] if guard_stats else 0))
    repairs = (info["scrub_repairs"] + info["scrub_evictions"]
               + sum(s["scrub_repairs"] for s in item_stats)
               + (guard_stats["repaired"] + guard_stats["unrepairable"]
                  if guard_stats else 0))
    gates = {
        "no_crashes": stats["crashes"] == 0,
        "corruption_detected": detections > 0
        if any(injected.values()) else True,
        "zero_silent_corruption": (cache_residual["mismatches"] == 0
                                   and items_clean
                                   and model_residual == 0),
        "recall_within_bound": recall_drop <= max_recall_drop,
    }
    return {
        "ber": float(ber),
        "surfaces": list(surfaces),
        "inject_every": int(inject_every),
        "n_frames": len(frames),
        "injected": injected,
        "detections": detections,
        "repairs": repairs,
        "cache": {k: info[k] for k in
                  ("scrub_checks", "scrub_mismatches", "scrub_repairs",
                   "scrub_evictions", "ecc_corrected_words",
                   "ecc_detected_words")},
        "cache_residual": cache_residual,
        "items": item_stats,
        "guard": guard_stats,
        "scrubber": scrubber.stats() if scrubber is not None else None,
        "incidents": runtime.incidents.payload(),
        "deepest_rung": deepest,
        "deepest_rung_name": ladder.rungs[deepest].name,
        "recall_soak": recall_soak,
        "recall_clean": recall_clean,
        "recall_drop": recall_drop,
        "frames_scored": n_scored,
        "max_recall_drop": max_recall_drop,
        "gates": gates,
        "passed": all(gates.values()),
    }


def _arm_stream(runtime, scenario, frames):
    """Wire one stream's chaos scenario into its runtime (pre-start)."""
    injector = ChaosInjector(scenario, runtime)
    runtime.pre_frame = injector
    if runtime.quarantine.expect_shape is None and frames:
        runtime.quarantine.expect_shape = tuple(frames[0].shape)
    if scenario.fault_rate > 0.0:
        runtime.incidents.record("fault_injected", surface="datapath",
                                 rate=scenario.fault_rate)
    if scenario.model_fault_rate > 0.0:
        clean_model = runtime.base.packed_model()
        runtime.model_override = clean_model.corrupted(
            scenario.model_fault_rate, seed_or_rng=scenario.seed)
        runtime.incidents.record("fault_injected", surface="model",
                                 rate=scenario.model_fault_rate)


def run_fleet_chaos(fleet, frames, truth, scenarios, pace=0.0,
                    p95_tolerance=1.5, min_recall=None, iou_match=0.25,
                    stop_timeout=30.0):
    """Drive a multi-stream fleet through per-stream chaos; gate isolation.

    The fleet-level reliability contract is *blast-radius containment*:
    when one stream stalls, goes poison, or gets a corrupted datapath,
    the *other* streams - which share the engine, the batch gate and the
    CPU - must keep serving inside their latency budgets.  The
    single-stream harness (:func:`run_chaos`) already proves each stream
    survives its own chaos; this one proves the streams survive *each
    other's*.

    Parameters
    ----------
    fleet:
        An un-started :class:`~repro.runtime.fleet.FleetDispatcher` with
        its streams already admitted.
    frames, truth:
        One clean frame sequence with per-frame ground-truth boxes;
        every stream is fed the same sequence (chaos substitutions are
        per stream), so per-stream results stay comparable.
    scenarios:
        ``{stream_name: ChaosScenario}`` for the victim streams; streams
        absent from the mapping run clean and carry the healthy-stream
        gates.  At least one healthy stream is required - a fleet where
        everything is under attack has no isolation claim to check.
    pace:
        Producer sleep between frame *rounds* (each round submits one
        frame to every stream).
    p95_tolerance:
        Gate: every healthy stream's served p95 processing latency must
        stay within ``budget * p95_tolerance`` while the victims are
        under chaos.
    min_recall:
        Optional absolute served-recall floor gated on healthy streams
        (recall is always reported).
    stop_timeout:
        Drain deadline handed to ``fleet.stop``.

    Returns a JSON-ready report with per-stream summaries, the fleet
    rollup, per-gate verdicts and the overall ``"passed"``.
    """
    frames = [np.asarray(f) for f in frames]
    truth_by_frame = {i: list(t) for i, t in enumerate(truth)}
    scenarios = dict(scenarios)
    names = list(fleet.streams)
    unknown = set(scenarios) - set(names)
    if unknown:
        raise ValueError(f"scenarios name unadmitted streams: "
                         f"{sorted(unknown)}")
    healthy = [n for n in names if n not in scenarios]
    if not healthy:
        raise ValueError("fleet chaos needs at least one healthy stream "
                         "to gate isolation on")

    poison_keys = set()
    for name, scenario in scenarios.items():
        _arm_stream(fleet[name], scenario, frames)
    for name in healthy:
        if fleet[name].quarantine.expect_shape is None and frames:
            fleet[name].quarantine.expect_shape = tuple(frames[0].shape)

    fleet.start()
    try:
        for i, frame in enumerate(frames):
            for name in names:
                payload = frame
                scenario = scenarios.get(name)
                kind = scenario.poison.get(i) if scenario else None
                if kind is not None:
                    payload = poison_frame(kind, frame.shape)
                    if kind in ("nan", "inf", "constant"):
                        poison_keys.add(scene_key(
                            np.asarray(payload, dtype=np.float64)))
                fleet.submit(name, payload, meta={"frame": i})
            if pace:
                time.sleep(pace)
    finally:
        fleet.stop(timeout=stop_timeout)

    report_streams = {}
    per_gate = {"no_crashes": True, "stalls_recovered": True,
                "poison_quarantined": True, "healthy_p95": True}
    if min_recall is not None:
        per_gate["healthy_recall"] = True
    for name in names:
        runtime = fleet[name]
        stats = runtime.stats()
        scenario = scenarios.get(name)
        served = {r.meta["frame"]: r for r in runtime.completed
                  if r.meta and "frame" in r.meta}
        recall, n_scored, unserved = _served_recall(served, truth_by_frame,
                                                    iou_match)
        budget = runtime.scheduler.budget
        entry = {
            "role": "victim" if scenario else "healthy",
            "scenario": scenario.payload() if scenario else None,
            "frames": stats["frames"],
            "crashes": stats["crashes"],
            "quarantined": stats["quarantined"],
            "proc_p95": stats["proc_p95"],
            "latency_p95": stats["latency_p95"],
            "budget": budget,
            "rung_name": stats["rung_name"],
            "max_rung": stats["max_rung"],
            "min_rung": runtime.scheduler.min_rung,
            "watchdog": stats["watchdog"],
            "recall": recall,
            "frames_scored": n_scored,
            "frames_unserved": unserved,
        }
        if getattr(runtime, "adapter", None) is not None:
            entry["adapt"] = runtime.adapter.stats()
        per_gate["no_crashes"] &= stats["crashes"] == 0
        if scenario:
            n_stalls = len(scenario.stalls) + len(scenario.hard_stalls)
            wd = stats["watchdog"]
            entry["stalls_recovered"] = \
                wd["cancels"] + wd["restarts"] >= n_stalls
            per_gate["stalls_recovered"] &= entry["stalls_recovered"]
            entry["poison_quarantined"] = \
                stats["quarantined"] == len(scenario.poison)
            per_gate["poison_quarantined"] &= entry["poison_quarantined"]
            # online-learning attack gates: the victim's poisoned /
            # storming updates must be caught at the shared model's door
            # (the healthy streams' recall/p95 gates then prove the
            # blast radius stopped there)
            for key, ok in _adapt_gates(runtime, scenario).items():
                entry[key] = ok
                per_gate[key] = per_gate.get(key, True) & ok
        else:
            entry["p95_within_budget"] = \
                stats["proc_p95"] <= budget * p95_tolerance
            per_gate["healthy_p95"] &= entry["p95_within_budget"]
            if min_recall is not None:
                entry["recall_ok"] = recall >= min_recall
                per_gate["healthy_recall"] &= entry["recall_ok"]
        report_streams[name] = entry

    engine = fleet.template.detector.engine
    per_gate["poison_not_cached"] = not any(key in engine._cache
                                            for key in poison_keys)
    fleet_stats = fleet.stats()["fleet"]
    return {
        "n_frames": len(frames),
        "pace": pace,
        "p95_tolerance": p95_tolerance,
        "min_recall": min_recall,
        "healthy_streams": healthy,
        "victim_streams": sorted(scenarios),
        "streams": report_streams,
        "fleet": {k: v for k, v in fleet_stats.items()
                  if k != "profile_table"},
        "gates": per_gate,
        "passed": all(per_gate.values()),
    }

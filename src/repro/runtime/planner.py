"""Cost-model-driven execution planning: measure -> refit -> replan.

The hardware layer (:mod:`repro.hardware.opcount`) prices every stage of
the detection stack in abstract operation counts, and the platform models
turn counts into seconds.  This module closes the loop and makes those
prices *drive execution*:

* :class:`CostModel` - a refittable time model: platform-derived op-class
  throughput plus one fitted scale per profiler stage, so predictions
  start from first principles and converge to the machine actually
  serving (:meth:`CostModel.refit` reads stage seconds and op counts off
  a :class:`repro.profiling.Profiler`).
* :class:`ExecutionPlanner` - enumerates candidate
  :class:`~repro.pipeline.plan.Plan` knob assignments for a frame shape,
  prices each against the cost model, and under a per-frame deadline
  returns the highest-quality plan whose predicted cost fits
  (:meth:`ExecutionPlanner.plan`).  When nothing fits it returns the
  cheapest candidate - serving must ship *something*.
* :meth:`ExecutionPlanner.ladder` - the degradation ladder re-expressed
  as "planner under a shrinking budget": a
  :class:`~repro.runtime.ladder.PlannerLadder` whose rung *i* is the
  plan chosen at ``budget * shrink^i``, so the
  :class:`~repro.runtime.ladder.DeadlineScheduler` adjusts the planning
  budget instead of indexing a hand-tuned table, and
  ``ladder.replan()`` after a refit is the autotuning loop.

Every plan the planner emits executes through
:func:`repro.pipeline.multiscale.execute_plan` and is held to the
bitwise conformance matrix in ``tests/test_conformance.py``: planning
changes *what work runs*, never *what the work computes*.
"""

from __future__ import annotations

from ..core.hypervector import packed_words
from ..hardware.opcount import (
    OperationProfile,
    cascade_scan_profile,
    hd_hog_fields_profile,
    hdc_infer_profile,
    incremental_extract_profile,
    packed_assemble_profile,
    packed_infer_profile,
    perwindow_detection_profile,
    profile_from_counts,
)
from ..hardware.platforms import CORTEX_A53
from ..pipeline.plan import Plan
from .ladder import PlannerLadder, Rung

__all__ = ["CostModel", "ExecutionPlanner", "DEFAULT_FRAME_SHAPE"]

#: Frame shape assumed when the planner has not seen a frame yet.
DEFAULT_FRAME_SHAPE = (128, 128)

#: Dirty-rect fraction (per side) assumed when pricing delta-reuse scans.
_DELTA_DIRTY_FRACTION = 0.5


class CostModel:
    """Refittable seconds model over :class:`OperationProfile` stages.

    Prediction starts from a :class:`~repro.hardware.platforms.Platform`
    (op-class throughput tables), then applies one multiplicative scale
    per profiler stage name - ``seconds = platform_time(profile) *
    scale[stage]``.  :meth:`refit` fits those scales from measurements:
    for every profiler stage that recorded both wall-clock seconds and
    op counts, the scale is simply ``measured / modeled``.  Stages the
    profiler has not measured fall back to ``default_scale``, itself
    refitted as the seconds-weighted mean of the fitted scales.

    Refitting is deterministic and idempotent: the fitted scales are a
    pure function of the measurements and the platform tables, so
    ``refit`` with an unchanged profiler is a fixed point (the planner
    property tests pin this).
    """

    def __init__(self, platform=CORTEX_A53, stage_scale=None,
                 default_scale=1.0, stochastic=True):
        self.platform = platform
        self.stage_scale = dict(stage_scale or {})
        self.default_scale = float(default_scale)
        self.stochastic = bool(stochastic)
        self.refits = 0

    def raw_time(self, profile):
        """Platform-modeled seconds for a profile, before any fitted scale."""
        return self.platform.time(profile, stochastic=self.stochastic)

    def time(self, profile, stage=None):
        """Predicted seconds for ``profile`` attributed to ``stage``."""
        scale = self.stage_scale.get(stage, self.default_scale)
        return self.raw_time(profile) * scale

    def refit(self, profiler, min_seconds=1e-6):
        """Fit per-stage scales from a profiler's measurements.

        Returns the ``{stage: scale}`` dict fitted this call (empty when
        the profiler holds no usable measurements, in which case nothing
        changes).
        """
        fitted = {}
        weights = {}
        for name, stat in getattr(profiler, "stats", {}).items():
            if not stat.ops or stat.seconds < min_seconds:
                continue
            raw = self.raw_time(profile_from_counts(stat.ops, name))
            if raw <= 0.0:
                continue
            fitted[name] = stat.seconds / raw
            weights[name] = stat.seconds
        if fitted:
            self.stage_scale.update(fitted)
            total = sum(weights.values())
            self.default_scale = sum(
                fitted[n] * weights[n] for n in fitted) / total
            self.refits += 1
        return fitted

    def state(self):
        """Snapshot for reports: fitted scales and the fallback."""
        return {"platform": self.platform.name,
                "default_scale": self.default_scale,
                "stage_scale": dict(self.stage_scale),
                "refits": self.refits}


class ExecutionPlanner:
    """Choose a :class:`~repro.pipeline.plan.Plan` to fit a frame deadline.

    Parameters
    ----------
    window, stride, dim:
        The executing detector's window side, configured stride and
        hypervector dimension.
    backend, engine:
        Route the candidate plans must describe (must match the
        executing detector).
    n_classes:
        Classifier width (margin classification needs >= 2).
    scale_step:
        Pyramid downscale ratio (sizes the per-level cost sum).
    stage_words:
        Cascade cumulative word schedule when the detector scans in
        cascade mode (None = flat scans).
    seed_fraction:
        Fraction of the window grid a cascade scan actually seeds
        (``~1/seed_factor^2`` plus refinement slack).
    workers:
        Level-parallel worker count candidate plans inherit.
    delta_reuse:
        Whether candidate plans assume frame-delta feature reuse (the
        serving loop's steady state) - a cost assumption only, results
        are bitwise identical either way.
    cost_model:
        A :class:`CostModel` (fresh platform-derived one if omitted).
    frame_shape:
        Default frame shape used when ``plan()`` is not given one.

    Use :meth:`from_detector` to derive every parameter from a live
    :class:`~repro.pipeline.multiscale.PyramidDetector`.
    """

    def __init__(self, window, stride, dim, *, backend="packed",
                 engine="shared", n_classes=2, scale_step=1.5,
                 stage_words=None, seed_fraction=1.0, workers=1,
                 delta_reuse=False, cost_model=None,
                 frame_shape=DEFAULT_FRAME_SHAPE, extractor_kwargs=None):
        self.window = int(window)
        self.stride = int(stride)
        self.dim = int(dim)
        self.backend = backend
        self.engine = engine
        self.n_classes = int(n_classes)
        self.scale_step = float(scale_step)
        self.stage_words = tuple(int(w) for w in stage_words) \
            if stage_words else None
        self.seed_fraction = float(seed_fraction)
        self.workers = int(workers)
        self.delta_reuse = bool(delta_reuse)
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.frame_shape = tuple(frame_shape)
        self.extractor_kwargs = dict(extractor_kwargs or {})
        if self.window < 1 or self.stride < 1 or self.dim < 1:
            raise ValueError("window, stride and dim must be positive")
        if self.scale_step <= 1.0:
            raise ValueError("scale_step must exceed 1")
        if not 0.0 < self.seed_fraction <= 1.0:
            raise ValueError("seed_fraction must be in (0, 1]")
        self.plans_chosen = 0

    @classmethod
    def from_detector(cls, detector, cost_model=None,
                      frame_shape=DEFAULT_FRAME_SHAPE, delta_reuse=False):
        """Derive a planner from a live pyramid detector."""
        from ..pipeline.multiscale import PyramidDetector
        if not isinstance(detector, PyramidDetector):
            raise ValueError("from_detector expects a PyramidDetector")
        base = detector.detector
        stage_words = None
        seed_fraction = 1.0
        if getattr(base, "cascade", None) is not None:
            scanner = base.cascade_scanner()
            stage_words = [s.words for s in scanner.stages]
            seed_fraction = min(
                1.0, 1.5 / float(scanner.seed_factor) ** 2) \
                if scanner.seed_factor > 1 else 1.0
        ext = getattr(base.pipeline, "extractor", None)
        ext_kwargs = {}
        for attr in ("n_bins", "cell_size", "magnitude", "sqrt_iters",
                     "gamma"):
            if hasattr(ext, attr):
                ext_kwargs[attr] = getattr(ext, attr)
        return cls(base.window, base.stride, base.pipeline.dim,
                   backend=base.backend, engine=base.mode,
                   n_classes=getattr(base.pipeline, "n_classes", 2),
                   scale_step=detector.scale_step, stage_words=stage_words,
                   seed_fraction=seed_fraction, workers=detector.workers,
                   delta_reuse=delta_reuse, cost_model=cost_model,
                   frame_shape=frame_shape, extractor_kwargs=ext_kwargs)

    # ------------------------------------------------------------------
    # candidate enumeration
    # ------------------------------------------------------------------
    def level_shapes(self, frame_shape=None, max_levels=None):
        """Approximate per-level shapes of the pyramid over ``frame_shape``."""
        h, w = frame_shape if frame_shape is not None else self.frame_shape
        shapes = []
        factor = 1.0
        while min(h, w) / factor >= self.window:
            shapes.append((max(self.window, int(round(h / factor))),
                           max(self.window, int(round(w / factor)))))
            factor *= self.scale_step
        if max_levels is not None:
            shapes = shapes[: int(max_levels)]
        return shapes

    def _word_options(self):
        """Descending word budgets: full first, then cascade-stage prefixes."""
        if self.backend != "packed":
            return [None]
        total = packed_words(self.dim)
        if self.stage_words is not None:
            schedule = [w for w in self.stage_words if w < total]
        else:
            from ..pipeline.cascade import default_word_schedule
            schedule = [w for w in default_word_schedule(total)if w < total]
        return [None] + sorted(set(schedule), reverse=True)

    def candidates(self, frame_shape=None):
        """Every plan the planner will consider, highest quality first.

        The lattice crosses stride scale {1, 2, 3} x pyramid depth
        {all, 3, 2} x word budget {full + cascade-stage prefixes} x
        keyframe cadence {1, 3}; ordering (and therefore tie-breaking)
        is deterministic, which the monotone-quality property relies on.
        """
        n_levels = len(self.level_shapes(frame_shape))
        level_options = [None] + [n for n in (3, 2) if n < n_levels]
        plans = []
        for scale in (1, 2, 3):
            stride = None if scale == 1 else self.stride * scale
            for max_levels in level_options:
                for words in self._word_options():
                    for keyframe in (1, 3):
                        plans.append(Plan(
                            name="candidate", backend=self.backend,
                            engine=self.engine, stride=stride,
                            max_levels=max_levels, max_words=words,
                            stage_words=self._plan_stage_words(words),
                            delta_reuse=self.delta_reuse,
                            workers=self.workers, keyframe_every=keyframe))
        plans.sort(key=self._quality_key, reverse=True)
        return plans

    def _plan_stage_words(self, max_words):
        if self.stage_words is None:
            return None
        words = [w for w in self.stage_words
                 if max_words is None or w <= max_words]
        return tuple(words) or (self.stage_words[0],)

    def quality(self, plan, frame_shape=None):
        """Scan quality in (0, 1]: 1 = full grid, all levels, full words.

        A deterministic multiplicative score over the shed fractions -
        word prefix, grid density, pyramid depth, keyframe cadence -
        weighted so the dials the recall measurements care most about
        (words, grid) dominate.  Total order over candidates; the
        planner maximizes it subject to the deadline.
        """
        n_levels = max(1, len(self.level_shapes(frame_shape)))
        if self.backend == "packed":
            wfrac = plan.prefix_words(self.dim) / packed_words(self.dim)
        else:
            wfrac = 1.0
        stride = plan.stride if plan.stride is not None else self.stride
        gfrac = (self.stride / float(stride)) ** 2
        lfrac = min(plan.max_levels or n_levels, n_levels) / n_levels
        kfrac = 1.0 / plan.keyframe_every
        return (wfrac ** 0.35) * (gfrac ** 0.3) * (lfrac ** 0.15) \
            * (kfrac ** 0.2)

    def _quality_key(self, plan):
        stride = plan.stride if plan.stride is not None else self.stride
        return (self.quality(plan), plan.prefix_words(self.dim),
                -stride, plan.max_levels is None, plan.max_levels or 0,
                -plan.keyframe_every)

    # ------------------------------------------------------------------
    # pricing
    # ------------------------------------------------------------------
    def plan_profiles(self, plan, frame_shape=None):
        """Stage-labelled :class:`OperationProfile` s one scan of ``plan`` runs.

        Stage keys match the profiler stage names the real code paths
        record (``fields``, ``cell_grid``, ``assemble``, ``classify``,
        ``delta_fields``, ``cascade``, ``perwindow``), so a refitted
        cost model prices each stage with its measured constant.
        """
        ek = self.extractor_kwargs
        n_bins = ek.get("n_bins", 8)
        cell = ek.get("cell_size", 8)
        profs = {}

        def add(stage, profile):
            profs[stage] = profs.get(stage, OperationProfile({})) + profile

        for i, shape in enumerate(
                self.level_shapes(frame_shape, plan.max_levels)):
            stride = plan.stride_for(i) or self.stride
            n_wy = (shape[0] - self.window) // stride + 1
            n_wx = (shape[1] - self.window) // stride + 1
            n = n_wy * n_wx
            if self.engine == "perwindow":
                add("perwindow", perwindow_detection_profile(
                    shape, self.window, stride, self.dim,
                    n_classes=self.n_classes, **ek))
                continue
            if self.engine == "legacy":
                add("legacy_scan", perwindow_detection_profile(
                    shape, self.window, stride, self.dim,
                    n_classes=self.n_classes))
                continue
            # shared engine: whole-level extraction (full or delta) ...
            if plan.delta_reuse:
                dirty = (int(shape[0] * _DELTA_DIRTY_FRACTION),
                         int(shape[1] * _DELTA_DIRTY_FRACTION))
                add("delta_fields", incremental_extract_profile(
                    shape, dirty, self.dim, **ek))
            else:
                add("fields", hd_hog_fields_profile(shape, self.dim, **{
                    k: v for k, v in ek.items() if k != "cell_size"}))
                px = float(shape[0] * shape[1])
                add("cell_grid", OperationProfile(
                    {"bit": n_bins * px * self.dim,
                     "int_add": 2 * n_bins * px * self.dim,
                     "mem_bytes": n_bins * px * self.dim / 4}))
            # ... then assembly + classification per window
            if self.backend == "packed":
                schedule = plan.stage_words
                if schedule is not None and len(schedule) > 1:
                    add("cascade", cascade_scan_profile(
                        shape, self.window, stride, self.dim, schedule,
                        n_classes=self.n_classes, cell_size=cell,
                        n_bins=n_bins, seed_fraction=self.seed_fraction))
                else:
                    add("assemble", packed_assemble_profile(
                        self.window, self.dim, cell_size=cell,
                        n_bins=n_bins) * n)
                    eff_dim = min(64 * plan.prefix_words(self.dim), self.dim)
                    add("classify", packed_infer_profile(
                        eff_dim, self.n_classes) * n)
            else:
                feats = (self.window // cell) ** 2 * n_bins
                add("assemble", OperationProfile(
                    {"bit": feats * float(self.dim),
                     "int_add": feats * float(self.dim)}) * n)
                add("classify", hdc_infer_profile(
                    self.dim, self.n_classes) * n)
        return profs

    def estimate(self, plan, frame_shape=None):
        """Predicted per-frame seconds (keyframe skipping amortized)."""
        total = sum(self.cost_model.time(profile, stage=stage)
                    for stage, profile in
                    self.plan_profiles(plan, frame_shape).items())
        return total / plan.keyframe_every

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    #: When the budget is below what any candidate can attain, the plan
    #: search floor is ``escape_slack x`` the cheapest candidate's cost
    #: instead of the budget.  Near the cost floor, extraction dominates
    #: and a few percent of predicted cost buys back large quality (full
    #: words + native stride over a blunt grid), so shipping the strict
    #: cost minimum would trade ~0.5 quality for ~2% cost - the recall
    #: cliff ``benchmarks/bench_planner.py`` measured before this slack.
    escape_slack = 1.05

    def plan(self, budget, frame_shape=None, name=None):
        """The highest-quality candidate whose predicted cost fits ``budget``.

        When no candidate fits, the serving loop must still ship a
        frame: the search threshold falls back to ``escape_slack x`` the
        cheapest candidate's cost and the highest-quality plan under
        *that* is returned.  The threshold ``max(budget, slack floor)``
        is non-decreasing in the budget, which keeps chosen-plan quality
        monotone (property-tested) across the feasible/infeasible
        boundary.
        """
        budget = float(budget)
        if budget <= 0:
            raise ValueError("budget must be positive seconds")
        cands = self.candidates(frame_shape)
        costed = [(self.estimate(p, frame_shape), p) for p in cands]
        threshold = max(budget,
                        self.escape_slack * min(c for c, _ in costed))
        # candidates are quality-sorted, so the first eligible wins
        chosen = next(p for c, p in costed if c <= threshold)
        self.plans_chosen += 1
        return chosen.with_name(name) if name is not None else chosen

    def rung_from_plan(self, plan):
        """Express a plan as a ladder :class:`Rung` (plan attached)."""
        stride = plan.stride if plan.stride is not None else self.stride
        scale = max(1, int(round(stride / float(self.stride))))
        return Rung(plan.name, stride_scale=scale, max_levels=plan.max_levels,
                    keyframe_every=plan.keyframe_every,
                    word_budget=plan.max_words, plan=plan)

    def rungs_for_budgets(self, budgets, frame_shape=None):
        """One planner-chosen rung per budget (stable ``plan{i}`` names)."""
        return [self.rung_from_plan(
            self.plan(b, frame_shape, name=f"plan{i}"))
            for i, b in enumerate(budgets)]

    def ladder(self, budget, frame_shape=None, steps=4, shrink=0.45):
        """Degradation ladder = this planner under a shrinking budget.

        Rung *i* executes the plan chosen at ``budget * shrink^i``; see
        :class:`~repro.runtime.ladder.PlannerLadder` for the in-place
        ``replan()`` that completes the autotuning loop.
        """
        if steps < 1:
            raise ValueError("steps must be at least 1")
        if not 0.0 < shrink < 1.0:
            raise ValueError("shrink must be in (0, 1)")
        budgets = [float(budget) * shrink ** i for i in range(int(steps))]
        return PlannerLadder(self, budgets, frame_shape)

    # ------------------------------------------------------------------
    # autotuning
    # ------------------------------------------------------------------
    def refit(self, profiler, min_seconds=1e-6):
        """Update the cost model's per-stage constants from measurements."""
        return self.cost_model.refit(profiler, min_seconds=min_seconds)

    def stats(self):
        """Planner snapshot for reports."""
        return {"backend": self.backend, "engine": self.engine,
                "window": self.window, "stride": self.stride,
                "dim": self.dim, "plans_chosen": self.plans_chosen,
                "cost_model": self.cost_model.state()}

"""Input quarantine: reject poison frames before they reach the engine.

The engine's scene cache is content-addressed, so a frame full of NaNs is
worse than a crash: the garbage features it produces are *cached* and
served to every later query of the same content, and the frame-delta path
would happily splice them into the next frame's entry.  The quarantine
gate runs the full property check once per incoming frame and raises a
structured :class:`PoisonFrameError` - with the offending property named
and machine-readable - before any engine state is touched.

The checks deliberately mirror (and extend) the engine-boundary
validation in :func:`repro.pipeline.engine.validate_scene`; the gate
exists so the *serving* layer can count, classify and report rejections
instead of unwinding through the detector stack.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PoisonFrameError", "InputQuarantine", "POISON_REASONS"]

#: Machine-readable rejection reasons, in check order.
POISON_REASONS = ("dtype", "ndim", "empty", "shape", "nan", "inf",
                  "constant", "range")


class PoisonFrameError(ValueError):
    """A frame failed the quarantine checks.

    Attributes
    ----------
    reason:
        One of :data:`POISON_REASONS` - the first property that failed.
    detail:
        Human-readable specifics (offending dtype, shape, value count...).
    """

    def __init__(self, reason, detail):
        if reason not in POISON_REASONS:
            raise ValueError(f"unknown poison reason {reason!r}")
        self.reason = reason
        self.detail = detail
        super().__init__(f"poison frame ({reason}): {detail}")


class InputQuarantine:
    """Per-frame validation gate with rejection accounting.

    Parameters
    ----------
    expect_shape:
        When given, every frame must match this exact (H, W) shape -
        streams have a fixed camera geometry, and a shape change would
        silently disable the frame-delta reuse path.
    value_range:
        Optional ``(lo, hi)`` closed interval every pixel must lie in
        (the pipeline's frames are normalized to [0, 1]; a frame of
        raw 0-255 bytes indicates an upstream conversion bug).  None
        disables the range check.
    reject_constant:
        Reject frames whose pixels are all identical (a dead or covered
        sensor; gradients and histograms over such a frame carry zero
        signal but full compute cost).
    """

    def __init__(self, expect_shape=None, value_range=None,
                 reject_constant=True):
        self.expect_shape = tuple(expect_shape) if expect_shape else None
        self.value_range = tuple(value_range) if value_range else None
        self.reject_constant = bool(reject_constant)
        self.passed = 0
        self.rejected = {}

    def _reject(self, reason, detail):
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        raise PoisonFrameError(reason, detail)

    def check(self, frame):
        """Validate one frame; returns it as float64 or raises.

        Checks run cheapest-first and stop at the first violation; the
        raised :class:`PoisonFrameError` names the property.
        """
        arr = np.asarray(frame)
        if arr.dtype == object or not (
                np.issubdtype(arr.dtype, np.floating)
                or np.issubdtype(arr.dtype, np.integer)):
            self._reject("dtype", f"non-numeric dtype {arr.dtype}")
        if arr.ndim != 2:
            self._reject("ndim", f"expected 2-D (H, W) frame, got "
                                 f"{arr.ndim}-D shape {arr.shape}")
        if arr.size == 0:
            self._reject("empty", f"frame has zero pixels (shape {arr.shape})")
        if self.expect_shape is not None and arr.shape != self.expect_shape:
            self._reject("shape", f"expected {self.expect_shape}, "
                                  f"got {arr.shape}")
        if np.issubdtype(arr.dtype, np.floating):
            n_nan = int(np.isnan(arr).sum())
            if n_nan:
                self._reject("nan", f"{n_nan} NaN pixels")
            n_inf = int(np.isinf(arr).sum())
            if n_inf:
                self._reject("inf", f"{n_inf} infinite pixels")
        lo, hi = float(arr.min()), float(arr.max())
        if self.reject_constant and lo == hi:
            self._reject("constant", f"all pixels equal {lo}")
        if self.value_range is not None:
            vlo, vhi = self.value_range
            if lo < vlo or hi > vhi:
                self._reject("range", f"values in [{lo:g}, {hi:g}] outside "
                                      f"[{vlo:g}, {vhi:g}]")
        self.passed += 1
        return np.asarray(arr, dtype=np.float64)

    def stats(self):
        """Accounting: frames passed and per-reason rejection counts."""
        return {"passed": self.passed,
                "rejected": dict(self.rejected),
                "rejected_total": sum(self.rejected.values())}

"""Fleet-scale multi-stream serving: one machine, many video streams.

:class:`FleetDispatcher` is the multi-tenant front end over the
single-stream :class:`~repro.runtime.serving.ResilientVideoDetector`:
it owns one worker runtime per admitted stream (each with its own intake
queue, consumer thread, watchdog, quarantine and deadline scheduler, so
per-stream failure isolation is structural), and makes the streams share
the three things worth sharing on one machine:

* **the packed datapath** - every stream scans through one shared
  :class:`~repro.pipeline.detector.SlidingWindowDetector` /
  :class:`~repro.pipeline.engine.SharedFeatureEngine`, and a
  :class:`BatchGate` rendezvous pools the per-frame window scans of all
  concurrently-processing streams into single
  :class:`~repro.pipeline.batcher.CrossStreamBatcher` calls - one
  XOR+popcount pass over every stream's windows, bitwise identical to
  solo scans (cascade stages batch across streams too);
* **the feature cache** - identical frames across streams (and pyramid
  levels within a stream) hit one content-addressed cache;
* **the shedding policy** - a :class:`~repro.runtime.ladder.
  FleetScheduler` watches every stream's latency-to-budget ratio and,
  under machine-wide pressure, raises the degradation *floor* of the
  cheapest / least-behind streams first instead of degrading everyone;
* **the class model** (``guard=`` / ``adapt=``) - one fleet-shared
  :class:`~repro.reliability.guard.GuardedClassModel` (or its
  online-learning :class:`~repro.reliability.guard.
  AdaptiveGuardedModel` extension) serves every stream, so a scrubbed
  bit-flip heals fleet-wide and every stream's vetted online updates
  land in - and are contained away from - the same replicated rows.

Admission control keeps the fleet inside its envelope: streams beyond
``max_streams`` (or whose declared fps would exceed ``capacity_fps``)
are rejected with :class:`AdmissionError` at :meth:`~FleetDispatcher.
add_stream` time - load is shed at the front door, not discovered as
blown deadlines later.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from ..pipeline.batcher import CrossStreamBatcher
from ..pipeline.multiscale import PyramidDetector
from ..pipeline.stream import VideoStreamDetector
from ..profiling import Profiler
from ..reliability.guard import AdaptiveGuardedModel, GuardedClassModel
from .ladder import FleetScheduler
from .serving import ResilientVideoDetector

__all__ = ["AdmissionError", "BatchGate", "FleetDispatcher"]


class AdmissionError(RuntimeError):
    """A stream was refused admission (fleet full or over capacity)."""


class _Bundle:
    """One stream's scan requests waiting at the batch gate."""

    __slots__ = ("requests", "event", "results", "error")

    def __init__(self, requests):
        self.requests = list(requests)
        self.event = threading.Event()
        self.results = None
        self.error = None


class BatchGate:
    """Rendezvous that merges concurrent scan calls into one batch.

    The first stream thread to arrive becomes the *leader*: it waits
    ``batch_window`` seconds for other streams' frames to arrive, then
    runs every pending bundle's requests through one
    :meth:`~repro.pipeline.batcher.CrossStreamBatcher.scan_many` call
    and distributes the per-request results.  Followers block on their
    bundle's event (polling their watchdog cancel flag, so a stalled
    batch can never wedge a stream past its watchdog).  While a batch
    executes, the next arrival starts leading the *next* batch - the
    gate pipelines, it does not serialize the fleet.

    ``on_batch(n_bundles, n_requests)`` fires after each batch - the
    dispatcher's hook for ticking the fleet scheduler at batch cadence.
    """

    def __init__(self, batcher, batch_window=0.002, on_batch=None,
                 poll=0.02):
        self.batcher = batcher
        self.batch_window = float(batch_window)
        self.on_batch = on_batch
        self.poll = float(poll)
        self._lock = threading.Lock()
        self._pending = []
        self._leading = False
        self.batches = 0
        self.batched_requests = 0
        self.max_bundles = 0

    def scan(self, requests, cancel=None):
        """Scan ``requests`` (one stream's frame) through the shared batch.

        The signature matches the
        :attr:`~repro.runtime.serving.ResilientVideoDetector.batch_scan`
        hook: returns one DetectionMap per request, or re-raises the
        batch's failure in every participating stream.
        """
        from ..runtime.watchdog import FrameCancelled
        bundle = _Bundle(requests)
        with self._lock:
            self._pending.append(bundle)
            lead = not self._leading
            if lead:
                self._leading = True
        if lead:
            if self.batch_window > 0.0:
                time.sleep(self.batch_window)
            with self._lock:
                batch, self._pending = self._pending, []
                self._leading = False
            self._run(batch)
        else:
            while not bundle.event.wait(self.poll):
                if cancel is not None and cancel.is_set():
                    raise FrameCancelled("frame cancelled at the batch gate")
        if bundle.error is not None:
            raise bundle.error
        return bundle.results

    def _run(self, batch):
        flat = [r for b in batch for r in b.requests]
        try:
            maps = self.batcher.scan_many(flat)
        except Exception as err:  # noqa: BLE001 - every waiter must wake
            for b in batch:
                b.error = err
                b.event.set()
            return
        pos = 0
        for b in batch:
            b.results = maps[pos:pos + len(b.requests)]
            pos += len(b.requests)
            b.event.set()
        with self._lock:
            self.batches += 1
            self.batched_requests += len(flat)
            self.max_bundles = max(self.max_bundles, len(batch))
        if self.on_batch is not None:
            self.on_batch(len(batch), len(flat))

    def stats(self):
        with self._lock:
            return {"batches": self.batches,
                    "batched_requests": self.batched_requests,
                    "max_bundles": self.max_bundles,
                    "mean_requests": (self.batched_requests / self.batches
                                      if self.batches else 0.0)}


class FleetDispatcher:
    """Own N per-stream serving runtimes over one shared packed datapath.

    Parameters
    ----------
    make_detector:
        Zero-argument factory for the *template*
        :class:`~repro.pipeline.multiscale.PyramidDetector` (or a
        :class:`~repro.pipeline.stream.VideoStreamDetector` to unwrap).
        Called once; every stream's runtime wraps the same underlying
        sliding-window detector and engine, so window scans batch and
        the feature cache is fleet-wide.
    budget:
        Default per-stream latency budget (seconds); ``add_stream`` may
        override per stream.
    max_streams, capacity_fps:
        Admission limits: hard stream count, and optionally the summed
        *declared* fps the machine is provisioned for.
    batch_window:
        Seconds the batch-gate leader waits for other streams' frames.
        0 still batches whatever is already pending.
    batching:
        False wires no batch gate - every stream scans solo through the
        shared engine (the bench's like-for-like baseline mode).
    scheduler:
        A :class:`~repro.runtime.ladder.FleetScheduler` (default-built
        if omitted) that the gate ticks once per batch.
    cache_per_stream:
        Engine cache entries to provision per admitted stream (pyramid
        levels x a safety factor); the engine cache is grown, never
        shrunk.
    guard:
        Serve every stream against one fleet-shared
        :class:`~repro.reliability.guard.GuardedClassModel` (replicated
        rows, scrub-and-repair) instead of the raw packed model.  All
        streams install the same model as their ``model_override``, so
        the batch gate still groups their windows into one batch and a
        repaired bit heals for the whole fleet at once.  Packed backend
        only.
    adapt:
        Guarded *online learning*, fleet-wide: the shared model is an
        :class:`~repro.reliability.guard.AdaptiveGuardedModel` and every
        stream runs its own :class:`~repro.runtime.adapt.OnlineAdapter`
        with its own drift detector.  Updates from all streams serialize
        on the shared model's lock and pass the same vetting; a
        poisoned stream's proposals are rejected/outvoted before they
        can touch what the other streams serve (blast-radius
        containment).  Implies ``guard``.
    guard_kwargs:
        Options for the shared model (``replicas``, ``seed_or_rng``,
        ``prior``, ``max_step_frac``, ...).
    planner:
        Plan every stream's degradation ladder from one fleet-shared
        :class:`~repro.runtime.planner.ExecutionPlanner` (``True``
        builds one from the template detector; or pass a ready
        planner).  Each admitted stream without an explicit ``ladder``
        gets a planner-generated ladder at its own budget, and the
        shared cost model means one stream's refit benefits the whole
        fleet.
    scrub_budget:
        Enable one *fleet-level* :class:`~repro.reliability.scrubber.
        MemoryScrubber` over the shared surfaces (engine cache, extractor
        item memories, the shared guarded model), ticked once per batch
        (or per manual :meth:`tick`).  Bytes per tick; ``0`` =
        unbudgeted; ``None`` (default) disables.  The shared datapath
        belongs to the fleet, so scrubbing it is a dispatcher concern -
        per-stream ``scrub_budget`` in ``runtime_kwargs`` would sweep
        the same shared memory once per stream.
    runtime_kwargs:
        Defaults forwarded to every stream's
        :class:`~repro.runtime.serving.ResilientVideoDetector`
        (``stall_timeout``, ``queue_size``, ``policy``, ...).
    """

    def __init__(self, make_detector, budget=0.25, max_streams=8,
                 capacity_fps=None, batch_window=0.002, batching=True,
                 scheduler=None, profiler=None, cache_per_stream=8,
                 guard=False, adapt=False, guard_kwargs=None, planner=None,
                 scrub_budget=None, **runtime_kwargs):
        if max_streams < 1:
            raise ValueError("max_streams must be at least 1")
        self.budget = float(budget)
        self.max_streams = int(max_streams)
        self.capacity_fps = None if capacity_fps is None \
            else float(capacity_fps)
        self.batching = bool(batching)
        self.cache_per_stream = int(cache_per_stream)
        self.runtime_kwargs = dict(runtime_kwargs)
        self.profiler = profiler if profiler is not None else Profiler()
        self.scheduler = scheduler if scheduler is not None \
            else FleetScheduler()
        self.streams = OrderedDict()
        self._lock = threading.RLock()
        self._started_at = None
        self._elapsed = 0.0
        template = make_detector()
        if isinstance(template, VideoStreamDetector):
            template = template.pyramid
        if not isinstance(template, PyramidDetector):
            raise ValueError("make_detector must build a PyramidDetector "
                             "(or a VideoStreamDetector wrapping one)")
        if getattr(template.detector, "engine", None) is None:
            raise ValueError("fleet serving requires the shared-feature "
                             "engine (engine='shared')")
        self.template = template
        self.adapt = bool(adapt)
        self.shared_model = None
        if adapt or guard:
            if template.detector.backend != "packed":
                raise ValueError("guard/adapt fleets require the packed "
                                 "backend (the guarded models replicate "
                                 "packed rows)")
            cls = AdaptiveGuardedModel if adapt else GuardedClassModel
            self.shared_model = cls(template.detector.packed_model(),
                                    **dict(guard_kwargs or {}))
        self.planner = None
        if planner:
            from .planner import ExecutionPlanner
            self.planner = planner if isinstance(planner, ExecutionPlanner) \
                else ExecutionPlanner.from_detector(
                    template,
                    delta_reuse=bool(self.runtime_kwargs.get(
                        "incremental", True)))
        self.batcher = CrossStreamBatcher(template.detector)
        self.gate = BatchGate(self.batcher, batch_window=batch_window,
                              on_batch=self._on_batch) if self.batching \
            else None
        # fleet-level memory RAS over the shared surfaces
        self.scrubber = None
        self.scrub_incidents = None
        if scrub_budget is not None:
            from ..reliability.incidents import IncidentLog
            from ..reliability.scrubber import MemoryScrubber
            self.scrub_incidents = IncidentLog()
            self.scrubber = MemoryScrubber(
                budget=None if scrub_budget == 0 else int(scrub_budget),
                incidents=self.scrub_incidents)
            self.scrubber.add_engine(template.detector.engine)
            extractor = getattr(template.detector.engine, "extractor", None)
            if hasattr(extractor, "item_memories"):
                self.scrubber.add_extractor(extractor)
            if self.shared_model is not None:
                self.scrubber.add_guard(self.shared_model)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _admit(self, name, fps):
        if name in self.streams:
            raise ValueError(f"stream {name!r} already admitted")
        if len(self.streams) >= self.max_streams:
            raise AdmissionError(
                f"fleet full: {len(self.streams)}/{self.max_streams} "
                f"streams admitted, rejecting {name!r}")
        if self.capacity_fps is not None:
            declared = sum(s["fps"] or 0.0 for s in self.streams.values())
            declared += fps or 0.0
            if declared > self.capacity_fps:
                raise AdmissionError(
                    f"over capacity: declared {declared:g} fps exceeds the "
                    f"provisioned {self.capacity_fps:g}, rejecting {name!r}")

    def add_stream(self, name, budget=None, priority=0.0, fps=None,
                   ladder=None, **runtime_kwargs):
        """Admit one stream; returns its runtime (raises AdmissionError).

        ``priority`` feeds the fleet scheduler (higher = shed last);
        ``fps`` is the stream's declared frame rate for capacity-based
        admission.  Extra kwargs override the dispatcher's runtime
        defaults for this stream only.
        """
        name = str(name)
        with self._lock:
            self._admit(name, fps)
            t = self.template
            if not self.streams:
                pyr = t
            else:
                pyr = PyramidDetector(t.detector, scale_step=t.scale_step,
                                      score_threshold=t.score_threshold,
                                      iou_threshold=t.iou_threshold,
                                      workers=t.workers)
            kwargs = dict(self.runtime_kwargs)
            kwargs.update(runtime_kwargs)
            if self.planner is not None:
                # one fleet-shared planner: every stream's ladder is the
                # planner under its own shrinking budget schedule
                kwargs.setdefault("planner", self.planner)
            if self.shared_model is not None and self.adapt:
                # every stream closes its own tracker -> model loop (own
                # adapter + drift detector) against the one shared model;
                # proposals serialize on the model's lock and a per-stream
                # attack is vetted before it can touch the fleet's rows
                akw = dict(kwargs.pop("adapt_kwargs", None) or {})
                if "model" in akw:
                    raise ValueError(
                        "fleet adapt streams share the dispatcher's model; "
                        "per-stream model= is not allowed")
                akw["model"] = self.shared_model
                kwargs["adapt"] = True
                kwargs["adapt_kwargs"] = akw
            runtime = ResilientVideoDetector(
                pyr, budget=self.budget if budget is None else float(budget),
                ladder=ladder, **kwargs)
            if self.shared_model is not None and not self.adapt:
                runtime.model_override = self.shared_model
            # every runtime's __init__ points the *shared* detector and
            # engine at its own profiler; the shared datapath belongs to
            # the fleet, so re-point it at the fleet profiler (the
            # runtime's own profiler keeps the per-stream frame stages)
            shared = t.detector
            shared.profiler = self.profiler
            shared.engine.profiler = self.profiler
            shared.engine.cache_size = max(
                shared.engine.cache_size,
                self.cache_per_stream * (len(self.streams) + 1))
            if self.gate is not None:
                runtime.batch_scan = self.gate.scan
            self.scheduler.register(name, runtime.scheduler,
                                    priority=priority)
            self.streams[name] = {"runtime": runtime,
                                  "priority": float(priority),
                                  "fps": None if fps is None else float(fps),
                                  "budget": runtime.scheduler.budget}
            return runtime

    def __getitem__(self, name):
        return self.streams[name]["runtime"]

    def __len__(self):
        return len(self.streams)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Start every stream's consumer + watchdog."""
        with self._lock:
            self._started_at = time.perf_counter()
            for s in self.streams.values():
                s["runtime"].start()
        return self

    def submit(self, name, frame, meta=None, timeout=None):
        """Enqueue one frame on ``name``'s intake; False if shed."""
        return self.streams[name]["runtime"].submit(frame, meta, timeout)

    def step(self, name, frame, meta=None):
        """Synchronous single-frame path on ``name`` (tests, backfills)."""
        return self.streams[name]["runtime"].step(frame, meta)

    def stop(self, timeout=10.0):
        """Drain and stop every stream; returns per-stream results."""
        with self._lock:
            started = self._started_at
            if started is not None:
                self._elapsed += time.perf_counter() - started
                self._started_at = None
            streams = list(self.streams.items())
        return {name: s["runtime"].stop(timeout) for name, s in streams}

    # ------------------------------------------------------------------
    # fleet-aware shedding
    # ------------------------------------------------------------------
    def _loads(self):
        """Recent latency-to-budget ratio per stream (the pressure signal)."""
        loads = {}
        for name, s in self.streams.items():
            rt = s["runtime"]
            p95 = rt.profiler.percentiles("frame_proc", window=8)["p95"]
            loads[name] = p95 / rt.scheduler.budget
        return loads

    def _on_batch(self, n_bundles, n_requests):
        self.scheduler.tick(self._loads())
        if self.scrubber is not None:
            self.scrubber.tick()

    def tick(self):
        """Manually advance the fleet scheduler (non-batching fleets)."""
        if self.scrubber is not None:
            self.scrubber.tick()
        return self.scheduler.tick(self._loads())

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def merged_profiler(self):
        """Fleet-level profiler: shared datapath + every stream, merged."""
        merged = Profiler()
        merged.merge(self.profiler)
        for s in self.streams.values():
            merged.merge(s["runtime"].profiler)
        if self.shared_model is not None:
            # per-stream profilers each mirror the *shared* model's scrub
            # ledger, so the summed merge overcounts it; overwrite with
            # the authoritative fleet-wide numbers (adapt_* counters stay
            # summed - they are genuinely per-stream adapter ledgers)
            stats = self.shared_model.stats()
            merged.set_counter("guard_scrubs", stats["scrubs"])
            merged.set_counter("guard_repaired", stats["repaired"])
            if self.adapt:
                merged.set_counter("adapt_applied", stats["updates_applied"])
                merged.set_counter("adapt_rejected", stats["updates_rejected"])
                merged.set_counter("adapt_outvoted",
                                   stats["replicas_outvoted"])
        return merged

    def stats(self):
        """Per-stream serving stats plus the fleet-level rollup.

        ``fleet.profile_table`` is the merged stage/percentile table of
        the shared datapath profiler and every stream's profiler - the
        one table that shows where the whole machine's time went.
        """
        with self._lock:
            elapsed = self._elapsed
            if self._started_at is not None:
                elapsed += time.perf_counter() - self._started_at
            per_stream = {name: s["runtime"].stats()
                          for name, s in self.streams.items()}
            frames = sum(st["frames"] for st in per_stream.values())
            merged = self.merged_profiler()
            fleet = {
                "streams": len(self.streams),
                "max_streams": self.max_streams,
                "capacity_fps": self.capacity_fps,
                "frames": frames,
                "elapsed": elapsed,
                "aggregate_fps": frames / elapsed if elapsed > 0 else 0.0,
                "batching": self.gate is not None,
                "gate": self.gate.stats() if self.gate is not None
                else {"batches": 0, "batched_requests": 0,
                      "max_bundles": 0, "mean_requests": 0.0},
                "scheduler": self.scheduler.stats(),
                "guard": self.shared_model.stats()
                if self.shared_model is not None else None,
                "scrubber": self.scrubber.stats()
                if self.scrubber is not None else None,
                "profile_table": merged.table("fleet profile"),
            }
            return {"fleet": fleet, "streams": per_stream}

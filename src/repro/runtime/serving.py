"""Resilient serving runtime around the streaming detection stack.

:class:`ResilientVideoDetector` is the production wrapper the ROADMAP's
"serves heavy traffic" north star asks for: it keeps a video detection
loop *alive and inside its latency budget* under overload, stalls, poison
inputs and injected faults, degrading gracefully instead of blocking,
crashing, or silently blowing the deadline.  It composes:

* the **input quarantine** (:mod:`repro.runtime.quarantine`) - poison
  frames (NaN/inf, wrong shape/dtype, dead sensor) are rejected with a
  structured error before they can enter the engine's content-addressed
  cache;
* the **deadline scheduler + degradation ladder**
  (:mod:`repro.runtime.ladder`) - per-frame latency is measured from
  submit time (queue wait included) and fed to a hysteresis controller
  that sheds work rung by rung (coarser grid, fewer pyramid levels,
  truncated-dimension classification, skip-and-predict) and climbs back
  when load drops;
* the **watchdog** (:mod:`repro.runtime.watchdog`) - a stalled frame is
  cancelled cooperatively, and a wedged consumer thread is abandoned and
  replaced, with tracker / ladder / counters surviving intact because
  they live on the runtime, not the thread;
* the **incident log** (:mod:`repro.reliability.incidents`) - every
  recovery action leaves a queryable trail;
* **checkpoint/restore** (:mod:`repro.runtime.checkpoint`) - the mutable
  runtime state serializes to one ``.npz``, so a replacement worker
  resumes tracking and load-shedding where the dead one stopped.

The frame pipeline itself is the streaming stack of
:mod:`repro.pipeline.stream`: per-level frame-delta feature reuse through
the shared engine, pyramid detection, temporal tracking.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.hypervector import packed_words
from ..pipeline.multiscale import PyramidDetector, execute_plan, pyramid
from ..pipeline.plan import Plan
from ..pipeline.stream import FrameQueue, TemporalTracker, VideoStreamDetector
from ..profiling import Profiler
from ..reliability.incidents import IncidentLog
from .ladder import DeadlineScheduler, default_ladder
from .quarantine import InputQuarantine, PoisonFrameError
from .watchdog import FrameCancelled, Watchdog

__all__ = ["ServeFrameResult", "ResilientVideoDetector"]

#: Result modes: what the runtime did with one frame.
MODES = ("detected", "predicted", "quarantined", "cancelled")


@dataclass
class ServeFrameResult:
    """Everything the runtime reports for one frame it handled.

    ``latency`` is submit-to-done (queue wait included - what a consumer
    of the serving API experiences, and what drives the deadline
    scheduler); ``proc_latency`` is the processing time alone (what the
    degradation ladder actually controls, and what the chaos harness
    gates p95 on).
    """

    index: int
    mode: str
    detections: list
    tracks: list
    latency: float
    rung: str
    reuse: dict = field(default_factory=dict)
    meta: dict | None = None
    proc_latency: float = 0.0


class ResilientVideoDetector:
    """Deadline-aware, self-healing serving loop over a pyramid detector.

    Parameters
    ----------
    detector:
        A :class:`~repro.pipeline.multiscale.PyramidDetector` whose base
        detector runs the shared-feature engine, or a
        :class:`~repro.pipeline.stream.VideoStreamDetector` to adopt the
        pyramid/tracker from.
    budget:
        Per-frame latency budget in seconds, measured submit-to-done.
    ladder:
        A :class:`~repro.runtime.ladder.DegradationLadder`; defaults to
        :func:`~repro.runtime.ladder.default_ladder` for the detector's
        backend.
    tracker:
        A :class:`~repro.pipeline.stream.TemporalTracker` (default-configured
        if omitted).
    incremental:
        Enable per-level frame-delta feature reuse between consecutive
        frames (bitwise-identical results either way).
    queue_size, policy:
        Intake :class:`~repro.pipeline.stream.FrameQueue` bound and policy.
    stall_timeout, watchdog_grace:
        Watchdog escalation timings (see :class:`~repro.runtime.watchdog.
        Watchdog`).  ``stall_timeout=None`` disables the watchdog.
    quarantine:
        An :class:`~repro.runtime.quarantine.InputQuarantine`; by default
        one that accepts any finite, varying, 2-D numeric frame.
    profiler:
        A :class:`~repro.profiling.Profiler`; the runtime always keeps an
        enabled one (the deadline scheduler and the chaos harness read
        frame-latency percentiles from its ``frame`` stage) and attaches
        it to the detector and engine.
    adapt:
        Enable guarded online learning (packed backend only): serve
        against an :class:`~repro.reliability.guard.AdaptiveGuardedModel`
        and close the tracker -> model loop with an
        :class:`~repro.runtime.adapt.OnlineAdapter` (drift-gated,
        vetted, rollback-on-reject - see ``docs/online_learning.md``).
        While the stream is static the adapter proposes nothing and
        detections stay bitwise identical to ``adapt=False``.
    adapt_kwargs:
        Options forwarded to the adaptation stack: ``model`` substitutes
        a pre-built (possibly fleet-shared) adaptive model; ``drift``,
        ``label``, ``max_updates_per_frame`` configure the
        :class:`~repro.runtime.adapt.OnlineAdapter`; everything else
        (``prior``, ``max_step_frac``, ``replicas``, ...) goes to the
        :class:`~repro.reliability.guard.AdaptiveGuardedModel`.
    planner:
        Plan the degradation ladder instead of hand-tuning it: ``True``
        builds an :class:`~repro.runtime.planner.ExecutionPlanner` from
        the detector (or pass a ready planner) and, when no explicit
        ``ladder`` is given, generates the ladder as "planner under a
        shrinking budget" (:meth:`~repro.runtime.planner.
        ExecutionPlanner.ladder`).  Enables :meth:`replan`, the
        measure -> refit -> replan autotuning loop.
    replan_every:
        With a planner: automatically run :meth:`replan` every N
        completed frames (None = only on explicit calls).
    scrub_budget:
        Enable the background :class:`~repro.reliability.scrubber.
        MemoryScrubber`: every committed frame ticks one budgeted sweep
        over the engine scene cache, the extractor item memories and (when
        adapting) the guarded class model, repairing memory corruption
        continuously instead of on the unlucky access.  The value is the
        scrub budget in *bytes per frame* (``0`` = unbudgeted, every
        surface swept every frame); ``None`` (default) disables the
        scrubber.  Sweep outcomes land in the incident log
        (``memory_scrubbed`` / ``row_repaired`` / ``row_unrepairable``).
    scheduler_kwargs:
        Extra keyword arguments for the
        :class:`~repro.runtime.ladder.DeadlineScheduler`
        (``degrade_after``, ``recover_after``, ``headroom``).
    """

    def __init__(self, detector, budget=0.25, ladder=None, tracker=None,
                 incremental=True, queue_size=8, policy="drop_oldest",
                 stall_timeout=2.0, watchdog_grace=None, quarantine=None,
                 profiler=None, adapt=False, adapt_kwargs=None,
                 planner=None, replan_every=None, scrub_budget=None,
                 **scheduler_kwargs):
        if isinstance(detector, VideoStreamDetector):
            if tracker is None:
                tracker = detector.tracker
            detector = detector.pyramid
        if not isinstance(detector, PyramidDetector):
            raise ValueError("detector must be a PyramidDetector "
                             "(or a VideoStreamDetector wrapping one)")
        base = detector.detector
        if getattr(base, "engine", None) is None:
            raise ValueError("the serving runtime requires the "
                             "shared-feature engine (engine='shared')")
        self.pyramid = detector
        self.base = base
        self.engine = base.engine
        self.backend = base.backend
        self.tracker = tracker if tracker is not None else TemporalTracker()
        self.incremental = bool(incremental)
        self.queue = FrameQueue(queue_size, policy)
        self.quarantine = quarantine if quarantine is not None \
            else InputQuarantine()
        self.incidents = IncidentLog()
        self.profiler = profiler if profiler is not None else Profiler()
        base.profiler = self.profiler
        self.engine.profiler = self.profiler
        self.planner = None
        self.replan_every = int(replan_every) if replan_every else None
        self.replans = 0
        if planner:
            from .planner import ExecutionPlanner
            self.planner = planner if isinstance(planner, ExecutionPlanner) \
                else ExecutionPlanner.from_detector(
                    detector, delta_reuse=bool(incremental))
        if ladder is None:
            ladder = self.planner.ladder(budget) if self.planner is not None \
                else default_ladder(self.backend)
        self.scheduler = DeadlineScheduler(budget, ladder,
                                           **scheduler_kwargs)
        self.watchdog = None
        if stall_timeout is not None:
            self.watchdog = Watchdog(stall_timeout, grace=watchdog_grace,
                                     on_cancel=self._on_stall_cancel,
                                     on_restart=self._on_consumer_restart)
        # chaos / fault hooks (see repro.runtime.chaos)
        self.pre_frame = None     # callable(index, frame, meta, cancel_event)
        self.injector = None      # stage injector forwarded to every scan
        self.model_override = None  # substitute class model (fault campaigns)
        # fleet hook (see repro.runtime.fleet): callable(requests, cancel)
        # returning one DetectionMap per request; when set, per-level scans
        # go through the cross-stream batch gate (injector scans stay solo)
        self.batch_scan = None
        # online adaptation (see repro.runtime.adapt)
        self.adapter = None
        if adapt:
            if self.backend != "packed":
                raise ValueError("adapt=True requires the packed backend "
                                 "(online updates live in the packed domain)")
            from ..reliability.guard import AdaptiveGuardedModel
            from .adapt import OnlineAdapter
            kwargs = dict(adapt_kwargs or {})
            adapter_kwargs = {k: kwargs.pop(k)
                              for k in ("drift", "label",
                                        "max_updates_per_frame")
                              if k in kwargs}
            model = kwargs.pop("model", None)
            if model is None:
                model = AdaptiveGuardedModel(base.packed_model(), **kwargs)
            elif kwargs:
                raise ValueError(
                    f"model= given, leftover model kwargs {sorted(kwargs)}")
            self.model_override = model
            self.adapter = OnlineAdapter(self, model, **adapter_kwargs)
        # background memory RAS (see repro.reliability.scrubber)
        self.scrubber = None
        if scrub_budget is not None:
            from ..reliability.scrubber import MemoryScrubber
            self.scrubber = MemoryScrubber(
                budget=None if scrub_budget == 0 else int(scrub_budget),
                incidents=self.incidents)
            self.scrubber.add_engine(self.engine)
            extractor = getattr(self.engine, "extractor", None)
            if hasattr(extractor, "item_memories"):
                self.scrubber.add_extractor(extractor)
            if hasattr(self.model_override, "scrub"):
                self.scrubber.add_guard(self.model_override)

        self.completed = []
        self.frames_in = 0
        self.frames_done = 0
        self.predicted = 0
        self.cancelled = 0
        self.crashes = 0
        self._latencies = []
        self._proc_latencies = []
        self._next_index = 0
        self._prev_levels = None
        self._trunc_cache = {}
        self._state_lock = threading.RLock()
        self._generation = 0
        self._consumer = None
        self._stopping = False

    # ------------------------------------------------------------------
    # degradation plumbing
    # ------------------------------------------------------------------
    def _serving_model(self, rung):
        """Class model for this rung: override, truncated view, or default.

        The truncated views are cached per (model, words); when the rung's
        prefix covers every word the full model is used directly (scores
        then bitwise match full-dimension classification).
        """
        override = self.model_override
        if self.backend != "packed":
            return override
        base_model = override if override is not None \
            else self.base.packed_model()
        words = rung.prefix_words(getattr(base_model, "dim", 0) or
                                  self.base.pipeline.dim)
        full = rung.word_budget is None and rung.prefix_fraction >= 1.0
        if full or not hasattr(base_model, "truncated"):
            return base_model
        if words >= base_model.n_words:
            return base_model
        key = (id(base_model), words)
        model = self._trunc_cache.get(key)
        if model is None:
            model = base_model.truncated(words)
            self._trunc_cache[key] = model
        return model

    def _predict_tracks(self):
        """Skip-and-predict: the tracker's confirmed tracks, coasting."""
        return [replace(t) for t in self.tracker.active()]

    def replan(self, frame_shape=None):
        """One autotuning turn: refit the cost model, replan the rungs.

        Reads every measured stage's seconds/op-counts off the runtime's
        profiler into the planner's cost model
        (:meth:`~repro.runtime.planner.ExecutionPlanner.refit`), then
        regenerates the ladder's rung plans in place under the same
        shrinking budget schedule
        (:meth:`~repro.runtime.ladder.PlannerLadder.replan`).  Rung
        count, names and the scheduler position survive; only the knob
        assignments move.  Returns a summary dict.
        """
        if self.planner is None:
            raise RuntimeError("replan() requires the runtime to be "
                               "constructed with planner=")
        with self._state_lock:
            fitted = self.planner.refit(self.profiler)
            ladder = self.scheduler.ladder
            changed = ladder.replan(frame_shape) \
                if hasattr(ladder, "replan") else 0
            self.replans += 1
            self.profiler.set_counter("replans", self.replans)
            return {"fitted_stages": sorted(fitted),
                    "rungs_changed": int(changed)}

    # ------------------------------------------------------------------
    # one frame, end to end
    # ------------------------------------------------------------------
    def _check_cancel(self, cancel):
        if cancel is not None and cancel.is_set():
            raise FrameCancelled("frame cancelled by watchdog")

    def _frame_plan(self, rung):
        """The :class:`~repro.pipeline.plan.Plan` this rung executes.

        Planner-generated rungs carry their plan; hand-tuned rungs are
        translated from their relative knobs.  Either way the scan runs
        through the one :func:`~repro.pipeline.multiscale.execute_plan`
        code path.
        """
        plan = getattr(rung, "plan", None)
        if plan is None:
            plan = Plan.from_rung(
                rung, backend=self.backend, base_stride=self.base.stride,
                dim=self.base.pipeline.dim, engine=self.base.mode,
                workers=self.pyramid.workers, delta_reuse=self.incremental)
        return plan

    def _detect(self, frame, rung, cancel):
        """Quarantine-checked detection at the rung's plan."""
        plan = self._frame_plan(rung)
        window = self.base.window
        levels = list(pyramid(frame, self.pyramid.scale_step,
                              min_size=window))
        if plan.max_levels is not None:
            levels = levels[: plan.max_levels]
        reuse = {"mode": "cold", "levels": len(levels), "patched_levels": 0,
                 "pixels": 0, "dirty_pixels": 0}
        prev = self._prev_levels
        if (self.incremental and plan.delta_reuse and prev is not None
                and len(prev) >= len(levels)
                and prev[0][0].shape == levels[0][0].shape):
            reuse["mode"] = "delta"
            for (prev_level, _), (level, _) in zip(prev, levels):
                self._check_cancel(cancel)
                stats = self.engine.delta_update(prev_level, level)
                reuse["pixels"] += stats["pixels"]
                reuse["dirty_pixels"] += stats["dirty_pixels"]
                reuse["patched_levels"] += stats["mode"] == "patched"
        self._check_cancel(cancel)
        if getattr(self.base, "cascade", None) is not None \
                and self.backend == "packed":
            # cascade-mode base: the plan's word budget caps the
            # escalation depth instead of substituting a truncated model,
            # so the cascade's staged rejection and the ladder's
            # load-shedding compose (see repro.runtime.ladder.cascade_ladder)
            words = plan.prefix_words(self.base.pipeline.dim)
            max_words = words if words < packed_words(
                self.base.pipeline.dim) else None
            model = self.model_override
        else:
            # flat route: the word budget is realized as a cached
            # truncated-model view instead of a per-scan truncation
            max_words = None
            model = self._serving_model(rung)
        exec_plan = replace(plan, max_words=max_words,
                            workers=self.pyramid.workers)
        # fleet path: execute_plan hands the per-level scans to the
        # cross-stream batch gate (pooled with other streams' windows)
        # and keeps only the threshold+NMS tail local - bitwise the same
        # detections as the solo path (injector scans stay solo).
        detections = execute_plan(
            self.pyramid, frame, exec_plan, injector=self.injector,
            model=model, levels=levels, batch_scan=self.batch_scan,
            cancel=cancel)
        self._check_cancel(cancel)
        return detections, levels, reuse

    def _process(self, frame, index, rung, meta, cancel):
        """Side-effect-light frame processing (no tracker/scheduler writes).

        Engine-cache writes are fine (the cache is thread-safe and
        content-addressed); everything order-sensitive happens in
        :meth:`_commit` under the state lock with a generation check, so
        a consumer abandoned mid-frame cannot corrupt the runtime state.
        """
        self._check_cancel(cancel)
        arr = self.quarantine.check(frame)
        if self.pre_frame is not None:
            self.pre_frame(index, arr, meta, cancel)
        self._check_cancel(cancel)
        keyframe = rung.keyframe_every <= 1 \
            or index % rung.keyframe_every == 0
        if not keyframe:
            return "predicted", [], None, {"mode": "skip", "levels": 0,
                                           "patched_levels": 0, "pixels": 0,
                                           "dirty_pixels": 0}
        detections, levels, reuse = self._detect(arr, rung, cancel)
        return "detected", detections, levels, reuse

    def _commit(self, generation, index, mode, detections, levels, reuse,
                latency, meta, proc_latency=0.0):
        """Publish one frame's outcome into the shared state (or drop it)."""
        with self._state_lock:
            if generation != self._generation:
                self.incidents.record("stale_result", frame=index, mode=mode)
                return None
            if mode == "detected":
                tracks = [replace(t) for t in self.tracker.update(detections)]
                self._prev_levels = levels
                if self.adapter is not None and levels:
                    try:
                        self.adapter.observe(levels[0][0], tracks, index)
                    except Exception as err:  # noqa: BLE001 - serving first
                        self.incidents.record("adapt_error", frame=index,
                                              error=repr(err))
            elif mode == "predicted":
                tracks = self._predict_tracks()
                self.predicted += 1
            else:  # quarantined / cancelled: tracker untouched
                tracks = self._predict_tracks()
            rung_name = self.scheduler.current.name
            if mode in ("detected", "predicted", "cancelled"):
                # cancelled frames are the worst deadline misses: they
                # feed the scheduler (so stall pressure sheds work) but
                # not the served-latency percentiles (nothing was served)
                old = self.scheduler.rung
                new = self.scheduler.observe(latency, frame=index)
                if latency > self.scheduler.budget:
                    self.incidents.record("deadline_miss", frame=index,
                                          latency=latency,
                                          budget=self.scheduler.budget)
                if new > old:
                    self.incidents.record("rung_degraded", frame=index,
                                          rung=self.scheduler.current.name)
                elif new < old:
                    self.incidents.record("rung_recovered", frame=index,
                                          rung=self.scheduler.current.name)
                if mode != "cancelled":
                    self._latencies.append(latency)
                    self._proc_latencies.append(proc_latency)
                    self.profiler.record("frame", latency)
                    self.profiler.record("frame_proc", proc_latency)
            result = ServeFrameResult(index, mode, detections, tracks,
                                      latency, rung_name, reuse, meta,
                                      proc_latency)
            self.completed.append(result)
            self.frames_done += 1
            if self.scrubber is not None:
                self.scrubber.tick(frame=index)
            if (self.planner is not None and self.replan_every
                    and self.frames_done % self.replan_every == 0):
                self.replan()
            return result

    def _handle(self, frame, submitted_at, meta, generation):
        """The full per-frame path shared by the sync and async loops."""
        with self._state_lock:
            index = self._next_index
            self._next_index += 1
            rung = self.scheduler.current
        cancel = threading.Event()
        self._frame_cancel = cancel
        token = self.watchdog.frame_started(index) if self.watchdog else None
        proc_start = time.perf_counter()
        mode, detections, levels, reuse = "cancelled", [], None, {}
        try:
            mode, detections, levels, reuse = self._process(
                frame, index, rung, meta, cancel)
        except PoisonFrameError as err:
            mode = "quarantined"
            self.incidents.record("poison_frame", frame=index,
                                  reason=err.reason, detail=err.detail)
        except FrameCancelled:
            mode = "cancelled"
            with self._state_lock:
                self.cancelled += 1
        except Exception as err:  # noqa: BLE001 - the loop must survive
            mode = "cancelled"
            with self._state_lock:
                self.crashes += 1
            self.incidents.record("crash", frame=index, error=repr(err))
        finally:
            if self.watchdog and token is not None:
                self.watchdog.frame_finished(token)
        now = time.perf_counter()
        return self._commit(generation, index, mode, detections, levels,
                            reuse, now - submitted_at, meta,
                            now - proc_start)

    # ------------------------------------------------------------------
    # synchronous API
    # ------------------------------------------------------------------
    def step(self, frame, meta=None):
        """Process one frame in the calling thread; returns the result."""
        return self._handle(frame, time.perf_counter(), meta,
                            self._generation)

    def run(self, frames):
        """Synchronous pump: yields one :class:`ServeFrameResult` per frame."""
        for frame in frames:
            yield self.step(frame)

    # ------------------------------------------------------------------
    # asynchronous API (queue + consumer + watchdog)
    # ------------------------------------------------------------------
    def submit(self, frame, meta=None, timeout=None):
        """Producer side: enqueue a frame; False if rejected (stopped/full)."""
        try:
            ok = self.queue.put((frame, time.perf_counter(), meta), timeout)
        except ValueError:
            return False
        if ok:
            with self._state_lock:
                self.frames_in += 1
        return ok

    def _consume(self, generation):
        while True:
            with self._state_lock:
                if generation != self._generation:
                    return
            try:
                item = self.queue.get(timeout=0.05)
            except TimeoutError:
                continue
            if item is None:
                return
            frame, submitted_at, meta = item
            self._handle(frame, submitted_at, meta, generation)

    def start(self):
        """Start the consumer thread and the watchdog."""
        if self._consumer is not None:
            raise RuntimeError("runtime already started")
        self._stopping = False
        self._spawn_consumer()
        if self.watchdog:
            self.watchdog.start()
        return self

    def _spawn_consumer(self):
        with self._state_lock:
            generation = self._generation
        self._consumer = threading.Thread(
            target=self._consume, args=(generation,), daemon=True,
            name=f"repro-serve-consumer-{generation}")
        self._consumer.start()

    def stop(self, timeout=10.0):
        """Close intake, drain, stop watchdog; returns completed results.

        The join loop follows watchdog restarts: if the consumer is
        replaced mid-drain, the replacement is joined too.  A consumer
        wedged beyond the watchdog's reach is abandoned after ``timeout``
        (it is a daemon thread and its late result goes stale) rather
        than deadlocking the caller.
        """
        self.queue.close()
        deadline = time.monotonic() + timeout
        while True:
            consumer = self._consumer
            if consumer is None:
                break
            consumer.join(max(0.0, deadline - time.monotonic()))
            if consumer is self._consumer:
                if consumer.is_alive():
                    with self._state_lock:
                        self._generation += 1  # make any late result stale
                break
            # a watchdog restart replaced the consumer mid-drain: join
            # the replacement as well (until the deadline runs out)
            if time.monotonic() >= deadline:
                with self._state_lock:
                    self._generation += 1
                break
        with self._state_lock:
            self._stopping = True
        self._consumer = None
        if self.watchdog:
            self.watchdog.stop()
        return self.completed

    # ------------------------------------------------------------------
    # watchdog escalation callbacks
    # ------------------------------------------------------------------
    def _on_stall_cancel(self, frame_index):
        cancel = getattr(self, "_frame_cancel", None)
        if cancel is not None:
            cancel.set()
        self.incidents.record("stall_cancelled", frame=frame_index,
                              escalation="cooperative")

    def _on_consumer_restart(self, frame_index):
        with self._state_lock:
            self._generation += 1
            stopping = self._stopping
        self.incidents.record("consumer_restarted", frame=frame_index)
        if not stopping and self._consumer is not None:
            self._spawn_consumer()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self):
        """One dict with the whole serving story: latency, rungs, incidents."""
        with self._state_lock:
            lat = np.asarray(self._latencies, dtype=np.float64)
            total = float(lat.sum())
            pct = self.profiler.percentiles("frame")
            proc = self.profiler.percentiles("frame_proc")
            info = self.engine.cache_info()
            return {
                "frames": self.frames_done,
                "submitted": self.frames_in,
                "dropped": self.queue.dropped,
                "predicted": self.predicted,
                "cancelled": self.cancelled,
                "crashes": self.crashes,
                "quarantined": self.quarantine.stats()["rejected_total"],
                "quarantine_reasons": self.quarantine.stats()["rejected"],
                "seconds": total,
                "fps": self.frames_done / total if total > 0 else 0.0,
                "latency_mean": float(lat.mean()) if lat.size else 0.0,
                "latency_p50": pct["p50"],
                "latency_p95": pct["p95"],
                "latency_p99": pct["p99"],
                "latency_max": float(lat.max()) if lat.size else 0.0,
                "proc_p50": proc["p50"],
                "proc_p95": proc["p95"],
                "proc_p99": proc["p99"],
                "budget": self.scheduler.budget,
                "deadline_misses": self.scheduler.deadline_misses,
                "rung": self.scheduler.rung,
                "rung_name": self.scheduler.current.name,
                "max_rung": max((self.scheduler.ladder.rungs.index(r)
                                 for r in self.scheduler.ladder.rungs
                                 if r.name in {t["to"] for t in
                                               self.scheduler.ladder.transitions}),
                                default=self.scheduler.rung),
                "rung_transitions": list(self.scheduler.ladder.transitions),
                "watchdog": (self.watchdog.stats() if self.watchdog
                             else {"cancels": 0, "restarts": 0}),
                "incidents": self.incidents.counts(),
                "delta_patched": info["delta_patched"],
                "delta_full": info["delta_full"],
                "delta_reused": info["delta_reused"],
                "tracks_alive": len(self.tracker.tracks),
                "tracks_confirmed": len(self.tracker.active()),
                "adapt": (self.adapter.stats() if self.adapter is not None
                          else None),
                "scrubber": (self.scrubber.stats()
                             if self.scrubber is not None else None),
                "planner": (self.planner.stats() if self.planner is not None
                            else None),
                "replans": self.replans,
            }

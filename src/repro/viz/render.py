"""Text and PGM rendering of images and detection maps (paper Fig. 6).

The benchmark harness runs headless, so Fig. 6's visual comparison is
reproduced as ASCII art (for the console) and binary PGM files (for any
image viewer).  ``render_detection`` overlays the sliding-window detection
grid on a scene the way the paper paints detected windows blue.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_image", "ascii_map", "write_pgm", "render_detection"]

#: Dark-to-bright luminance ramp for ASCII rendering.
_RAMP = " .:-=+*#%@"


def ascii_image(img, width=64):
    """Render a grayscale image in [0, 1] as an ASCII-art string."""
    img = np.asarray(img, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("expected a 2-D image")
    h, w = img.shape
    width = min(width, w)
    step = max(w // width, 1)
    # Characters are ~2x taller than wide; skip every other row.
    sampled = img[:: 2 * step, ::step]
    idx = np.clip((sampled * (len(_RAMP) - 1)).round().astype(int), 0, len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[v] for v in row) for row in idx)


def ascii_map(values, true_char="#", false_char=".", fmt=None):
    """Render a 2-D boolean or score map as a compact character grid.

    Boolean maps use ``true_char`` / ``false_char``; float maps are printed
    with ``fmt`` (default two decimals) one cell per entry.
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValueError("expected a 2-D map")
    if values.dtype == bool:
        return "\n".join(
            "".join(true_char if v else false_char for v in row) for row in values
        )
    fmt = fmt or "{:+.2f}"
    return "\n".join(" ".join(fmt.format(float(v)) for v in row) for row in values)


def write_pgm(path, img):
    """Write a [0, 1] grayscale image as a binary 8-bit PGM file."""
    img = np.asarray(img, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("expected a 2-D image")
    data = np.clip(img * 255.0, 0, 255).astype(np.uint8)
    with open(path, "wb") as fh:
        fh.write(f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode("ascii"))
        fh.write(data.tobytes())


def render_detection(scene, detection_map, shade=0.35):
    """Overlay detected windows on a scene (brightening them).

    Returns a new image where every window the detector flagged is blended
    toward white - the grayscale counterpart of the paper's blue boxes.
    """
    scene = np.asarray(scene, dtype=np.float64).copy()
    det = detection_map
    for iy in range(det.detections.shape[0]):
        for ix in range(det.detections.shape[1]):
            if det.detections[iy, ix]:
                y, x = det.window_origin(iy, ix)
                patch = scene[y : y + det.window, x : x + det.window]
                scene[y : y + det.window, x : x + det.window] = (
                    patch * (1 - shade) + shade
                )
    return np.clip(scene, 0.0, 1.0)

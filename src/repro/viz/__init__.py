"""Headless rendering helpers for the Fig. 6 visualizations."""

from .render import ascii_image, ascii_map, render_detection, write_pgm

__all__ = ["ascii_image", "ascii_map", "write_pgm", "render_detection"]

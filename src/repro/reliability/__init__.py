"""Reliability layer: packed-word fault models and active protection.

The paper's robustness claim (Sec. 6.6, Table 2) is that holographic
redundancy keeps HDFace accurate under bit errors that are catastrophic
for fixed-point HOG and quantized DNNs.  :mod:`repro.noise` exercises that
claim at the single-window classifier level; this package extends it to
the production detection stack:

* :mod:`repro.reliability.faults` - word-level bit-flip and stuck-at
  models over the bit-packed ``uint64`` buffers where physical faults
  actually land (scene cache entries, the window-assembly datapath, the
  stored class model), provably equivalent to the dense bipolar models.
* :mod:`repro.reliability.integrity` - content digests for fault
  *detection*: the scene-cache scrubber and the class-model checksums.
* :mod:`repro.reliability.guard` - :class:`GuardedClassModel`, an
  actively protected class model (R replicas + per-class checksums +
  bitwise majority-vote repair, or a single replica under ``check="ecc"``
  with the ECC-correct -> rematerialize -> vote -> degrade repair
  ladder) whose cycle/energy overhead is priced by
  :mod:`repro.hardware.opcount`.
* :mod:`repro.reliability.ecc` - the vectorized SEC-DED Hamming(72,64)
  codec over packed ``uint64`` words backing that mode and the scene
  cache's repair-in-place path.
* :mod:`repro.reliability.scrubber` - :class:`MemoryScrubber`, the
  background patrol that sweeps every registered memory surface (guard
  models, scene cache, item memories) under a bytes-per-tick budget.

The detection-level campaign that sweeps these fault models through the
full sliding-window/pyramid path lives in
:func:`repro.noise.campaign.detection_robustness`; the sustained-BER
serving soak in :func:`repro.runtime.chaos.run_ber_soak`.
"""

from .ecc import (
    ECC_CLEAN,
    ECC_CORRECTED,
    ECC_DETECTED,
    ecc_correct,
    ecc_correct_array,
    ecc_encode,
    ecc_encode_array,
    ecc_overhead_bytes,
)
from .faults import (
    DetectionFaultInjector,
    PackedFaultInjector,
    flip_packed_words,
    stuck_at_packed,
)
from .guard import REPAIR_RUNGS, AdaptiveGuardedModel, GuardedClassModel
from .incidents import Incident, IncidentLog
from .integrity import digest_array, digest_arrays
from .scrubber import MemoryScrubber

__all__ = [
    "flip_packed_words",
    "stuck_at_packed",
    "PackedFaultInjector",
    "DetectionFaultInjector",
    "GuardedClassModel",
    "AdaptiveGuardedModel",
    "REPAIR_RUNGS",
    "Incident",
    "IncidentLog",
    "digest_array",
    "digest_arrays",
    "ECC_CLEAN",
    "ECC_CORRECTED",
    "ECC_DETECTED",
    "ecc_encode",
    "ecc_correct",
    "ecc_encode_array",
    "ecc_correct_array",
    "ecc_overhead_bytes",
    "MemoryScrubber",
]

"""Reliability layer: packed-word fault models and active protection.

The paper's robustness claim (Sec. 6.6, Table 2) is that holographic
redundancy keeps HDFace accurate under bit errors that are catastrophic
for fixed-point HOG and quantized DNNs.  :mod:`repro.noise` exercises that
claim at the single-window classifier level; this package extends it to
the production detection stack:

* :mod:`repro.reliability.faults` - word-level bit-flip and stuck-at
  models over the bit-packed ``uint64`` buffers where physical faults
  actually land (scene cache entries, the window-assembly datapath, the
  stored class model), provably equivalent to the dense bipolar models.
* :mod:`repro.reliability.integrity` - content digests for fault
  *detection*: the scene-cache scrubber and the class-model checksums.
* :mod:`repro.reliability.guard` - :class:`GuardedClassModel`, an
  actively protected class model (R replicas + per-class checksums +
  bitwise majority-vote repair) whose cycle/energy overhead is priced by
  :mod:`repro.hardware.opcount`.

The detection-level campaign that sweeps these fault models through the
full sliding-window/pyramid path lives in
:func:`repro.noise.campaign.detection_robustness`.
"""

from .faults import (
    DetectionFaultInjector,
    PackedFaultInjector,
    flip_packed_words,
    stuck_at_packed,
)
from .guard import AdaptiveGuardedModel, GuardedClassModel
from .incidents import Incident, IncidentLog
from .integrity import digest_array, digest_arrays

__all__ = [
    "flip_packed_words",
    "stuck_at_packed",
    "PackedFaultInjector",
    "DetectionFaultInjector",
    "GuardedClassModel",
    "AdaptiveGuardedModel",
    "Incident",
    "IncidentLog",
    "digest_array",
    "digest_arrays",
]

"""Background memory scrubber: continuous repair under a bytes budget.

The reliability layer's detection/repair primitives are all *pull*:
:meth:`GuardedClassModel.scrub` runs before inference, the shared engine
digest-checks on cache *hits*, item memories verify when asked.  Corruption
in a surface nobody touches therefore ages silently until the unlucky
access - and the older a bit error gets, the more likely a second hit in
the same word turns a correctable fault into an unrepairable one.

:class:`MemoryScrubber` turns repair into a *push*: it keeps a registry of
every long-lived memory surface (guard models, the engine scene cache,
extractor item memories), and each :meth:`tick` sweeps as many of them as
a **bytes-per-tick budget** allows, round-robin, banking unused credit so
large surfaces are still reached.  The serving loop ticks it once per
committed frame and the fleet dispatcher once per batch, which bounds the
scrub-latency of every registered byte at
``total_registered_bytes / budget`` ticks - the "scrub budget math" of
``docs/robustness.md``.

Every sweep's outcome lands in the :class:`~repro.reliability.incidents.
IncidentLog` (``memory_scrubbed`` / ``row_repaired`` /
``row_unrepairable``), so repairs are first-class operational events, not
silent background magic.
"""

from __future__ import annotations

import threading

__all__ = ["MemoryScrubber"]


class _Target:
    """One registered surface: a cost estimate and a normalized scrub."""

    __slots__ = ("name", "kind", "cost", "scrub")

    def __init__(self, name, kind, cost, scrub):
        self.name = name
        self.kind = kind
        self.cost = cost      # () -> resident bytes to sweep
        self.scrub = scrub    # () -> {detected, repaired, unrepairable}


class MemoryScrubber:
    """Round-robin, budgeted sweeper over registered memory surfaces.

    Parameters
    ----------
    budget:
        Bytes of scrub work per :meth:`tick`.  ``None`` removes the bound
        (every tick sweeps everything).  Unused credit is banked - capped
        at one full sweep - so a surface larger than the budget is still
        scrubbed, just less often.
    incidents:
        Optional :class:`~repro.reliability.incidents.IncidentLog`; sweep
        outcomes are recorded there.
    """

    def __init__(self, budget=1 << 20, incidents=None):
        if budget is not None and budget <= 0:
            raise ValueError(f"budget must be positive or None, got {budget}")
        self.budget = None if budget is None else int(budget)
        self.incidents = incidents
        self._targets = []
        self._lock = threading.RLock()
        self._cursor = 0
        self._credit = 0.0
        self.ticks = 0
        self.sweeps = 0
        self.bytes_scanned = 0
        self.detected = 0
        self.repaired = 0
        self.unrepairable = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_guard(self, model, name="guard"):
        """Register a (possibly adaptive) :class:`GuardedClassModel`."""
        seen = {"repaired": model.repaired, "bad": model.unrepairable}

        def scrub():
            detected = model.scrub(force=True)
            repaired = model.repaired - seen["repaired"]
            unrepairable = model.unrepairable - seen["bad"]
            seen["repaired"] = model.repaired
            seen["bad"] = model.unrepairable
            return {"detected": detected, "repaired": repaired,
                    "unrepairable": unrepairable}

        self._add(_Target(name, "guard", lambda: model.nbytes, scrub))
        return self

    def add_engine(self, engine, name="engine"):
        """Register a :class:`SharedFeatureEngine`'s scene cache."""
        def scrub():
            report = engine.scrub_cache()
            return {"detected": report["mismatches"],
                    "repaired": report["repaired"],
                    "unrepairable": report["evicted"]}

        self._add(_Target(name, "cache", engine.cache_nbytes, scrub))
        return self

    def add_item_memory(self, memory, name=None):
        """Register one :class:`RematerializingItemMemory`."""
        def scrub():
            report = memory.scrub()
            return {"detected": report["repaired"],
                    "repaired": report["repaired"], "unrepairable": 0}

        self._add(_Target(name or memory.name, "item",
                          lambda: memory.nbytes, scrub))
        return self

    def add_extractor(self, extractor, name="extractor"):
        """Register every item memory of an :class:`HDHOGExtractor`."""
        for key, memory in extractor.item_memories().items():
            self.add_item_memory(memory, name=f"{name}.{key}")
        return self

    def _add(self, target):
        with self._lock:
            if any(t.name == target.name for t in self._targets):
                raise ValueError(f"duplicate scrub target {target.name!r}")
            self._targets.append(target)

    # ------------------------------------------------------------------
    # the sweep
    # ------------------------------------------------------------------
    def tick(self, frame=-1):
        """One budgeted sweep step; returns per-surface reports.

        Walks the registry round-robin from where the last tick stopped,
        scrubbing surfaces while banked credit covers their resident
        bytes.  Sub-budget surfaces are swept every tick; a surface
        costing ``N x budget`` is swept every ~``N`` ticks.
        """
        with self._lock:
            self.ticks += 1
            if not self._targets:
                return []
            costs = [max(float(t.cost()), 1.0) for t in self._targets]
            full_sweep = sum(costs)
            if self.budget is None:
                self._credit = full_sweep
            else:
                self._credit = min(self._credit + self.budget, full_sweep)
            reports = []
            for _ in range(len(self._targets)):
                idx = self._cursor % len(self._targets)
                cost = costs[idx]
                if self._credit < cost:
                    break
                target = self._targets[idx]
                outcome = target.scrub()
                self._credit -= cost
                self._cursor = idx + 1
                self.sweeps += 1
                self.bytes_scanned += int(cost)
                self.detected += outcome["detected"]
                self.repaired += outcome["repaired"]
                self.unrepairable += outcome["unrepairable"]
                reports.append({"name": target.name, "kind": target.kind,
                                "bytes": int(cost), **outcome})
        if self.incidents is not None and reports:
            self.incidents.record(
                "memory_scrubbed", frame=frame,
                surfaces=len(reports),
                bytes=sum(r["bytes"] for r in reports))
            repaired = sum(r["repaired"] for r in reports)
            if repaired:
                self.incidents.record(
                    "row_repaired", frame=frame, rows=repaired,
                    surfaces=[r["name"] for r in reports if r["repaired"]])
            unrepairable = sum(r["unrepairable"] for r in reports)
            if unrepairable:
                self.incidents.record(
                    "row_unrepairable", frame=frame, rows=unrepairable,
                    surfaces=[r["name"] for r in reports
                              if r["unrepairable"]])
        return reports

    def sweep(self, frame=-1):
        """Scrub *everything* now, budget notwithstanding (shutdown/gates)."""
        with self._lock:
            saved, self._credit = self.budget, 0.0
            self.budget = None
        try:
            return self.tick(frame=frame)
        finally:
            with self._lock:
                self.budget = saved

    def stats(self):
        """Counters + registry view for reports and serving stats."""
        with self._lock:
            return {
                "budget": self.budget,
                "targets": [{"name": t.name, "kind": t.kind,
                             "bytes": int(t.cost())} for t in self._targets],
                "ticks": self.ticks,
                "sweeps": self.sweeps,
                "bytes_scanned": self.bytes_scanned,
                "detected": self.detected,
                "repaired": self.repaired,
                "unrepairable": self.unrepairable,
            }

"""Structured incident recording for the serving runtime.

Fault *injection* (:mod:`repro.reliability.faults`) and fault *masking*
(:mod:`repro.reliability.guard`) answer "does the model survive?"; a
production serving loop additionally has to answer "what happened, when,
and how often?" - watchdog recoveries, quarantined inputs, deadline
misses and degradation-rung changes all need a durable, queryable trail
that outlives the thread that observed them.  :class:`IncidentLog` is
that trail: an append-only, thread-safe record of typed incidents with
monotonic timestamps, per-kind counters, and a JSON-ready payload for
the chaos harness and the CLI report.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["Incident", "IncidentLog", "INCIDENT_KINDS"]

#: The incident vocabulary of the serving runtime.  ``detail`` is free-form
#: per kind; new kinds may be added, unknown kinds are rejected to catch
#: typos at the call site rather than in a dashboard three weeks later.
INCIDENT_KINDS = (
    "stall_cancelled",     # watchdog cancelled a stuck frame cooperatively
    "consumer_restarted",  # watchdog abandoned a hung consumer and respawned
    "stale_result",        # an abandoned consumer's late result was discarded
    "poison_frame",        # input quarantine rejected a frame
    "deadline_miss",       # a frame finished over its latency budget
    "rung_degraded",       # ladder stepped down (shed work)
    "rung_recovered",      # ladder climbed back up
    "checkpoint_saved",    # runtime state persisted
    "checkpoint_restored", # runtime state restored
    "fault_injected",      # chaos harness armed a fault surface
    "crash",               # frame processing raised; loop survived
    "adapt_error",         # online adapter raised while observing a frame
    "memory_scrubbed",     # background scrubber completed a sweep tick
    "row_repaired",        # scrubber repaired corrupted memory rows
    "row_unrepairable",    # scrubber had to degrade/evict instead of repair
)


@dataclass(frozen=True)
class Incident:
    """One recorded event: what, when (monotonic seconds), and context."""

    kind: str
    timestamp: float
    frame: int = -1
    detail: dict = field(default_factory=dict)

    def payload(self):
        """JSON-safe dict view."""
        return {"kind": self.kind, "timestamp": self.timestamp,
                "frame": self.frame, "detail": dict(self.detail)}


class IncidentLog:
    """Append-only, thread-safe incident trail with per-kind counters.

    Parameters
    ----------
    clock:
        Timestamp source (default ``time.monotonic``); injectable so tests
        and the chaos harness get deterministic timelines.
    """

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._incidents = []

    def record(self, kind, frame=-1, **detail):
        """Append one incident; returns it.  Unknown kinds raise."""
        if kind not in INCIDENT_KINDS:
            raise ValueError(f"unknown incident kind {kind!r}; "
                             f"expected one of {INCIDENT_KINDS}")
        incident = Incident(kind, float(self._clock()), int(frame), detail)
        with self._lock:
            self._incidents.append(incident)
        return incident

    def __len__(self):
        with self._lock:
            return len(self._incidents)

    def all(self, kind=None):
        """Snapshot of recorded incidents, optionally filtered by kind."""
        with self._lock:
            items = list(self._incidents)
        if kind is not None:
            items = [i for i in items if i.kind == kind]
        return items

    def count(self, kind=None):
        """Number of incidents (of ``kind``, or total)."""
        return len(self.all(kind))

    def counts(self):
        """Per-kind incident counters (only kinds that occurred)."""
        out = {}
        for incident in self.all():
            out[incident.kind] = out.get(incident.kind, 0) + 1
        return out

    def payload(self):
        """JSON-safe view: counters plus the full ordered trail."""
        return {"counts": self.counts(),
                "incidents": [i.payload() for i in self.all()]}

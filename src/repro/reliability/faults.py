"""Word-level fault models over bit-packed ``uint64`` hypervector buffers.

The dense fault models in :mod:`repro.noise.bitflip` operate on bipolar
``int8`` arrays - the *representation* view.  The production detection
stack stores hypervectors bit-packed 64 components per ``uint64`` word
(scene cache, window-assembly datapath, :class:`~repro.core.packed.
PackedClassModel`), and that packed memory layout is exactly where
physical faults land on the hardware the paper targets.  This module
provides the packed-domain counterparts:

* :func:`flip_packed_words` - independent per-bit flips, the packed
  analogue of :func:`repro.noise.bitflip.flip_bipolar`;
* :func:`stuck_at_packed` - stuck-at-1 / stuck-at-0 cells, the packed
  analogue of :func:`repro.noise.bitflip.stuck_at`;
* :class:`PackedFaultInjector` - the pluggable ``injector(words, stage)``
  callback for packed pipeline stages;
* :class:`DetectionFaultInjector` - a dtype-dispatching injector for the
  mixed dense/packed detection path (dense extraction stages, packed
  assembly stages), so one fault model covers both engine backends.

**Equivalence guarantee.**  Both packed models draw their fault positions
over the *component* axis (``dim`` draws per vector, in the same order as
the dense models), then pack the selection into a word mask.  Handed the
same generator state, ``flip_packed_words(pack_bits(x), dim, p, rng)`` is
therefore *bit-identical* to ``pack_bits(flip_bipolar(x, p, rng))`` - not
merely equal in distribution - and pad bits beyond ``dim`` are never
touched (the mask is zero there by construction).  The property tests in
``tests/reliability/test_faults.py`` pin both facts down.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng, packed_tail_mask, packed_words

__all__ = [
    "flip_packed_words",
    "stuck_at_packed",
    "PackedFaultInjector",
    "DetectionFaultInjector",
]

#: Stages of the shared-engine detection path that are memory-resident
#: (and therefore fault-exposed): the pixel-codebook output buffer during
#: the fields pass and the cell-histogram words during window assembly.
DETECTION_STAGES = ("pixels", "histogram")


def _check_packed(words, dim):
    """Validate a packed buffer against ``dim`` and return it as uint64."""
    arr = np.asarray(words)
    if arr.dtype != np.uint64:
        raise TypeError(f"expected uint64 packed words, got {arr.dtype}")
    if arr.ndim < 1 or arr.shape[-1] != packed_words(dim):
        raise ValueError(
            f"dim {dim} needs {packed_words(dim)} words per vector, "
            f"got shape {arr.shape}")
    return arr


def _event_mask(shape, dim, rate, rng):
    """Packed uint64 mask with each *real* bit set iid with ``rate``.

    Draws ``dim`` float32 variates per vector - the same count, order and
    dtype as the dense models in :mod:`repro.noise.bitflip` - so packed
    and dense fault positions coincide for equal generator state.  Pad
    bits are zero by construction.
    """
    batch = shape[:-1]
    events = rng.random(batch + (int(dim),), dtype=np.float32) < rate
    pad = (-int(dim)) % 64
    if pad:
        events = np.concatenate(
            [events, np.zeros(batch + (pad,), dtype=bool)], axis=-1)
    mask = np.packbits(events, axis=-1, bitorder="little")
    if not mask.flags["C_CONTIGUOUS"]:
        mask = np.ascontiguousarray(mask)
    return mask.view(np.uint64)


def flip_packed_words(words, dim, rate, seed_or_rng=None):
    """Flip each stored bit independently with probability ``rate``.

    The packed-domain analogue of :func:`repro.noise.bitflip.flip_bipolar`
    (a flipped sign bit *is* a negated bipolar component).  Only the
    ``dim`` real bits of each vector are exposed; pad bits of the last
    word are never flipped, so results remain interchangeable with
    :func:`~repro.core.hypervector.pack_bits` output and popcounts stay
    truthful without re-masking.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    arr = _check_packed(words, dim)
    if rate == 0.0:
        return arr.copy()
    rng = as_rng(seed_or_rng)
    return arr ^ _event_mask(arr.shape, dim, rate, rng)


def stuck_at_packed(words, dim, rate, value=1, seed_or_rng=None):
    """Pin each stored bit to ``value`` with probability ``rate``.

    ``value`` follows the bipolar convention of
    :func:`repro.noise.bitflip.stuck_at`: ``+1`` is a stuck-at-1 cell
    (bit forced high), ``-1`` a stuck-at-0 cell.  A stuck cell only
    corrupts components that disagreed with it, so expected damage is
    half a flip's at equal rate.  Pad bits are never modified.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if value not in (-1, 1):
        raise ValueError("stuck value must be +1 or -1")
    arr = _check_packed(words, dim)
    if rate == 0.0:
        return arr.copy()
    rng = as_rng(seed_or_rng)
    mask = _event_mask(arr.shape, dim, rate, rng)
    if value == 1:
        return arr | mask
    return arr & ~mask


class PackedFaultInjector:
    """Stage callback flipping packed-word bits at a fixed rate.

    The packed counterpart of :class:`repro.noise.bitflip.
    HypervectorFaultInjector`: plug it into any pipeline stage that hands
    packed ``uint64`` buffers to its injector (the shared engine's packed
    assembly stage, cache corruption, model corruption).

    Parameters
    ----------
    rate:
        Per-bit fault probability.
    dim:
        Real component count of the packed vectors (pad bits beyond it
        are never faulted).
    stages:
        Which stages to corrupt (default: the memory-resident detection
        stages).
    model:
        ``"flip"`` (default) or ``"stuck"``; stuck-at polarity comes from
        ``stuck_value``.
    seed_or_rng:
        Fault randomness.
    """

    def __init__(self, rate, dim, stages=DETECTION_STAGES, model="flip",
                 stuck_value=1, seed_or_rng=None):
        if model not in ("flip", "stuck"):
            raise ValueError(f"unknown fault model {model!r}")
        self.rate = float(rate)
        self.dim = int(dim)
        self.stages = tuple(stages)
        self.model = model
        self.stuck_value = int(stuck_value)
        self._rng = as_rng(seed_or_rng)
        self.calls = 0

    def _corrupt(self, words):
        if self.model == "stuck":
            return stuck_at_packed(words, self.dim, self.rate,
                                   self.stuck_value, self._rng)
        return flip_packed_words(words, self.dim, self.rate, self._rng)

    def __call__(self, words, stage):
        if stage not in self.stages or self.rate == 0.0:
            return words
        self.calls += 1
        return self._corrupt(words)


class DetectionFaultInjector(PackedFaultInjector):
    """Dtype-dispatching injector for the mixed dense/packed detection path.

    The shared engine's extraction stages carry dense bipolar tensors for
    *both* backends (the stochastic fields pass is dense), while the
    packed backend's assembly stage hands over ``uint64`` cell words.
    This injector applies :func:`flip_packed_words` to packed buffers and
    :func:`repro.noise.bitflip.flip_bipolar` to everything else, so one
    fault model (one rate, one stream) sweeps either backend end to end.
    """

    def __call__(self, arr, stage):
        if stage not in self.stages or self.rate == 0.0:
            return arr
        self.calls += 1
        a = np.asarray(arr)
        if a.dtype == np.uint64:
            return self._corrupt(a)
        from ..noise.bitflip import flip_bipolar, stuck_at
        if self.model == "stuck":
            return stuck_at(a, self.rate, self.stuck_value, self._rng)
        return flip_bipolar(a, self.rate, self._rng)

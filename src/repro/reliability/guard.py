"""Self-repairing class model: replication, checksums, majority-vote repair.

The packed class model is the smallest and longest-lived hypervector
structure in the detection stack (a few KB held for the process
lifetime), which makes it both the cheapest thing to protect and the
worst thing to lose: a corrupted class row biases *every* window of every
scene scanned afterwards.  :class:`GuardedClassModel` protects it with
the classic TMR recipe, priced in
:func:`repro.hardware.opcount.guarded_infer_profile`:

1. **Replication** - ``R`` (odd) copies of the packed class matrix.
2. **Detection** - a per-class checksum (golden digest taken at build
   time) re-checked before inference, or the cheaper *similarity canary*
   (a fixed probe vector whose clean class distances are recorded; any
   drift marks the active replica corrupt).
3. **Repair** - bitwise majority vote across replicas
   (:func:`repro.core.packed.packed_majority` over the replica axis)
   rewrites every replica of a corrupted class; a vote that still fails
   its checksum (a majority of replicas corrupted in the same words) is
   *unrepairable*: the class is flagged in :attr:`degraded_classes`, the
   voted row is adopted as the new reference, and inference continues -
   graceful degradation instead of serving silently wrong similarities.

Inference reads replica 0, so the steady-state overhead is the scrub
pass, not the vote (which only runs on detected corruption).
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng, packed_tail_mask, packed_words
from ..core.packed import PackedClassModel, packed_majority, pairwise_hamming
from .integrity import digest_array

__all__ = ["GuardedClassModel"]

CHECKS = ("checksum", "canary")


class GuardedClassModel:
    """Replicated, checksummed, self-repairing packed class model.

    Drop-in for :class:`repro.core.packed.PackedClassModel` on the
    inference side (``distances`` / ``similarities`` / ``predict`` with
    identical clean semantics), with a scrub-and-repair pass in front.

    Parameters
    ----------
    model:
        A :class:`~repro.core.packed.PackedClassModel` or a
        ``(n_classes, D)`` bipolar matrix to build one from.
    replicas:
        Odd replica count ``R`` (default 3: classic TMR).  ``R = 1``
        degrades to detection-only (any corruption is unrepairable).
    check:
        ``"checksum"`` (default) verifies every replica row's digest on
        each scrub; ``"canary"`` first probes the active replica with a
        fixed random query and only falls back to the full checksum scrub
        when the canary distances drift (cheaper, but blind to corruption
        that leaves the canary distances unchanged on non-active
        replicas).
    scrub_every:
        Scrub once per this many inference calls (1 = every call).
    seed_or_rng:
        Randomness for the canary probe vector.
    """

    def __init__(self, model, replicas=3, check="checksum", scrub_every=1,
                 seed_or_rng=None):
        base = model if isinstance(model, PackedClassModel) \
            else PackedClassModel(model)
        r = int(replicas)
        if r < 1 or r % 2 == 0:
            raise ValueError(f"replicas must be odd and >= 1, got {replicas}")
        if check not in CHECKS:
            raise ValueError(f"unknown check {check!r}; expected one of {CHECKS}")
        self.dim = base.dim
        self.n_classes = base.n_classes
        self.n_replicas = r
        self.check = check
        self.scrub_every = max(int(scrub_every), 1)
        #: ``(R, n_classes, W)`` stored replica words.  Tests and fault
        #: campaigns corrupt this array directly (or via
        #: :meth:`corrupt_replica`).
        self.replicas = np.repeat(base.packed[None, ...], r, axis=0).copy()
        self._golden = [digest_array(base.packed[c])
                        for c in range(self.n_classes)]
        rng = as_rng(seed_or_rng)
        canary_bits = rng.integers(0, 2**64, size=packed_words(self.dim),
                                   dtype=np.uint64) & packed_tail_mask(self.dim)
        self._canary = canary_bits
        self._canary_golden = pairwise_hamming(canary_bits, base.packed,
                                               dim=self.dim)[0]
        #: Classes whose corruption could not be repaired (majority of
        #: replicas agreed on wrong words); inference continues on the
        #: voted rows.
        self.degraded_classes = set()
        self._calls = 0
        self.scrubs = 0
        self.checks = 0
        self.detected = 0
        self.repaired = 0
        self.unrepairable = 0
        self.canary_checks = 0
        self.canary_misses = 0

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    @property
    def nbytes(self):
        """Protected model footprint (R replicas of the packed matrix)."""
        return int(self.replicas.nbytes)

    def canary_ok(self):
        """True if the active replica still answers the canary cleanly."""
        self.canary_checks += 1
        dists = pairwise_hamming(self._canary, self.replicas[0],
                                 dim=self.dim)[0]
        ok = bool(np.array_equal(dists, self._canary_golden))
        if not ok:
            self.canary_misses += 1
        return ok

    def _corrupt_rows(self):
        """``(replica, class)`` index pairs whose stored digest mismatches."""
        bad = []
        for rep in range(self.n_replicas):
            for c in range(self.n_classes):
                self.checks += 1
                if digest_array(self.replicas[rep, c]) != self._golden[c]:
                    bad.append((rep, c))
        return bad

    def scrub(self, force=False):
        """Verify the stored replicas; repair (or flag) corrupted classes.

        Returns the number of corrupted ``(replica, class)`` rows found.
        With ``check="canary"`` the full digest pass only runs when the
        canary drifts (or ``force=True``).
        """
        if self.check == "canary" and not force and self.canary_ok():
            return 0
        self.scrubs += 1
        bad = self._corrupt_rows()
        if not bad:
            return 0
        self.detected += len(bad)
        for c in sorted({c for _, c in bad}):
            voted = packed_majority(self.replicas[:, c, :], self.dim)
            if digest_array(voted) == self._golden[c]:
                self.repaired += 1
            else:
                # majority corrupted: degrade gracefully on the voted row
                self.unrepairable += 1
                self.degraded_classes.add(c)
                self._golden[c] = digest_array(voted)
                self._canary_golden[c] = pairwise_hamming(
                    self._canary, voted[None], dim=self.dim)[0, 0]
            self.replicas[:, c, :] = voted
        return len(bad)

    def stats(self):
        """Counters of the protection machinery (for reports and tests)."""
        return {
            "replicas": self.n_replicas,
            "check": self.check,
            "scrubs": self.scrubs,
            "checks": self.checks,
            "detected": self.detected,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "canary_checks": self.canary_checks,
            "canary_misses": self.canary_misses,
            "degraded_classes": sorted(self.degraded_classes),
        }

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------
    def corrupt_replica(self, index, word_rate, seed_or_rng=None):
        """Overwrite a fraction of one replica's words with random garbage.

        The word-granular corruption model of a failed memory burst: each
        word of replica ``index`` is independently replaced with random
        bits with probability ``word_rate`` (pad bits stay clear so rows
        remain comparable).  Returns the number of words corrupted.
        """
        if not 0.0 <= word_rate <= 1.0:
            raise ValueError(f"word_rate must be in [0, 1], got {word_rate}")
        rng = as_rng(seed_or_rng)
        rep = self.replicas[index]
        hit = rng.random(rep.shape) < word_rate
        garbage = rng.integers(0, 2**64, size=rep.shape, dtype=np.uint64)
        garbage &= packed_tail_mask(self.dim)
        rep[hit] = garbage[hit]
        return int(hit.sum())

    # ------------------------------------------------------------------
    # inference (PackedClassModel-compatible)
    # ------------------------------------------------------------------
    def _active(self):
        self._calls += 1
        if self._calls % self.scrub_every == 0:
            self.scrub()
        return self.replicas[0]

    def distances(self, packed_queries):
        """Hamming distance of each packed query to each class: ``(n, k)``."""
        return pairwise_hamming(packed_queries, self._active(), dim=self.dim)

    def similarities(self, packed_queries):
        """Normalized similarities ``1 - 2 * hamming / D`` in ``[-1, 1]``."""
        return 1.0 - 2.0 * self.distances(packed_queries) / float(self.dim)

    def predict(self, packed_queries):
        """Label of the Hamming-nearest class per packed query."""
        return self.distances(packed_queries).argmin(axis=1)

"""Self-repairing class model: replication, checksums, majority-vote repair.

The packed class model is the smallest and longest-lived hypervector
structure in the detection stack (a few KB held for the process
lifetime), which makes it both the cheapest thing to protect and the
worst thing to lose: a corrupted class row biases *every* window of every
scene scanned afterwards.  :class:`GuardedClassModel` protects it with
the classic TMR recipe, priced in
:func:`repro.hardware.opcount.guarded_infer_profile`:

1. **Replication** - ``R`` (odd) copies of the packed class matrix.
2. **Detection** - a per-class checksum (golden digest taken at build
   time) re-checked before inference, or the cheaper *similarity canary*
   (a fixed probe vector whose clean class distances are recorded; any
   drift marks the active replica corrupt).
3. **Repair** - bitwise majority vote across replicas
   (:func:`repro.core.packed.packed_majority` over the replica axis)
   rewrites every replica of a corrupted class; a vote that still fails
   its checksum (a majority of replicas corrupted in the same words) is
   *unrepairable*: the class is flagged in :attr:`degraded_classes`, the
   voted row is adopted as the new reference, and inference continues -
   graceful degradation instead of serving silently wrong similarities.

Inference reads replica 0, so the steady-state overhead is the scrub
pass, not the vote (which only runs on detected corruption).
"""

from __future__ import annotations

import threading

import numpy as np

from ..core.hypervector import as_rng, packed_tail_mask, packed_words
from ..core.packed import (
    PackedClassModel,
    block_dim,
    packed_majority,
    pairwise_hamming,
)
from .ecc import ECC_CORRECTED, ECC_DETECTED, ecc_correct, ecc_encode
from .integrity import digest_array

__all__ = ["GuardedClassModel", "AdaptiveGuardedModel"]

CHECKS = ("checksum", "canary", "ecc")

#: Repair-ladder rungs of the ``check="ecc"`` mode, cheapest first.
REPAIR_RUNGS = ("ecc", "remat", "vote", "degrade")


class GuardedClassModel:
    """Replicated, checksummed, self-repairing packed class model.

    Drop-in for :class:`repro.core.packed.PackedClassModel` on the
    inference side (``distances`` / ``similarities`` / ``predict`` with
    identical clean semantics), with a scrub-and-repair pass in front.

    Parameters
    ----------
    model:
        A :class:`~repro.core.packed.PackedClassModel` or a
        ``(n_classes, D)`` bipolar matrix to build one from.
    replicas:
        Odd replica count ``R`` (default 3: classic TMR).  ``R = 1``
        degrades to detection-only (any corruption is unrepairable).
    check:
        ``"checksum"`` (default) verifies every replica row's digest on
        each scrub; ``"canary"`` first probes the active replica with a
        fixed random query and only falls back to the full checksum scrub
        when the canary distances drift (cheaper, but blind to corruption
        that leaves the canary distances unchanged on non-active
        replicas).
    scrub_every:
        Scrub once per this many inference calls (1 = every call).
    seed_or_rng:
        Randomness for the canary probe vector.
    """

    def __init__(self, model, replicas=3, check="checksum", scrub_every=1,
                 seed_or_rng=None):
        base = model if isinstance(model, PackedClassModel) \
            else PackedClassModel(model)
        r = int(replicas)
        if r < 1 or r % 2 == 0:
            raise ValueError(f"replicas must be odd and >= 1, got {replicas}")
        if check not in CHECKS:
            raise ValueError(f"unknown check {check!r}; expected one of {CHECKS}")
        self.dim = base.dim
        self.n_classes = base.n_classes
        self.n_replicas = r
        self.check = check
        self.scrub_every = max(int(scrub_every), 1)
        #: ``(R, n_classes, W)`` stored replica words.  Tests and fault
        #: campaigns corrupt this array directly (or via
        #: :meth:`corrupt_replica`).
        self.replicas = np.repeat(base.packed[None, ...], r, axis=0).copy()
        #: SEC-DED parity sidecar, ``(R, n_classes, W)`` uint8 - only under
        #: ``check="ecc"``, where it replaces replication as the first
        #: repair rung (1/8 overhead instead of Rx).
        self._parity = ecc_encode(self.replicas) if check == "ecc" else None
        self._golden = [digest_array(base.packed[c])
                        for c in range(self.n_classes)]
        rng = as_rng(seed_or_rng)
        canary_bits = rng.integers(0, 2**64, size=packed_words(self.dim),
                                   dtype=np.uint64) & packed_tail_mask(self.dim)
        self._canary = canary_bits
        self._canary_golden = pairwise_hamming(canary_bits, base.packed,
                                               dim=self.dim)[0]
        #: Classes whose corruption could not be repaired (majority of
        #: replicas agreed on wrong words); inference continues on the
        #: voted rows.
        self.degraded_classes = set()
        self._calls = 0
        self.scrubs = 0
        self.checks = 0
        self.detected = 0
        self.repaired = 0
        self.unrepairable = 0
        self.canary_checks = 0
        self.canary_misses = 0
        self.ecc_corrected_words = 0
        self.ecc_detected_words = 0
        #: Repairs per ladder rung (``ecc``/``remat`` count rows,
        #: ``vote``/``degrade`` count classes); populated in ecc mode.
        self.rungs = {rung: 0 for rung in REPAIR_RUNGS}

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    @property
    def nbytes(self):
        """Protected model footprint: replicas plus the ECC sidecar (if any)."""
        total = int(self.replicas.nbytes)
        if self._parity is not None:
            total += int(self._parity.nbytes)
        return total

    def canary_ok(self):
        """True if the active replica still answers the canary cleanly."""
        self.canary_checks += 1
        dists = pairwise_hamming(self._canary, self.replicas[0],
                                 dim=self.dim)[0]
        ok = bool(np.array_equal(dists, self._canary_golden))
        if not ok:
            self.canary_misses += 1
        return ok

    def _corrupt_rows(self):
        """``(replica, class)`` index pairs whose stored digest mismatches."""
        bad = []
        for rep in range(self.n_replicas):
            for c in range(self.n_classes):
                self.checks += 1
                if digest_array(self.replicas[rep, c]) != self._golden[c]:
                    bad.append((rep, c))
        return bad

    def scrub(self, force=False):
        """Verify the stored replicas; repair (or flag) corrupted classes.

        Returns the number of corrupted ``(replica, class)`` rows found.
        With ``check="canary"`` the full digest pass only runs when the
        canary drifts (or ``force=True``).
        """
        if self.check == "canary" and not force and self.canary_ok():
            return 0
        self.scrubs += 1
        bad = self._corrupt_rows()
        if not bad:
            return 0
        self.detected += len(bad)
        if self.check == "ecc":
            return self._repair_ladder(bad)
        for c in sorted({c for _, c in bad}):
            voted = packed_majority(self.replicas[:, c, :], self.dim)
            if digest_array(voted) == self._golden[c]:
                self.repaired += 1
            else:
                # majority corrupted: degrade gracefully on the voted row
                self.unrepairable += 1
                self.degraded_classes.add(c)
                self._golden[c] = digest_array(voted)
                self._canary_golden[c] = pairwise_hamming(
                    self._canary, voted[None], dim=self.dim)[0, 0]
            self.replicas[:, c, :] = voted
        return len(bad)

    # ------------------------------------------------------------------
    # ecc repair ladder
    # ------------------------------------------------------------------
    def _refresh_parity(self, rep, class_id):
        if self._parity is not None:
            self._parity[rep, class_id] = ecc_encode(
                self.replicas[rep, class_id])

    def _rematerialize_row(self, rep, class_id):
        """Regenerate one replica row from redundant state, or ``None``.

        The base guard has no recomputable source for a learned row;
        :class:`AdaptiveGuardedModel` overrides this with its per-replica
        bit-sliced counters (:meth:`~repro.learning.online.OnlineCounters.
        materialize`), which encode every committed row exactly.
        """
        return None

    def _repair_ladder(self, bad_rows):
        """``check="ecc"`` repair: correct, rematerialize, vote, degrade.

        Per corrupted row, cheapest rung first: (1) SEC-DED correction of
        single-bit errors through the parity sidecar; (2) exact row
        rematerialization from redundant counters (adaptive models); per
        corrupted *class* if rows remain: (3) bitwise majority vote across
        replicas; (4) graceful degradation - the best-effort row becomes
        the new reference and the class is flagged.  Every rung's outcome
        is digest-verified before it counts as a repair, so nothing wrong
        is ever silently re-adopted.
        """
        by_class = {}
        for rep, c in bad_rows:
            by_class.setdefault(c, []).append(rep)
        for c in sorted(by_class):
            still_bad = []
            for rep in by_class[c]:
                words, parity, status = ecc_correct(self.replicas[rep, c],
                                                    self._parity[rep, c])
                self.replicas[rep, c] = words
                self._parity[rep, c] = parity
                self.ecc_corrected_words += int(
                    (status == ECC_CORRECTED).sum())
                self.ecc_detected_words += int((status == ECC_DETECTED).sum())
                if digest_array(self.replicas[rep, c]) == self._golden[c]:
                    self.rungs["ecc"] += 1
                else:
                    still_bad.append(rep)
            unrepaired = []
            for rep in still_bad:
                row = self._rematerialize_row(rep, c)
                if row is not None and digest_array(row) == self._golden[c]:
                    self.replicas[rep, c] = row
                    self._refresh_parity(rep, c)
                    self.rungs["remat"] += 1
                else:
                    unrepaired.append(rep)
            if unrepaired:
                voted = packed_majority(self.replicas[:, c, :], self.dim) \
                    if self.n_replicas > 1 else self.replicas[0, c]
                if digest_array(voted) == self._golden[c]:
                    for rep in unrepaired:
                        self.replicas[rep, c] = voted
                        self._refresh_parity(rep, c)
                    self.rungs["vote"] += 1
                else:
                    # end of the ladder: adopt the best-effort row, flag
                    # the class - degraded, never silently wrong
                    self.unrepairable += 1
                    self.degraded_classes.add(c)
                    self._golden[c] = digest_array(voted)
                    self._canary_golden[c] = pairwise_hamming(
                        self._canary, voted[None], dim=self.dim)[0, 0]
                    self.replicas[:, c, :] = voted
                    for rep in range(self.n_replicas):
                        self._refresh_parity(rep, c)
                    self.rungs["degrade"] += 1
                    continue
            self.repaired += 1
        return len(bad_rows)

    def stats(self):
        """Counters of the protection machinery (for reports and tests)."""
        return {
            "replicas": self.n_replicas,
            "check": self.check,
            "scrubs": self.scrubs,
            "checks": self.checks,
            "detected": self.detected,
            "repaired": self.repaired,
            "unrepairable": self.unrepairable,
            "canary_checks": self.canary_checks,
            "canary_misses": self.canary_misses,
            "ecc_corrected_words": self.ecc_corrected_words,
            "ecc_detected_words": self.ecc_detected_words,
            "rungs": dict(self.rungs),
            "degraded_classes": sorted(self.degraded_classes),
        }

    # ------------------------------------------------------------------
    # fault surface
    # ------------------------------------------------------------------
    def corrupt_replica(self, index, word_rate, seed_or_rng=None):
        """Overwrite a fraction of one replica's words with random garbage.

        The word-granular corruption model of a failed memory burst: each
        word of replica ``index`` is independently replaced with random
        bits with probability ``word_rate`` (pad bits stay clear so rows
        remain comparable).  Returns the number of words corrupted.
        """
        if not 0.0 <= word_rate <= 1.0:
            raise ValueError(f"word_rate must be in [0, 1], got {word_rate}")
        rng = as_rng(seed_or_rng)
        rep = self.replicas[index]
        hit = rng.random(rep.shape) < word_rate
        garbage = rng.integers(0, 2**64, size=rep.shape, dtype=np.uint64)
        garbage &= packed_tail_mask(self.dim)
        rep[hit] = garbage[hit]
        return int(hit.sum())

    # ------------------------------------------------------------------
    # inference (PackedClassModel-compatible)
    # ------------------------------------------------------------------
    def _active(self):
        self._calls += 1
        if self._calls % self.scrub_every == 0:
            self.scrub()
        return self.replicas[0]

    @property
    def n_words(self):
        """Packed words per class row (``ceil(dim / 64)``).

        Exposing the packed geometry lets guarded models flow through
        every ``model=`` substitution surface that truncates or cascades
        on word counts (the fleet batcher's grouping, the cascade
        scanner's stage schedule).
        """
        return packed_words(self.dim)

    def distances(self, packed_queries):
        """Hamming distance of each packed query to each class: ``(n, k)``."""
        return pairwise_hamming(packed_queries, self._active(), dim=self.dim)

    def distance_block(self, packed_queries, word_start, word_stop):
        """Partial Hamming distances over words ``[word_start, word_stop)``.

        The cascade scanner's incremental-rescoring kernel, served from
        the scrub-checked active replica - so cascade-mode fleets scan
        against the *guarded* model instead of the raw packed rows.
        Semantics match :meth:`repro.core.packed.PackedClassModel.
        distance_block` exactly (block queries or full-width queries,
        pads masked on the final word).
        """
        w0, w1 = int(word_start), int(word_stop)
        bdim = block_dim(self.dim, w0, w1)
        q = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
        if q.shape[-1] != w1 - w0:
            q = q[:, w0:w1]
        return pairwise_hamming(q, self._active()[:, w0:w1], dim=bdim)

    def similarities(self, packed_queries):
        """Normalized similarities ``1 - 2 * hamming / D`` in ``[-1, 1]``."""
        return 1.0 - 2.0 * self.distances(packed_queries) / float(self.dim)

    def predict(self, packed_queries):
        """Label of the Hamming-nearest class per packed query."""
        return self.distances(packed_queries).argmin(axis=1)


class AdaptiveGuardedModel(GuardedClassModel):
    """A guarded class model that accepts vetted *online updates*.

    The continual-learning half of the reliability story: tracker-
    confirmed detections become weak labels
    (:class:`~repro.learning.online.OnlineUpdate`) that refine the class
    rows while serving - but an update is itself a fault surface (label
    poisoning, corrupted delivery), so every proposal runs the full TMR
    treatment before it can touch inference:

    1. **Propose to all replicas.**  Each of the ``R`` replicas keeps its
       own :class:`~repro.learning.online.OnlineCounters` and applies the
       update payload *it* received, then rematerializes its row.
    2. **Outvote divergence.**  A replica whose rematerialized row
       disagrees with the bitwise majority saw a different (corrupted /
       poisoned) payload: it is outvoted - its counters are overwritten
       from a majority replica - and counted in :attr:`outvoted`.
    3. **Vet the voted row.**  The surviving candidate must pass the
       *similarity canary* (the fixed probe's distance may move at most
       ``max_step_frac * dim`` bits per proposal - gradual drift passes,
       a bulk rewrite cannot) and the *held-out probe check* (perturbed
       copies of every class row, re-anchored after each accepted update,
       must still classify to their classes).
    4. **Commit or reject.**  A committed update rewrites every replica's
       row and refreshes the golden digests + canary baselines (the model
       legitimately changed; the scrubber must not "repair" it back).  A
       rejected proposal leaves the served rows untouched but the
       counters *dirty*: the caller must restore the pre-proposal
       snapshot - the serving adapter does exactly that through
       :func:`repro.runtime.checkpoint.model_state` /
       :func:`~repro.runtime.checkpoint.load_model_state`, which is the
       same machinery that persists the model across worker restarts.

    Inference (``distances`` / ``similarities`` / ``predict``) snapshots
    the active replica under the update lock, so fleet streams can scan
    while another stream's proposal is mid-flight; proposals themselves
    are serialized on :attr:`_lock`.
    """

    def __init__(self, model, replicas=3, check="checksum", scrub_every=1,
                 seed_or_rng=None, prior=32, max_planes=16,
                 max_step_frac=0.05, probe_flip=0.1, probes_per_class=4,
                 min_probe_accuracy=1.0):
        from ..learning.online import OnlineCounters
        base = model if isinstance(model, PackedClassModel) \
            else PackedClassModel(model)
        super().__init__(base, replicas=replicas, check=check,
                         scrub_every=scrub_every, seed_or_rng=seed_or_rng)
        self._lock = threading.RLock()
        self.counters = [OnlineCounters(base, prior=prior,
                                        max_planes=max_planes)
                         for _ in range(self.n_replicas)]
        self.prior = int(prior)
        self.max_step_bits = max(1, int(round(float(max_step_frac)
                                              * self.dim)))
        self.probe_flip = float(probe_flip)
        self.probes_per_class = int(probes_per_class)
        self.min_probe_accuracy = float(min_probe_accuracy)
        self._probe_rng = as_rng(seed_or_rng)
        self.applied = 0
        self.rejected = 0
        self.outvoted = 0
        self._probes, self._probe_labels = self._make_probes()

    # ------------------------------------------------------------------
    # held-out probes
    # ------------------------------------------------------------------
    def _probe_rows(self, class_id):
        from .faults import flip_packed_words
        row = self.replicas[0, class_id]
        return np.stack([
            flip_packed_words(row, self.dim, self.probe_flip,
                              self._probe_rng)
            for _ in range(self.probes_per_class)])

    def _make_probes(self):
        probes = np.concatenate([self._probe_rows(c)
                                 for c in range(self.n_classes)])
        labels = np.repeat(np.arange(self.n_classes), self.probes_per_class)
        return probes, labels

    def _refresh_probes(self, class_id):
        """Re-anchor one class's probes on its (just committed) row."""
        lo = class_id * self.probes_per_class
        self._probes[lo:lo + self.probes_per_class] = \
            self._probe_rows(class_id)

    def _probe_accuracy(self, candidate_rows):
        preds = pairwise_hamming(self._probes, candidate_rows,
                                 dim=self.dim).argmin(axis=1)
        return float((preds == self._probe_labels).mean())

    # ------------------------------------------------------------------
    # the guarded update
    # ------------------------------------------------------------------
    def propose(self, update):
        """Run one :class:`~repro.learning.online.OnlineUpdate` through
        the propose / outvote / vet / commit pipeline.

        Returns a verdict dict: ``applied`` (bool), ``reason`` (None or
        ``"step_bound"`` / ``"probe_check"``), ``step_bits``,
        ``canary_step``, ``probe_accuracy``, ``diverged`` (outvoted
        replica indices).  On ``applied=False`` the stored rows and
        goldens are untouched but the replica counters carry the rejected
        votes - restore a pre-proposal
        :func:`~repro.runtime.checkpoint.model_state` snapshot to roll
        them back (see the class docstring).
        """
        with self._lock:
            c = int(update.label)
            if not 0 <= c < self.n_classes:
                raise ValueError(f"update label {update.label} out of range")
            old_row = self.replicas[0, c].copy()
            rows = []
            for r in range(self.n_replicas):
                self.counters[r].add(c, update.payload_for(r))
                rows.append(self.counters[r].materialize()[c])
            rows = np.stack(rows)
            voted = packed_majority(rows, self.dim)
            diverged = [r for r in range(self.n_replicas)
                        if not np.array_equal(rows[r], voted)]
            if diverged:
                self.outvoted += len(diverged)
                healthy = next(r for r in range(self.n_replicas)
                               if r not in diverged)
                for r in diverged:
                    self.counters[r].load_state(
                        self.counters[healthy].state())
            step_bits = int(pairwise_hamming(voted, old_row[None],
                                             dim=self.dim)[0, 0])
            canary_new = int(pairwise_hamming(self._canary, voted[None],
                                              dim=self.dim)[0, 0])
            canary_step = abs(canary_new - int(self._canary_golden[c]))
            candidate = self.replicas[0].copy()
            candidate[c] = voted
            probe_accuracy = self._probe_accuracy(candidate)
            reason = None
            if step_bits > self.max_step_bits or \
                    canary_step > self.max_step_bits:
                reason = "step_bound"
            elif probe_accuracy < self.min_probe_accuracy:
                reason = "probe_check"
            verdict = {
                "applied": reason is None,
                "reason": reason,
                "label": c,
                "votes": len(update),
                "step_bits": step_bits,
                "canary_step": canary_step,
                "probe_accuracy": probe_accuracy,
                "diverged": diverged,
            }
            if reason is not None:
                self.rejected += 1
                return verdict
            self.replicas[:, c, :] = voted
            if self._parity is not None:
                self._parity[:, c, :] = ecc_encode(voted)
            self._golden[c] = digest_array(voted)
            self._canary_golden[c] = canary_new
            self._refresh_probes(c)
            self.applied += 1
            return verdict

    def _rematerialize_row(self, rep, class_id):
        """Exact row regeneration from replica ``rep``'s vertical counters."""
        return self.counters[rep].materialize()[class_id]

    # ------------------------------------------------------------------
    # checkpoint surface (see repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def state_dict(self):
        """Bitwise snapshot of everything a proposal can mutate."""
        with self._lock:
            return {
                "replicas": self.replicas.copy(),
                "golden": list(self._golden),
                "canary_golden": self._canary_golden.copy(),
                "counters": [cnt.state() for cnt in self.counters],
                "probes": self._probes.copy(),
                "probe_labels": self._probe_labels.copy(),
                "applied": self.applied,
                "rejected": self.rejected,
                "outvoted": self.outvoted,
                "degraded_classes": set(self.degraded_classes),
            }

    def load_state_dict(self, state):
        """Restore a :meth:`state_dict` snapshot bitwise; returns self."""
        with self._lock:
            replicas = np.asarray(state["replicas"], dtype=np.uint64)
            if replicas.shape != self.replicas.shape:
                raise ValueError(
                    f"state replicas {replicas.shape} do not match "
                    f"{self.replicas.shape}")
            self.replicas[...] = replicas
            if self._parity is not None:
                self._parity = ecc_encode(self.replicas)
            self._golden = list(state["golden"])
            self._canary_golden = np.asarray(state["canary_golden"]).copy()
            for cnt, snap in zip(self.counters, state["counters"]):
                cnt.load_state(snap)
            self._probes = np.asarray(state["probes"],
                                      dtype=np.uint64).copy()
            self._probe_labels = np.asarray(state["probe_labels"]).copy()
            self.applied = int(state["applied"])
            self.rejected = int(state["rejected"])
            self.outvoted = int(state["outvoted"])
            self.degraded_classes = set(state["degraded_classes"])
            return self

    # ------------------------------------------------------------------
    # locked inference / scrub (fleet streams read while updates land)
    # ------------------------------------------------------------------
    def scrub(self, force=False):
        with self._lock:
            return super().scrub(force)

    def distances(self, packed_queries):
        with self._lock:
            active = self._active().copy()
        return pairwise_hamming(packed_queries, active, dim=self.dim)

    def distance_block(self, packed_queries, word_start, word_stop):
        with self._lock:
            return super().distance_block(packed_queries, word_start,
                                          word_stop)

    def stats(self):
        """Protection counters plus the adaptation ledger."""
        base = super().stats()
        with self._lock:
            base.update({
                "updates_applied": self.applied,
                "updates_rejected": self.rejected,
                "replicas_outvoted": self.outvoted,
                "counter_decays": sum(cnt.decays for cnt in self.counters),
                "counter_nbytes": sum(cnt.nbytes for cnt in self.counters),
                "prior": self.prior,
                "max_step_bits": self.max_step_bits,
            })
        return base

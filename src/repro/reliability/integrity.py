"""Content digests for fault detection (cache scrubbing, model checksums).

Detection is the cheap half of active protection: a short digest of the
stored words, computed at write time and re-checked on read, turns silent
data corruption into an explicit *mismatch* event that the caller can
repair (majority vote across replicas) or recover from (recompute the
cached value).  On hardware this is a CRC/parity tree streamed alongside
the words; here we use BLAKE2s over the raw bytes, which is collision-
safe at any corruption rate and cheap enough for cache-hit paths.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["digest_array", "digest_arrays"]

#: Digest width in bytes.  8 bytes keeps per-row checksum storage
#: negligible next to the packed rows they protect.
DIGEST_SIZE = 8


def digest_array(arr):
    """Short content digest of one array's raw bytes."""
    data = np.ascontiguousarray(arr)
    return hashlib.blake2s(data.tobytes(), digest_size=DIGEST_SIZE).digest()


def digest_arrays(*arrays):
    """One digest over several arrays (shape-delimited, order-sensitive)."""
    h = hashlib.blake2s(digest_size=DIGEST_SIZE)
    for arr in arrays:
        data = np.ascontiguousarray(arr)
        h.update(repr((data.shape, data.dtype.str)).encode())
        h.update(data.tobytes())
    return h.digest()

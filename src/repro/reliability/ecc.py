"""Vectorized SEC-DED (Hamming 72,64) codec over ``uint64`` word blocks.

The guarded class model of :mod:`repro.reliability.guard` buys repair with
3x replication.  This module prices the same guarantee at 1/8 overhead:
every 64-bit data word gets an 8-bit parity sidecar - seven Hamming check
bits plus one overall-parity bit - giving the classic SEC-DED contract:

* **every single-bit error** (data word, check bits or the overall parity
  bit) is located and corrected in place;
* **every double-bit error** within a 72-bit codeword is detected and
  flagged uncorrectable - it is never silently mis-corrected.

Layout.  Codeword positions ``1..71`` follow the systematic Hamming
construction: power-of-two positions ``1,2,4,...,64`` hold check bits
``c0..c6``, the remaining 64 positions hold the data bits of one ``uint64``
word in increasing-position order.  The overall parity bit (even parity
over data + check bits) lives in bit 7 of the sidecar byte, turning the
SEC Hamming code into SEC-DED.

Everything is vectorized over arbitrary-shape word arrays: check bits are
computed as seven masked popcounts per word (:func:`numpy.bitwise_count`),
syndromes decode through a 128-entry lookup table, and corrections are
applied with one scatter per pass.  The byte-view helpers at the bottom
extend the codec to *any* contiguous ndarray payload (dense ``float64``
magnitudes, ``uint8`` histograms, packed ``uint64`` grids alike) by viewing
its leading 8-byte-aligned bytes as data words - which is what lets the
scene-cache scrubber repair heterogeneous buffers with one code path.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ECC_CLEAN",
    "ECC_CORRECTED",
    "ECC_DETECTED",
    "PARITY_BYTES_PER_WORD",
    "ecc_encode",
    "ecc_correct",
    "ecc_encode_array",
    "ecc_correct_array",
    "ecc_overhead_bytes",
]

#: Per-word status codes returned by :func:`ecc_correct`.
ECC_CLEAN = 0        #: no error in the codeword
ECC_CORRECTED = 1    #: single-bit error located and corrected
ECC_DETECTED = 2     #: multi-bit error detected, uncorrectable

#: Sidecar overhead: one parity byte per protected 64-bit word (12.5 %).
PARITY_BYTES_PER_WORD = 1

_U64_ONE = np.uint64(1)


def _build_tables():
    """Hamming position maps: data-bit masks per check bit + syndrome LUT."""
    data_positions = [p for p in range(1, 72) if p & (p - 1)]
    assert len(data_positions) == 64
    masks = np.zeros(7, dtype=np.uint64)
    for j, pos in enumerate(data_positions):
        for k in range(7):
            if (pos >> k) & 1:
                masks[k] |= _U64_ONE << np.uint64(j)
    # syndrome -> data bit index; -1 for check-bit / zero positions
    # (no data correction needed), -2 for impossible syndromes (multi-bit).
    lut = np.full(128, -2, dtype=np.int16)
    lut[0] = -1
    for k in range(7):
        lut[1 << k] = -1
    for j, pos in enumerate(data_positions):
        lut[pos] = j
    return masks, lut


_CHECK_MASKS, _SYN_TO_DATA = _build_tables()


def _check_bits(words):
    """The seven Hamming check bits of each word, packed into a uint8."""
    out = np.zeros(words.shape, dtype=np.uint8)
    for k in range(7):
        bit = np.bitwise_count(words & _CHECK_MASKS[k]).astype(np.uint8)
        out |= (bit & np.uint8(1)) << np.uint8(k)
    return out


def ecc_encode(words):
    """Parity sidecar (uint8, same shape) for an array of ``uint64`` words."""
    words = np.asarray(words)
    if words.dtype != np.uint64:
        raise ValueError(f"expected uint64 words, got {words.dtype}")
    parity = _check_bits(words)
    total = (np.bitwise_count(words).astype(np.uint8)
             + np.bitwise_count(parity)) & np.uint8(1)
    return parity | (total << np.uint8(7))


def ecc_correct(words, parity):
    """Correct single-bit and flag multi-bit errors, per codeword.

    Returns ``(words, parity, status)`` - corrected copies of the inputs
    plus a uint8 status array (:data:`ECC_CLEAN` / :data:`ECC_CORRECTED` /
    :data:`ECC_DETECTED`).  Corrections cover all 72 codeword bits: data
    words, the seven Hamming check bits and the overall parity bit.
    """
    words = np.array(words, dtype=np.uint64, copy=True)
    parity = np.array(parity, dtype=np.uint8, copy=True)
    if parity.shape != words.shape:
        raise ValueError("parity shape must match words shape")
    stored_checks = parity & np.uint8(0x7F)
    syndrome = _check_bits(words) ^ stored_checks
    overall = (np.bitwise_count(words).astype(np.uint8)
               + np.bitwise_count(parity)) & np.uint8(1)
    mismatch = overall.astype(bool)
    status = np.zeros(words.shape, dtype=np.uint8)

    has_syndrome = syndrome != 0
    target = _SYN_TO_DATA[syndrome]

    # single-bit error in a data position: flip it back
    data_err = has_syndrome & mismatch & (target >= 0)
    if data_err.any():
        words[data_err] ^= _U64_ONE << target[data_err].astype(np.uint64)
        status[data_err] = ECC_CORRECTED
    # single-bit error in a Hamming check bit: repair the sidecar
    check_err = has_syndrome & mismatch & (target == -1)
    if check_err.any():
        parity[check_err] ^= syndrome[check_err]
        status[check_err] = ECC_CORRECTED
    # the overall parity bit itself flipped: data and checks are fine
    overall_err = ~has_syndrome & mismatch
    if overall_err.any():
        parity[overall_err] ^= np.uint8(0x80)
        status[overall_err] = ECC_CORRECTED
    # nonzero syndrome with even overall parity (or an impossible
    # syndrome): at least two bits flipped - detected, not correctable
    double = (has_syndrome & ~mismatch) | (mismatch & (target == -2))
    status[double] = ECC_DETECTED
    return words, parity, status


def ecc_overhead_bytes(n_words):
    """Sidecar bytes needed to protect ``n_words`` 64-bit words."""
    return int(n_words) * PARITY_BYTES_PER_WORD


# ----------------------------------------------------------------------
# byte-view helpers: protect arbitrary ndarray payloads
# ----------------------------------------------------------------------
def _word_view(arr):
    """In-place uint64 view of the leading 8-byte-aligned bytes of ``arr``.

    Trailing ``nbytes % 8`` bytes are outside the protected region (the
    callers' content digests still detect corruption there).  Requires a
    C-contiguous array; returns an empty view for sub-word payloads.
    """
    if not arr.flags.c_contiguous:
        raise ValueError("ECC byte view requires a C-contiguous array")
    n8 = arr.nbytes - arr.nbytes % 8
    return arr.reshape(-1).view(np.uint8)[:n8].view(np.uint64)


def ecc_encode_array(arr):
    """Parity sidecar for any contiguous ndarray, via the uint64 byte view."""
    return ecc_encode(_word_view(np.asarray(arr)))


def ecc_correct_array(arr, parity):
    """Correct ``arr`` **in place** through its byte view.

    Returns ``(corrected_words, detected_words)`` - counts of repaired and
    uncorrectable codewords.  The sidecar ``parity`` is also repaired in
    place when the error was in the sidecar itself.
    """
    view = _word_view(np.asarray(arr))
    words, fixed_parity, status = ecc_correct(view, parity)
    view[:] = words
    parity[:] = fixed_parity
    return (int((status == ECC_CORRECTED).sum()),
            int((status == ECC_DETECTED).sum()))

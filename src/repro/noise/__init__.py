"""Bit-error fault models and robustness campaigns (Table 2)."""

from .bitflip import (
    FixedPointFaultInjector,
    HypervectorFaultInjector,
    flip_bipolar,
    flip_fixed_point,
    stuck_at,
)
from .campaign import (
    DetectionRobustnessResult,
    RobustnessResult,
    detection_robustness,
    dnn_robustness,
    hdface_hyperspace_robustness,
    hdface_original_hog_robustness,
)

__all__ = [
    "flip_bipolar",
    "stuck_at",
    "flip_fixed_point",
    "HypervectorFaultInjector",
    "FixedPointFaultInjector",
    "RobustnessResult",
    "DetectionRobustnessResult",
    "hdface_hyperspace_robustness",
    "hdface_original_hog_robustness",
    "dnn_robustness",
    "detection_robustness",
]

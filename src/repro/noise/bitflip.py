"""Random bit-error injection models (Table 2's fault model).

The paper's robustness study flips randomly-selected bits in three places:

* **hypervector components** (HDFace's holographic representation) -
  :func:`flip_bipolar` flips the sign of each component independently;
* **fixed-point datapath values** (HOG running on the original
  representation) - :func:`flip_fixed_point` quantizes a float buffer to
  ``bits``-wide fixed point, flips stored bits, and dequantizes;
* **quantized DNN weights** - handled by
  :func:`repro.learning.quantization.flip_int_bits`.

The two injector classes are pluggable ``injector(array, stage)`` callbacks
for the feature-extraction pipelines (see
:meth:`repro.features.hog_hd.HDHOGExtractor.extract_histogram` and
:meth:`repro.features.hog.HOGDescriptor.extract_with_injector`).
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng
from ..learning.quantization import dequantize, flip_int_bits, quantize

__all__ = [
    "flip_bipolar",
    "stuck_at",
    "flip_fixed_point",
    "HypervectorFaultInjector",
    "FixedPointFaultInjector",
]

#: Pipeline stages carrying hypervector tensors.
HD_STAGES = ("pixels", "gx", "gy", "magnitude", "histogram")
#: Pipeline stages of the original-space HOG.
ORIGINAL_STAGES = ("pixels", "gx", "gy", "magnitude", "histogram", "features")


def flip_bipolar(hv, rate, seed_or_rng=None):
    """Flip the sign of each bipolar component independently with ``rate``.

    In the binary hardware view a component is one stored bit, so this is a
    uniform random bit error.  Works on integer bundle tensors too, where a
    "flip" negates the whole component - a conservative (strictly harsher)
    model of a fault in a bundled counter.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    arr = np.asarray(hv)
    if rate == 0.0:
        return arr.copy()
    rng = as_rng(seed_or_rng)
    flips = rng.random(arr.shape, dtype=np.float32) < rate
    out = arr.copy()
    out[flips] = -out[flips]
    return out


def stuck_at(hv, rate, value=1, seed_or_rng=None):
    """Stuck-at faults: each component is pinned to ``value`` with ``rate``.

    Models permanently defective memory cells (stuck-at-1 / stuck-at-0 in
    the binary view, i.e. +1 / -1 bipolar).  Unlike a flip, a stuck cell
    only corrupts components that disagreed with it, so the expected
    similarity damage is half that of :func:`flip_bipolar` at equal rate -
    a distinction the nanoscale-hardware HDC literature leans on.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if value not in (-1, 1):
        raise ValueError("stuck value must be +1 or -1")
    arr = np.asarray(hv)
    if rate == 0.0:
        return arr.copy()
    rng = as_rng(seed_or_rng)
    stuck = rng.random(arr.shape, dtype=np.float32) < rate
    out = arr.copy()
    out[stuck] = value
    return out


def flip_fixed_point(arr, rate, bits=16, seed_or_rng=None, scale=None):
    """Bit errors on a float buffer stored as ``bits``-wide fixed point.

    Quantize -> flip each stored bit with probability ``rate`` ->
    dequantize.  A flipped high-order or sign bit produces a large value
    error, which is why the original representation is fragile (Sec. 2's
    motivation: 2 % bit error on HOG costs 12 % accuracy).
    """
    rng = as_rng(seed_or_rng)
    codes, s = quantize(arr, bits, scale=scale)
    corrupted = flip_int_bits(codes, bits, rate, rng)
    return dequantize(corrupted, s, bits).reshape(np.asarray(arr).shape)


class HypervectorFaultInjector:
    """Stage callback flipping hypervector components at a fixed rate.

    Parameters
    ----------
    rate:
        Per-component flip probability.
    stages:
        Which pipeline stages to corrupt (default: all hypervector stages).
    seed_or_rng:
        Fault randomness.
    """

    def __init__(self, rate, stages=HD_STAGES, seed_or_rng=None):
        self.rate = float(rate)
        self.stages = tuple(stages)
        self._rng = as_rng(seed_or_rng)
        self.calls = 0

    def __call__(self, hv, stage):
        if stage not in self.stages or self.rate == 0.0:
            return hv
        self.calls += 1
        return flip_bipolar(hv, self.rate, self._rng)


class FixedPointFaultInjector:
    """Stage callback for the original-space HOG fixed-point datapath.

    Every selected stage buffer is treated as ``bits``-wide fixed-point
    storage whose bits flip with probability ``rate``.
    """

    def __init__(self, rate, bits=16, stages=ORIGINAL_STAGES, seed_or_rng=None):
        self.rate = float(rate)
        self.bits = int(bits)
        self.stages = tuple(stages)
        self._rng = as_rng(seed_or_rng)
        self.calls = 0

    def __call__(self, arr, stage):
        if stage not in self.stages or self.rate == 0.0:
            return arr
        self.calls += 1
        return flip_fixed_point(arr, self.rate, self.bits, self._rng)

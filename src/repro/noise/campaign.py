"""Fault-injection campaigns reproducing Table 2 and the Sec. 2 motivation.

Each campaign sweeps a bit-error rate and reports accuracy and *quality
loss* (accuracy drop versus the clean run, in percentage points):

* :func:`hdface_hyperspace_robustness` - the ``HDFace+HoG+Learn`` rows:
  errors hit hypervector components during feature extraction *and* the
  stored bipolar class model.  Holographic redundancy keeps losses tiny.
* :func:`hdface_original_hog_robustness` - the ``HDFace+Learn`` rows: HOG
  runs on the original fixed-point representation (errors there are
  catastrophic), learning still hyperdimensional.
* :func:`dnn_robustness` - the DNN rows at 16/8/4-bit weight precision.

All campaigns reuse precomputed clean features where the fault model
permits, so a full Table 2 sweep stays laptop-scale.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng
from ..learning.metrics import quality_loss
from ..learning.quantization import QuantizedMLP
from .bitflip import FixedPointFaultInjector, HypervectorFaultInjector, flip_bipolar

__all__ = [
    "hdface_hyperspace_robustness",
    "hdface_original_hog_robustness",
    "dnn_robustness",
    "RobustnessResult",
]


class RobustnessResult(dict):
    """Mapping ``rate -> accuracy`` with a quality-loss view."""

    #: Optional external loss baseline (e.g. the full-precision DNN), so the
    #: rate-0 cell can show pure quantization cost as in Table 2.
    reference_accuracy = None

    @property
    def clean_accuracy(self):
        if 0.0 not in self:
            raise KeyError("campaign did not include rate 0.0")
        return self[0.0]

    def losses(self):
        """``{rate: quality loss in percentage points}`` (Table 2 cells)."""
        base = self.reference_accuracy
        if base is None:
            base = self.clean_accuracy
        return {rate: quality_loss(base, acc) for rate, acc in self.items()}


#: Memory-resident hypervector structures, where physical bit errors live:
#: the pixel-codebook output buffer and the histogram accumulator (plus the
#: class model, handled separately).  Intermediate combinational stages
#: (gx/gy/magnitude wires) are not storage and are excluded by default.
MEMORY_STAGES = ("pixels", "histogram")


def hdface_hyperspace_robustness(pipeline, images, labels, rates,
                                 seed_or_rng=None, stages=MEMORY_STAGES,
                                 attack_model=True):
    """Bit errors on the fully-hyperspace HDFace (``HDFace+HoG+Learn``).

    For each rate, hypervector components are flipped in the memory-
    resident pipeline buffers (``stages``, default :data:`MEMORY_STAGES`)
    and (if ``attack_model``) in the stored class model.  A class-model
    "bit error" negates the affected component - the dominant effect of a
    flipped sign bit in the stored hypervector.  Pass
    ``stages=repro.noise.bitflip.HD_STAGES`` for the harsher every-stage
    exposure.
    """
    rng = as_rng(seed_or_rng)
    labels = np.asarray(labels)
    model_clean = pipeline.classifier.class_hvs_
    result = RobustnessResult()
    for rate in rates:
        rate = float(rate)
        injector = None
        if rate > 0.0:
            injector = HypervectorFaultInjector(rate, stages=stages, seed_or_rng=rng)
        model = flip_bipolar(model_clean, rate, rng) if (attack_model and rate > 0) else None
        pred = pipeline.predict(images, injector=injector, model=model)
        result[rate] = float((pred == labels).mean())
    return result


def hdface_original_hog_robustness(pipeline, images, labels, rates, bits=16,
                                   seed_or_rng=None):
    """Bit errors on original-representation HOG feeding encoded HDC.

    ``pipeline`` is an ``HOGPipeline(model="hdc", ...)``; errors corrupt the
    fixed-point buffers of every HOG stage while the HDC model stays clean -
    the configuration whose fragility "entirely removes the advantage of
    our hyperdimensional model" (Sec. 6.6).
    """
    rng = as_rng(seed_or_rng)
    labels = np.asarray(labels)
    result = RobustnessResult()
    for rate in rates:
        rate = float(rate)
        injector = FixedPointFaultInjector(rate, bits=bits, seed_or_rng=rng) if rate > 0 else None
        pred = pipeline.predict(images, injector=injector)
        result[rate] = float((pred == labels).mean())
    return result


def dnn_robustness(mlp, features, labels, rates, bits, reference_accuracy=None,
                   seed_or_rng=None):
    """Bit errors on quantized DNN weights (the paper's DNN rows).

    ``reference_accuracy`` - when given - anchors the loss baseline to the
    *full-precision* model, so the rate-0 row shows the pure quantization
    cost (the paper's 1.6 % / 2.7 % entries for 8- and 4-bit).
    """
    rng = as_rng(seed_or_rng)
    labels = np.asarray(labels)
    quantized = QuantizedMLP(mlp, bits)
    result = RobustnessResult()
    for rate in rates:
        rate = float(rate)
        result[rate] = quantized.score(features, labels, rate=rate, seed_or_rng=rng)
    if reference_accuracy is not None:
        result.reference_accuracy = float(reference_accuracy)
    return result

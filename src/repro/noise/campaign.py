"""Fault-injection campaigns reproducing Table 2 and the Sec. 2 motivation.

Each campaign sweeps a bit-error rate and reports accuracy and *quality
loss* (accuracy drop versus the clean run, in percentage points):

* :func:`hdface_hyperspace_robustness` - the ``HDFace+HoG+Learn`` rows:
  errors hit hypervector components during feature extraction *and* the
  stored bipolar class model.  Holographic redundancy keeps losses tiny.
* :func:`hdface_original_hog_robustness` - the ``HDFace+Learn`` rows: HOG
  runs on the original fixed-point representation (errors there are
  catastrophic), learning still hyperdimensional.
* :func:`dnn_robustness` - the DNN rows at 16/8/4-bit weight precision.
* :func:`detection_robustness` - the detection-level analogue of Table 2:
  bit errors swept through the full sliding-window/pyramid path (feature
  datapath, packed cell words, stored class model) for the dense and
  packed engine backends, scored as recall / precision / mean IoU against
  ground truth instead of single-window accuracy.

All campaigns reuse precomputed clean features where the fault model
permits, so a full Table 2 sweep stays laptop-scale.  Every rate of a
sweep gets its own child generator (spawned off the campaign seed), so a
rate's result is reproducible independently of which other rates were
swept before it.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..core.hypervector import as_rng
from ..learning.metrics import quality_loss
from ..learning.quantization import QuantizedMLP
from .bitflip import FixedPointFaultInjector, HypervectorFaultInjector, flip_bipolar

__all__ = [
    "hdface_hyperspace_robustness",
    "hdface_original_hog_robustness",
    "dnn_robustness",
    "detection_robustness",
    "RobustnessResult",
    "DetectionRobustnessResult",
]


def _rate_rngs(seed_or_rng, rates):
    """One independent child generator per swept rate.

    A single generator threaded through every rate makes each rate's
    faults depend on how many variates earlier rates consumed (so adding,
    removing or reordering sweep points silently changes every later
    result).  Spawning a child per rate index keeps each point's fault
    stream self-contained and reproducible from the campaign seed.
    """
    return as_rng(seed_or_rng).spawn(len(list(rates)))


class RobustnessResult(dict):
    """Mapping ``rate -> accuracy`` with a quality-loss view."""

    #: Optional external loss baseline (e.g. the full-precision DNN), so the
    #: rate-0 cell can show pure quantization cost as in Table 2.
    reference_accuracy = None

    @property
    def clean_accuracy(self):
        """Accuracy of the rate-0 run.

        Falls back to the lowest swept rate (with a warning) when 0.0 was
        not part of the sweep, so loss tables of partial sweeps stay
        computable instead of raising.
        """
        if 0.0 in self:
            return self[0.0]
        if not self:
            raise KeyError("campaign swept no rates")
        lowest = min(self)
        warnings.warn(
            f"campaign did not include rate 0.0; using the lowest swept "
            f"rate {lowest} as the clean baseline", stacklevel=2)
        return self[lowest]

    def losses(self):
        """``{rate: quality loss in percentage points}`` (Table 2 cells).

        Rates are returned in ascending order regardless of sweep order.
        """
        base = self.reference_accuracy
        if base is None:
            base = self.clean_accuracy
        return {rate: quality_loss(base, self[rate])
                for rate in sorted(self)}


#: Memory-resident hypervector structures, where physical bit errors live:
#: the pixel-codebook output buffer and the histogram accumulator (plus the
#: class model, handled separately).  Intermediate combinational stages
#: (gx/gy/magnitude wires) are not storage and are excluded by default.
MEMORY_STAGES = ("pixels", "histogram")


def hdface_hyperspace_robustness(pipeline, images, labels, rates,
                                 seed_or_rng=None, stages=MEMORY_STAGES,
                                 attack_model=True):
    """Bit errors on the fully-hyperspace HDFace (``HDFace+HoG+Learn``).

    For each rate, hypervector components are flipped in the memory-
    resident pipeline buffers (``stages``, default :data:`MEMORY_STAGES`)
    and (if ``attack_model``) in the stored class model.  A class-model
    "bit error" negates the affected component - the dominant effect of a
    flipped sign bit in the stored hypervector.  Pass
    ``stages=repro.noise.bitflip.HD_STAGES`` for the harsher every-stage
    exposure.
    """
    labels = np.asarray(labels)
    model_clean = pipeline.classifier.class_hvs_
    result = RobustnessResult()
    for rate, rng in zip(rates, _rate_rngs(seed_or_rng, rates)):
        rate = float(rate)
        injector = None
        if rate > 0.0:
            injector = HypervectorFaultInjector(rate, stages=stages, seed_or_rng=rng)
        model = flip_bipolar(model_clean, rate, rng) if (attack_model and rate > 0) else None
        pred = pipeline.predict(images, injector=injector, model=model)
        result[rate] = float((pred == labels).mean())
    return result


def hdface_original_hog_robustness(pipeline, images, labels, rates, bits=16,
                                   seed_or_rng=None):
    """Bit errors on original-representation HOG feeding encoded HDC.

    ``pipeline`` is an ``HOGPipeline(model="hdc", ...)``; errors corrupt the
    fixed-point buffers of every HOG stage while the HDC model stays clean -
    the configuration whose fragility "entirely removes the advantage of
    our hyperdimensional model" (Sec. 6.6).
    """
    labels = np.asarray(labels)
    result = RobustnessResult()
    for rate, rng in zip(rates, _rate_rngs(seed_or_rng, rates)):
        rate = float(rate)
        injector = FixedPointFaultInjector(rate, bits=bits, seed_or_rng=rng) if rate > 0 else None
        pred = pipeline.predict(images, injector=injector)
        result[rate] = float((pred == labels).mean())
    return result


def dnn_robustness(mlp, features, labels, rates, bits, reference_accuracy=None,
                   seed_or_rng=None):
    """Bit errors on quantized DNN weights (the paper's DNN rows).

    ``reference_accuracy`` - when given - anchors the loss baseline to the
    *full-precision* model, so the rate-0 row shows the pure quantization
    cost (the paper's 1.6 % / 2.7 % entries for 8- and 4-bit).
    """
    labels = np.asarray(labels)
    quantized = QuantizedMLP(mlp, bits)
    result = RobustnessResult()
    for rate, rng in zip(rates, _rate_rngs(seed_or_rng, rates)):
        rate = float(rate)
        result[rate] = quantized.score(features, labels, rate=rate, seed_or_rng=rng)
    if reference_accuracy is not None:
        result.reference_accuracy = float(reference_accuracy)
    return result


# ----------------------------------------------------------------------
# Detection-level robustness (the production analogue of Table 2)
# ----------------------------------------------------------------------
class DetectionRobustnessResult(dict):
    """``{backend: {rate: row}}`` of a detection-level fault sweep.

    Each row is a dict with ``recall``, ``precision``, ``mean_iou``,
    ``n_detections`` and ``n_truth`` aggregated over every scene of the
    campaign.  ``config`` carries the sweep parameters so serialized
    results are self-describing.
    """

    config = None

    def rows(self):
        """Flat, sorted ``(backend, rate, row)`` triples for tabulation."""
        out = []
        for backend in sorted(self):
            for rate in sorted(self[backend]):
                out.append((backend, rate, self[backend][rate]))
        return out

    def clean(self, backend):
        """The backend's cleanest swept row (rate 0.0 when present)."""
        sweep = self[backend]
        return sweep[0.0 if 0.0 in sweep else min(sweep)]

    def recall_drop(self, backend):
        """Worst recall loss versus the backend's clean run."""
        clean = self.clean(backend)["recall"]
        return max(clean - row["recall"] for row in self[backend].values())

    def payload(self):
        """JSON-ready dict (``config`` + flat rows), for benchmark output."""
        return {
            "config": dict(self.config or {}),
            "rows": [dict(row, backend=backend, rate=rate)
                     for backend, rate, row in self.rows()],
        }


def _match_detections(detections, truth, iou_match):
    """IoUs of greedily matched (detection, truth-box) pairs.

    Detections arrive best-score-first (NMS order); each claims the
    unclaimed truth box it overlaps most, if that overlap reaches
    ``iou_match``.
    """
    from ..pipeline.multiscale import Detection, iou
    claimed = set()
    matched = []
    for det in detections:
        best_j, best = None, 0.0
        for j, (ty, tx, tw) in enumerate(truth):
            if j in claimed:
                continue
            overlap = iou(det, Detection(float(ty), float(tx), float(tw), 0.0))
            if overlap > best:
                best, best_j = overlap, j
        if best_j is not None and best >= iou_match:
            claimed.add(best_j)
            matched.append(best)
    return matched


def detection_robustness(pipeline, scenes, rates, window, stride=None,
                         backends=("dense", "packed"), seed_or_rng=None,
                         scale_step=1.5, score_threshold=0.0,
                         iou_threshold=0.3, iou_match=0.3,
                         attack=("features", "model"), guard_replicas=0,
                         surfaces=(), workers=1):
    """Sweep a bit-error rate through the full detection stack (Table 2 at
    detection level).

    For every backend and rate, each scene runs through the pyramid
    sliding-window path (:class:`~repro.pipeline.multiscale.
    PyramidDetector` over a shared-engine :class:`~repro.pipeline.
    detector.SlidingWindowDetector`) with faults injected where the
    hardware stores state:

    * **feature datapath** (``"features"`` in ``attack``) - a
      :class:`~repro.reliability.faults.DetectionFaultInjector` corrupts
      the memory-resident extraction buffers (dense bipolar tensors) and,
      on the packed backend, the bit-packed cell words of window assembly;
    * **stored class model** (``"model"`` in ``attack``) - the dense
      class matrix is sign-flipped (:func:`~repro.noise.bitflip.
      flip_bipolar`) or the packed model's stored words are flipped
      (:meth:`~repro.core.packed.PackedClassModel.corrupted`) at the same
      rate.

    ``guard_replicas`` (odd, packed backend only) wraps the class model in
    a :class:`~repro.reliability.guard.GuardedClassModel` and turns the
    model attack into corruption of a *single replica*: the sweep then
    measures the protected configuration (detection + majority-vote
    repair at inference), which should hold detection quality at the
    clean level while the unguarded model degrades.

    ``surfaces`` extends the sweep beyond the datapath/model pair to the
    *other* long-lived memory surfaces of the serving stack:

    * ``"items"`` - the extractor's resident item memories (pixel
      codebook, bin keys, codec basis) are corrupted at the swept rate
      before each scene and restored by exact regeneration afterwards
      (:meth:`~repro.core.keyed_noise.RematerializingItemMemory.
      restore`); derived key caches the detector built *before* the
      corruption are deliberately left alone, matching what stale
      corruption looks like in a real process;
    * ``"cache"`` - each scene is scanned once to prime the engine's
      scene cache, the cached buffers are corrupted in place
      (:meth:`~repro.pipeline.engine.SharedFeatureEngine.corrupt_cache`),
      and the measured scan then *hits* that corrupted cache (the engine
      is built without scrubbing here - this sweep measures raw
      sensitivity, the RAS bench measures the protected configuration).

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.pipeline.hdface.HDFacePipeline`.
    scenes:
        Iterable of ``(scene, truth)`` pairs as produced by
        :func:`~repro.pipeline.detector.make_scene`.
    rates:
        Bit-error rates to sweep (include 0.0 for the clean baseline).
    window, stride, scale_step, score_threshold, iou_threshold:
        Detector / pyramid configuration.
    iou_match:
        Minimum IoU for a detection to count as a true positive.
    seed_or_rng:
        Campaign randomness; each rate gets its own spawned child stream.

    Returns
    -------
    DetectionRobustnessResult
        Per-backend, per-rate recall / precision / mean-IoU rows.
    """
    from ..pipeline.detector import SlidingWindowDetector
    from ..pipeline.multiscale import PyramidDetector
    from ..reliability.faults import DetectionFaultInjector
    from ..reliability.guard import GuardedClassModel

    scenes = list(scenes)
    rates = [float(r) for r in rates]
    attack = tuple(attack)
    unknown = set(attack) - {"features", "model"}
    if unknown:
        raise ValueError(f"unknown attack surfaces: {sorted(unknown)}")
    surfaces = tuple(surfaces)
    unknown = set(surfaces) - {"items", "cache"}
    if unknown:
        raise ValueError(f"unknown memory surfaces: {sorted(unknown)}; "
                         f"expected among ('items', 'cache')")
    if guard_replicas and guard_replicas % 2 == 0:
        raise ValueError("guard_replicas must be odd")

    result = DetectionRobustnessResult()
    result.config = {
        "rates": rates, "window": int(window),
        "stride": int(stride) if stride else max(int(window) // 2, 1),
        "backends": list(backends), "scale_step": float(scale_step),
        "iou_match": float(iou_match), "attack": list(attack),
        "guard_replicas": int(guard_replicas), "surfaces": list(surfaces),
        "n_scenes": len(scenes),
        "dim": int(pipeline.dim),
    }
    base_rng = as_rng(seed_or_rng)
    for backend in backends:
        detector = SlidingWindowDetector(pipeline, window=window,
                                         stride=stride, engine="shared",
                                         backend=backend, workers=workers)
        pyr = PyramidDetector(detector, scale_step=scale_step,
                              score_threshold=score_threshold,
                              iou_threshold=iou_threshold)
        sweep = {}
        for rate, rng in zip(rates, _rate_rngs(base_rng, rates)):
            injector = None
            if rate > 0.0 and "features" in attack:
                injector = DetectionFaultInjector(rate, pipeline.dim,
                                                  seed_or_rng=rng)
            model = None
            if rate > 0.0 and "model" in attack:
                if backend == "packed" and guard_replicas:
                    model = GuardedClassModel(detector.packed_model(),
                                              replicas=guard_replicas,
                                              seed_or_rng=rng)
                    model.replicas[1 % guard_replicas] = \
                        detector.packed_model().corrupted(rate, rng).packed
                elif backend == "packed":
                    model = detector.packed_model().corrupted(rate, rng)
                else:
                    model = flip_bipolar(
                        pipeline.classifier.class_hvs_, rate, rng)
            item_memories = []
            if "items" in surfaces and rate > 0.0:
                memories = getattr(pipeline.extractor, "item_memories", None)
                if memories is not None:
                    item_memories = list(memories().values())
            tp, n_det, n_truth = 0, 0, 0
            matched_ious = []
            for scene, truth in scenes:
                if "cache" in surfaces and rate > 0.0:
                    # prime the scene cache, then corrupt it resident: the
                    # measured scan below hits the corrupted entries
                    pyr.detect(scene)
                    detector.engine.corrupt_cache(rate, rng)
                for memory in item_memories:
                    memory.corrupt(rate, rng)
                detections = pyr.detect(scene, injector=injector, model=model)
                matched = _match_detections(detections, truth, iou_match)
                tp += len(matched)
                n_det += len(detections)
                n_truth += len(truth)
                matched_ious.extend(matched)
                for memory in item_memories:
                    memory.restore()
                if surfaces and rate > 0.0:
                    # isolate scenes (and rates) from each other's faults
                    detector.engine.clear()
            sweep[rate] = {
                "recall": tp / n_truth if n_truth else 1.0,
                "precision": tp / n_det if n_det else 1.0,
                "mean_iou": float(np.mean(matched_ious)) if matched_ious else 0.0,
                "n_detections": int(n_det),
                "n_truth": int(n_truth),
            }
        result[backend] = sweep
    return result

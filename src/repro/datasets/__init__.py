"""Synthetic datasets standing in for the paper's Table 1 benchmarks."""

from .emotion import EMOTIONS, draw_emotion_face, make_emotion_dataset
from .faces import (
    NONFACE_KINDS,
    FaceParams,
    draw_face,
    draw_nonface,
    make_face_dataset,
    random_face_params,
)
from .registry import SPECS, DatasetSpec, load, names
from .synth import (
    drifting_face_patches,
    drifting_face_sequence,
    moving_face_sequence,
    shrink_patch,
)

__all__ = [
    "FaceParams",
    "random_face_params",
    "draw_face",
    "draw_nonface",
    "make_face_dataset",
    "NONFACE_KINDS",
    "EMOTIONS",
    "draw_emotion_face",
    "make_emotion_dataset",
    "DatasetSpec",
    "SPECS",
    "load",
    "names",
    "shrink_patch",
    "moving_face_sequence",
    "drifting_face_sequence",
    "drifting_face_patches",
]

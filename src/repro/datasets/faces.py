"""Parametric synthetic faces and non-face clutter (FACE1/FACE2 analogs).

The paper's face-detection datasets (Table 1: FACE1 = 1024x1024 HD face
images, FACE2 = 512x512 face detection with hundreds of thousands of
samples) are binary face / no-face tasks.  These generators produce that
task procedurally at any resolution: a face is an ellipse head with eyes,
eyebrows, nose shadow and mouth, under randomized pose, proportions,
illumination and sensor noise; negatives are drawn from several clutter
families including "hard" face-like blob arrangements.

Because generation is deterministic in the seed, every experiment in the
repository - including the paper-scale configurations - regenerates its
data exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng
from . import synth

__all__ = ["FaceParams", "random_face_params", "draw_face", "draw_nonface",
           "make_face_dataset", "NONFACE_KINDS"]


@dataclass
class FaceParams:
    """Geometry and appearance parameters of one synthetic face.

    All coordinates are fractions of the image side so the same parameters
    render at any resolution (the FACE1/FACE2 size difference in Table 1).
    """

    center_y: float = 0.5
    center_x: float = 0.5
    head_ry: float = 0.38
    head_rx: float = 0.30
    tilt: float = 0.0              # radians
    skin: float = 0.75
    background: float = 0.25
    eye_y: float = -0.12           # offsets relative to head center, in head radii
    eye_dx: float = 0.42
    eye_r: float = 0.10
    eye_value: float = 0.15
    brow_dy: float = -0.14         # above the eye, in head radii
    brow_curve: float = 0.5        # pixels of bend per head radius
    brow_value: float = 0.2
    nose_len: float = 0.30
    nose_value: float = 0.55
    mouth_y: float = 0.45
    mouth_half_w: float = 0.35
    mouth_curve: float = -0.12     # fraction of head radius; negative = smile-down? see draw
    mouth_value: float = 0.2
    mouth_openness: float = 0.0    # 0 = closed, 1 = wide open
    illumination: float = 0.3
    light_angle: float = 0.0
    noise_sigma: float = 0.03


def random_face_params(rng, jitter=1.0):
    """Sample plausible face parameters with configurable jitter.

    ``jitter=0`` returns the canonical face; ``jitter=1`` spans the full
    pose/appearance variation used by the datasets.
    """
    j = float(jitter)
    return FaceParams(
        center_y=0.5 + 0.06 * j * rng.uniform(-1, 1),
        center_x=0.5 + 0.06 * j * rng.uniform(-1, 1),
        head_ry=0.38 + 0.05 * j * rng.uniform(-1, 1),
        head_rx=0.30 + 0.04 * j * rng.uniform(-1, 1),
        tilt=0.15 * j * rng.uniform(-1, 1),
        skin=0.75 + 0.10 * j * rng.uniform(-1, 1),
        background=0.25 + 0.12 * j * rng.uniform(-1, 1),
        eye_y=-0.12 + 0.04 * j * rng.uniform(-1, 1),
        eye_dx=0.42 + 0.06 * j * rng.uniform(-1, 1),
        eye_r=0.10 + 0.03 * j * rng.uniform(-1, 1),
        eye_value=0.15 + 0.08 * j * rng.uniform(-1, 1),
        brow_dy=-0.14 + 0.03 * j * rng.uniform(-1, 1),
        brow_curve=0.5 + 0.4 * j * rng.uniform(-1, 1),
        nose_len=0.30 + 0.08 * j * rng.uniform(-1, 1),
        mouth_y=0.45 + 0.05 * j * rng.uniform(-1, 1),
        mouth_half_w=0.35 + 0.08 * j * rng.uniform(-1, 1),
        mouth_curve=rng.uniform(-0.18, 0.10) * j - 0.04,
        mouth_openness=max(0.0, rng.uniform(-0.5, 0.8)) * j,
        illumination=0.3 * j * rng.random(),
        light_angle=rng.uniform(0, 2 * np.pi),
        noise_sigma=0.02 + 0.03 * j * rng.random(),
    )


def draw_face(size, params=None, rng=None):
    """Render a face image of side ``size`` in ``[0, 1]``.

    Parameters default to the canonical face; pass ``rng`` to add sensor
    noise and illumination (both disabled when ``rng`` is None so tests can
    assert exact geometry).
    """
    p = params or FaceParams()
    img = synth.blank(size, p.background)
    cy, cx = p.center_y * size, p.center_x * size
    ry, rx = p.head_ry * size, p.head_rx * size
    synth.add_ellipse(img, cy, cx, ry, rx, p.skin, angle=p.tilt, softness=1.0)

    # Feature positions follow the head tilt.
    cos_t, sin_t = np.cos(p.tilt), np.sin(p.tilt)

    def head_point(dy, dx):
        """Head-relative (radii units) to image coordinates."""
        oy, ox = dy * ry, dx * rx
        return cy + cos_t * oy + sin_t * ox, cx - sin_t * oy + cos_t * ox

    for side in (-1, 1):
        ey, ex = head_point(p.eye_y, side * p.eye_dx)
        synth.add_ellipse(img, ey, ex, p.eye_r * ry, p.eye_r * 1.4 * rx,
                          p.eye_value, softness=0.6)
        by, bx = head_point(p.eye_y + p.brow_dy, side * p.eye_dx)
        synth.add_curve(img, by, bx, p.eye_r * 1.8 * rx, p.brow_curve * ry * 0.08,
                        p.brow_value, thickness=max(size / 48.0, 1.0))

    ny0, nx0 = head_point(p.eye_y + 0.08, 0.0)
    ny1, nx1 = head_point(p.eye_y + 0.08 + p.nose_len, 0.02)
    synth.add_stroke(img, ny0, nx0, ny1, nx1, p.nose_value,
                     thickness=max(size / 40.0, 1.0))

    my, mx = head_point(p.mouth_y, 0.0)
    curve_px = p.mouth_curve * ry
    if p.mouth_openness > 0.05:
        synth.add_ellipse(img, my, mx, max(p.mouth_openness * 0.10 * ry, 1.0),
                          p.mouth_half_w * rx, p.mouth_value, softness=0.6)
    synth.add_curve(img, my, mx, p.mouth_half_w * rx, curve_px, p.mouth_value,
                    thickness=max(size / 40.0, 1.0))

    if rng is not None:
        if p.illumination > 0:
            img = synth.illumination_gradient(img, p.illumination, p.light_angle)
        img = synth.add_sensor_noise(img, p.noise_sigma, rng)
    return synth.normalize01(img)


#: Non-face clutter families; ``face_like`` is the hard-negative family.
NONFACE_KINDS = ("blobs", "grating", "smooth", "shapes", "face_like")


def draw_nonface(size, rng, kind=None):
    """Render a non-face image from one of :data:`NONFACE_KINDS`.

    ``face_like`` negatives place dark blobs on a bright ellipse in
    non-face arrangements - the hard negatives that force the classifier to
    learn facial *structure* rather than mere intensity statistics.
    """
    kind = kind or rng.choice(NONFACE_KINDS)
    if kind == "blobs":
        img = synth.blob_texture(size, rng, n_blobs=int(rng.integers(4, 12)))
    elif kind == "grating":
        img = synth.blank(size, rng.uniform(0.2, 0.6))
        for _ in range(int(rng.integers(1, 3))):
            synth.add_grating(img, rng.uniform(size / 12, size / 3),
                              rng.uniform(0, np.pi), rng.uniform(0.3, 0.7),
                              rng.uniform(0, 2 * np.pi))
    elif kind == "smooth":
        img = synth.smooth_noise(size, rng, contrast=rng.uniform(0.5, 1.0))
    elif kind == "shapes":
        img = synth.blank(size, rng.uniform(0.1, 0.5))
        for _ in range(int(rng.integers(2, 6))):
            if rng.random() < 0.5:
                synth.add_rectangle(img, rng.uniform(0, size), rng.uniform(0, size),
                                    rng.uniform(0, size), rng.uniform(0, size),
                                    rng.uniform(0.2, 0.9))
            else:
                synth.add_stroke(img, rng.uniform(0, size), rng.uniform(0, size),
                                 rng.uniform(0, size), rng.uniform(0, size),
                                 rng.uniform(0.2, 0.9),
                                 thickness=rng.uniform(1, size / 10))
    elif kind == "face_like":
        img = synth.blank(size, rng.uniform(0.15, 0.35))
        synth.add_ellipse(img, size * rng.uniform(0.4, 0.6), size * rng.uniform(0.4, 0.6),
                          size * rng.uniform(0.25, 0.4), size * rng.uniform(0.2, 0.35),
                          rng.uniform(0.6, 0.85), softness=1.0)
        # Dark blobs scattered in *non-facial* positions.
        for _ in range(int(rng.integers(2, 5))):
            synth.add_ellipse(img, size * rng.uniform(0.1, 0.9), size * rng.uniform(0.1, 0.9),
                              size * rng.uniform(0.03, 0.08), size * rng.uniform(0.03, 0.08),
                              rng.uniform(0.05, 0.3), softness=0.6)
    else:
        raise ValueError(f"unknown non-face kind {kind!r}")
    img = synth.illumination_gradient(img, rng.uniform(0, 0.3), rng.uniform(0, 2 * np.pi))
    return synth.add_sensor_noise(img, rng.uniform(0.01, 0.05), rng)


def make_face_dataset(n, size=48, face_fraction=0.5, jitter=1.0, seed_or_rng=None):
    """Generate a face/no-face dataset.

    Returns ``(images, labels)`` with ``images`` of shape ``(n, size, size)``
    in ``[0, 1]`` and labels 1 = face, 0 = non-face, shuffled.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not 0.0 <= face_fraction <= 1.0:
        raise ValueError("face_fraction must be in [0, 1]")
    rng = as_rng(seed_or_rng)
    n_faces = int(round(n * face_fraction))
    images = np.empty((n, size, size), dtype=np.float64)
    labels = np.zeros(n, dtype=np.int64)
    for i in range(n_faces):
        images[i] = draw_face(size, random_face_params(rng, jitter), rng)
        labels[i] = 1
    for i in range(n_faces, n):
        images[i] = draw_nonface(size, rng)
    order = rng.permutation(n)
    return images[order], labels[order]

"""Dataset registry reproducing Table 1's inventory at multiple scales.

Table 1 of the paper:

=========  ===========  =======  =========  ================================
name       image size   classes  train set  description
=========  ===========  =======  =========  ================================
EMOTION    48 x 48      7        36,685     facial emotion detection (FER)
FACE1      1024 x 1024  2        40,172     HD face detection
FACE2     512 x 512    2        522,441    face detection
=========  ===========  =======  =========  ================================

The registry exposes each dataset at three scales:

* ``paper`` - Table 1's image sizes and training-set sizes (generatable,
  but impractically slow for the hyperspace pipeline on a laptop).
* ``bench`` - reduced sizes used by the benchmark harness (same tasks and
  class structure; tens of minutes of total compute).
* ``test`` - tiny configurations for the unit/integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng
from .emotion import make_emotion_dataset
from .faces import make_face_dataset

__all__ = ["DatasetSpec", "SPECS", "load", "names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 1 at one scale."""

    name: str
    image_size: int
    n_classes: int
    train_size: int
    test_size: int
    description: str

    def generate(self, seed_or_rng=None):
        """Return ``(train_x, train_y, test_x, test_y)``."""
        rng = as_rng(seed_or_rng)
        n = self.train_size + self.test_size
        if self.n_classes == 7:
            images, labels = make_emotion_dataset(n, self.image_size, seed_or_rng=rng)
        else:
            images, labels = make_face_dataset(n, self.image_size, seed_or_rng=rng)
        return (
            images[: self.train_size],
            labels[: self.train_size],
            images[self.train_size :],
            labels[self.train_size :],
        )


def _spec_table():
    rows = {
        # name: (paper_size, classes, paper_train, description)
        "EMOTION": (48, 7, 36685, "Facial Emotion Detection (FER analog)"),
        "FACE1": (1024, 2, 40172, "HD Face Detection (Face Mask Lite analog)"),
        "FACE2": (512, 2, 522441, "Face Detection (Angelova et al. analog)"),
    }
    bench = {
        # name: (size, train, test) - reduced but same task shape
        "EMOTION": (48, 280, 140),
        "FACE1": (64, 160, 80),
        "FACE2": (48, 200, 100),
    }
    test = {
        "EMOTION": (24, 42, 21),
        "FACE1": (24, 24, 12),
        "FACE2": (24, 24, 12),
    }
    specs = {}
    for name, (size, k, train, desc) in rows.items():
        specs[(name, "paper")] = DatasetSpec(name, size, k, train, max(train // 5, 1), desc)
        b_size, b_train, b_test = bench[name]
        specs[(name, "bench")] = DatasetSpec(name, b_size, k, b_train, b_test, desc)
        t_size, t_train, t_test = test[name]
        specs[(name, "test")] = DatasetSpec(name, t_size, k, t_train, t_test, desc)
    return specs


SPECS = _spec_table()


def names():
    """Dataset names in Table 1 order."""
    return ["EMOTION", "FACE1", "FACE2"]


def load(name, scale="bench", seed=0):
    """Generate a registered dataset.

    Parameters
    ----------
    name:
        ``"EMOTION"``, ``"FACE1"`` or ``"FACE2"``.
    scale:
        ``"paper"``, ``"bench"`` or ``"test"`` (see module docstring).
    seed:
        Generation seed; the same (name, scale, seed) triple always yields
        identical data.

    Returns
    -------
    (train_x, train_y, test_x, test_y)
    """
    key = (name.upper(), scale)
    if key not in SPECS:
        raise KeyError(f"no dataset {name!r} at scale {scale!r}")
    return SPECS[key].generate(np.random.default_rng(seed))

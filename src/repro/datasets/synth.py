"""Procedural drawing primitives for the synthetic image datasets.

The paper evaluates on three image datasets (Table 1) that are not
redistributable here, so :mod:`repro.datasets` generates procedural
equivalents - parametric faces, emotion faces and structured non-face
clutter - built from the primitives in this module: soft ellipses, strokes,
curves, gratings, blob textures, illumination gradients and sensor noise.

All functions draw into float64 images in ``[0, 1]`` and are deterministic
given a :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import gaussian_filter, rotate, zoom

__all__ = [
    "blank",
    "normalize01",
    "shrink_patch",
    "moving_face_sequence",
    "drifting_face_sequence",
    "drifting_face_patches",
    "add_ellipse",
    "add_stroke",
    "add_curve",
    "add_rectangle",
    "add_grating",
    "blob_texture",
    "smooth_noise",
    "illumination_gradient",
    "add_sensor_noise",
    "rotate_image",
]


def blank(size, value=0.0):
    """A ``size x size`` image filled with ``value``."""
    if size <= 0:
        raise ValueError("size must be positive")
    return np.full((size, size), float(value), dtype=np.float64)


def normalize01(img):
    """Clip to ``[0, 1]`` (the range the pixel encoders require)."""
    return np.clip(np.asarray(img, dtype=np.float64), 0.0, 1.0)


def _grid(img):
    h, w = img.shape
    return np.mgrid[0:h, 0:w].astype(np.float64)


def add_ellipse(img, cy, cx, ry, rx, value, angle=0.0, softness=0.5):
    """Draw a filled ellipse with a soft edge.

    ``softness`` is the half-width (in pixels) of the smooth transition at
    the boundary; 0 gives a hard edge.  ``angle`` rotates the ellipse
    (radians).  The ellipse *replaces* underlying pixels weighted by its
    coverage, so later shapes occlude earlier ones like painted layers.
    """
    if ry <= 0 or rx <= 0:
        raise ValueError("ellipse radii must be positive")
    yy, xx = _grid(img)
    dy, dx = yy - cy, xx - cx
    if angle:
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        dy, dx = cos_a * dy - sin_a * dx, sin_a * dy + cos_a * dx
    dist = np.sqrt((dy / ry) ** 2 + (dx / rx) ** 2)
    if softness > 0:
        edge = softness / max(min(ry, rx), 1e-6)
        cover = np.clip((1.0 + edge - dist) / (2 * edge), 0.0, 1.0)
    else:
        cover = (dist <= 1.0).astype(np.float64)
    img[:] = img * (1.0 - cover) + value * cover
    return img


def add_stroke(img, y0, x0, y1, x1, value, thickness=1.0):
    """Draw a straight stroke of the given thickness (soft-edged)."""
    yy, xx = _grid(img)
    vy, vx = y1 - y0, x1 - x0
    length_sq = vy * vy + vx * vx
    if length_sq == 0:
        return add_ellipse(img, y0, x0, max(thickness, 0.5), max(thickness, 0.5), value)
    t = np.clip(((yy - y0) * vy + (xx - x0) * vx) / length_sq, 0.0, 1.0)
    dist = np.hypot(yy - (y0 + t * vy), xx - (x0 + t * vx))
    cover = np.clip(thickness / 2.0 + 0.5 - dist, 0.0, 1.0)
    img[:] = img * (1.0 - cover) + value * cover
    return img


def add_curve(img, cy, cx, half_width, curvature, value, thickness=1.0):
    """Draw a horizontal parabolic curve (mouths, eyebrows).

    The curve spans ``[cx - half_width, cx + half_width]`` and bends by
    ``curvature`` pixels at its ends relative to the center: positive
    curvature bends the ends *up* (a smile when used for a mouth, since row
    indices grow downward the end rows are ``cy - curvature``).
    """
    if half_width <= 0:
        raise ValueError("half_width must be positive")
    xs = np.linspace(cx - half_width, cx + half_width, int(max(8, 4 * half_width)))
    rel = (xs - cx) / half_width
    ys = cy - curvature * rel**2
    for i in range(len(xs) - 1):
        add_stroke(img, ys[i], xs[i], ys[i + 1], xs[i + 1], value, thickness)
    return img


def add_rectangle(img, y0, x0, y1, x1, value):
    """Fill an axis-aligned rectangle (clipped to the image)."""
    h, w = img.shape
    ya, yb = sorted((int(round(y0)), int(round(y1))))
    xa, xb = sorted((int(round(x0)), int(round(x1))))
    img[max(ya, 0) : min(yb, h), max(xa, 0) : min(xb, w)] = value
    return img


def add_grating(img, period, angle, contrast=0.5, phase=0.0):
    """Overlay a sinusoidal grating (striped texture for non-face clutter)."""
    if period <= 0:
        raise ValueError("period must be positive")
    yy, xx = _grid(img)
    axis = yy * np.sin(angle) + xx * np.cos(angle)
    wave = 0.5 + 0.5 * np.sin(2 * np.pi * axis / period + phase)
    img[:] = np.clip(img * (1 - contrast) + wave * contrast, 0.0, 1.0)
    return img


def blob_texture(size, rng, n_blobs=8, value_range=(0.2, 0.9)):
    """Random soft blobs - organic non-face clutter."""
    img = blank(size, float(rng.uniform(0.1, 0.5)))
    lo, hi = value_range
    for _ in range(n_blobs):
        add_ellipse(
            img,
            rng.uniform(0, size),
            rng.uniform(0, size),
            rng.uniform(size * 0.05, size * 0.3),
            rng.uniform(size * 0.05, size * 0.3),
            rng.uniform(lo, hi),
            angle=rng.uniform(0, np.pi),
            softness=rng.uniform(0.5, 2.0),
        )
    return img


def smooth_noise(size, rng, sigma=None, contrast=1.0):
    """Low-frequency noise field (blurred white noise), like natural texture."""
    sigma = size / 8.0 if sigma is None else sigma
    field = gaussian_filter(rng.random((size, size)), sigma=sigma)
    span = field.max() - field.min()
    if span > 0:
        field = (field - field.min()) / span
    return normalize01(0.5 + (field - 0.5) * contrast)


def illumination_gradient(img, strength, angle, rng=None):
    """Multiply by a linear illumination ramp (lighting variation)."""
    yy, xx = _grid(img)
    h, w = img.shape
    axis = (yy / h) * np.sin(angle) + (xx / w) * np.cos(angle)
    axis = (axis - axis.min()) / max(axis.max() - axis.min(), 1e-9)
    ramp = 1.0 - strength / 2.0 + strength * axis
    return normalize01(img * ramp)


def add_sensor_noise(img, sigma, rng):
    """Additive Gaussian pixel noise, clipped to ``[0, 1]``."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return normalize01(img + rng.normal(0.0, sigma, img.shape))


def rotate_image(img, angle_deg):
    """Small in-plane rotation with edge-value padding (pose jitter)."""
    return normalize01(rotate(img, angle_deg, reshape=False, mode="nearest", order=1))


def shrink_patch(patch, scale, fill=0.5):
    """Scale a square patch down in place, centered on a flat surround.

    The patch is resampled to ``scale`` of its side (bilinear), pasted
    centered into a ``fill``-gray canvas of the original size, and the
    canvas returned.  This is the *distance* drift: the subject walks
    away from the camera while the detector keeps scanning the same
    window size, so the face occupies ever fewer HOG cells and the
    surround contributes flat, gradient-free cells.  Unlike rotation
    (which recovers at symmetric angles) or illumination (which per-cell
    l1 normalization cancels), the margin loss is monotone in ``scale``
    - the property the online-adaptation benchmark relies on.

    The inner size is floored at 8 px so the resampled face keeps enough
    structure to be drawable at all; ``scale == 1`` returns the patch
    unchanged.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n = patch.shape[0]
    k = min(max(int(round(n * scale)), 8), n)
    if k >= n:
        return patch
    small = zoom(patch, k / n, order=1)[:k, :k]
    out = np.full_like(patch, float(fill))
    off = (n - k) // 2
    out[off:off + k, off:off + k] = small
    return out


def moving_face_sequence(size, n_frames, window=24, step=2, jitter=0.6,
                         noise_sigma=0.0, seed_or_rng=None):
    """Synthetic video: one face drifting over a static clutter background.

    The background and the face patch are drawn once; each frame pastes
    the *same* patch at a new position along a bouncing linear path, so
    consecutive frames differ only where the face was and where it now is
    - the workload the streaming detector's frame-delta reuse targets.
    ``step`` is the per-frame displacement in pixels along each axis
    (``step=2`` with ``window=24`` on a 64px scene dirties roughly 10-20%
    of the frame).  ``noise_sigma > 0`` adds fresh sensor noise per frame,
    which touches every pixel and forces the detector back to full
    re-extraction - useful as a worst-case setting, off by default.

    Returns ``(frames, truth)``: a list of ``(size, size)`` float images
    in ``[0, 1]`` and the per-frame ground-truth ``(y, x, window)`` of the
    pasted face.
    """
    from ..core.hypervector import as_rng
    from .faces import draw_face, draw_nonface, random_face_params

    if n_frames < 1:
        raise ValueError("n_frames must be at least 1")
    if window > size:
        raise ValueError("window must fit the scene")
    rng = as_rng(seed_or_rng)
    background = draw_nonface(size, rng, kind="smooth")
    face = draw_face(window, random_face_params(rng, jitter), rng)
    span = size - window
    y = float(rng.integers(0, span + 1))
    x = float(rng.integers(0, span + 1))
    vy = float(step) * (1 if rng.random() < 0.5 else -1)
    vx = float(step) * (1 if rng.random() < 0.5 else -1)
    frames, truth = [], []
    for _ in range(n_frames):
        frame = background.copy()
        iy, ix = int(round(y)), int(round(x))
        frame[iy:iy + window, ix:ix + window] = face
        if noise_sigma > 0:
            frame = add_sensor_noise(frame, noise_sigma, rng)
        frames.append(frame)
        truth.append((iy, ix, int(window)))
        y += vy
        x += vx
        if not 0 <= y <= span:
            vy = -vy
            y = min(max(y, 0.0), float(span))
        if not 0 <= x <= span:
            vx = -vx
            x = min(max(x, 0.0), float(span))
    return frames, truth


def drifting_face_sequence(size, n_frames, window=24, step=2, jitter=0.6,
                           warmup=0, max_rotation=12.0,
                           max_illumination=0.9, max_contrast_drop=0.45,
                           max_inversion=0.0, min_scale=1.0, max_blur=0.0,
                           align=1, seed_or_rng=None):
    """Synthetic video whose *face appearance* drifts away over time.

    Same bouncing-path construction as :func:`moving_face_sequence` (one
    face patch over one static clutter background, so the frame-delta
    machinery still applies), but the pasted patch is re-rendered per
    frame with a monotone appearance ramp: in-plane rotation up to
    ``max_rotation`` degrees, a directional illumination gradient up to
    ``max_illumination``, a contrast fade toward mid-gray by up to
    ``max_contrast_drop``, a polarity crossfade toward the negative
    image by up to ``max_inversion`` (the sensor-change drift - think a
    camera switching to near-IR - and the only ramp here that actually
    *defeats* the HOG front end: per-cell l1 normalization cancels
    illumination and contrast outright, while inversion flips gradient
    polarity and drives the face margin through zero), a shrink toward
    ``min_scale`` of the window (the subject walking away - see
    :func:`shrink_patch`), and a defocus blur up to ``max_blur`` sigma.
    The first
    ``warmup`` frames are served undrifted (ramp progress 0), giving an
    online learner a clean reference window before the distribution
    starts sliding.

    ``align`` snaps the start position to a multiple of ``align``
    pixels; with ``step`` also a multiple, every pasted position stays
    on that grid.  Matching it to the detector's stride keeps the face
    window identical to a scanned window each frame, so the margin
    signal measures the *appearance* ramp alone instead of mixing in
    sub-stride alignment jitter.

    This is the covariate-shift workload for the online-adaptation gate
    (``benchmarks/bench_online_drift.py``): a frozen model's margins
    decay along the ramp while a guarded adaptive model folds the
    tracker's confirmed windows back in and holds recall.

    Returns ``(frames, truth)`` exactly like :func:`moving_face_sequence`.
    """
    from ..core.hypervector import as_rng
    from .faces import draw_face, draw_nonface, random_face_params

    if n_frames < 1:
        raise ValueError("n_frames must be at least 1")
    if window > size:
        raise ValueError("window must fit the scene")
    if not 0 <= warmup < n_frames:
        raise ValueError("warmup must be in [0, n_frames)")
    if int(align) < 1:
        raise ValueError("align must be a positive pixel grid")
    if not 0.0 < min_scale <= 1.0:
        raise ValueError("min_scale must be in (0, 1]")
    if max_blur < 0:
        raise ValueError("max_blur must be non-negative")
    align = int(align)
    rng = as_rng(seed_or_rng)
    background = draw_nonface(size, rng, kind="smooth")
    face = draw_face(window, random_face_params(rng, jitter), rng)
    light_angle = float(rng.uniform(0.0, 2.0 * np.pi))
    span = size - window
    y = float((int(rng.integers(0, span + 1)) // align) * align)
    x = float((int(rng.integers(0, span + 1)) // align) * align)
    vy = float(step) * (1 if rng.random() < 0.5 else -1)
    vx = float(step) * (1 if rng.random() < 0.5 else -1)
    hi = float((span // align) * align)  # grid-aligned bounce wall
    ramp_len = max(n_frames - 1 - warmup, 1)
    frames, truth = [], []
    for i in range(n_frames):
        progress = max(i - warmup, 0) / ramp_len
        patch = face
        if progress > 0.0:
            if max_rotation:
                patch = rotate_image(patch, progress * max_rotation)
            if max_contrast_drop:
                patch = normalize01(
                    0.5 + (patch - 0.5)
                    * (1.0 - progress * max_contrast_drop))
            if max_illumination:
                patch = illumination_gradient(
                    patch, progress * max_illumination, light_angle)
            if max_inversion:
                alpha = progress * max_inversion
                patch = normalize01(patch * (1.0 - alpha)
                                    + (1.0 - patch) * alpha)
            if min_scale < 1.0:
                patch = shrink_patch(
                    patch, 1.0 + (min_scale - 1.0) * progress)
            if max_blur:
                patch = normalize01(
                    gaussian_filter(patch, progress * max_blur))
        frame = background.copy()
        iy, ix = int(round(y)), int(round(x))
        frame[iy:iy + window, ix:ix + window] = patch
        frames.append(frame)
        truth.append((iy, ix, int(window)))
        y += vy
        x += vx
        if not 0 <= y <= hi:
            vy = -vy
            y = min(max(y, 0.0), hi)
        if not 0 <= x <= hi:
            vx = -vx
            x = min(max(x, 0.0), hi)
    return frames, truth


def drifting_face_patches(n_steps, batch, size=24, jitter=0.6, warmup=0,
                          min_scale=0.5, max_blur=1.5, seed_or_rng=None):
    """Labeled drifting patch stream for classifier-level online learning.

    Where :func:`drifting_face_sequence` drifts one face inside a
    cluttered scene (exercising the full tracker + adapter loop), this
    stream isolates the *classifier's* side of the problem: each step
    draws ``batch`` fresh faces - new identities, full ``jitter``
    diversity - and renders them at the step's ramp progress, shrinking
    toward ``min_scale`` of the window (:func:`shrink_patch`) and
    defocusing up to ``max_blur`` sigma.  A frozen model's margin on
    these batches decays monotonically along the ramp; a guarded online
    learner that folds its confident predictions back in tracks it.
    The first ``warmup`` steps are served undrifted.

    Returns ``(batches, progress)``: ``batches[i]`` is a list of
    ``batch`` float images in ``[0, 1]`` and ``progress[i]`` the ramp
    position in ``[0, 1]`` they were rendered at.
    """
    from ..core.hypervector import as_rng
    from .faces import draw_face, random_face_params

    if n_steps < 1:
        raise ValueError("n_steps must be at least 1")
    if batch < 1:
        raise ValueError("batch must be at least 1")
    if not 0 <= warmup < n_steps:
        raise ValueError("warmup must be in [0, n_steps)")
    if not 0.0 < min_scale <= 1.0:
        raise ValueError("min_scale must be in (0, 1]")
    if max_blur < 0:
        raise ValueError("max_blur must be non-negative")
    rng = as_rng(seed_or_rng)
    ramp_len = max(n_steps - 1 - warmup, 1)
    batches, progress = [], []
    for i in range(n_steps):
        p = max(i - warmup, 0) / ramp_len
        faces = []
        for _ in range(batch):
            patch = draw_face(size, random_face_params(rng, jitter), rng)
            if p > 0.0:
                patch = shrink_patch(patch, 1.0 + (min_scale - 1.0) * p)
                if max_blur:
                    patch = normalize01(gaussian_filter(patch, p * max_blur))
            faces.append(patch)
        batches.append(faces)
        progress.append(p)
    return batches, progress

"""Synthetic 7-class facial-emotion dataset (EMOTION analog, Table 1).

The paper's EMOTION benchmark is the Kaggle FER dataset: 48x48 grayscale
faces with 7 emotion labels.  This module renders the same task
procedurally: each emotion is a region of the face-parameter space - mouth
curvature and openness, eyebrow angle and height, eye openness - with
within-class jitter, pose variation, illumination and sensor noise.

The class geometry follows FACS-style descriptions (e.g. surprise = raised
brows + wide eyes + open mouth; anger = lowered inner brows + narrowed
eyes), so classes overlap realistically rather than being trivially
separable.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng
from .faces import FaceParams, draw_face, random_face_params

__all__ = ["EMOTIONS", "emotion_params", "draw_emotion_face", "make_emotion_dataset"]

#: Class order matches the FER convention.
EMOTIONS = ("angry", "disgust", "fear", "happy", "sad", "surprise", "neutral")

#: Per-emotion modifiers: (mouth_curve, mouth_openness, brow_curve, brow_dy,
#: eye_r_scale).  mouth_curve > 0 bends mouth ends upward (smile).
_EMOTION_SHAPE = {
    "angry":    (-0.16, 0.10, -1.4, -0.06, 0.75),
    "disgust":  (-0.12, 0.40, -0.7, -0.10, 0.60),
    "fear":     (-0.02, 0.75,  1.1, -0.22, 1.35),
    "happy":    (0.24, 0.40,  0.5, -0.15, 1.00),
    "sad":      (-0.26, 0.02,  0.9, -0.11, 0.85),
    "surprise": (0.04, 1.20,  1.5, -0.26, 1.55),
    "neutral":  (0.00, 0.00,  0.3, -0.15, 1.00),
}


def emotion_params(emotion, rng, jitter=1.0):
    """Face parameters expressing ``emotion`` with within-class jitter.

    Starts from a random identity (pose, proportions, lighting) and shifts
    the expressive parameters toward the emotion's canonical shape, leaving
    enough jitter that neighbouring emotions (fear/surprise, sad/angry)
    genuinely overlap - the difficulty profile of real FER data.
    """
    if emotion not in _EMOTION_SHAPE:
        raise ValueError(f"unknown emotion {emotion!r}; expected one of {EMOTIONS}")
    base = random_face_params(rng, jitter=jitter)
    curve, openness, brow, brow_dy, eye_scale = _EMOTION_SHAPE[emotion]
    j = 0.2 * jitter
    return FaceParams(
        **{
            **base.__dict__,
            "mouth_curve": curve + 0.04 * j * rng.uniform(-1, 1),
            "mouth_openness": max(0.0, openness + 0.25 * j * rng.uniform(-1, 1)),
            "brow_curve": brow + 0.3 * j * rng.uniform(-1, 1),
            "brow_dy": brow_dy + 0.02 * j * rng.uniform(-1, 1),
            "eye_r": base.eye_r * (eye_scale + 0.12 * j * rng.uniform(-1, 1)),
        }
    )


def draw_emotion_face(size, emotion, rng, jitter=1.0):
    """Render one ``size x size`` face expressing ``emotion``."""
    return draw_face(size, emotion_params(emotion, rng, jitter), rng)


def make_emotion_dataset(n, size=48, jitter=1.0, seed_or_rng=None):
    """Generate a balanced 7-class emotion dataset.

    Returns ``(images, labels)``; labels index :data:`EMOTIONS`.  Classes
    are as balanced as ``n`` allows and the output is shuffled.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = as_rng(seed_or_rng)
    images = np.empty((n, size, size), dtype=np.float64)
    labels = np.empty(n, dtype=np.int64)
    for i in range(n):
        label = i % len(EMOTIONS)
        images[i] = draw_emotion_face(size, EMOTIONS[label], rng, jitter)
        labels[i] = label
    order = rng.permutation(n)
    return images[order], labels[order]

"""HDFace: robust and holographic face detection with hyperdimensional computing.

A from-scratch reproduction of *"Neural Computation for Robust and
Holographic Face Detection"* (DAC 2022): stochastic arithmetic over binary
hypervectors, HOG feature extraction fully in hyperspace, adaptive
hyperdimensional classification, DNN/SVM baselines, synthetic face/emotion
datasets, bit-error robustness campaigns, and CPU/FPGA efficiency models.

Quickstart
----------
>>> from repro import HDFacePipeline
>>> from repro.datasets import make_face_dataset
>>> xtr, ytr = make_face_dataset(40, size=24, seed_or_rng=0)
>>> pipe = HDFacePipeline(n_classes=2, dim=1024, magnitude="l1",
...                       epochs=5, seed_or_rng=0).fit(xtr, ytr)
>>> bool(pipe.score(xtr, ytr) > 0.5)
True

Subpackages
-----------
``repro.core``
    Hypervectors, the HDC algebra and the stochastic arithmetic codec.
``repro.features``
    Classic HOG and the hyperspace HOG extractor.
``repro.learning``
    HDC classifier, encoders, DNN and SVM baselines, quantization.
``repro.datasets``
    Synthetic Table-1 datasets (faces, emotions, clutter).
``repro.noise``
    Bit-error fault models and Table-2 robustness campaigns.
``repro.hardware``
    Op-count cost models, platform definitions, cycle-level simulator.
``repro.pipeline``
    End-to-end HDFace, baselines and the sliding-window detector.
``repro.viz``
    Headless rendering of images and detection maps.
"""

from .core import DEFAULT_DIM, StochasticCodec
from .pipeline import HDFacePipeline, HOGPipeline, SlidingWindowDetector

__version__ = "1.0.0"

__all__ = [
    "StochasticCodec",
    "HDFacePipeline",
    "HOGPipeline",
    "SlidingWindowDetector",
    "DEFAULT_DIM",
    "__version__",
]

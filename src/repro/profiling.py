"""Stage timers and operation counters for the detection engine.

The shared-feature detection engine's whole point is a measurable speedup,
so the speedup has to be measurable: this module provides the lightweight
instrumentation threaded through feature extraction and detection.  A
:class:`Profiler` collects, per named stage,

* wall-clock seconds (via a context manager around the stage),
* abstract operation counts in the same operation classes the hardware
  cost models use (``bit``, ``int_add``, ``rng_bit``, ... - see
  :data:`repro.hardware.opcount.OP_CLASSES`),
* a free-form item count (windows scanned, pixels encoded, ...).

Because the op counters speak the ``opcount`` vocabulary, a profile of a
real run converts straight into an :class:`~repro.hardware.opcount.
OperationProfile` (via :func:`repro.hardware.opcount.profile_from_counts`)
and from there into modeled time/energy on any platform - the CLI's
``detect --profile`` prints both the measured and the modeled view.

The profiler is allocation-light and safe to leave in hot paths: a
disabled profiler reduces every call to a cheap early return.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Profiler", "StageStats", "NULL_PROFILER", "PERCENTILES"]

#: Latency percentiles every stage reports (see :meth:`StageStats.percentiles`).
PERCENTILES = (50, 95, 99)

#: Per-stage sample window: enough for stable tail estimates, bounded so a
#: long-running serving process cannot grow the profiler without limit.
_SAMPLE_WINDOW = 4096


@dataclass
class StageStats:
    """Accumulated measurements for one named stage."""

    calls: int = 0
    seconds: float = 0.0
    items: float = 0.0
    ops: dict = field(default_factory=dict)
    #: Recent per-call durations (bounded window) for percentile readouts.
    samples: deque = field(
        default_factory=lambda: deque(maxlen=_SAMPLE_WINDOW))

    def total_ops(self):
        """All counted operations except memory traffic."""
        return sum(v for k, v in self.ops.items() if k != "mem_bytes")

    def percentiles(self, window=None):
        """Latency percentiles over the recent samples: ``{"p50": ..., ...}``.

        ``window`` restricts the estimate to the newest N samples (the
        deadline scheduler's view of *current* load); the default uses the
        whole retained window.  All-zero when no call was ever timed.
        """
        import numpy as np
        sel = list(self.samples)
        if window is not None:
            sel = sel[-int(window):]
        if not sel:
            return {f"p{q}": 0.0 for q in PERCENTILES}
        arr = np.asarray(sel, dtype=np.float64)
        return {f"p{q}": float(np.percentile(arr, q)) for q in PERCENTILES}


class Profiler:
    """Collects per-stage timings and op counts across a detection run.

    Parameters
    ----------
    enabled:
        When False every method is a no-op, so instrumented code can keep
        one unconditional call site.

    Examples
    --------
    >>> prof = Profiler()
    >>> with prof.stage("fields"):
    ...     pass
    >>> prof.add_ops("fields", items=9, bit=1024)
    >>> prof.stats["fields"].calls
    1
    """

    def __init__(self, enabled=True):
        self.enabled = bool(enabled)
        self.stats = OrderedDict()
        #: Free-form named counters (guard scrubs, online updates applied /
        #: rejected, drift state, ...) - everything worth a line in
        #: :meth:`table` that is not a timed stage.  Numeric values sum on
        #: :meth:`merge`; strings (e.g. a drift state) keep the merged-in
        #: value.
        self.counters = OrderedDict()
        # counter updates are guarded so concurrent pipeline workers
        # (PyramidDetector / SharedFeatureEngine threads) don't lose ticks
        self._lock = threading.Lock()

    def _get(self, name):
        if name not in self.stats:
            self.stats[name] = StageStats()
        return self.stats[name]

    @contextmanager
    def stage(self, name):
        """Time one stage; nests and repeats accumulate.

        Concurrent stages sum their wall-clock, so under a worker pool a
        stage's ``seconds`` is aggregate thread-time, not elapsed time.
        """
        if not self.enabled:
            yield self
            return
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                stat = self._get(name)
                stat.calls += 1
                stat.seconds += elapsed
                stat.samples.append(elapsed)

    def record(self, name, seconds, items=0.0):
        """Record an externally timed duration as one call of ``name``.

        The serving runtime measures frame latency from *submit* time
        (queue wait included), which no ``stage`` context can see; this
        feeds such measurements into the same percentile machinery.
        """
        if not self.enabled:
            return
        with self._lock:
            stat = self._get(name)
            stat.calls += 1
            stat.seconds += float(seconds)
            stat.samples.append(float(seconds))
            stat.items += float(items)

    def percentiles(self, name, window=None):
        """Latency percentiles for one stage (zeros if it never ran)."""
        with self._lock:
            stat = self.stats.get(name)
            if stat is None:
                return {f"p{q}": 0.0 for q in PERCENTILES}
            return stat.percentiles(window)

    def add_ops(self, name, items=0.0, **counts):
        """Attribute operation counts (opcount classes) to a stage."""
        if not self.enabled:
            return
        with self._lock:
            stat = self._get(name)
            stat.items += float(items)
            for op, n in counts.items():
                if n:
                    stat.ops[op] = stat.ops.get(op, 0.0) + float(n)

    def add_profile(self, name, profile, items=0.0):
        """Attribute an :class:`OperationProfile`'s counts to a stage."""
        self.add_ops(name, items=items, **profile.counts)

    def count(self, name, n=1):
        """Increment a named counter (numeric; created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def set_counter(self, name, value):
        """Set a named counter to an absolute value (numeric or string).

        The guard/adaptation surfaces report their ledgers this way (the
        model keeps the authoritative counts; the profiler mirrors the
        latest snapshot), and states like the drift detector's land here
        as strings.
        """
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = value

    def merge(self, other):
        """Fold another profiler's stats into this one; returns ``self``.

        The fleet dispatcher's aggregation primitive: each worker runtime
        keeps its own profiler (so per-stream percentiles stay honest),
        and the fleet-level table is the merge of all of them.  Calls,
        seconds, items and op counts add; the bounded sample windows
        concatenate (oldest samples fall off the deque first, so the
        merged percentiles describe the most recent work, like any single
        profiler's do).  ``other`` is left untouched; merging a profiler
        into itself is a no-op.
        """
        if other is self or not getattr(other, "enabled", False):
            return self
        with other._lock:
            snapshot = [
                (name, stat.calls, stat.seconds, stat.items,
                 dict(stat.ops), list(stat.samples))
                for name, stat in other.stats.items()
            ]
            counter_snapshot = dict(getattr(other, "counters", {}))
        if not self.enabled:
            return self
        with self._lock:
            for name, calls, seconds, items, ops, samples in snapshot:
                stat = self._get(name)
                stat.calls += calls
                stat.seconds += seconds
                stat.items += items
                for op, n in ops.items():
                    stat.ops[op] = stat.ops.get(op, 0.0) + n
                stat.samples.extend(samples)
            for name, value in counter_snapshot.items():
                mine = self.counters.get(name)
                if isinstance(value, (int, float)) \
                        and isinstance(mine, (int, float)):
                    self.counters[name] = mine + value
                else:
                    # strings (drift states) and first sightings: merged-in
                    # value wins, like any latest snapshot would
                    self.counters[name] = value
        return self

    # ------------------------------------------------------------------
    def total_seconds(self):
        """Wall-clock total across stages (stages are assumed disjoint)."""
        return sum(s.seconds for s in self.stats.values())

    def op_totals(self):
        """Summed op counts across stages, keyed by operation class."""
        totals = {}
        for stat in self.stats.values():
            for op, n in stat.ops.items():
                totals[op] = totals.get(op, 0.0) + n
        return totals

    def reset(self):
        """Drop all collected stats (counters start over)."""
        self.stats.clear()
        self.counters.clear()

    def table(self, title="profile"):
        """Human-readable per-stage report (the CLI's ``--profile`` output)."""
        lines = [f"{title}:"]
        header = (f"  {'stage':<18} {'calls':>6} {'seconds':>9} "
                  f"{'p50ms':>8} {'p95ms':>8} {'items':>10} {'ops':>12}")
        lines.append(header)
        for name, stat in self.stats.items():
            ops = stat.total_ops()
            ops_s = f"{ops:.3g}" if ops else "-"
            items_s = f"{stat.items:.0f}" if stat.items else "-"
            pct = stat.percentiles()
            lines.append(f"  {name:<18} {stat.calls:>6d} {stat.seconds:>9.4f} "
                         f"{pct['p50'] * 1e3:>8.2f} {pct['p95'] * 1e3:>8.2f} "
                         f"{items_s:>10} {ops_s:>12}")
        lines.append(f"  {'total':<18} {'':>6} {self.total_seconds():>9.4f}")
        if self.counters:
            lines.append("  counters:")
            for name, value in self.counters.items():
                if isinstance(value, float):
                    value = f"{value:.4g}"
                lines.append(f"    {name:<24} {value}")
        return "\n".join(lines)


#: Shared disabled profiler for call sites that were given none.
NULL_PROFILER = Profiler(enabled=False)

"""HOG feature extraction performed entirely in hyperdimensional space.

This module implements Section 4.3 of the paper: every pixel becomes a
stochastic hypervector and the whole HOG pipeline - gradients, magnitude,
orientation binning, histogram accumulation - runs on hypervectors using the
arithmetic of :class:`repro.core.stochastic.StochasticCodec`:

* **Gradients** - ``V_Gx = V_C[y+1,x] (+) (-V_C[y-1,x])`` represents
  ``(C_down - C_up) / 2`` exactly as in the paper.
* **Magnitude** - ``sqrt((Gx^2 + Gy^2) / 2)`` with decorrelated squaring and
  the hyperspace binary-search square root (the paper notes the ``1/sqrt 2``
  scale cancels downstream).  A cheap ``l1`` mode (``(|Gx| + |Gy|)/2``) is
  provided for large sweeps.
* **Angle binning** - the paper's monotone-tan scheme: quadrant localization
  from the gradient signs, then comparisons of ``tan(theta)`` against bin
  boundaries via the alpha-vector ``0.5 (sigma V_|Gy|) (+) 0.5 (-V_{r |Gx|})``
  (and the reciprocal/cot form when ``|r| > 1``).  The bin decision - like
  every comparison in the paper - is a similarity readout, so bin indices
  and bin *counts* are legitimately scalar quantities.
* **Histogram accumulation** - each (cell, bin) accumulates the *bundle*
  (integer component-wise sum) of the magnitude hypervectors of every pixel
  that voted for the bin, plus the exact vote count from the binning stage.
  The bundle decodes to ``count * mean in-bin magnitude``; together with the
  count this is the classic per-cell histogram.  Bundling all in-bin pixels
  (rather than stochastic component subsampling) averages the sign noise of
  each component over the bin population, which keeps query-to-query
  similarity well above the ``1/sqrt(D)`` noise floor.

The extractor finally binds each (cell, bin) magnitude hypervector to a
fixed positional key, weights it by its count fraction, and bundles
everything into one *query hypervector*: feature extraction hands learning a
vector that is already in hyperspace, which is why HDFace's classifier needs
no encoding step (paper Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng, random_hypervector
from ..core.stochastic import StochasticCodec
from .gradients import cell_grid

__all__ = ["HDHOGExtractor", "HDHOGResult"]


def _identity_injector(hv, stage):
    return hv


@dataclass
class HDHOGResult:
    """Output of the hyperspace HOG pipeline.

    Attributes
    ----------
    bundles:
        ``(n_y, n_x, B, D)`` int16 bundled hypervectors: the component-wise
        sum of the magnitude hypervectors of every pixel that voted for the
        (cell, bin).  Decodes to ``count * mean in-bin magnitude``.
    counts:
        ``(n_y, n_x, B)`` int64 vote counts per (cell, bin).
    cell_pixels:
        Pixels per cell (``cell_size ** 2``), the histogram normalizer.
    """

    bundles: np.ndarray
    counts: np.ndarray
    cell_pixels: int

    @property
    def grid(self):
        """(n_cells_y, n_cells_x, n_bins)."""
        return self.counts.shape

    @property
    def fractions(self):
        """Vote-count fractions ``counts / cell_pixels``."""
        return self.counts / float(self.cell_pixels)


class HDHOGExtractor:
    """HOG computed with stochastic hypervector arithmetic.

    Parameters
    ----------
    dim:
        Hypervector dimensionality ``D`` (shared between feature extraction
        and learning, as in the paper's D=4k configuration).
    cell_size:
        Pixels per cell side.
    n_bins:
        Signed orientation bins; must be divisible by 4 so bin boundaries
        nest into quadrants (the paper uses 8).
    levels:
        Pixel-intensity quantization levels for the base-hypervector
        codebook (Fig. 1a); 256 matches 8-bit images.
    magnitude:
        ``"l2_scaled"`` (paper: squares + hyperspace sqrt) or ``"l1"``
        (fast ``(|Gx|+|Gy|)/2`` approximation).
    sqrt_iters:
        Binary-search iterations for the hyperspace square root.
    gamma:
        Apply Dalal-Triggs-style square-root compression: one extra
        hyperspace sqrt on the per-pixel magnitudes and a matching
        square root on the count weights.  Stochastic similarity is
        multiplicative (``delta(V_h, V_h') = h * h'``), so compressing the
        small HOG values toward 1 is what lifts image-to-image similarity
        above the ``1/sqrt(D)`` noise floor; without it (ablation bench)
        learning quality collapses.
    seed_or_rng:
        Randomness for the codec, codebook and positional keys.

    Examples
    --------
    >>> ext = HDHOGExtractor(dim=1024, cell_size=8, seed_or_rng=0)
    >>> q = ext.extract(np.random.default_rng(0).random((16, 16)))
    >>> q.shape
    (1024,)
    """

    def __init__(self, dim=4096, cell_size=8, n_bins=8, levels=256,
                 magnitude="l2_scaled", sqrt_iters=8, gamma=True,
                 seed_or_rng=None, codec=None):
        if n_bins % 4 != 0:
            raise ValueError("n_bins must be divisible by 4 (quadrant binning)")
        if magnitude not in ("l2_scaled", "l1"):
            raise ValueError(f"unknown magnitude mode {magnitude!r}")
        rng = as_rng(seed_or_rng)
        self.codec = codec if codec is not None else StochasticCodec(dim, rng)
        self.dim = self.codec.dim
        self.cell_size = int(cell_size)
        self.n_bins = int(n_bins)
        self.levels = int(levels)
        self.magnitude = magnitude
        self.sqrt_iters = int(sqrt_iters)
        self.gamma = bool(gamma)
        self._rng = rng
        # Deterministic per-intensity codebook: the paper's base hypervector
        # generation assigns *one* hypervector per pixel value (Fig. 1a).
        grid = np.linspace(0.0, 1.0, self.levels)
        self._pixel_table = self.codec.construct(grid)
        # One random key per orientation bin; cell position is bound in by
        # rotating the bin key (the rho primitive), so any grid size works.
        self._bin_keys = random_hypervector(self.dim, rng, shape=(self.n_bins,))
        self._key_cache = {}
        # Interior bin boundaries within the first-quadrant fold, as tangents.
        per_quad = self.n_bins // 4
        angles = (np.arange(1, per_quad)) * (2.0 * np.pi / self.n_bins)
        self._boundary_tans = np.tan(angles)

    # ------------------------------------------------------------------
    # stage 1: base hypervector generation
    # ------------------------------------------------------------------
    def encode_pixels(self, image):
        """Map an ``(H, W)`` image in [0, 1] to pixel hypervectors ``(H, W, D)``."""
        img = np.asarray(image, dtype=np.float64)
        if img.ndim != 2:
            raise ValueError(f"expected 2-D image, got {img.shape}")
        if img.min() < -1e-9 or img.max() > 1.0 + 1e-9:
            raise ValueError("image values must lie in [0, 1]")
        idx = np.round(np.clip(img, 0, 1) * (self.levels - 1)).astype(np.int64)
        return self._pixel_table[idx]

    # ------------------------------------------------------------------
    # stage 2: gradients
    # ------------------------------------------------------------------
    def gradients(self, pixel_hvs):
        """Hyperspace gradients ``(V_Gx, V_Gy)``, replicate-padded borders.

        Each output hypervector represents the halved central difference of
        Sec. 4.3, computed by the stochastic subtraction ``V_a (+) (-V_b)``.
        """
        p = np.pad(pixel_hvs, ((1, 1), (1, 1), (0, 0)), mode="edge")
        v_gx = self.codec.sub_half(p[2:, 1:-1], p[:-2, 1:-1])
        v_gy = self.codec.sub_half(p[1:-1, 2:], p[1:-1, :-2])
        return v_gx, v_gy

    # ------------------------------------------------------------------
    # stage 3: magnitude
    # ------------------------------------------------------------------
    def _abs(self, hv, signs):
        """Conditional negation: ``V_|a|`` given precomputed comparison signs."""
        flip = np.where(signs < 0, -1, 1).astype(np.int8)
        return (hv * flip[..., None]).astype(np.int8, copy=False)

    def magnitudes(self, v_gx, v_gy, signs_x=None, signs_y=None):
        """Magnitude hypervectors for every pixel.

        ``l2_scaled`` follows the paper: square each gradient (decorrelated),
        average (which contributes the /2), then the binary-search square
        root.  ``l1`` uses hyperspace absolute values and one average.
        """
        if self.magnitude == "l2_scaled":
            sq = self.codec.add_half(self.codec.square(v_gx), self.codec.square(v_gy))
            mag = self.codec.sqrt(sq, iters=self.sqrt_iters)
        else:
            if signs_x is None:
                signs_x = np.asarray(self.codec.sign_of(v_gx))
            if signs_y is None:
                signs_y = np.asarray(self.codec.sign_of(v_gy))
            mag = self.codec.add_half(self._abs(v_gx, signs_x), self._abs(v_gy, signs_y))
        if self.gamma:
            mag = self.codec.sqrt(mag, iters=self.sqrt_iters)
        return mag

    # ------------------------------------------------------------------
    # stage 4: angle binning
    # ------------------------------------------------------------------
    def angle_bins(self, v_gx, v_gy):
        """Signed orientation bin per pixel via the paper's tan comparisons.

        Returns the integer bin array plus the gradient sign arrays (reused
        by the ``l1`` magnitude path).  The quadrant comes from the signs of
        ``Gx``/``Gy`` (hyperspace comparisons against zero); the position
        within the quadrant fold comes from comparing ``|Gy|`` against
        ``r |Gx|`` (boundary tangent ``r <= 1``) or ``|Gy| / r`` against
        ``|Gx|`` (``r > 1``), each realized as the decoded sign of the
        paper's alpha hypervector.
        """
        batch = v_gx.shape[:-1]
        signs_x = np.asarray(self.codec.sign_of(v_gx))
        signs_y = np.asarray(self.codec.sign_of(v_gy))
        abs_gx = self._abs(v_gx, signs_x)
        abs_gy = self._abs(v_gy, signs_y)

        # Count how many first-quadrant-fold boundaries theta_k the gradient
        # direction phi = atan(|Gy| / |Gx|) exceeds.  Each decision is the
        # sign of the paper's alpha quantity, read out as a similarity
        # difference (see StochasticCodec.compare).
        count = np.zeros(batch, dtype=np.int64)
        for r in self._boundary_tans:
            if abs(r) <= 1.0:
                # alpha = (|Gy| - r |Gx|) / 2 ; r|Gx| built by stochastic
                # multiplication with a freshly constructed constant.
                r_gx = self.codec.multiply(self.codec.construct(np.full(batch, r)), abs_gx)
                count += (np.asarray(self.codec.compare(abs_gy, r_gx)) > 0).astype(np.int64)
            else:
                # alpha = ((1/r) |Gy| - |Gx|) / 2 for steep boundaries.
                inv_gy = self.codec.multiply(
                    self.codec.construct(np.full(batch, 1.0 / r)), abs_gy
                )
                count += (np.asarray(self.codec.compare(inv_gy, abs_gx)) > 0).astype(np.int64)

        per_quad = self.n_bins // 4
        q1 = (signs_x >= 0) & (signs_y >= 0)
        q2 = (signs_x < 0) & (signs_y >= 0)
        q3 = (signs_x < 0) & (signs_y < 0)
        q4 = (signs_x >= 0) & (signs_y < 0)
        bins = np.zeros(batch, dtype=np.int64)
        bins[q1] = count[q1]
        bins[q2] = 2 * per_quad - 1 - count[q2]
        bins[q3] = 2 * per_quad + count[q3]
        bins[q4] = 4 * per_quad - 1 - count[q4]
        return np.clip(bins, 0, self.n_bins - 1), signs_x, signs_y

    # ------------------------------------------------------------------
    # stage 5: histogram accumulation
    # ------------------------------------------------------------------
    def cell_histograms(self, v_mag, bins):
        """Per-(cell, bin) bundled magnitude hypervectors and vote counts.

        For every (cell, bin), the magnitude hypervectors of the pixels that
        voted for the bin are bundled by component-wise integer summation -
        HDC's memorization primitive.  The bundle decodes to
        ``count * mean in-bin magnitude``; dividing by the cell pixel count
        recovers the classic normalized histogram.  Empty bins bundle to the
        zero vector.
        """
        h, w = bins.shape
        n_y, n_x = cell_grid((h, w), self.cell_size)
        c = self.cell_size
        cc = c * c
        mag = v_mag[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c, self.dim)
        mag = mag.transpose(0, 2, 1, 3, 4).reshape(n_y, n_x, cc, self.dim)
        pix = bins[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        pix = pix.transpose(0, 2, 1, 3).reshape(n_y, n_x, cc)

        counts = np.empty((n_y, n_x, self.n_bins), dtype=np.int64)
        bundles = np.empty((n_y, n_x, self.n_bins, self.dim), dtype=np.int16)
        for b in range(self.n_bins):
            member = pix == b
            counts[:, :, b] = member.sum(axis=2)
            # Mask non-members to 0 with a bitwise select (0/-1 mask), then
            # bundle by summing over the cell's pixels.
            mask = (0 - member.view(np.int8))[..., None]
            bundles[:, :, b] = (mag & mask).sum(axis=2, dtype=np.int16)
        return HDHOGResult(bundles, counts, cc)

    # ------------------------------------------------------------------
    # stage 6: query bundling
    # ------------------------------------------------------------------
    def _keys(self, n_y, n_x):
        """Positional key tensor ``(n_y, n_x, B, D)`` (cached per grid)."""
        shape = (n_y, n_x)
        if shape not in self._key_cache:
            offsets = (np.arange(n_y)[:, None] * n_x + np.arange(n_x)[None, :]).ravel()
            cols = (np.arange(self.dim)[None, :] - offsets[:, None]) % self.dim
            rolled = self._bin_keys[:, cols]  # (B, n_cells, D)
            keys = rolled.transpose(1, 0, 2).reshape(n_y, n_x, self.n_bins, self.dim)
            self._key_cache[shape] = np.ascontiguousarray(keys)
        return self._key_cache[shape]

    def bundle_query(self, result):
        """Bind (cell, bin) bundles to positional keys and sum into a query.

        Each bundle is rescaled so the feature it carries is the gamma-aware
        cell descriptor (``sqrt(fraction) * mean in-bin magnitude`` under
        gamma, the normalized histogram otherwise).  The returned float32
        query hypervector ``(D,)`` has dot products that approximate the dot
        product of the underlying HOG descriptors (key near-orthogonality
        kills the cross terms), so HDC learning can run directly on it.
        """
        n_y, n_x, n_bins = result.counts.shape
        keys = self._keys(n_y, n_x)
        bound = result.bundles.astype(np.float32) * keys.astype(np.float32)
        weighted = bound * self._scales(result)[..., None]
        return weighted.reshape(-1, self.dim).sum(axis=0)

    def _scales(self, result):
        """Per-(cell, bin) rescale turning a bundle into its feature value.

        A bundle decodes to ``count * mean``; multiplying by
        ``weight(fraction) / count`` leaves ``weight(fraction) * mean``, the
        same descriptor :meth:`repro.features.hog.HOGDescriptor.cell_features`
        computes.  Empty bins get scale 0.
        """
        counts = result.counts.astype(np.float32)
        frac = counts / float(result.cell_pixels)
        weight = np.sqrt(frac) if self.gamma else frac
        return np.divide(weight, counts, out=np.zeros_like(weight), where=counts > 0)

    # ------------------------------------------------------------------
    # public pipeline
    # ------------------------------------------------------------------
    def extract_histogram(self, image, injector=None):
        """Run the hyperspace pipeline up to the (cell, bin) hypervectors.

        ``injector(hv_array, stage)`` - if given - is applied to each
        intermediate hypervector tensor (stages ``pixels``, ``gx``, ``gy``,
        ``magnitude``, ``histogram``); the robustness campaign uses it to
        flip hypervector components and demonstrate holographic tolerance.
        """
        inject = injector or _identity_injector
        pixel_hvs = inject(self.encode_pixels(image), "pixels")
        v_gx, v_gy = self.gradients(pixel_hvs)
        v_gx = inject(v_gx, "gx")
        v_gy = inject(v_gy, "gy")
        bins, signs_x, signs_y = self.angle_bins(v_gx, v_gy)
        v_mag = self.magnitudes(v_gx, v_gy, signs_x, signs_y)
        v_mag = inject(v_mag, "magnitude")
        result = self.cell_histograms(v_mag, bins)
        result.bundles = inject(result.bundles, "histogram")
        return result

    def extract(self, image, injector=None):
        """Full pipeline: image -> query hypervector ``(D,)`` (float32)."""
        return self.bundle_query(self.extract_histogram(image, injector))

    def extract_batch(self, images, injector=None):
        """Query hypervectors for an ``(n, H, W)`` batch: ``(n, D)``."""
        images = np.asarray(images)
        if images.ndim != 3:
            raise ValueError(f"expected (n, H, W) batch, got {images.shape}")
        return np.stack([self.extract(im, injector) for im in images])

    def readout_histogram(self, result):
        """Decode the factored histogram to scalars ``(n_y, n_x, B)``.

        Diagnostic bridge to the original domain: the rescaled bundle decode
        compares directly against
        :meth:`repro.features.hog.HOGDescriptor.cell_features` with the same
        magnitude mode and gamma setting, up to stochastic noise.
        """
        return self.codec.decode(result.bundles.astype(np.float64)) * self._scales(result)

"""HOG feature extraction performed entirely in hyperdimensional space.

This module implements Section 4.3 of the paper: every pixel becomes a
stochastic hypervector and the whole HOG pipeline - gradients, magnitude,
orientation binning, histogram accumulation - runs on hypervectors using the
arithmetic of :class:`repro.core.stochastic.StochasticCodec`:

* **Gradients** - ``V_Gx = V_C[y+1,x] (+) (-V_C[y-1,x])`` represents
  ``(C_down - C_up) / 2`` exactly as in the paper.
* **Magnitude** - ``sqrt((Gx^2 + Gy^2) / 2)`` with decorrelated squaring and
  the hyperspace binary-search square root (the paper notes the ``1/sqrt 2``
  scale cancels downstream).  A cheap ``l1`` mode (``(|Gx| + |Gy|)/2``) is
  provided for large sweeps.
* **Angle binning** - the paper's monotone-tan scheme: quadrant localization
  from the gradient signs, then comparisons of ``tan(theta)`` against bin
  boundaries via the alpha-vector ``0.5 (sigma V_|Gy|) (+) 0.5 (-V_{r |Gx|})``
  (and the reciprocal/cot form when ``|r| > 1``).  The bin decision - like
  every comparison in the paper - is a similarity readout, so bin indices
  and bin *counts* are legitimately scalar quantities.
* **Histogram accumulation** - each (cell, bin) accumulates the *bundle*
  (integer component-wise sum) of the magnitude hypervectors of every pixel
  that voted for the bin, plus the exact vote count from the binning stage.
  The bundle decodes to ``count * mean in-bin magnitude``; together with the
  count this is the classic per-cell histogram.  Bundling all in-bin pixels
  (rather than stochastic component subsampling) averages the sign noise of
  each component over the bin population, which keeps query-to-query
  similarity well above the ``1/sqrt(D)`` noise floor.

The extractor finally binds each (cell, bin) magnitude hypervector to a
fixed positional key, weights it by its count fraction, and bundles
everything into one *query hypervector*: feature extraction hands learning a
vector that is already in hyperspace, which is why HDFace's classifier needs
no encoding step (paper Sec. 5).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng, random_hypervector
from ..core.keyed_noise import (KeyedNoise, RematerializingItemMemory,
                                replay_generator)
from ..core.stochastic import StochasticCodec, _bitselect, _bool_mask
from .gradients import cell_grid

__all__ = ["HDHOGExtractor", "HDHOGResult", "HDHOGFields"]


def _identity_injector(hv, stage):
    return hv


class _KeyedOps:
    """Codec facade whose randomness is position-keyed instead of stateful.

    Wraps a :class:`StochasticCodec` but replaces every rng-consuming
    primitive (fair-coin averages, constructions, the square-root search)
    with draws from a :class:`KeyedNoise` stream addressed by the op's
    sequence number and the *absolute* scene position of each element.  Two
    extractions that execute the same op sequence over regions of the same
    scene therefore agree bitwise wherever their regions overlap - the
    property that lets the shared-feature detection engine compute the
    expensive per-pixel stages once and slice them per window, while the
    per-window reference path recomputes them and still lands on identical
    hypervectors.

    The op counter advances only on rng-consuming calls, and the op
    sequence of an extraction is fixed by the extractor configuration (not
    by the data or the region size), so corresponding ops in different
    decompositions of the same scene always read the same stream.
    """

    def __init__(self, codec, noise, scene_shape, origin, size):
        self.codec = codec
        self.noise = noise
        self.scene_width = int(scene_shape[1])
        y0, x0 = origin
        h, w = size
        self.row0 = int(y0)
        self.n_rows = int(h)
        self._cols = slice(int(x0), int(x0) + int(w))
        self._op = 0

    def _stage(self, kind):
        name = f"hog.{self._op}.{kind}"
        self._op += 1
        return name

    def _rows_of(self, flat):
        """Reshape per-row stream values to (rows, W, D) and slice columns."""
        full = flat.reshape(self.n_rows, self.scene_width, self.codec.dim)
        return full[:, self._cols]

    # -- rng-consuming primitives, keyed ------------------------------
    def add_half(self, a, b):
        mask = self._rows_of(self.noise.coin_mask(
            self._stage("coin"), self.row0, self.n_rows,
            self.scene_width * self.codec.dim))
        return _bitselect(mask, np.asarray(a, np.int8), np.asarray(b, np.int8))

    def sub_half(self, a, b):
        return self.add_half(a, self.codec.negate(b))

    def construct(self, values):
        values = np.asarray(values, dtype=np.float64)
        p_plus = ((1.0 + values[..., None]) / 2.0).astype(np.float32)
        draws = self._rows_of(self.noise.uniform(
            self._stage("uniform"), self.row0, self.n_rows,
            self.scene_width * self.codec.dim))
        mask = _bool_mask(draws < p_plus)
        return _bitselect(mask, self.codec.basis, self.codec._neg_basis)

    def sqrt(self, hv, iters=12):
        hv = np.asarray(hv, np.int8)
        batch = hv.shape[:-1]
        low = self.construct(np.zeros(batch))
        high = self.codec.one(batch)
        target = self.codec.decode(hv)
        for _ in range(int(iters)):
            mid = self.add_half(low, high)
            mid_sq = self.codec.square(mid)
            mask = _bool_mask(self.codec.decode(mid_sq) > target)[..., None]
            high = _bitselect(mask, mid, high)
            low = _bitselect(mask, low, mid)
        return self.add_half(low, high)

    # -- deterministic primitives delegate to the codec ----------------
    def negate(self, hv):
        return self.codec.negate(hv)

    def multiply(self, a, b):
        return self.codec.multiply(a, b)

    def square(self, hv):
        return self.codec.square(hv)

    def decode(self, hv):
        return self.codec.decode(hv)

    def compare(self, a, b, tolerance=0.0):
        return self.codec.compare(a, b, tolerance)

    def sign_of(self, hv, tolerance=0.0):
        return self.codec.sign_of(hv, tolerance)


@dataclass
class HDHOGResult:
    """Output of the hyperspace HOG pipeline.

    Attributes
    ----------
    bundles:
        ``(n_y, n_x, B, D)`` int16 bundled hypervectors: the component-wise
        sum of the magnitude hypervectors of every pixel that voted for the
        (cell, bin).  Decodes to ``count * mean in-bin magnitude``.
    counts:
        ``(n_y, n_x, B)`` int64 vote counts per (cell, bin).
    cell_pixels:
        Pixels per cell (``cell_size ** 2``), the histogram normalizer.
    """

    bundles: np.ndarray
    counts: np.ndarray
    cell_pixels: int

    @property
    def grid(self):
        """(n_cells_y, n_cells_x, n_bins)."""
        return self.counts.shape

    @property
    def fractions(self):
        """Vote-count fractions ``counts / cell_pixels``."""
        return self.counts / float(self.cell_pixels)


@dataclass
class HDHOGFields:
    """Whole-image per-pixel products of the shared extraction pass.

    Holds everything the expensive stages (pixel encoding, gradients,
    magnitudes, angle binning) produce, at pixel granularity, so that any
    window's cell histograms can be assembled afterwards by pure integer
    aggregation - no hypervector arithmetic left.

    Attributes
    ----------
    mag:
        ``(H, W, D)`` int8 magnitude hypervector per pixel.
    bins:
        ``(H, W)`` int64 orientation bin index per pixel.
    """

    mag: np.ndarray
    bins: np.ndarray

    @property
    def shape(self):
        """(H, W) of the underlying image."""
        return self.bins.shape

    def nbytes(self):
        """Approximate memory footprint of the cached fields."""
        return int(self.mag.nbytes + self.bins.nbytes)


class HDHOGExtractor:
    """HOG computed with stochastic hypervector arithmetic.

    Parameters
    ----------
    dim:
        Hypervector dimensionality ``D`` (shared between feature extraction
        and learning, as in the paper's D=4k configuration).
    cell_size:
        Pixels per cell side.
    n_bins:
        Signed orientation bins; must be divisible by 4 so bin boundaries
        nest into quadrants (the paper uses 8).
    levels:
        Pixel-intensity quantization levels for the base-hypervector
        codebook (Fig. 1a); 256 matches 8-bit images.
    magnitude:
        ``"l2_scaled"`` (paper: squares + hyperspace sqrt) or ``"l1"``
        (fast ``(|Gx|+|Gy|)/2`` approximation).
    sqrt_iters:
        Binary-search iterations for the hyperspace square root.
    gamma:
        Apply Dalal-Triggs-style square-root compression: one extra
        hyperspace sqrt on the per-pixel magnitudes and a matching
        square root on the count weights.  Stochastic similarity is
        multiplicative (``delta(V_h, V_h') = h * h'``), so compressing the
        small HOG values toward 1 is what lifts image-to-image similarity
        above the ``1/sqrt(D)`` noise floor; without it (ablation bench)
        learning quality collapses.
    seed_or_rng:
        Randomness for the codec, codebook and positional keys.

    Examples
    --------
    >>> ext = HDHOGExtractor(dim=1024, cell_size=8, seed_or_rng=0)
    >>> q = ext.extract(np.random.default_rng(0).random((16, 16)))
    >>> q.shape
    (1024,)
    """

    def __init__(self, dim=4096, cell_size=8, n_bins=8, levels=256,
                 magnitude="l2_scaled", sqrt_iters=8, gamma=True,
                 seed_or_rng=None, codec=None, store_policy="store"):
        if n_bins % 4 != 0:
            raise ValueError("n_bins must be divisible by 4 (quadrant binning)")
        if magnitude not in ("l2_scaled", "l1"):
            raise ValueError(f"unknown magnitude mode {magnitude!r}")
        if store_policy not in RematerializingItemMemory.POLICIES:
            raise ValueError(
                f"unknown store_policy {store_policy!r}; expected one of "
                f"{RematerializingItemMemory.POLICIES}")
        rng = as_rng(seed_or_rng)
        basis_state = rng.bit_generator.state if codec is None else None
        self.codec = codec if codec is not None else StochasticCodec(dim, rng)
        self.dim = self.codec.dim
        self.cell_size = int(cell_size)
        self.n_bins = int(n_bins)
        self.levels = int(levels)
        self.magnitude = magnitude
        self.sqrt_iters = int(sqrt_iters)
        self.gamma = bool(gamma)
        self.store_policy = store_policy
        self._rng = rng
        self._keyed_noise = None
        # Deterministic per-intensity codebook: the paper's base hypervector
        # generation assigns *one* hypervector per pixel value (Fig. 1a).
        # Both item memories are pure functions of generator states captured
        # right before their construction draws, which is what makes them
        # rematerializable bitwise (the live stream still advances exactly
        # as before, so downstream consumers of ``rng`` are unaffected).
        grid = np.linspace(0.0, 1.0, self.levels)
        pixel_state = self.codec.rng.bit_generator.state
        pixel_table = self.codec.construct(grid)
        self._pixel_memory = RematerializingItemMemory(
            self._pixel_regen(pixel_state, grid),
            policy=store_policy, name="pixel_table", golden=pixel_table)
        # One random key per orientation bin; cell position is bound in by
        # rotating the bin key (the rho primitive), so any grid size works.
        key_state = rng.bit_generator.state
        bin_keys = random_hypervector(self.dim, rng, shape=(self.n_bins,))
        self._bin_key_memory = RematerializingItemMemory(
            lambda: random_hypervector(self.dim, replay_generator(key_state),
                                       shape=(self.n_bins,)),
            policy=store_policy, name="bin_keys", golden=bin_keys,
            on_repair=lambda _: self._key_cache.clear())
        # The codec basis (the base hypervector V_1) must stay resident -
        # every stochastic primitive binds against it - so under protective
        # policies it gets digest-verify + regenerate-repair instead of
        # full rematerialization.  Only possible when we created the codec.
        self._basis_memory = None
        if basis_state is not None:
            basis_policy = "store" if store_policy == "store" else "verify"
            self._basis_memory = RematerializingItemMemory(
                lambda: random_hypervector(self.dim,
                                           replay_generator(basis_state)),
                policy=basis_policy, name="basis", golden=self.codec.basis,
                on_repair=self._rebind_basis)
        self._key_cache = {}
        # Interior bin boundaries within the first-quadrant fold, as tangents.
        per_quad = self.n_bins // 4
        angles = (np.arange(1, per_quad)) * (2.0 * np.pi / self.n_bins)
        self._boundary_tans = np.tan(angles)

    def _pixel_regen(self, state, grid):
        """Closure regenerating the pixel codebook from a captured rng state."""
        def regen():
            clone = StochasticCodec(self.dim, replay_generator(state),
                                    basis=self.codec.basis)
            return clone.construct(grid)
        return regen

    def _rebind_basis(self, basis):
        """Refresh derived basis state after an in-place basis repair."""
        self.codec._neg_basis = (-basis).astype(np.int8)

    @property
    def _pixel_table(self):
        return self._pixel_memory.array()

    @_pixel_table.setter
    def _pixel_table(self, value):
        # adopt an external table (deserialization): the saved array itself
        # becomes the regeneration source
        self._pixel_memory = RematerializingItemMemory.from_array(
            value, policy=self.store_policy, name="pixel_table")

    @property
    def _bin_keys(self):
        return self._bin_key_memory.array()

    @_bin_keys.setter
    def _bin_keys(self, value):
        self._bin_key_memory = RematerializingItemMemory.from_array(
            value, policy=self.store_policy, name="bin_keys",
            on_repair=lambda _: self._key_cache.clear())

    def item_memories(self):
        """The extractor's long-lived item memories, for scrub registration.

        The basis comes first: the pixel-table regen closure binds against
        it, so a scrubber sweeping in order repairs the basis before any
        memory whose regeneration depends on it.
        """
        out = {}
        if self._basis_memory is not None:
            out["basis"] = self._basis_memory
        out["pixel_table"] = self._pixel_memory
        out["bin_keys"] = self._bin_key_memory
        return out

    # ------------------------------------------------------------------
    # stage 1: base hypervector generation
    # ------------------------------------------------------------------
    def encode_pixels(self, image):
        """Map an ``(H, W)`` image in [0, 1] to pixel hypervectors ``(H, W, D)``."""
        img = np.asarray(image, dtype=np.float64)
        if img.ndim != 2:
            raise ValueError(f"expected 2-D image, got {img.shape}")
        if img.min() < -1e-9 or img.max() > 1.0 + 1e-9:
            raise ValueError("image values must lie in [0, 1]")
        idx = np.round(np.clip(img, 0, 1) * (self.levels - 1)).astype(np.int64)
        return self._pixel_table[idx]

    # ------------------------------------------------------------------
    # stage 2: gradients
    # ------------------------------------------------------------------
    def gradients(self, pixel_hvs, ops=None):
        """Hyperspace gradients ``(V_Gx, V_Gy)``, replicate-padded borders.

        Each output hypervector represents the halved central difference of
        Sec. 4.3, computed by the stochastic subtraction ``V_a (+) (-V_b)``.
        ``ops`` substitutes the randomness source (the shared-feature engine
        passes a position-keyed facade); default is the stateful codec.
        """
        ops = self.codec if ops is None else ops
        p = np.pad(pixel_hvs, ((1, 1), (1, 1), (0, 0)), mode="edge")
        v_gx = ops.sub_half(p[2:, 1:-1], p[:-2, 1:-1])
        v_gy = ops.sub_half(p[1:-1, 2:], p[1:-1, :-2])
        return v_gx, v_gy

    # ------------------------------------------------------------------
    # stage 3: magnitude
    # ------------------------------------------------------------------
    def _abs(self, hv, signs):
        """Conditional negation: ``V_|a|`` given precomputed comparison signs."""
        flip = np.where(signs < 0, -1, 1).astype(np.int8)
        return (hv * flip[..., None]).astype(np.int8, copy=False)

    def magnitudes(self, v_gx, v_gy, signs_x=None, signs_y=None, ops=None):
        """Magnitude hypervectors for every pixel.

        ``l2_scaled`` follows the paper: square each gradient (decorrelated),
        average (which contributes the /2), then the binary-search square
        root.  ``l1`` uses hyperspace absolute values and one average.
        ``ops`` substitutes the randomness source (see :meth:`gradients`).
        """
        ops = self.codec if ops is None else ops
        if self.magnitude == "l2_scaled":
            sq = ops.add_half(ops.square(v_gx), ops.square(v_gy))
            mag = ops.sqrt(sq, iters=self.sqrt_iters)
        else:
            if signs_x is None:
                signs_x = np.asarray(ops.sign_of(v_gx))
            if signs_y is None:
                signs_y = np.asarray(ops.sign_of(v_gy))
            mag = ops.add_half(self._abs(v_gx, signs_x), self._abs(v_gy, signs_y))
        if self.gamma:
            mag = ops.sqrt(mag, iters=self.sqrt_iters)
        return mag

    # ------------------------------------------------------------------
    # stage 4: angle binning
    # ------------------------------------------------------------------
    def angle_bins(self, v_gx, v_gy, ops=None):
        """Signed orientation bin per pixel via the paper's tan comparisons.

        Returns the integer bin array plus the gradient sign arrays (reused
        by the ``l1`` magnitude path).  The quadrant comes from the signs of
        ``Gx``/``Gy`` (hyperspace comparisons against zero); the position
        within the quadrant fold comes from comparing ``|Gy|`` against
        ``r |Gx|`` (boundary tangent ``r <= 1``) or ``|Gy| / r`` against
        ``|Gx|`` (``r > 1``), each realized as the decoded sign of the
        paper's alpha hypervector.  ``ops`` substitutes the randomness
        source (see :meth:`gradients`).
        """
        ops = self.codec if ops is None else ops
        batch = v_gx.shape[:-1]
        signs_x = np.asarray(ops.sign_of(v_gx))
        signs_y = np.asarray(ops.sign_of(v_gy))
        abs_gx = self._abs(v_gx, signs_x)
        abs_gy = self._abs(v_gy, signs_y)

        # Count how many first-quadrant-fold boundaries theta_k the gradient
        # direction phi = atan(|Gy| / |Gx|) exceeds.  Each decision is the
        # sign of the paper's alpha quantity, read out as a similarity
        # difference (see StochasticCodec.compare).
        count = np.zeros(batch, dtype=np.int64)
        for r in self._boundary_tans:
            if abs(r) <= 1.0:
                # alpha = (|Gy| - r |Gx|) / 2 ; r|Gx| built by stochastic
                # multiplication with a freshly constructed constant.
                r_gx = ops.multiply(ops.construct(np.full(batch, r)), abs_gx)
                count += (np.asarray(ops.compare(abs_gy, r_gx)) > 0).astype(np.int64)
            else:
                # alpha = ((1/r) |Gy| - |Gx|) / 2 for steep boundaries.
                inv_gy = ops.multiply(
                    ops.construct(np.full(batch, 1.0 / r)), abs_gy
                )
                count += (np.asarray(ops.compare(inv_gy, abs_gx)) > 0).astype(np.int64)

        per_quad = self.n_bins // 4
        q1 = (signs_x >= 0) & (signs_y >= 0)
        q2 = (signs_x < 0) & (signs_y >= 0)
        q3 = (signs_x < 0) & (signs_y < 0)
        q4 = (signs_x >= 0) & (signs_y < 0)
        bins = np.zeros(batch, dtype=np.int64)
        bins[q1] = count[q1]
        bins[q2] = 2 * per_quad - 1 - count[q2]
        bins[q3] = 2 * per_quad + count[q3]
        bins[q4] = 4 * per_quad - 1 - count[q4]
        return np.clip(bins, 0, self.n_bins - 1), signs_x, signs_y

    # ------------------------------------------------------------------
    # stage 5: histogram accumulation
    # ------------------------------------------------------------------
    def cell_histograms(self, v_mag, bins):
        """Per-(cell, bin) bundled magnitude hypervectors and vote counts.

        For every (cell, bin), the magnitude hypervectors of the pixels that
        voted for the bin are bundled by component-wise integer summation -
        HDC's memorization primitive.  The bundle decodes to
        ``count * mean in-bin magnitude``; dividing by the cell pixel count
        recovers the classic normalized histogram.  Empty bins bundle to the
        zero vector.
        """
        h, w = bins.shape
        n_y, n_x = cell_grid((h, w), self.cell_size)
        c = self.cell_size
        cc = c * c
        mag = v_mag[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c, self.dim)
        mag = mag.transpose(0, 2, 1, 3, 4).reshape(n_y, n_x, cc, self.dim)
        pix = bins[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        pix = pix.transpose(0, 2, 1, 3).reshape(n_y, n_x, cc)

        counts = np.empty((n_y, n_x, self.n_bins), dtype=np.int64)
        bundles = np.empty((n_y, n_x, self.n_bins, self.dim), dtype=np.int16)
        for b in range(self.n_bins):
            member = pix == b
            counts[:, :, b] = member.sum(axis=2)
            # Mask non-members to 0 with a bitwise select (0/-1 mask), then
            # bundle by summing over the cell's pixels.
            mask = (0 - member.view(np.int8))[..., None]
            bundles[:, :, b] = (mag & mask).sum(axis=2, dtype=np.int16)
        return HDHOGResult(bundles, counts, cc)

    # ------------------------------------------------------------------
    # stage 6: query bundling
    # ------------------------------------------------------------------
    def _keys(self, n_y, n_x):
        """Positional key tensor ``(n_y, n_x, B, D)`` (cached per grid)."""
        shape = (n_y, n_x)
        if shape not in self._key_cache:
            offsets = (np.arange(n_y)[:, None] * n_x + np.arange(n_x)[None, :]).ravel()
            cols = (np.arange(self.dim)[None, :] - offsets[:, None]) % self.dim
            rolled = self._bin_keys[:, cols]  # (B, n_cells, D)
            keys = rolled.transpose(1, 0, 2).reshape(n_y, n_x, self.n_bins, self.dim)
            self._key_cache[shape] = np.ascontiguousarray(keys)
        return self._key_cache[shape]

    def bundle_query(self, result):
        """Bind (cell, bin) bundles to positional keys and sum into a query.

        Each bundle is rescaled so the feature it carries is the gamma-aware
        cell descriptor (``sqrt(fraction) * mean in-bin magnitude`` under
        gamma, the normalized histogram otherwise).  The returned float32
        query hypervector ``(D,)`` has dot products that approximate the dot
        product of the underlying HOG descriptors (key near-orthogonality
        kills the cross terms), so HDC learning can run directly on it.
        """
        n_y, n_x, n_bins = result.counts.shape
        keys = self._keys(n_y, n_x)
        bound = result.bundles.astype(np.float32) * keys.astype(np.float32)
        weighted = bound * self._scales(result)[..., None]
        return weighted.reshape(-1, self.dim).sum(axis=0)

    def _scales(self, result):
        """Per-(cell, bin) rescale turning a bundle into its feature value.

        A bundle decodes to ``count * mean``; multiplying by
        ``weight(fraction) / count`` leaves ``weight(fraction) * mean``, the
        same descriptor :meth:`repro.features.hog.HOGDescriptor.cell_features`
        computes.  Empty bins get scale 0.
        """
        counts = result.counts.astype(np.float32)
        frac = counts / float(result.cell_pixels)
        weight = np.sqrt(frac) if self.gamma else frac
        return np.divide(weight, counts, out=np.zeros_like(weight), where=counts > 0)

    # ------------------------------------------------------------------
    # public pipeline
    # ------------------------------------------------------------------
    def extract_histogram(self, image, injector=None):
        """Run the hyperspace pipeline up to the (cell, bin) hypervectors.

        ``injector(hv_array, stage)`` - if given - is applied to each
        intermediate hypervector tensor (stages ``pixels``, ``gx``, ``gy``,
        ``magnitude``, ``histogram``); the robustness campaign uses it to
        flip hypervector components and demonstrate holographic tolerance.
        """
        inject = injector or _identity_injector
        pixel_hvs = inject(self.encode_pixels(image), "pixels")
        v_gx, v_gy = self.gradients(pixel_hvs)
        v_gx = inject(v_gx, "gx")
        v_gy = inject(v_gy, "gy")
        bins, signs_x, signs_y = self.angle_bins(v_gx, v_gy)
        v_mag = self.magnitudes(v_gx, v_gy, signs_x, signs_y)
        v_mag = inject(v_mag, "magnitude")
        result = self.cell_histograms(v_mag, bins)
        result.bundles = inject(result.bundles, "histogram")
        return result

    def extract(self, image, injector=None):
        """Full pipeline: image -> query hypervector ``(D,)`` (float32)."""
        return self.bundle_query(self.extract_histogram(image, injector))

    def extract_batch(self, images, injector=None):
        """Query hypervectors for an ``(n, H, W)`` batch: ``(n, D)``."""
        images = np.asarray(images)
        if images.ndim != 3:
            raise ValueError(f"expected (n, H, W) batch, got {images.shape}")
        return np.stack([self.extract(im, injector) for im in images])

    # ------------------------------------------------------------------
    # shared-feature pass: whole-image fields, window slicing
    # ------------------------------------------------------------------
    def _noise(self):
        """Keyed noise source, derived deterministically from the codec basis.

        Tied to the basis (not the stateful rng) so that creating it never
        perturbs the draw sequence of the legacy per-image pipeline, and so
        that extractors built from the same seed replay the same streams.
        """
        if self._keyed_noise is None:
            digest = hashlib.blake2s(self.codec.basis.tobytes(),
                                     digest_size=8).digest()
            self._keyed_noise = KeyedNoise(int.from_bytes(digest, "little"))
        return self._keyed_noise

    def _fields_region(self, scene, origin, size, injector=None):
        """Stages 1-4 over one region of ``scene`` with position-keyed noise.

        The region is extracted with a one-pixel context ring (clamped at
        the scene border, which reproduces the replicate padding of
        :meth:`gradients` there), so gradients at region edges use the true
        neighbouring scene pixels.  Together with the keyed noise this makes
        the per-pixel output independent of the region decomposition.
        """
        inject = injector or _identity_injector
        scene = np.asarray(scene, dtype=np.float64)
        if scene.ndim != 2:
            raise ValueError(f"expected 2-D scene, got {scene.shape}")
        if scene.min() < -1e-9 or scene.max() > 1.0 + 1e-9:
            raise ValueError("scene values must lie in [0, 1]")
        sh, sw = scene.shape
        y0, x0 = (int(origin[0]), int(origin[1]))
        h, w = (int(size[0]), int(size[1]))
        if y0 < 0 or x0 < 0 or y0 + h > sh or x0 + w > sw:
            raise ValueError(f"region {origin}+{size} outside scene {scene.shape}")
        rows = np.clip(np.arange(y0 - 1, y0 + h + 1), 0, sh - 1)
        cols = np.clip(np.arange(x0 - 1, x0 + w + 1), 0, sw - 1)
        idx = np.round(np.clip(scene[np.ix_(rows, cols)], 0, 1)
                       * (self.levels - 1)).astype(np.int64)
        pix = inject(self._pixel_table[idx], "pixels")

        ops = _KeyedOps(self.codec, self._noise(), scene.shape, (y0, x0), (h, w))
        v_gx = ops.sub_half(pix[2:, 1:-1], pix[:-2, 1:-1])
        v_gy = ops.sub_half(pix[1:-1, 2:], pix[1:-1, :-2])
        v_gx = inject(v_gx, "gx")
        v_gy = inject(v_gy, "gy")
        bins, signs_x, signs_y = self.angle_bins(v_gx, v_gy, ops=ops)
        v_mag = self.magnitudes(v_gx, v_gy, signs_x, signs_y, ops=ops)
        v_mag = inject(v_mag, "magnitude")
        return HDHOGFields(np.ascontiguousarray(v_mag, dtype=np.int8), bins)

    def extract_fields(self, scene, injector=None, strip_rows=None,
                       workers=1):
        """One shared pass over a whole scene: per-pixel magnitudes and bins.

        Runs pixel encoding, gradients, angle binning and magnitudes *once*
        over the full image with position-keyed noise, returning an
        :class:`HDHOGFields` from which any window's histogram follows by
        integer aggregation (:meth:`cell_grid_at`, :meth:`cell_histograms`).
        This is the whole-image half of the shared-feature detection engine.

        The scene is processed in horizontal strips of ``strip_rows`` rows
        (auto-sized to keep each intermediate tensor cache-resident when
        None): the stochastic ops are memory-bound, and working on
        megabyte-scale tiles instead of the full ``(H, W, D)`` tensors is
        about 2x faster on large scenes.  Thanks to the position-keyed
        noise and the gradient context ring, the result is bitwise
        independent of the strip decomposition - which also makes the
        strips embarrassingly parallel: ``workers > 1`` processes them on
        a thread pool (each strip writes a disjoint row slice of the
        preallocated output, and the heavy NumPy kernels release the GIL)
        with results bitwise identical to the serial pass.
        """
        scene = np.asarray(scene, dtype=np.float64)
        if scene.ndim != 2:
            raise ValueError(f"expected 2-D scene, got {scene.shape}")
        h, w = scene.shape
        if strip_rows is None:
            # ~2 MB int8 per intermediate tensor, at least 8 rows per strip.
            strip_rows = max(8, (1 << 21) // max(w * self.dim, 1))
        strip_rows = int(strip_rows)
        if strip_rows >= h:
            return self._fields_region(scene, (0, 0), scene.shape, injector)
        mag = np.empty((h, w, self.dim), dtype=np.int8)
        bins = np.empty((h, w), dtype=np.int64)
        spans = [(r0, min(r0 + strip_rows, h))
                 for r0 in range(0, h, strip_rows)]

        def _strip(span):
            r0, r1 = span
            part = self._fields_region(scene, (r0, 0), (r1 - r0, w), injector)
            mag[r0:r1] = part.mag
            bins[r0:r1] = part.bins

        workers = min(int(workers), len(spans))
        if workers > 1:
            from concurrent.futures import ThreadPoolExecutor
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(_strip, spans))
        else:
            for span in spans:
                _strip(span)
        return HDHOGFields(mag, bins)

    def window_fields(self, scene, origin, window, injector=None):
        """Per-window recompute of the fields - the equivalence reference.

        Re-runs stages 1-4 on just the ``window``-square region anchored at
        ``origin``, drawing the *same* keyed noise the whole-scene pass
        would.  The result is bitwise equal to
        ``extract_fields(scene)`` sliced at the window, which is what the
        shared-vs-per-window equivalence test pins.
        """
        return self._fields_region(scene, origin, (int(window), int(window)),
                                   injector)

    def window_query(self, scene, origin, window, injector=None):
        """Reference query hypervector for one window (slow path).

        Recomputes every stage for the window alone; used as the legacy
        per-window baseline the shared engine is validated against.
        """
        fields = self.window_fields(scene, origin, window, injector)
        result = self.cell_histograms(fields.mag, fields.bins)
        if injector is not None:
            result.bundles = injector(result.bundles, "histogram")
        return self.bundle_query(result)

    def cell_grid_at(self, fields, row_starts, col_starts):
        """Cell histograms for cells anchored at arbitrary pixel offsets.

        For every anchor ``(y, x)`` in ``row_starts x col_starts`` this
        produces the same (cell, bin) bundle and vote count
        :meth:`cell_histograms` computes for the ``cell_size``-square block
        at that anchor - but via one per-bin cumulative-sum (box-filter)
        pass over the whole field instead of per-window re-aggregation, so
        overlapping windows share all of it.  Integer arithmetic
        throughout: the output is bitwise equal to the per-window
        reference.

        Returns an :class:`HDHOGResult` whose grid axes index
        ``row_starts`` and ``col_starts``.
        """
        c = self.cell_size
        h, w = fields.shape
        ys = np.asarray(row_starts, dtype=np.int64)
        xs = np.asarray(col_starts, dtype=np.int64)
        if ys.size == 0 or xs.size == 0:
            raise ValueError("need at least one row and one column anchor")
        if ((ys < 0) | (ys + c > h)).any() or ((xs < 0) | (xs + c > w)).any():
            raise ValueError("cell anchors must keep the cell inside the field")
        bundles = np.empty((len(ys), len(xs), self.n_bins, self.dim),
                           dtype=np.int16)
        counts = np.empty((len(ys), len(xs), self.n_bins), dtype=np.int64)
        bands = np.empty((len(ys), w, self.dim), dtype=np.int16)
        cbands = np.empty((len(ys), w), dtype=np.int64)
        for b in range(self.n_bins):
            member = fields.bins == b
            mask = (0 - member.view(np.int8))[..., None]
            masked = fields.mag & mask
            # Box sums in two banded passes: collapse the cell_size rows at
            # each row anchor, then the cell_size columns at each column
            # anchor within the band array.  Only anchor bands are touched,
            # and a cell sums at most cell_size^2 values of +-1, so int16
            # holds every intermediate.  Integer sums are order-invariant,
            # which keeps the result bitwise equal to the per-window
            # aggregation of :meth:`cell_histograms`.
            for i, y in enumerate(ys):
                np.sum(masked[y : y + c], axis=0, dtype=np.int16,
                       out=bands[i])
                np.sum(member[y : y + c], axis=0, dtype=np.int64,
                       out=cbands[i])
            for j, x in enumerate(xs):
                np.sum(bands[:, x : x + c], axis=1, dtype=np.int16,
                       out=bundles[:, j, b])
                counts[:, j, b] = cbands[:, x : x + c].sum(axis=1)
        return HDHOGResult(bundles, counts, c * c)

    def readout_histogram(self, result):
        """Decode the factored histogram to scalars ``(n_y, n_x, B)``.

        Diagnostic bridge to the original domain: the rescaled bundle decode
        compares directly against
        :meth:`repro.features.hog.HOGDescriptor.cell_features` with the same
        magnitude mode and gamma setting, up to stochastic noise.
        """
        return self.codec.decode(result.bundles.astype(np.float64)) * self._scales(result)

"""HAAR-like rectangle features (paper Sec. 2's alternative extractor).

The paper lists HAAR-like features alongside HOG as the standard face
detection front ends.  This implementation follows Viola-Jones: features
are differences of rectangular sums computed in O(1) each from an integral
image.  Four feature shapes are supported:

* ``edge_h`` / ``edge_v`` - two adjacent rectangles (horizontal/vertical);
* ``line_h`` / ``line_v`` - three stacked rectangles (middle minus sides);
* ``quad`` - four rectangles in a checkerboard.

A :class:`HaarExtractor` samples a fixed random bank of such features for a
given window size, so the descriptor is deterministic per seed and usable
as a drop-in front end for any of the learners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng

__all__ = ["integral_image", "HaarFeature", "HaarExtractor", "HAAR_KINDS"]

HAAR_KINDS = ("edge_h", "edge_v", "line_h", "line_v", "quad")


def integral_image(image):
    """Summed-area table with a zero top row/left column.

    ``ii[y, x]`` is the sum of all pixels above and left of ``(y, x)``
    exclusive, so any rectangle sum is four lookups.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("expected a 2-D image")
    ii = np.zeros((img.shape[0] + 1, img.shape[1] + 1), dtype=np.float64)
    ii[1:, 1:] = img.cumsum(axis=0).cumsum(axis=1)
    return ii


def _rect_sum(ii, y, x, h, w):
    return ii[y + h, x + w] - ii[y, x + w] - ii[y + h, x] + ii[y, x]


@dataclass(frozen=True)
class HaarFeature:
    """One rectangle feature: kind + bounding box (y, x, h, w)."""

    kind: str
    y: int
    x: int
    h: int
    w: int

    def __post_init__(self):
        if self.kind not in HAAR_KINDS:
            raise ValueError(f"unknown HAAR kind {self.kind!r}")
        if self.h <= 0 or self.w <= 0:
            raise ValueError("feature box must have positive size")

    def evaluate(self, ii):
        """Feature response from an integral image (normalized by area)."""
        y, x, h, w = self.y, self.x, self.h, self.w
        if self.kind == "edge_h":
            half = w // 2
            val = _rect_sum(ii, y, x, h, half) - _rect_sum(ii, y, x + half, h, half)
        elif self.kind == "edge_v":
            half = h // 2
            val = _rect_sum(ii, y, x, half, w) - _rect_sum(ii, y + half, x, half, w)
        elif self.kind == "line_h":
            third = w // 3
            mid = _rect_sum(ii, y, x + third, h, third)
            side = _rect_sum(ii, y, x, h, third) + _rect_sum(ii, y, x + 2 * third, h, third)
            val = mid - side / 2.0
        elif self.kind == "line_v":
            third = h // 3
            mid = _rect_sum(ii, y + third, x, third, w)
            side = _rect_sum(ii, y, x, third, w) + _rect_sum(ii, y + 2 * third, x, third, w)
            val = mid - side / 2.0
        else:  # quad
            hh, hw = self.h // 2, self.w // 2
            val = (
                _rect_sum(ii, y, x, hh, hw)
                + _rect_sum(ii, y + hh, x + hw, hh, hw)
                - _rect_sum(ii, y, x + hw, hh, hw)
                - _rect_sum(ii, y + hh, x, hh, hw)
            )
        return val / (self.h * self.w)


class HaarExtractor:
    """Random bank of HAAR-like features over a fixed window.

    Parameters
    ----------
    window:
        Image side the bank is defined on (inputs must match).
    n_features:
        Bank size.
    min_size:
        Minimum feature box side in pixels.
    seed_or_rng:
        Bank sampling randomness (the bank is frozen at construction).
    """

    def __init__(self, window, n_features=200, min_size=4, seed_or_rng=None):
        if window < min_size:
            raise ValueError("window smaller than the minimum feature size")
        rng = as_rng(seed_or_rng)
        self.window = int(window)
        self.features = []
        while len(self.features) < n_features:
            kind = str(rng.choice(HAAR_KINDS))
            h = int(rng.integers(min_size, self.window + 1))
            w = int(rng.integers(min_size, self.window + 1))
            # Round sizes so the sub-rectangles tile exactly.
            if kind == "edge_h":
                w -= w % 2
            elif kind == "edge_v":
                h -= h % 2
            elif kind == "line_h":
                w -= w % 3
            elif kind == "line_v":
                h -= h % 3
            else:
                h -= h % 2
                w -= w % 2
            if h < min_size or w < min_size:
                continue
            y = int(rng.integers(0, self.window - h + 1))
            x = int(rng.integers(0, self.window - w + 1))
            self.features.append(HaarFeature(kind, y, x, h, w))

    @property
    def n_features(self):
        return len(self.features)

    def extract(self, image):
        """Feature vector ``(n_features,)`` for one window-sized image."""
        img = np.asarray(image, dtype=np.float64)
        if img.shape != (self.window, self.window):
            raise ValueError(
                f"expected a ({self.window}, {self.window}) image, got {img.shape}"
            )
        ii = integral_image(img)
        return np.array([f.evaluate(ii) for f in self.features])

    def extract_batch(self, images):
        """Feature matrix ``(n, n_features)`` for an image batch."""
        return np.stack([self.extract(im) for im in np.asarray(images)])

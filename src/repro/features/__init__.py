"""Feature extraction: classic and hyperspace HOG/HAAR/conv, plus LBP."""

from .gradients import cell_grid, central_gradients, gradient_magnitude, orientation_bins
from .haar import HaarExtractor, HaarFeature, integral_image
from .conv_hd import DEFAULT_FILTERS, HDConvExtractor
from .haar_hd import HDHaarExtractor
from .hog import HOGDescriptor
from .hog_hd import HDHOGExtractor, HDHOGResult
from .lbp import LBPDescriptor, lbp_codes, uniform_mapping

__all__ = [
    "central_gradients",
    "gradient_magnitude",
    "orientation_bins",
    "cell_grid",
    "HOGDescriptor",
    "HDHOGExtractor",
    "HDHOGResult",
    "HaarExtractor",
    "HDHaarExtractor",
    "HDConvExtractor",
    "DEFAULT_FILTERS",
    "HaarFeature",
    "integral_image",
    "LBPDescriptor",
    "lbp_codes",
    "uniform_mapping",
]

"""Local Binary Patterns (paper Sec. 2's third classic extractor).

Standard LBP(8,1): each pixel is compared against its 8 neighbours
clockwise, producing an 8-bit code; per-cell code histograms form the
descriptor.  The ``uniform`` mapping collapses the 256 codes into the 58
uniform patterns (at most two 0/1 transitions around the ring) plus one
bin for everything else - the variant used in face analysis since
Ahonen et al.
"""

from __future__ import annotations

import numpy as np

from .gradients import cell_grid

__all__ = ["lbp_codes", "uniform_mapping", "LBPDescriptor"]

#: Neighbour offsets clockwise from the top-left, the conventional order.
_OFFSETS = ((-1, -1), (-1, 0), (-1, 1), (0, 1), (1, 1), (1, 0), (1, -1), (0, -1))


def lbp_codes(image):
    """8-bit LBP code per pixel (replicate-padded borders)."""
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError("expected a 2-D image")
    padded = np.pad(img, 1, mode="edge")
    center = padded[1:-1, 1:-1]
    codes = np.zeros(img.shape, dtype=np.uint8)
    for bit, (dy, dx) in enumerate(_OFFSETS):
        neighbour = padded[1 + dy : padded.shape[0] - 1 + dy,
                           1 + dx : padded.shape[1] - 1 + dx]
        codes |= ((neighbour >= center).astype(np.uint8) << bit)
    return codes


def _transitions(code):
    ring = [(code >> i) & 1 for i in range(8)]
    return sum(ring[i] != ring[(i + 1) % 8] for i in range(8))


def uniform_mapping():
    """Map the 256 LBP codes to 59 labels (58 uniform + 1 catch-all).

    Returns an ``(256,)`` int array; uniform codes get consecutive labels
    in code order, non-uniform codes share the final label 58.
    """
    mapping = np.full(256, 58, dtype=np.int64)
    label = 0
    for code in range(256):
        if _transitions(code) <= 2:
            mapping[code] = label
            label += 1
    return mapping


class LBPDescriptor:
    """Per-cell LBP histogram descriptor.

    Parameters
    ----------
    cell_size:
        Pixels per (square) histogram cell.
    uniform:
        Use the 59-bin uniform mapping instead of raw 256-bin histograms.

    Examples
    --------
    >>> import numpy as np
    >>> desc = LBPDescriptor(cell_size=8)
    >>> desc.extract(np.zeros((16, 16))).shape
    (236,)
    """

    def __init__(self, cell_size=8, uniform=True):
        self.cell_size = int(cell_size)
        self.uniform = bool(uniform)
        self._mapping = uniform_mapping() if uniform else None

    @property
    def n_bins(self):
        return 59 if self.uniform else 256

    def feature_length(self, image_shape):
        """Descriptor length for a given image shape."""
        n_y, n_x = cell_grid(image_shape, self.cell_size)
        return n_y * n_x * self.n_bins

    def extract(self, image):
        """Flat, per-cell-normalized histogram descriptor."""
        codes = lbp_codes(image)
        if self.uniform:
            codes = self._mapping[codes]
        n_y, n_x = cell_grid(codes.shape, self.cell_size)
        c = self.cell_size
        cells = codes[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        cells = cells.transpose(0, 2, 1, 3).reshape(n_y, n_x, c * c)
        hist = np.zeros((n_y, n_x, self.n_bins), dtype=np.float64)
        for b in range(self.n_bins):
            hist[:, :, b] = (cells == b).sum(axis=2)
        return (hist / (c * c)).ravel()

    def extract_batch(self, images):
        """Descriptor matrix ``(n, feature_length)`` for a batch."""
        return np.stack([self.extract(im) for im in np.asarray(images)])

"""HAAR-like feature extraction in hyperdimensional space.

Section 2 of the paper observes that HOG, HAAR and convolutional feature
extraction "operate over a similar set of arithmetic operations" - the
stochastic primitives are not HOG-specific.  This module demonstrates that
claim: Viola-Jones rectangle features computed entirely on pixel
hypervectors.

A rectangle's *mean* intensity is one n-ary stochastic average of its pixel
hypervectors (:meth:`repro.core.stochastic.StochasticCodec.mean`), and every
HAAR kind is a (weighted) difference of two rectangle means, i.e. one
``sub_half``.  The resulting per-feature hypervectors are bound to key
hypervectors and bundled into a query, exactly like the HOG pipeline - so
:class:`HDHaarExtractor` is a drop-in front end for
:class:`repro.learning.hdc_classifier.HDCClassifier`.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng, random_hypervector
from ..core.stochastic import StochasticCodec
from .haar import HAAR_KINDS, HaarExtractor

__all__ = ["HDHaarExtractor"]


class HDHaarExtractor:
    """A random HAAR bank evaluated with stochastic hypervector arithmetic.

    Parameters
    ----------
    window:
        Image side the bank is defined on.
    n_features:
        Bank size (shared layout with the original-space
        :class:`repro.features.haar.HaarExtractor`, so the two pipelines
        compute the same features up to stochastic noise).
    dim:
        Hypervector dimensionality.
    levels:
        Pixel-intensity codebook size.
    seed_or_rng:
        Randomness for the bank, the codec and the keys.

    Examples
    --------
    >>> import numpy as np
    >>> ext = HDHaarExtractor(window=16, n_features=20, dim=1024, seed_or_rng=0)
    >>> ext.extract(np.zeros((16, 16))).shape
    (1024,)
    """

    def __init__(self, window, n_features=100, dim=4096, levels=256,
                 min_size=4, gamma=True, sqrt_iters=8, seed_or_rng=None,
                 codec=None):
        rng = as_rng(seed_or_rng)
        # Reuse the original-space bank generator so both extractors share
        # identical feature geometry for a given seed.
        self._bank = HaarExtractor(window, n_features=n_features,
                                   min_size=min_size, seed_or_rng=rng)
        self.window = int(window)
        self.codec = codec if codec is not None else StochasticCodec(dim, rng)
        self.dim = self.codec.dim
        self._rng = rng
        grid = np.linspace(0.0, 1.0, int(levels))
        self._pixel_table = self.codec.construct(grid)
        self._levels = int(levels)
        self.gamma = bool(gamma)
        self.sqrt_iters = int(sqrt_iters)
        self._keys = random_hypervector(self.dim, rng, shape=(n_features,))

    @property
    def features(self):
        """The shared HAAR feature bank."""
        return self._bank.features

    @property
    def n_features(self):
        return self._bank.n_features

    # ------------------------------------------------------------------
    def encode_pixels(self, image):
        """Intensity-codebook pixel hypervectors ``(H, W, D)``."""
        img = np.asarray(image, dtype=np.float64)
        if img.shape != (self.window, self.window):
            raise ValueError(
                f"expected a ({self.window}, {self.window}) image, got {img.shape}"
            )
        idx = np.round(np.clip(img, 0, 1) * (self._levels - 1)).astype(np.int64)
        return self._pixel_table[idx]

    def _rect_mean(self, pixel_hvs, y, x, h, w):
        """Hypervector representing the mean intensity of a rectangle."""
        block = pixel_hvs[y : y + h, x : x + w].reshape(-1, self.dim)
        return self.codec.mean(block)

    def _feature_hv(self, pixel_hvs, feat):
        """Hypervector representing one HAAR response (scaled by 1/2).

        Each kind is the half-difference of two region means; the paper's
        rectangle *sums* differ only by the (constant) area factor, which
        the classifier's cosine similarity ignores.
        """
        y, x, h, w = feat.y, feat.x, feat.h, feat.w
        if feat.kind == "edge_h":
            half = w // 2
            pos = self._rect_mean(pixel_hvs, y, x, h, half)
            neg = self._rect_mean(pixel_hvs, y, x + half, h, half)
        elif feat.kind == "edge_v":
            half = h // 2
            pos = self._rect_mean(pixel_hvs, y, x, half, w)
            neg = self._rect_mean(pixel_hvs, y + half, x, half, w)
        elif feat.kind == "line_h":
            third = w // 3
            pos = self._rect_mean(pixel_hvs, y, x + third, h, third)
            sides = np.stack([
                self._rect_mean(pixel_hvs, y, x, h, third),
                self._rect_mean(pixel_hvs, y, x + 2 * third, h, third),
            ])
            neg = self.codec.mean(sides)
        elif feat.kind == "line_v":
            third = h // 3
            pos = self._rect_mean(pixel_hvs, y + third, x, third, w)
            sides = np.stack([
                self._rect_mean(pixel_hvs, y, x, third, w),
                self._rect_mean(pixel_hvs, y + 2 * third, x, third, w),
            ])
            neg = self.codec.mean(sides)
        else:  # quad
            hh, hw = h // 2, w // 2
            pos = self.codec.mean(np.stack([
                self._rect_mean(pixel_hvs, y, x, hh, hw),
                self._rect_mean(pixel_hvs, y + hh, x + hw, hh, hw),
            ]))
            neg = self.codec.mean(np.stack([
                self._rect_mean(pixel_hvs, y, x + hw, hh, hw),
                self._rect_mean(pixel_hvs, y + hh, x, hh, hw),
            ]))
        return self.codec.sub_half(pos, neg)

    def _signed_gamma(self, hvs):
        """Signed square-root compression: ``sign(v) * sqrt(|v|)``.

        HAAR responses are small signed values; as with the HOG pipeline's
        gamma stage, compressing them toward +-1 is what lifts the
        multiplicative query similarity (``delta = v * v'``) above the
        stochastic noise floor.  All three steps (conditional negation,
        binary-search sqrt, re-negation) stay in hyperspace.
        """
        signs = np.asarray(self.codec.sign_of(hvs))
        flip = np.where(signs < 0, -1, 1).astype(np.int8)
        magnitudes = (hvs * flip[..., None]).astype(np.int8)
        roots = self.codec.sqrt(magnitudes, iters=self.sqrt_iters)
        return (roots * flip[..., None]).astype(np.int8)

    # ------------------------------------------------------------------
    def feature_hypervectors(self, image):
        """All per-feature hypervectors, shape ``(n_features, D)``."""
        pixel_hvs = self.encode_pixels(image)
        hvs = np.stack([
            self._feature_hv(pixel_hvs, f) for f in self._bank.features
        ])
        return self._signed_gamma(hvs) if self.gamma else hvs

    def readout(self, image):
        """Decode the feature hypervectors to scalars (diagnostic bridge).

        Comparable to ``HaarExtractor.extract(image) / 2`` for the two-
        region kinds (the stochastic half-difference scaling).
        """
        return self.codec.decode(self.feature_hypervectors(image))

    def extract(self, image):
        """Query hypervector ``(D,)``: key-bound bundle of all features."""
        hvs = self.feature_hypervectors(image)
        bound = hvs.astype(np.float32) * self._keys.astype(np.float32)
        return bound.sum(axis=0)

    def extract_batch(self, images):
        """Query hypervectors for a batch ``(n, D)``."""
        return np.stack([self.extract(im) for im in np.asarray(images)])

"""Shared image-gradient utilities for the feature extractors.

Both the classic (original-space) HOG of :mod:`repro.features.hog` and the
hyperspace HOG of :mod:`repro.features.hog_hd` use the paper's gradient
definition (Sec. 4.3): central differences halved,

    ``Gx = (C[y+1, x] - C[y-1, x]) / 2``,
    ``Gy = (C[y, x+1] - C[y, x-1]) / 2``,

with replicate padding at the border.  Keeping one definition in one place
guarantees the two pipelines compute the *same* mathematical function, so
accuracy differences between them are attributable to the stochastic
representation alone.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "central_gradients",
    "gradient_magnitude",
    "orientation_bins",
    "cell_grid",
]


def central_gradients(image):
    """Halved central-difference gradients ``(Gx, Gy)`` of a 2-D image.

    Follows the paper's axis convention: ``Gx`` differences along rows
    (vertical neighbours ``C[2,1] - C[0,1]``) and ``Gy`` along columns.
    Borders use replicate padding so output shapes match the input.
    """
    img = np.asarray(image, dtype=np.float64)
    if img.ndim != 2:
        raise ValueError(f"expected 2-D image, got shape {img.shape}")
    padded = np.pad(img, 1, mode="edge")
    gx = (padded[2:, 1:-1] - padded[:-2, 1:-1]) / 2.0
    gy = (padded[1:-1, 2:] - padded[1:-1, :-2]) / 2.0
    return gx, gy


def gradient_magnitude(gx, gy, mode="l2"):
    """Gradient magnitude per pixel.

    ``mode="l2"`` is the true Euclidean magnitude; ``mode="l2_scaled"`` is
    the paper's ``sqrt((Gx^2 + Gy^2) / 2)`` (off by a constant ``1/sqrt(2)``
    that cancels downstream); ``mode="l1"`` is the cheap ``|Gx| + |Gy|``
    approximation offered as a fast option.
    """
    gx = np.asarray(gx, dtype=np.float64)
    gy = np.asarray(gy, dtype=np.float64)
    if mode == "l2":
        return np.hypot(gx, gy)
    if mode == "l2_scaled":
        return np.sqrt((gx**2 + gy**2) / 2.0)
    if mode == "l1":
        return np.abs(gx) + np.abs(gy)
    raise ValueError(f"unknown magnitude mode {mode!r}")


def orientation_bins(gx, gy, n_bins, signed=True):
    """Hard-assign each pixel's gradient direction to an orientation bin.

    ``signed=True`` bins the full circle ``[0, 2*pi)`` into ``n_bins`` equal
    sectors (the paper's quadrant-aware scheme); ``signed=False`` folds
    opposite directions together over ``[0, pi)`` as in Dalal-Triggs HOG.
    """
    angles = np.arctan2(np.asarray(gy, np.float64), np.asarray(gx, np.float64))
    if signed:
        angles = np.mod(angles, 2.0 * np.pi)
        width = 2.0 * np.pi / n_bins
    else:
        angles = np.mod(angles, np.pi)
        width = np.pi / n_bins
    bins = np.floor(angles / width).astype(np.int64)
    return np.clip(bins, 0, n_bins - 1)


def cell_grid(shape, cell_size):
    """Number of whole ``cell_size x cell_size`` cells fitting in ``shape``.

    Returns ``(n_cells_y, n_cells_x)``; trailing pixels that do not fill a
    whole cell are ignored, as in standard HOG implementations.
    """
    h, w = shape
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    n_y, n_x = h // cell_size, w // cell_size
    if n_y == 0 or n_x == 0:
        raise ValueError(
            f"image {shape} smaller than one {cell_size}x{cell_size} cell"
        )
    return n_y, n_x

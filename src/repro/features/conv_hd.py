"""Fixed-filter convolutional feature extraction in hyperspace.

The paper's introduction lists "pre-trained convolution layers" alongside
HOG/HAAR/LBP as static feature extractors, and Section 2 notes they all
reduce to the same arithmetic.  This module closes the set: a small bank of
classic 3x3 filters (Sobel pair, Laplacian, diagonal edges) evaluated
entirely on pixel hypervectors.

A convolution tap sum ``y = sum_i w_i * x_i`` maps to one n-ary weighted
stochastic average: weights ``|w_i| / W`` select components, negative taps
contribute the *negated* pixel hypervector, and the result represents
``y / W`` (the constant ``W = sum |w_i|`` rescale is irrelevant after
cosine classification).  Rectification is the hyperspace absolute value,
optional gamma compression is the hyperspace square root, and spatial
pooling is HDC bundling over the pool window - the same machinery as the
HOG pipeline, exercising every stochastic primitive once more.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng, random_hypervector
from ..core.stochastic import StochasticCodec

__all__ = ["HDConvExtractor", "DEFAULT_FILTERS"]

#: Classic 3x3 filter bank: vertical/horizontal Sobel, Laplacian, the two
#: diagonal edge kernels.
DEFAULT_FILTERS = {
    "sobel_x": np.array([[-1, -2, -1], [0, 0, 0], [1, 2, 1]], dtype=float),
    "sobel_y": np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float),
    "laplacian": np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=float),
    "diag_main": np.array([[2, 1, 0], [1, 0, -1], [0, -1, -2]], dtype=float),
    "diag_anti": np.array([[0, 1, 2], [-1, 0, 1], [-2, -1, 0]], dtype=float),
}


class HDConvExtractor:
    """Convolution + rectify + pool, computed on hypervectors.

    Parameters
    ----------
    dim:
        Hypervector dimensionality.
    filters:
        Mapping name -> 2-D kernel; defaults to :data:`DEFAULT_FILTERS`.
    pool_size:
        Side of the square mean-pooling windows.
    levels:
        Pixel-intensity codebook size.
    gamma:
        Hyperspace sqrt compression of the rectified responses (same
        rationale as the HOG pipeline's gamma stage).
    sqrt_iters:
        Binary-search iterations for the gamma square root.
    seed_or_rng:
        Randomness for the codec, codebook and keys.

    Examples
    --------
    >>> import numpy as np
    >>> ext = HDConvExtractor(dim=1024, pool_size=8, seed_or_rng=0)
    >>> ext.extract(np.zeros((16, 16))).shape
    (1024,)
    """

    def __init__(self, dim=4096, filters=None, pool_size=4, levels=256,
                 gamma=True, sqrt_iters=8, seed_or_rng=None, codec=None):
        rng = as_rng(seed_or_rng)
        self.codec = codec if codec is not None else StochasticCodec(dim, rng)
        self.dim = self.codec.dim
        self.filters = dict(DEFAULT_FILTERS if filters is None else filters)
        if not self.filters:
            raise ValueError("filter bank must not be empty")
        for name, kernel in self.filters.items():
            kernel = np.asarray(kernel, dtype=np.float64)
            if kernel.ndim != 2 or not kernel.any():
                raise ValueError(f"filter {name!r} must be a non-zero 2-D kernel")
            self.filters[name] = kernel
        self.pool_size = int(pool_size)
        if self.pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.levels = int(levels)
        self.gamma = bool(gamma)
        self.sqrt_iters = int(sqrt_iters)
        self._rng = rng
        grid = np.linspace(0.0, 1.0, self.levels)
        self._pixel_table = self.codec.construct(grid)
        self._filter_keys = {
            name: random_hypervector(self.dim, rng)
            for name in sorted(self.filters)
        }

    # ------------------------------------------------------------------
    def encode_pixels(self, image):
        """Intensity-codebook pixel hypervectors ``(H, W, D)``."""
        img = np.asarray(image, dtype=np.float64)
        if img.ndim != 2:
            raise ValueError(f"expected a 2-D image, got {img.shape}")
        idx = np.round(np.clip(img, 0, 1) * (self.levels - 1)).astype(np.int64)
        return self._pixel_table[idx]

    def convolve(self, pixel_hvs, kernel):
        """'Valid' hyperspace convolution: response HVs ``(H', W', D)``.

        Represents ``conv(image, kernel) / sum|kernel|`` - each output
        component is drawn from the tap whose weight won the categorical
        selection, negated for negative taps.
        """
        kernel = np.asarray(kernel, dtype=np.float64)
        kh, kw = kernel.shape
        h, w, _ = pixel_hvs.shape
        if h < kh or w < kw:
            raise ValueError("image smaller than the kernel")
        taps = []
        weights = []
        for dy in range(kh):
            for dx in range(kw):
                weight = kernel[dy, dx]
                if weight == 0.0:
                    continue
                view = pixel_hvs[dy : h - kh + 1 + dy, dx : w - kw + 1 + dx]
                taps.append(view if weight > 0 else (-view).astype(np.int8))
                weights.append(abs(weight))
        stack = np.stack(taps)  # (n_taps, H', W', D)
        return self.codec.mean(stack, weights=np.asarray(weights))

    def _rectify(self, resp):
        """Hyperspace absolute value (plus optional gamma sqrt)."""
        signs = np.asarray(self.codec.sign_of(resp))
        flip = np.where(signs < 0, -1, 1).astype(np.int8)
        mag = (resp * flip[..., None]).astype(np.int8)
        if self.gamma:
            mag = self.codec.sqrt(mag, iters=self.sqrt_iters)
        return mag

    def pool(self, resp_hvs):
        """Mean-pool by bundling: ``(n_py, n_px, D)`` int32 bundles."""
        h, w, _ = resp_hvs.shape
        p = self.pool_size
        n_py, n_px = h // p, w // p
        if n_py == 0 or n_px == 0:
            raise ValueError("response map smaller than one pool window")
        cropped = resp_hvs[: n_py * p, : n_px * p]
        blocks = cropped.reshape(n_py, p, n_px, p, self.dim)
        return blocks.sum(axis=(1, 3), dtype=np.int32)

    # ------------------------------------------------------------------
    def feature_maps(self, image):
        """Pooled bundles per filter: ``{name: (n_py, n_px, D)}``."""
        pixel_hvs = self.encode_pixels(image)
        out = {}
        for name in sorted(self.filters):
            resp = self.convolve(pixel_hvs, self.filters[name])
            out[name] = self.pool(self._rectify(resp))
        return out

    def readout(self, image):
        """Decode pooled responses to scalars: ``{name: (n_py, n_px)}``.

        Comparable (up to the ``1/sum|kernel|`` scale, rectification and
        gamma) with a float convolution + abs + mean-pool reference.
        """
        pooled = self.feature_maps(image)
        p2 = self.pool_size**2
        return {
            name: self.codec.decode(bundle.astype(np.float64)) / p2
            for name, bundle in pooled.items()
        }

    def extract(self, image):
        """Query hypervector ``(D,)``: key-bound bundle over filters/cells."""
        pooled = self.feature_maps(image)
        query = np.zeros(self.dim, dtype=np.float32)
        p2 = float(self.pool_size**2)
        for name, bundle in pooled.items():
            key = self._filter_keys[name].astype(np.float32)
            n_py, n_px, _ = bundle.shape
            offsets = (np.arange(n_py)[:, None] * n_px + np.arange(n_px)).ravel()
            flat = bundle.reshape(-1, self.dim).astype(np.float32) / p2
            for offset, cell in zip(offsets, flat):
                query += np.roll(key, int(offset)) * cell
        return query

    def extract_batch(self, images):
        """Query hypervectors for a batch ``(n, D)``."""
        return np.stack([self.extract(im) for im in np.asarray(images)])

"""Histogram-of-Oriented-Gradients over the original data representation.

This is the reference feature extractor the paper's baselines use (Sec. 6.2:
"All learning modules use the same HOG feature extraction") and also the
fault-injection victim for the ``HDFace+Learn`` rows of Table 2, where HOG
runs on *original* (fixed-point) data and loses all holographic protection.

Two entry points:

* :class:`HOGDescriptor` - float reference implementation with hard
  orientation binning (matching the HD pipeline) and optional block
  normalization.
* :meth:`HOGDescriptor.extract_with_injector` - the same pipeline with an
  injection callback invoked on each intermediate buffer, which the noise
  campaign uses to flip bits of the fixed-point datapath.
"""

from __future__ import annotations

import numpy as np

from .gradients import cell_grid, central_gradients, gradient_magnitude, orientation_bins

__all__ = ["HOGDescriptor"]


class HOGDescriptor:
    """Classic HOG feature extractor.

    Parameters
    ----------
    cell_size:
        Side of the square pixel cells (8 in standard HOG; smaller for the
        reduced-resolution experiment images).
    n_bins:
        Number of orientation bins (the paper uses 8 signed bins).
    signed:
        Whether orientation covers the full circle (paper) or half circle
        (Dalal-Triggs).
    block_size:
        Cells per normalization block side; ``0`` disables block
        normalization (the HD pipeline has no block stage, so disabling it
        makes the two pipelines compute identical descriptors up to scale).
    magnitude:
        ``"l2"``, ``"l2_scaled"`` or ``"l1"`` (see
        :func:`repro.features.gradients.gradient_magnitude`).
    gamma:
        Dalal-Triggs square-root compression: cell features become
        ``sqrt(vote fraction) * mean(sqrt(magnitude))`` instead of the plain
        normalized histogram.  Matches the hyperspace extractor's gamma
        stage so both pipelines compute the same descriptor.
    eps:
        Normalization stabilizer.

    Examples
    --------
    >>> hog = HOGDescriptor(cell_size=8, n_bins=8)
    >>> feats = hog.extract(np.random.default_rng(0).random((32, 32)))
    >>> feats.shape
    (128,)
    """

    def __init__(self, cell_size=8, n_bins=8, signed=True, block_size=0,
                 magnitude="l2_scaled", gamma=True, eps=1e-6):
        if n_bins <= 0:
            raise ValueError("n_bins must be positive")
        if block_size < 0:
            raise ValueError("block_size must be >= 0")
        self.cell_size = int(cell_size)
        self.n_bins = int(n_bins)
        self.signed = bool(signed)
        self.block_size = int(block_size)
        self.magnitude = magnitude
        self.gamma = bool(gamma)
        self.eps = float(eps)

    # ------------------------------------------------------------------
    def feature_length(self, image_shape):
        """Length of the descriptor for an image of ``image_shape``."""
        n_y, n_x = cell_grid(image_shape, self.cell_size)
        if self.block_size:
            b_y = n_y - self.block_size + 1
            b_x = n_x - self.block_size + 1
            if b_y <= 0 or b_x <= 0:
                raise ValueError("image too small for the block size")
            return b_y * b_x * self.block_size**2 * self.n_bins
        return n_y * n_x * self.n_bins

    def cell_histograms(self, image, injector=None):
        """Per-cell orientation histograms, shape ``(n_y, n_x, n_bins)``.

        Each pixel's magnitude is added to its hard-assigned orientation bin
        and the histogram is divided by the cell pixel count - the same mean
        scaling the hyperspace pipeline produces, so descriptors from the
        two pipelines agree up to stochastic noise.
        """
        img = np.asarray(image, dtype=np.float64)
        if injector is not None:
            img = injector(img, "pixels")
        gx, gy = central_gradients(img)
        if injector is not None:
            gx = injector(gx, "gx")
            gy = injector(gy, "gy")
        mag = gradient_magnitude(gx, gy, self.magnitude)
        if injector is not None:
            mag = injector(mag, "magnitude")
        bins = orientation_bins(gx, gy, self.n_bins, self.signed)

        n_y, n_x = cell_grid(img.shape, self.cell_size)
        c = self.cell_size
        mag = mag[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        bins = bins[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        hist = np.zeros((n_y, n_x, self.n_bins), dtype=np.float64)
        for b in range(self.n_bins):
            hist[:, :, b] = np.where(bins == b, mag, 0.0).sum(axis=(1, 3))
        hist /= c * c
        if injector is not None:
            hist = injector(hist, "histogram")
        return hist

    def cell_features(self, image, injector=None):
        """Factored (gamma-aware) cell descriptor, shape ``(n_y, n_x, n_bins)``.

        Each feature is ``weight(fraction) * mean in-bin magnitude`` where
        the magnitude and the count weight are square-root compressed when
        ``gamma`` is on.  With ``gamma=False`` this reduces exactly to
        :meth:`cell_histograms`.  This is the quantity the hyperspace
        pipeline represents, so it is the default descriptor.
        """
        img = np.asarray(image, dtype=np.float64)
        if injector is not None:
            img = injector(img, "pixels")
        gx, gy = central_gradients(img)
        if injector is not None:
            gx = injector(gx, "gx")
            gy = injector(gy, "gy")
        mag = gradient_magnitude(gx, gy, self.magnitude)
        if self.gamma:
            mag = np.sqrt(np.maximum(mag, 0.0))
        if injector is not None:
            mag = injector(mag, "magnitude")
        bins = orientation_bins(gx, gy, self.n_bins, self.signed)

        n_y, n_x = cell_grid(img.shape, self.cell_size)
        c = self.cell_size
        mag = mag[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        bins = bins[: n_y * c, : n_x * c].reshape(n_y, c, n_x, c)
        feats = np.zeros((n_y, n_x, self.n_bins), dtype=np.float64)
        for b in range(self.n_bins):
            member = bins == b
            count = member.sum(axis=(1, 3))
            total = np.where(member, mag, 0.0).sum(axis=(1, 3))
            mean_mag = np.where(count > 0, total / np.maximum(count, 1), 0.0)
            frac = count / (c * c)
            weight = np.sqrt(frac) if self.gamma else frac
            feats[:, :, b] = weight * mean_mag
        if injector is not None:
            feats = injector(feats, "histogram")
        return feats

    def _normalize_blocks(self, hist):
        """L2 block normalization over ``block_size`` x ``block_size`` cells."""
        bs = self.block_size
        n_y, n_x, _ = hist.shape
        blocks = []
        for by in range(n_y - bs + 1):
            for bx in range(n_x - bs + 1):
                block = hist[by : by + bs, bx : bx + bs].ravel()
                norm = np.sqrt((block**2).sum() + self.eps**2)
                blocks.append(block / norm)
        return np.concatenate(blocks)

    def extract(self, image):
        """Full HOG descriptor as a flat ``float64`` feature vector."""
        return self.extract_with_injector(image, None)

    def extract_with_injector(self, image, injector):
        """Descriptor with an optional fault ``injector(array, stage)`` hook.

        The injector is called with each intermediate buffer (stages
        ``pixels``, ``gx``, ``gy``, ``magnitude``, ``histogram``,
        ``features``) and must return an array of the same shape; the noise
        campaign's fixed-point bit flipper plugs in here to reproduce the
        ``HDFace+Learn`` rows of Table 2.
        """
        hist = self.cell_features(image, injector)
        if self.block_size:
            feats = self._normalize_blocks(hist)
        else:
            feats = hist.ravel()
        if injector is not None:
            feats = injector(feats, "features")
        return feats

    def extract_batch(self, images, injector=None):
        """Stack descriptors for an ``(n, H, W)`` batch: ``(n, n_features)``."""
        images = np.asarray(images)
        if images.ndim != 3:
            raise ValueError(f"expected (n, H, W) batch, got {images.shape}")
        return np.stack([self.extract_with_injector(im, injector) for im in images])

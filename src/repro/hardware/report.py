"""Efficiency reports: composes workloads into the paper's Fig. 5/7 numbers.

The report layer glues together the op-count profiles
(:mod:`repro.hardware.opcount`) and the platform cost models
(:mod:`repro.hardware.platforms`) into end-to-end workload estimates:

* **training** = feature extraction over the training set + ``epochs``
  passes of the learner's update rule;
* **inference** = feature extraction of one sample + one
  forward/similarity pass.

HDFace trains in a handful of adaptive epochs (single-pass memorization
plus refinement), while the DNN needs tens of epochs of backprop - the
structural reason HDFace's *training* advantage is much larger than its
inference advantage in Fig. 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.registry import SPECS
from .opcount import (
    OperationProfile,
    dnn_forward_profile,
    dnn_training_profile,
    ecc_scrub_profile,
    guarded_infer_profile,
    hd_hog_profile,
    hdc_infer_profile,
    hdc_learn_profile,
    hog_profile,
    packed_infer_profile,
    remat_profile,
    scrub_profile,
)
from .platforms import PLATFORMS

__all__ = [
    "WorkloadSpec",
    "EfficiencyRow",
    "ProtectionRow",
    "MemoryProtectionRow",
    "workload_for_dataset",
    "hdface_training_cost",
    "hdface_inference_cost",
    "dnn_training_cost",
    "dnn_inference_cost",
    "fig7_report",
    "protection_overhead_report",
    "memory_protection_report",
    "epoch_time_grid",
]

#: Default epoch counts: the paper describes HDFace as single-pass plus a
#: few adaptive iterations, versus tens of epochs of DNN backprop.
HD_EPOCHS = 5
DNN_EPOCHS = 20


@dataclass
class WorkloadSpec:
    """Everything the cost model needs about one dataset's task."""

    name: str
    image_size: int
    n_classes: int
    n_train: int
    dim: int = 4096
    cell_size: int = 8
    n_bins: int = 8
    hidden: tuple = (1024, 1024)

    @property
    def n_features(self):
        cells = (self.image_size // self.cell_size) ** 2
        return cells * self.n_bins

    @property
    def dnn_layers(self):
        return (self.n_features,) + tuple(self.hidden) + (self.n_classes,)


def workload_for_dataset(name, scale="paper", dim=4096, hidden=(1024, 1024)):
    """Build a :class:`WorkloadSpec` from the dataset registry (Table 1)."""
    spec = SPECS[(name.upper(), scale)]
    return WorkloadSpec(
        name=spec.name, image_size=spec.image_size, n_classes=spec.n_classes,
        n_train=spec.train_size, dim=dim, hidden=hidden,
    )


# ----------------------------------------------------------------------
# workload composition
# ----------------------------------------------------------------------
def hdface_training_cost(w, platform, epochs=HD_EPOCHS):
    """(seconds, joules) to train HDFace on workload ``w``.

    HDFace is modeled as *online* learning from raw data: every adaptive
    epoch streams the raw images through the hyperspace extractor again
    (nothing is cached on the embedded device), which is the configuration
    the paper's on-device single-pass narrative describes.
    """
    shape = (w.image_size, w.image_size)
    extract = hd_hog_profile(shape, w.dim, w.n_bins, cell_size=w.cell_size)
    learn = hdc_learn_profile(w.dim, w.n_classes)
    per_epoch = (extract + learn) * w.n_train
    total = per_epoch * epochs
    return (
        platform.time(total, stochastic=True),
        platform.energy(total, stochastic=True),
    )


def hdface_inference_cost(w, platform):
    """(seconds, joules) for one HDFace inference."""
    shape = (w.image_size, w.image_size)
    prof = hd_hog_profile(shape, w.dim, w.n_bins, cell_size=w.cell_size)
    prof = prof + hdc_infer_profile(w.dim, w.n_classes)
    return platform.time(prof, stochastic=True), platform.energy(prof, stochastic=True)


def dnn_training_cost(w, platform, epochs=DNN_EPOCHS):
    """(seconds, joules) to train the HOG+DNN baseline on ``w``."""
    shape = (w.image_size, w.image_size)
    extract = hog_profile(shape, w.n_bins, cell_size=w.cell_size) * w.n_train
    train = dnn_training_profile(w.dnn_layers) * (w.n_train * epochs)
    return (
        platform.time(extract) + platform.time(train),
        platform.energy(extract) + platform.energy(train),
    )


def dnn_inference_cost(w, platform):
    """(seconds, joules) for one HOG+DNN inference."""
    shape = (w.image_size, w.image_size)
    prof = hog_profile(shape, w.n_bins, cell_size=w.cell_size)
    prof = prof + dnn_forward_profile(w.dnn_layers)
    return platform.time(prof), platform.energy(prof)


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------
@dataclass
class EfficiencyRow:
    """One bar pair of Fig. 7."""

    dataset: str
    platform: str
    phase: str
    hdface_time: float
    dnn_time: float
    hdface_energy: float
    dnn_energy: float

    @property
    def speedup(self):
        """DNN time / HDFace time (>1 means HDFace is faster)."""
        return self.dnn_time / self.hdface_time

    @property
    def energy_efficiency(self):
        """DNN energy / HDFace energy (>1 means HDFace is leaner)."""
        return self.dnn_energy / self.hdface_energy


def fig7_report(datasets=("EMOTION", "FACE1", "FACE2"), dim=4096,
                hidden=(1024, 1024), hd_epochs=HD_EPOCHS, dnn_epochs=DNN_EPOCHS,
                scale="paper"):
    """All Fig. 7 bars: training and inference on CPU and FPGA."""
    rows = []
    for name in datasets:
        w = workload_for_dataset(name, scale=scale, dim=dim, hidden=hidden)
        for key, platform in PLATFORMS.items():
            ht, he = hdface_training_cost(w, platform, hd_epochs)
            dt, de = dnn_training_cost(w, platform, dnn_epochs)
            rows.append(EfficiencyRow(name, key, "training", ht, dt, he, de))
            ht, he = hdface_inference_cost(w, platform)
            dt, de = dnn_inference_cost(w, platform)
            rows.append(EfficiencyRow(name, key, "inference", ht, dt, he, de))
    return rows


# ----------------------------------------------------------------------
# Active-protection overhead (reliability subsystem)
# ----------------------------------------------------------------------
@dataclass
class ProtectionRow:
    """Guarded vs unguarded inference cost on one platform."""

    platform: str
    replicas: int
    scrub_every: int
    unguarded_cycles: float
    guarded_cycles: float
    unguarded_energy: float
    guarded_energy: float
    repair_cycles: float
    repair_energy: float

    @property
    def cycle_overhead(self):
        """Guarded / unguarded cycles (steady state, no corruption)."""
        return self.guarded_cycles / self.unguarded_cycles

    @property
    def energy_overhead(self):
        """Guarded / unguarded energy (steady state, no corruption)."""
        return self.guarded_energy / self.unguarded_energy


def protection_overhead_report(dim=4096, n_classes=2, replicas=3,
                               scrub_every=1):
    """Price the guarded class model on every platform.

    Per platform: cycles and energy of one unguarded packed inference
    (:func:`~repro.hardware.opcount.packed_infer_profile`), of one guarded
    inference (:func:`~repro.hardware.opcount.guarded_infer_profile`:
    the same search plus an amortized detection-only scrub), and of the
    rare worst-case scrub that detects corruption and majority-vote
    repairs it (:func:`~repro.hardware.opcount.scrub_profile` with
    ``repair=True``).
    """
    plain = packed_infer_profile(dim, n_classes)
    guarded = guarded_infer_profile(dim, n_classes, replicas, scrub_every)
    repair = scrub_profile(dim, n_classes, replicas, repair=True)
    rows = []
    for key, platform in PLATFORMS.items():
        rows.append(ProtectionRow(
            platform=key, replicas=replicas, scrub_every=scrub_every,
            unguarded_cycles=platform.cycles(plain),
            guarded_cycles=platform.cycles(guarded),
            unguarded_energy=platform.energy(plain),
            guarded_energy=platform.energy(guarded),
            repair_cycles=platform.cycles(repair),
            repair_energy=platform.energy(repair),
        ))
    return rows


# ----------------------------------------------------------------------
# Memory-RAS scheme comparison (bytes and ops per protection scheme)
# ----------------------------------------------------------------------
@dataclass
class MemoryProtectionRow:
    """One protection scheme's resident footprint and scrub cost.

    Bytes follow :meth:`repro.reliability.guard.GuardedClassModel.nbytes`
    exactly: ``replicas * n_classes * words * 8`` for the replica arrays
    plus one parity byte per stored word when the SEC-DED sidecar is
    present.  ``scrub_*`` is the steady-state patrol pass (no corruption);
    ``repair_*`` the worst-case pass in which every protected word needed
    its repair rung (majority vote for TMR, ECC-correct plus one row
    rematerialization for ECC+remat).
    """

    scheme: str
    platform: str
    replicas: int
    resident_bytes: int
    scrub_cycles: float
    scrub_energy: float
    repair_cycles: float
    repair_energy: float

    def bytes_ratio(self, other):
        """``other.resident_bytes / resident_bytes`` (>1: this is leaner)."""
        return other.resident_bytes / self.resident_bytes


def memory_protection_report(dim=4096, n_classes=2, tmr_replicas=3):
    """Compare unguarded / TMR / ECC+remat class-model protection.

    The recompute-as-repair argument in numbers: modular redundancy pays
    ``R``x resident bytes to repair by vote, while SEC-DED plus
    rematerializable rows pays a 12.5% parity sidecar on a *single*
    replica and repairs by correction or exact recomputation.  Rows are
    returned per platform per scheme:

    * ``unguarded`` - one replica, no detection, no repair (bit errors
      persist silently);
    * ``tmr`` - ``tmr_replicas`` copies, digest scrub, majority-vote
      repair (:func:`~repro.hardware.opcount.scrub_profile`);
    * ``ecc_remat`` - one replica plus parity, SEC-DED patrol scrub
      (:func:`~repro.hardware.opcount.ecc_scrub_profile`), worst-case
      repair = correct every word then rematerialize one class row from
      its training counters (:func:`~repro.hardware.opcount.remat_profile`).
    """
    words = (int(dim) + 63) // 64
    k = int(n_classes)
    row_bytes = k * words * 8
    ecc_words = k * words
    zero = OperationProfile({}, label="unprotected")
    schemes = [
        ("unguarded", 1, row_bytes, zero, zero),
        ("tmr", int(tmr_replicas), int(tmr_replicas) * row_bytes,
         scrub_profile(dim, k, tmr_replicas),
         scrub_profile(dim, k, tmr_replicas, repair=True)),
        ("ecc_remat", 1, row_bytes + ecc_words,
         ecc_scrub_profile(ecc_words),
         ecc_scrub_profile(ecc_words, repair_fraction=1.0)
         + remat_profile(dim, elem_bytes=0.125)),
    ]
    rows = []
    for key, platform in PLATFORMS.items():
        for name, replicas, nbytes, scrub, repair in schemes:
            rows.append(MemoryProtectionRow(
                scheme=name, platform=key, replicas=replicas,
                resident_bytes=int(nbytes),
                scrub_cycles=platform.cycles(scrub),
                scrub_energy=platform.energy(scrub),
                repair_cycles=platform.cycles(repair),
                repair_energy=platform.energy(repair),
            ))
    return rows


# ----------------------------------------------------------------------
# Fig. 5 heatmaps and the Sec. 6.3 per-epoch numbers
# ----------------------------------------------------------------------
def epoch_time_grid(w, platform, dims=None, hidden_configs=None,
                    hd_epochs=HD_EPOCHS, dnn_epochs=DNN_EPOCHS):
    """Per-epoch training times for the Fig. 5 heatmaps.

    Returns ``(hd_times, dnn_times)``: seconds per epoch for HDFace at each
    dimensionality and for the DNN at each hidden configuration, with
    feature extraction amortized over the epochs (the paper's 0.9 s vs
    5.4 s comparison).
    """
    dims = dims or (1024, 2048, 4096, 8192, 10240)
    hidden_configs = hidden_configs or (
        (64, 64), (256, 256), (512, 512), (1024, 1024), (2048, 2048))
    hd_times = {}
    for d in dims:
        wd = WorkloadSpec(w.name, w.image_size, w.n_classes, w.n_train,
                          dim=d, cell_size=w.cell_size, n_bins=w.n_bins,
                          hidden=w.hidden)
        total, _ = hdface_training_cost(wd, platform, hd_epochs)
        hd_times[d] = total / hd_epochs
    dnn_times = {}
    for hidden in hidden_configs:
        wh = WorkloadSpec(w.name, w.image_size, w.n_classes, w.n_train,
                          dim=w.dim, cell_size=w.cell_size, n_bins=w.n_bins,
                          hidden=tuple(hidden))
        total, _ = dnn_training_cost(wh, platform, dnn_epochs)
        dnn_times[tuple(hidden)] = total / dnn_epochs
    return hd_times, dnn_times

"""Cycle-level simulator of the FPGA hypervector datapath.

The analytic platform model (:mod:`repro.hardware.platforms`) assumes ideal
throughput.  This simulator executes an explicit vector-operation trace on a
simple in-order pipelined datapath - ``lanes`` one-bit ALUs fed beat by
beat, a popcount reduction tree with logarithmic latency, and a scoreboard
that stalls dependent operations - and reports exact cycle counts and lane
utilization.  It is the cross-check that the paper's "cycle-accurate
simulator" performs: the integration tests assert the analytic estimates
agree with simulated cycles within the pipeline-overhead margin.

The op vocabulary matches the stochastic primitives: ``logic`` (bind /
select / mask lanes), ``rng`` (LFSR lanes), ``popcount`` (similarity
readout) and ``accumulate`` (bundling adders).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["VectorOp", "SimulationResult", "HDDatapathSimulator", "hd_hog_trace"]

OP_KINDS = ("logic", "rng", "popcount", "accumulate")


@dataclass(frozen=True)
class VectorOp:
    """One datapath instruction.

    Parameters
    ----------
    kind:
        ``logic``, ``rng``, ``popcount`` or ``accumulate``.
    bits:
        Vector width in bits (hypervector dimensionality, or a multiple for
        batched pixels).
    depends_on_previous:
        True when the op consumes the previous op's result and must wait
        for it to clear the pipeline (e.g. the compare readout after a
        square in the binary-search loop).
    """

    kind: str
    bits: int
    depends_on_previous: bool = False

    def __post_init__(self):
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.bits <= 0:
            raise ValueError("bits must be positive")


@dataclass
class SimulationResult:
    """Outcome of one simulated trace."""

    cycles: int
    busy_beats: int
    stall_cycles: int
    lanes: int

    @property
    def utilization(self):
        """Fraction of issue slots doing useful work."""
        return self.busy_beats / self.cycles if self.cycles else 0.0

    def seconds(self, freq_hz):
        """Wall-clock at a given clock frequency."""
        return self.cycles / freq_hz


class HDDatapathSimulator:
    """In-order pipelined vector datapath.

    Parameters
    ----------
    lanes:
        One-bit ALU lanes processed per beat (fabric width).
    pipeline_depth:
        Cycles between issuing a beat and its result being architecturally
        visible (register stages through the fabric).
    popcount_extra:
        Additional latency of the popcount reduction tree; defaults to
        ``ceil(log2(lanes))`` - one adder level per tree stage.
    """

    def __init__(self, lanes=4096, pipeline_depth=4, popcount_extra=None):
        if lanes <= 0 or pipeline_depth <= 0:
            raise ValueError("lanes and pipeline_depth must be positive")
        self.lanes = int(lanes)
        self.pipeline_depth = int(pipeline_depth)
        self.popcount_extra = (
            math.ceil(math.log2(self.lanes)) if popcount_extra is None
            else int(popcount_extra)
        )

    def op_latency_extra(self, op):
        """Extra result latency beyond the issue beats for one op."""
        if op.kind == "popcount":
            return self.pipeline_depth + self.popcount_extra
        return self.pipeline_depth

    def run(self, ops):
        """Execute a trace; returns a :class:`SimulationResult`.

        Issue model: each op needs ``ceil(bits / lanes)`` issue beats; a new
        op may begin the cycle after the previous op's last beat *issues*,
        unless it depends on the previous result, in which case it waits for
        the result to leave the pipeline.
        """
        cycle = 0
        busy = 0
        stalls = 0
        prev_result_ready = 0
        for op in ops:
            start = cycle
            if op.depends_on_previous and prev_result_ready > cycle:
                stalls += prev_result_ready - cycle
                start = prev_result_ready
            beats = math.ceil(op.bits / self.lanes)
            busy += beats
            end_issue = start + beats
            prev_result_ready = end_issue + self.op_latency_extra(op)
            cycle = end_issue
        # Drain the pipeline after the final op.
        total = max(cycle, prev_result_ready)
        return SimulationResult(int(total), int(busy), int(stalls), self.lanes)


def hd_hog_trace(image_shape, dim, n_bins=8, sqrt_iters=8, gamma=True,
                 magnitude="l2_scaled", cell_size=8):
    """Vector-op trace of the hyperspace HOG pipeline for one image.

    Pixels are processed as batched vector ops (one op covers one primitive
    across the whole image - ``bits = pixels * dim``), matching a streaming
    accelerator.  Comparison readouts depend on the preceding arithmetic,
    which is where the binary-search loops serialize.
    """
    h, w = image_shape
    px = h * w
    bits = px * dim
    trace = []

    def average(dependent=False):
        trace.append(VectorOp("rng", bits))
        trace.append(VectorOp("logic", bits, depends_on_previous=dependent))

    def square():
        trace.append(VectorOp("logic", bits))  # sign extract + rotate
        trace.append(VectorOp("logic", bits))  # product bind

    # gradients
    average()
    average()
    # sign readouts for binning
    trace.append(VectorOp("popcount", bits))
    trace.append(VectorOp("popcount", bits))
    trace.append(VectorOp("logic", bits))  # conditional negations
    boundaries = max(n_bins // 4 - 1, 0)
    for _ in range(boundaries):
        trace.append(VectorOp("rng", bits))      # constant construction
        trace.append(VectorOp("logic", bits))    # multiply
        trace.append(VectorOp("popcount", bits, depends_on_previous=True))
    # magnitude
    if magnitude == "l2_scaled":
        square()
        square()
        average()
        sqrt_passes = 1
    else:
        trace.append(VectorOp("logic", bits))
        average()
        sqrt_passes = 0
    if gamma:
        sqrt_passes += 1
    for _ in range(sqrt_passes):
        trace.append(VectorOp("popcount", bits))  # hoisted target readout
        for _ in range(sqrt_iters):
            average()
            square()
            trace.append(VectorOp("popcount", bits, depends_on_previous=True))
            trace.append(VectorOp("logic", bits, depends_on_previous=True))
        average()
    # histogram bundling + query binding over the (cell, bin) features
    trace.append(VectorOp("logic", bits))
    trace.append(VectorOp("accumulate", bits))
    feats = max((h // cell_size) * (w // cell_size) * n_bins, 1)
    trace.append(VectorOp("logic", feats * dim))
    trace.append(VectorOp("accumulate", feats * dim))
    return trace

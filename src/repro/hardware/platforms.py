"""Cost models of the two evaluation platforms (ARM Cortex-A53, Kintex-7).

Each :class:`Platform` converts an :class:`~repro.hardware.opcount.OperationProfile`
into latency and energy from per-op-class throughput (operations per cycle)
and energy (picojoules per operation) tables.

The default tables are first-order figures for the paper's hardware:

* **Cortex-A53** (Raspberry Pi 3B+): in-order 2-wide at 1.4 GHz; 128-bit
  NEON gives 128 one-bit logic lanes or 16 8-bit adds per cycle but only ~2
  fp32 FLOPs per cycle sustained; division/sqrt are iterative and ``atan2``
  costs tens of cycles in libm; energy per op from embedded-core
  estimates (~tens of pJ per fp op, <1 pJ per SIMD bit lane).
* **Kintex-7 (KC705)** at 200 MHz: the LUT fabric executes tens of
  thousands of one-bit logic lanes per cycle and on-chip LFSRs make random
  bits nearly free - this is why HDC maps so well to FPGAs (Sec. 6.5) -
  while fp32 arithmetic must go through the ~840 DSP slices (~1 pJ/bit-op
  vs ~20 pJ/DSP-MAC after fabric overheads).

A platform also carries a ``stochastic_efficiency`` pair: throughput/energy
multipliers applied to *hypervector-pipeline* workloads, representing
implementation effects the op-count abstraction misses (bit-packed fused
select-accumulate kernels, hardware LFSR streams, streaming reuse).  The
shipped values are **calibrated** so the full model reproduces the paper's
measured speedup/efficiency ratios at the paper's workload sizes (the
calibration procedure is ``benchmarks/bench_fig7_efficiency.py --raw`` shows
the uncalibrated ratios); all scaling *shapes* come from the op counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Platform", "CORTEX_A53", "KINTEX7_FPGA", "PLATFORMS"]


@dataclass
class Platform:
    """Throughput/energy model of one execution platform.

    Parameters
    ----------
    name:
        Display name.
    freq_hz:
        Clock frequency.
    throughput:
        Ops per cycle per op class (missing classes fall back to 1).
    energy_pj:
        Picojoules per operation per op class.
    static_power_w:
        Idle platform power added for the duration of the workload.
    stochastic_efficiency:
        ``(time_factor, energy_factor)`` multipliers (>1 = faster/leaner)
        applied when a profile is evaluated with ``stochastic=True``.
    """

    name: str
    freq_hz: float
    throughput: dict
    energy_pj: dict
    static_power_w: float = 0.0
    stochastic_efficiency: tuple = (1.0, 1.0)
    mem_bytes_per_cycle: float = field(default=8.0)

    def cycles(self, profile, stochastic=False):
        """Cycle count for a profile (max of compute and memory streams)."""
        compute = 0.0
        for op, count in profile.counts.items():
            if op == "mem_bytes":
                continue
            compute += count / self.throughput.get(op, 1.0)
        memory = profile.get("mem_bytes") / self.mem_bytes_per_cycle
        total = max(compute, memory)
        if stochastic:
            total /= self.stochastic_efficiency[0]
        return total

    def time(self, profile, stochastic=False):
        """Latency in seconds."""
        return self.cycles(profile, stochastic) / self.freq_hz

    def energy(self, profile, stochastic=False):
        """Energy in joules (dynamic per-op energy + static power)."""
        dynamic = 0.0
        for op, count in profile.counts.items():
            dynamic += count * self.energy_pj.get(op, 1.0) * 1e-12
        if stochastic:
            dynamic /= self.stochastic_efficiency[1]
        return dynamic + self.static_power_w * self.time(profile, stochastic)


CORTEX_A53 = Platform(
    name="ARM Cortex-A53",
    freq_hz=1.4e9,
    throughput={
        "bit": 128.0,      # 128-bit NEON bitwise op per cycle
        "int_add": 16.0,   # 16 x 8-bit NEON adds per cycle
        "rng_bit": 64.0,   # xorshift64 word per cycle
        "word64": 2.0,     # two 64-bit lanes of a NEON op (CNT+ADDV fused)
        "fp_mul": 2.0,
        "fp_add": 2.0,
        "fp_div": 1.0 / 12.0,
        "fp_sqrt": 1.0 / 17.0,
        "fp_atan": 1.0 / 70.0,  # libm atan2f on in-order ARM
    },
    energy_pj={
        "bit": 0.25, "int_add": 2.0, "rng_bit": 0.5, "word64": 4.0,
        "fp_mul": 25.0, "fp_add": 20.0, "fp_div": 200.0,
        "fp_sqrt": 300.0, "fp_atan": 1200.0, "mem_bytes": 15.0,
    },
    static_power_w=0.4,
    # Calibrated (see module docstring): bit-packed fused kernels and
    # vectorized RNG streams close most of the hypervector pipeline's
    # op-count handicap on the CPU.  Fitted jointly to the paper's
    # training and inference ratios (geometric-mean compromise).
    stochastic_efficiency=(36.6, 24.4),
    mem_bytes_per_cycle=8.0,
)

KINTEX7_FPGA = Platform(
    name="Kintex-7 FPGA",
    freq_hz=2.0e8,
    throughput={
        "bit": 65536.0,    # LUT fabric: tens of thousands of logic lanes
        "int_add": 8192.0, # popcount/accumulate trees
        "rng_bit": 65536.0,  # parallel LFSRs
        "word64": 1024.0,  # 64-wide word lanes carved from the LUT fabric
        "fp_mul": 280.0,   # 840 DSP48s / 3 per fp32 MAC
        "fp_add": 280.0,
        "fp_div": 4.0,
        "fp_sqrt": 4.0,    # a few pipelined CORDIC units
        "fp_atan": 4.0,
    },
    energy_pj={
        "bit": 0.08, "int_add": 0.8, "rng_bit": 0.05, "word64": 5.0,
        "fp_mul": 18.0, "fp_add": 15.0, "fp_div": 80.0,
        "fp_sqrt": 60.0, "fp_atan": 60.0, "mem_bytes": 10.0,
    },
    static_power_w=1.2,
    # Calibrated: LFSR streams are free in fabric and the select/accumulate
    # datapath is fully fused; energy benefits more than latency because
    # LUT toggling is far cheaper than DSP activity.  Fitted jointly to the
    # paper's training and inference ratios (geometric-mean compromise).
    stochastic_efficiency=(4.3, 8.3),
    mem_bytes_per_cycle=64.0,
)

PLATFORMS = {"cpu": CORTEX_A53, "fpga": KINTEX7_FPGA}

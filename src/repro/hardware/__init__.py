"""Hardware performance/energy models and the cycle-level datapath simulator."""

from .opcount import (
    OperationProfile,
    dnn_forward_profile,
    dnn_training_profile,
    encoder_profile,
    hd_hog_profile,
    hdc_infer_profile,
    hdc_learn_profile,
    hog_profile,
)
from .platforms import CORTEX_A53, KINTEX7_FPGA, PLATFORMS, Platform
from .report import (
    DNN_EPOCHS,
    HD_EPOCHS,
    EfficiencyRow,
    WorkloadSpec,
    dnn_inference_cost,
    dnn_training_cost,
    epoch_time_grid,
    fig7_report,
    hdface_inference_cost,
    hdface_training_cost,
    workload_for_dataset,
)
from .simulator import HDDatapathSimulator, SimulationResult, VectorOp, hd_hog_trace

__all__ = [
    "OperationProfile",
    "hd_hog_profile",
    "hog_profile",
    "dnn_forward_profile",
    "dnn_training_profile",
    "hdc_learn_profile",
    "hdc_infer_profile",
    "encoder_profile",
    "Platform",
    "CORTEX_A53",
    "KINTEX7_FPGA",
    "PLATFORMS",
    "WorkloadSpec",
    "EfficiencyRow",
    "workload_for_dataset",
    "hdface_training_cost",
    "hdface_inference_cost",
    "dnn_training_cost",
    "dnn_inference_cost",
    "fig7_report",
    "epoch_time_grid",
    "HD_EPOCHS",
    "DNN_EPOCHS",
    "HDDatapathSimulator",
    "SimulationResult",
    "VectorOp",
    "hd_hog_trace",
]

"""Operation-count profiles of every workload in the evaluation.

The hardware comparison (paper Sec. 6.5, Fig. 7) is driven by *what kind of
operations* each pipeline executes: HDFace is bitwise logic, narrow integer
adds and RNG bits over hypervectors; original-space HOG is floating-point
arithmetic with square roots and arc-tangents; the DNN is dense fp32
multiply-accumulate.  This module counts those operations for each workload
so the platform models in :mod:`repro.hardware.platforms` can convert them
into time and energy.

Operation classes
-----------------
``bit``      one-bit logic operation (AND/OR/XOR/select lane)
``int_add``  narrow (<=16-bit) integer add/accumulate
``rng_bit``  one pseudorandom bit (LFSR lane on hardware)
``word64``   one 64-bit word operation on packed hypervectors
             (XOR/AND of a word, or one popcount-tree reduction of it)
``fp_mul`` / ``fp_add`` / ``fp_div``  fp32 arithmetic
``fp_sqrt`` / ``fp_atan``             fp32 iterative/transcendental
``mem_bytes`` bytes moved through the memory hierarchy
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "OperationProfile",
    "profile_from_counts",
    "hd_hog_profile",
    "hd_hog_fields_profile",
    "hd_hog_aggregate_profile",
    "shared_detection_profile",
    "perwindow_detection_profile",
    "incremental_extract_profile",
    "hog_profile",
    "dnn_forward_profile",
    "dnn_training_profile",
    "hdc_learn_profile",
    "hdc_infer_profile",
    "packed_infer_profile",
    "packed_assemble_profile",
    "batched_stage_profile",
    "cascade_stage_profile",
    "cascade_scan_profile",
    "replica_vote_profile",
    "scrub_profile",
    "guarded_infer_profile",
    "ecc_encode_profile",
    "ecc_scrub_profile",
    "remat_profile",
    "cache_scrub_profile",
    "encoder_profile",
]

OP_CLASSES = (
    "bit", "int_add", "rng_bit", "word64",
    "fp_mul", "fp_add", "fp_div", "fp_sqrt", "fp_atan",
    "mem_bytes",
)


@dataclass
class OperationProfile:
    """Bag of operation counts, addable and scalable."""

    counts: dict = field(default_factory=dict)
    label: str = ""

    def __post_init__(self):
        unknown = set(self.counts) - set(OP_CLASSES)
        if unknown:
            raise ValueError(f"unknown op classes: {sorted(unknown)}")
        self.counts = {k: float(v) for k, v in self.counts.items() if v}

    def __add__(self, other):
        merged = dict(self.counts)
        for k, v in other.counts.items():
            merged[k] = merged.get(k, 0.0) + v
        return OperationProfile(merged, label=self.label or other.label)

    def __mul__(self, factor):
        return OperationProfile(
            {k: v * factor for k, v in self.counts.items()}, label=self.label
        )

    __rmul__ = __mul__

    def get(self, op):
        """Count of one op class (0 if absent)."""
        return self.counts.get(op, 0.0)

    def total_ops(self):
        """All operations except memory traffic."""
        return sum(v for k, v in self.counts.items() if k != "mem_bytes")


# ----------------------------------------------------------------------
# HDFace stochastic pipeline
# ----------------------------------------------------------------------
def profile_from_counts(counts, label="measured"):
    """Wrap raw op counters (e.g. from :class:`repro.profiling.Profiler`)
    into an :class:`OperationProfile` so the platform models can convert a
    *measured* run into modeled time and energy."""
    return OperationProfile(dict(counts), label=label)


def hd_hog_fields_profile(image_shape, dim, n_bins=8, magnitude="l2_scaled",
                          sqrt_iters=8, gamma=True):
    """Per-image operation counts of HOG-HD stages 1-4 (the *fields* pass).

    Pixel encoding, gradients, angle binning and magnitudes - the per-pixel
    hypervector work that :meth:`HDHOGExtractor.extract_fields` runs once
    over a whole scene and the legacy path repeats per window.  Counts per
    hypervector primitive: a weighted average is ``D`` select bit-ops plus
    ``D`` RNG bits; a multiplication is ``2 D`` bit-ops; a decode readout is
    ``D`` bit-ops plus ``D`` add lanes; a binary-search iteration costs one
    average, one square (or product) and one decode.
    """
    h, w = image_shape
    px = float(h * w)
    d = float(dim)
    counts = {"bit": 0.0, "int_add": 0.0, "rng_bit": 0.0, "mem_bytes": 0.0}

    def average(n):
        counts["bit"] += n * d
        counts["rng_bit"] += n * d

    def multiply(n):
        counts["bit"] += 2 * n * d

    def decode(n):
        counts["bit"] += n * d
        counts["int_add"] += n * d

    def square(n):
        # decorrelate (2 binds + rotate) + multiply
        counts["bit"] += 2 * n * d
        multiply(n)

    # stage 1: pixel codebook lookup - pure memory traffic
    counts["mem_bytes"] += px * d / 8.0

    # stage 2: gradients - two stochastic subtractions per pixel
    average(2 * px)

    # stage 4: binning - two sign readouts, two conditional negations, and
    # per interior boundary one constant construction, one product and one
    # comparison readout
    decode(2 * px)
    counts["bit"] += 2 * px * d  # conditional negation lanes
    boundaries = max(n_bins // 4 - 1, 0)
    if boundaries:
        counts["rng_bit"] += boundaries * px * d  # constant construction
        counts["bit"] += boundaries * px * d
        multiply(boundaries * px)
        decode(boundaries * px)

    # stage 3: magnitude
    if magnitude == "l2_scaled":
        square(2 * px)
        average(px)
        sqrt_units = px
    else:  # l1: two abs (signs already computed) + one average
        counts["bit"] += 2 * px * d
        average(px)
        sqrt_units = 0.0
    if gamma:
        sqrt_units += px
    if sqrt_units:
        per_iter = sqrt_units
        for _ in range(int(sqrt_iters)):
            average(per_iter)       # midpoint
            square(per_iter)        # mid^2
            decode(per_iter)        # comparison readout
            counts["bit"] += 2 * per_iter * d  # bound selects
        average(sqrt_units)          # final midpoint
        decode(sqrt_units)           # hoisted target readout (once)

    counts["mem_bytes"] += px * d / 8.0 * 6  # streamed intermediate tensors
    return OperationProfile(counts, label=f"hd_hog_fields{image_shape}xD{dim}")


def hd_hog_aggregate_profile(image_shape, dim, n_bins=8, cell_size=8):
    """Per-image operation counts of HOG-HD stages 5-6 (aggregation).

    Histogram bundling (masked accumulate of every pixel into its bin lane)
    plus query bundling (bind + accumulate per (cell, bin)).
    """
    h, w = image_shape
    px = float(h * w)
    d = float(dim)
    counts = {"bit": px * d, "int_add": px * d}
    n_cells = (h // cell_size) * (w // cell_size)
    feats = n_cells * n_bins
    counts["bit"] += feats * d
    counts["int_add"] += feats * d
    return OperationProfile(counts, label=f"hd_hog_agg{image_shape}xD{dim}")


def hd_hog_profile(image_shape, dim, n_bins=8, magnitude="l2_scaled",
                   sqrt_iters=8, gamma=True, cell_size=8):
    """Per-image operation counts of the full hyperspace HOG pipeline.

    Composition of :func:`hd_hog_fields_profile` (stages 1-4) and
    :func:`hd_hog_aggregate_profile` (stages 5-6); counts follow the
    implementation in :class:`repro.features.hog_hd.HDHOGExtractor` stage
    by stage.
    """
    prof = (hd_hog_fields_profile(image_shape, dim, n_bins=n_bins,
                                  magnitude=magnitude, sqrt_iters=sqrt_iters,
                                  gamma=gamma)
            + hd_hog_aggregate_profile(image_shape, dim, n_bins=n_bins,
                                       cell_size=cell_size))
    prof.label = f"hd_hog{image_shape}xD{dim}"
    return prof


# ----------------------------------------------------------------------
# Sliding-window detection: shared-feature engine vs per-window recompute
# ----------------------------------------------------------------------
def _window_grid(scene_shape, window, stride):
    h, w = scene_shape
    if h < window or w < window:
        raise ValueError("scene smaller than the detection window")
    return ((h - window) // stride + 1), ((w - window) // stride + 1)


def shared_detection_profile(scene_shape, window, stride, dim, n_classes=2,
                             n_bins=8, magnitude="l2_scaled", sqrt_iters=8,
                             gamma=True, cell_size=8):
    """Modeled op counts of the shared-feature engine scanning one scene.

    One whole-scene fields pass, one per-bin box-filter cell-grid pass
    (membership select + two running-sum passes per bin), then per window
    only the cheap assembly (bind + weighted accumulate per (cell, bin))
    and one row of the batched similarity matmul.
    """
    h, w = scene_shape
    px = float(h * w)
    d = float(dim)
    n_wy, n_wx = _window_grid(scene_shape, window, stride)
    n_windows = n_wy * n_wx
    prof = hd_hog_fields_profile(scene_shape, dim, n_bins=n_bins,
                                 magnitude=magnitude, sqrt_iters=sqrt_iters,
                                 gamma=gamma)
    prof = prof + OperationProfile(
        {"bit": n_bins * px * d, "int_add": 2 * n_bins * px * d,
         "mem_bytes": n_bins * px * d / 4},
        label="cell_grid",
    )
    feats = (window // cell_size) ** 2 * n_bins
    prof = prof + OperationProfile(
        {"bit": feats * d, "int_add": feats * d}) * n_windows
    prof = prof + hdc_infer_profile(dim, n_classes) * n_windows
    prof.label = f"shared_detect{scene_shape}w{window}s{stride}xD{dim}"
    return prof


def perwindow_detection_profile(scene_shape, window, stride, dim, n_classes=2,
                                n_bins=8, magnitude="l2_scaled", sqrt_iters=8,
                                gamma=True, cell_size=8):
    """Modeled op counts of the legacy per-window path on the same scan.

    Every window re-runs the full per-image pipeline from raw pixels, so
    overlapping windows repeat the expensive fields stages; this is the
    baseline the shared engine is measured against.
    """
    n_wy, n_wx = _window_grid(scene_shape, window, stride)
    n_windows = n_wy * n_wx
    per = (hd_hog_profile((window, window), dim, n_bins=n_bins,
                          magnitude=magnitude, sqrt_iters=sqrt_iters,
                          gamma=gamma, cell_size=cell_size)
           + hdc_infer_profile(dim, n_classes))
    prof = per * n_windows
    prof.label = f"perwindow_detect{scene_shape}w{window}s{stride}xD{dim}"
    return prof


def incremental_extract_profile(scene_shape, dirty_shape, dim, n_bins=8,
                                magnitude="l2_scaled", sqrt_iters=8,
                                gamma=True, cell_size=8):
    """Modeled op counts of one frame-delta incremental extraction.

    Prices the :meth:`repro.pipeline.engine.SharedFeatureEngine.
    delta_update` patch path for one pyramid level: a whole-frame pixel
    diff (integer compares over both frames), stages 1-4 re-run over the
    padded dirty rectangle only (:func:`hd_hog_fields_profile` on
    ``dirty_shape``), and the cell-grid re-bundle over the cell-aligned
    cover of that rectangle - the region path bundles per bin, so the
    re-bundle is priced per (bin, pixel) like the engine's measured
    ``delta_grid`` stage.  ``dirty_shape`` is the dilated dirty rect
    (rows, cols); the cell cover allows one extra ``cell_size`` row and
    column of misalignment.  An empty dirty rect prices the diff alone.
    """
    h, w = scene_shape
    dh, dw = dirty_shape
    if not 0 <= dh <= h or not 0 <= dw <= w:
        raise ValueError("dirty_shape must fit inside scene_shape")
    px = float(h * w)
    d = float(dim)
    prof = OperationProfile(
        {"int_add": px, "mem_bytes": 16.0 * px}, label="frame_diff")
    if dh and dw:
        prof = prof + hd_hog_fields_profile(
            (dh, dw), dim, n_bins=n_bins, magnitude=magnitude,
            sqrt_iters=sqrt_iters, gamma=gamma)
        cover_h = min(h, (-(-dh // cell_size) + 1) * cell_size)
        cover_w = min(w, (-(-dw // cell_size) + 1) * cell_size)
        cover_px = float(cover_h * cover_w)
        prof = prof + OperationProfile(
            {"bit": n_bins * cover_px * d,
             "int_add": 2 * n_bins * cover_px * d,
             "mem_bytes": n_bins * cover_px * d / 4},
            label="delta_grid",
        )
    prof.label = f"incremental{scene_shape}dirty{dirty_shape}xD{dim}"
    return prof


# ----------------------------------------------------------------------
# Original-space HOG
# ----------------------------------------------------------------------
def hog_profile(image_shape, n_bins=8, cell_size=8, gamma=True):
    """Per-image operation counts of classic HOG on fp32 data."""
    h, w = image_shape
    px = float(h * w)
    counts = {
        # gradients: two subtractions + two halvings per pixel
        "fp_add": 2 * px,
        "fp_mul": 2 * px,
        # magnitude: two squares, one add, one sqrt
        "fp_sqrt": px * (2.0 if gamma else 1.0),
        "fp_atan": px,  # orientation
        "mem_bytes": px * 4 * 4,
    }
    counts["fp_mul"] += 2 * px
    counts["fp_add"] += px
    # histogram accumulate + per-cell normalization
    counts["fp_add"] += px
    n_cells = (h // cell_size) * (w // cell_size)
    counts["fp_div"] = n_cells * n_bins
    return OperationProfile(counts, label=f"hog{image_shape}")


# ----------------------------------------------------------------------
# DNN
# ----------------------------------------------------------------------
def dnn_forward_profile(layer_sizes):
    """Per-sample fp32 MACs of one forward pass."""
    macs = sum(a * b for a, b in zip(layer_sizes[:-1], layer_sizes[1:]))
    params = macs + sum(layer_sizes[1:])
    return OperationProfile(
        {"fp_mul": macs, "fp_add": macs, "mem_bytes": params * 4.0},
        label=f"dnn_fwd{tuple(layer_sizes)}",
    )


def dnn_training_profile(layer_sizes):
    """Per-sample cost of one training step (forward + backward + update).

    The backward pass costs about two forwards (grad wrt activations and
    weights) and the optimizer touches every parameter once.
    """
    fwd = dnn_forward_profile(layer_sizes)
    macs = fwd.get("fp_mul")
    update = OperationProfile(
        {"fp_mul": macs * 0.05, "fp_add": macs * 0.05}, label="sgd_update"
    )
    prof = fwd * 3.0 + update
    prof.label = f"dnn_train{tuple(layer_sizes)}"
    return prof


# ----------------------------------------------------------------------
# HDC learning / inference over query hypervectors
# ----------------------------------------------------------------------
def hdc_learn_profile(dim, n_classes):
    """Per-sample cost of one adaptive HDC update.

    Similarity against every class (integer MACs over ``D``) plus a scaled
    accumulate into at most two class vectors.
    """
    d = float(dim)
    return OperationProfile(
        {"int_add": (n_classes + 2) * d, "bit": n_classes * d,
         "mem_bytes": (n_classes + 2) * d * 2},
        label=f"hdc_learn(D={dim})",
    )


def hdc_infer_profile(dim, n_classes):
    """Per-sample cost of an HDC similarity search."""
    d = float(dim)
    return OperationProfile(
        {"int_add": n_classes * d, "bit": n_classes * d,
         "mem_bytes": n_classes * d / 4},
        label=f"hdc_infer(D={dim})",
    )


def packed_infer_profile(dim, n_classes):
    """Per-query cost of the packed Hamming-argmin similarity search.

    One XOR word op plus one popcount-tree reduction per model word per
    class (:class:`repro.core.packed.PackedClassModel`), with the packed
    model streaming through memory at 8 bytes per word - the 64x traffic
    reduction over the dense ``int8`` path is the point of the backend.
    """
    w = float((int(dim) + 63) // 64)
    return OperationProfile(
        {"word64": 2 * n_classes * w, "int_add": n_classes,
         "mem_bytes": (n_classes + 1) * w * 8},
        label=f"packed_infer(D={dim})",
    )


def packed_assemble_profile(window, dim, cell_size=8, n_bins=8):
    """Per-window cost of packed query assembly (XNOR bind + majority).

    ``F = (window / cell_size)^2 * n_bins`` packed features are bound to
    their positional keys (XOR + pad mask per word) and bundled by the
    bit-sliced vertical-counter majority of
    :func:`repro.core.packed.packed_majority`: a ripple-carry add per
    feature (one XOR + one AND per plane per word) and a bit-sliced
    threshold comparator readout over the ``ceil(log2(F + 1))`` planes.
    """
    n = int(window) // int(cell_size)
    feats = n * n * n_bins
    w = float((int(dim) + 63) // 64)
    planes = float(max(feats, 1).bit_length())
    counts = {
        "word64": 2 * feats * w            # bind: XOR + mask
        + 2 * feats * planes * w           # vertical counters: XOR + AND
        + 4 * planes * w,                  # threshold comparator readout
        "mem_bytes": (feats + 1) * w * 8,
    }
    return OperationProfile(counts, label=f"packed_assemble(w{window},D{dim})")


def cascade_stage_profile(window, dim, word_start, word_stop, n_classes=2,
                          cell_size=8, n_bins=8):
    """Per-window cost of one cascade escalation stage.

    A stage assembles only the new word block ``[word_start, word_stop)``
    of the query (:func:`packed_assemble_profile` at the block's real
    component count) and adds the block's XOR+popcount Hamming distances
    onto the accumulated per-class popcounts - one XOR word op plus one
    popcount reduction per block word per class, plus one narrow add per
    class for the accumulate.  Stage 1 is ``word_start=0``; the sum of a
    full escalation chain's stages equals one full-width assembly plus
    :func:`packed_infer_profile`, which is the no-double-work property of
    the incremental rescoring.
    """
    w0, w1 = int(word_start), int(word_stop)
    total = (int(dim) + 63) // 64
    if not 0 <= w0 < w1 <= total:
        raise ValueError(f"word block [{w0}, {w1}) out of range for "
                         f"{total} words")
    bdim = min(64 * w1, int(dim)) - 64 * w0
    words = float(w1 - w0)
    prof = packed_assemble_profile(window, bdim, cell_size=cell_size,
                                   n_bins=n_bins)
    prof = prof + OperationProfile(
        {"word64": 2 * n_classes * words, "int_add": float(n_classes),
         "mem_bytes": (n_classes + 1) * words * 8},
    )
    prof.label = f"cascade_stage(w{window},D{dim},[{w0},{w1}))"
    return prof


def batched_stage_profile(window, dim, word_start, word_stop, n_windows,
                          n_classes=2, cell_size=8, n_bins=8):
    """Cost of one *cross-stream batched* cascade stage over ``n_windows``.

    The fleet batcher pools the live windows of many streams into one
    majority + one block-Hamming call; the abstract op count is exactly
    ``n_windows`` times the per-window :func:`cascade_stage_profile` -
    batching changes constant factors (call overhead, cache locality),
    never the operation count, which is how the profiler keeps batched
    and solo runs comparable in the same table.
    """
    n = int(n_windows)
    if n < 1:
        raise ValueError(f"n_windows must be at least 1, got {n_windows}")
    prof = cascade_stage_profile(window, dim, word_start, word_stop,
                                 n_classes=n_classes, cell_size=cell_size,
                                 n_bins=n_bins) * n
    prof.label = (f"batched_stage(w{window},D{dim},"
                  f"[{int(word_start)},{int(word_stop)})x{n})")
    return prof


def cascade_scan_profile(scene_shape, window, stride, dim, stage_words,
                         escalation=None, n_classes=2, cell_size=8,
                         n_bins=8, seed_fraction=1.0):
    """Expected op counts of one cascade scan of a scene.

    ``stage_words`` is the ascending cumulative word schedule;
    ``escalation[i]`` the fraction of candidate windows evaluated *at*
    stage ``i`` (``escalation[0]`` is normally 1.0; feed the measured
    rates from :class:`repro.pipeline.cascade.CascadeCalibration` - the
    default assumes 5% survive each rejection).  ``seed_fraction``
    scales the candidate set for coarse-seed-then-refine scans
    (``~1/seed_factor^2`` plus the refined neighborhoods).  Expected
    work is the sum over stages of the per-window stage cost times the
    windows expected to reach it.
    """
    words = [int(w) for w in stage_words]
    if words != sorted(set(words)) or not words:
        raise ValueError(f"stage_words must be strictly increasing, "
                         f"got {stage_words}")
    if escalation is None:
        escalation = [1.0] + [0.05] * (len(words) - 1)
    if len(escalation) != len(words):
        raise ValueError("escalation must give one rate per stage")
    n_wy, n_wx = _window_grid(scene_shape, window, stride)
    candidates = n_wy * n_wx * float(seed_fraction)
    prof = OperationProfile({})
    w_prev = 0
    for w1, rate in zip(words, escalation):
        prof = prof + cascade_stage_profile(
            window, dim, w_prev, w1, n_classes=n_classes,
            cell_size=cell_size, n_bins=n_bins) * (rate * candidates)
        w_prev = w1
    prof.label = (f"cascade_scan{tuple(scene_shape)}w{window}s{stride}"
                  f"xD{dim}{tuple(words)}")
    return prof


def replica_vote_profile(dim, n_classes, replicas=3):
    """Cost of one bitwise majority vote across ``replicas`` model copies.

    The repair step of :class:`repro.reliability.guard.GuardedClassModel`:
    for every class row, the ``R`` replica words feed the bit-sliced
    vertical counters of :func:`repro.core.packed.packed_majority`
    (``ceil(log2(R + 1))`` planes, one XOR + one AND per plane per
    feature) followed by the threshold-comparator readout, and the voted
    row is written back into every replica.
    """
    w = float((int(dim) + 63) // 64)
    k = float(n_classes)
    r = float(replicas)
    planes = float(max(int(replicas), 1).bit_length())
    return OperationProfile(
        {"word64": k * w * (2 * r * planes + 4 * planes),
         "mem_bytes": (2 * r + 1) * k * w * 8},  # read R, write back R + vote
        label=f"replica_vote(D={dim},R={replicas})",
    )


def scrub_profile(dim, n_classes, replicas=3, repair=False):
    """Cost of one scrub pass over a guarded class model.

    The detection half streams every replica row once through a word-wide
    mixing digest (model: two word ops per stored word - one mix, one
    accumulate - matching a hardware CRC/checksum lane) and compares
    against the ``R * k`` stored golden digests.  With ``repair=True`` the
    majority-vote restore (:func:`replica_vote_profile`) is included -
    the worst-case scrub in which corruption was detected.
    """
    w = float((int(dim) + 63) // 64)
    k = float(n_classes)
    r = float(replicas)
    prof = OperationProfile(
        {"word64": 2 * r * k * w + r * k,
         "mem_bytes": r * k * (w + 1) * 8},
        label=f"scrub(D={dim},R={replicas})",
    )
    if repair:
        prof = prof + replica_vote_profile(dim, n_classes, replicas)
        prof.label = f"scrub+repair(D={dim},R={replicas})"
    return prof


def guarded_infer_profile(dim, n_classes, replicas=3, scrub_every=1):
    """Per-query cost of inference through a guarded class model.

    The Hamming-argmin search itself is unchanged
    (:func:`packed_infer_profile` against the active replica); protection
    adds one detection-only scrub pass amortized over ``scrub_every``
    queries.  Repair cost is excluded - it only triggers on actual
    corruption, which is rare by assumption; price it separately with
    ``scrub_profile(..., repair=True)``.
    """
    if scrub_every < 1:
        raise ValueError("scrub_every must be at least 1")
    prof = (packed_infer_profile(dim, n_classes)
            + scrub_profile(dim, n_classes, replicas) * (1.0 / scrub_every))
    prof.label = f"guarded_infer(D={dim},R={replicas},every={scrub_every})"
    return prof


def ecc_encode_profile(n_words):
    """Cost of SEC-DED-encoding ``n_words`` packed 64-bit words.

    The Hamming(72,64) encoder of :mod:`repro.reliability.ecc`: each word
    is ANDed against the seven check-bit coverage masks and each product
    popcounted (two word ops per mask), plus one whole-word popcount and
    one combine for the overall-parity bit.  One parity byte is written
    back per word (the 12.5% sidecar).
    """
    n = float(n_words)
    return OperationProfile(
        {"word64": n * 16, "mem_bytes": n * 9},  # read 8B, write 1B parity
        label=f"ecc_encode(W={n_words})",
    )


def ecc_scrub_profile(n_words, repair_fraction=0.0):
    """Cost of one SEC-DED check pass over ``n_words`` protected words.

    The syndrome recompute is the encoder datapath again (seven masked
    popcounts plus overall parity) followed by an XOR against the stored
    parity byte.  ``repair_fraction`` is the fraction of words found
    corrupted: each costs a syndrome-to-position decode, one single-bit
    XOR correction and a word write-back.  At ``repair_fraction=0`` this
    is the steady-state patrol-scrub cost.
    """
    if not 0.0 <= repair_fraction <= 1.0:
        raise ValueError("repair_fraction must be in [0, 1]")
    n = float(n_words)
    f = float(repair_fraction)
    prof = OperationProfile(
        {"word64": n * (17 + f * 3),
         "mem_bytes": n * (9 + f * 9)},  # read word+parity; repaired: rewrite
        label=f"ecc_scrub(W={n_words})",
    )
    if f > 0.0:
        prof.label = f"ecc_scrub+repair(W={n_words},f={repair_fraction})"
    return prof


def remat_profile(n_elems, elem_bytes=1, bits_per_elem=1):
    """Cost of rematerializing an ``n_elems``-element item memory.

    :class:`repro.core.keyed_noise.RematerializingItemMemory` repairs by
    exact regeneration: ``bits_per_elem`` pseudorandom bits per element
    (one fair coin per bipolar lane; raise it for multi-bit draws), a
    digest pass over the regenerated bytes (two word ops per 8 bytes,
    the same mixing-digest lane :func:`scrub_profile` models), and the
    write-back.  This is the compute half of the recompute-as-repair
    trade: ``verify``/``remat`` policies swap resident-byte cost for
    exactly this profile per repair or access.
    """
    n = float(n_elems)
    nbytes = n * float(elem_bytes)
    words = (nbytes + 7.0) // 8.0
    return OperationProfile(
        {"rng_bit": n * float(bits_per_elem),
         "word64": 2 * words,
         "mem_bytes": 2 * nbytes},  # write regenerated + digest read
        label=f"remat(N={n_elems})",
    )


def cache_scrub_profile(cache_bytes, repair_fraction=0.0):
    """Cost of one background sweep over ``cache_bytes`` of scene cache.

    The shared-feature engine's scrubber digests every cached buffer (two
    word ops per 8 bytes through the mixing-digest lane) and, for the
    ``repair_fraction`` of bytes whose digest mismatched, runs the
    SEC-DED correct pass (:func:`ecc_scrub_profile`) to repair in place
    instead of evicting and recomputing.
    """
    if not 0.0 <= repair_fraction <= 1.0:
        raise ValueError("repair_fraction must be in [0, 1]")
    words = (float(cache_bytes) + 7.0) // 8.0
    prof = OperationProfile(
        {"word64": 2 * words,
         "mem_bytes": float(cache_bytes) * 1.125},  # data + parity sidecar
        label=f"cache_scrub(B={cache_bytes})",
    )
    if repair_fraction > 0.0:
        prof = prof + ecc_scrub_profile(words * repair_fraction,
                                        repair_fraction=1.0)
        prof.label = (f"cache_scrub+repair(B={cache_bytes},"
                      f"f={repair_fraction})")
    return prof


def encoder_profile(dim, n_features):
    """Per-sample cost of the nonlinear (cos) encoder (configuration 1)."""
    d = float(dim)
    return OperationProfile(
        {"fp_mul": d * n_features, "fp_add": d * n_features, "fp_atan": d,
         "mem_bytes": d * n_features * 4},
        label=f"encoder(D={dim})",
    )


def levelid_encoder_profile(dim, n_features):
    """Per-sample cost of the classical binary record encoder.

    Level-hypervector lookup, ID binding (XOR lanes) and integer bundling
    per feature - the conventional HDC encoding whose HOG front end the
    Sec. 2 motivation measures (the binary encoder is cheap; HOG dominates).
    """
    d = float(dim)
    return OperationProfile(
        {"bit": d * n_features, "int_add": d * n_features,
         "mem_bytes": d * n_features / 8},
        label=f"levelid_encoder(D={dim})",
    )

"""Adaptive hyperdimensional classification (paper Section 5).

The HDC model is one hypervector per class.  Learning has two phases:

1. **Single-pass memorization** - each training query is added to its class
   accumulator, weighted by ``1 - delta(query, class)``: samples the class
   already explains add little ("eliminates redundant information
   memorization ... to eliminate overfitting"), novel samples add a lot.
   This is the saturation-avoiding bundling the paper describes.
2. **Adaptive refinement** - a few epochs revisit the data; each
   misclassified query is added to the correct class and subtracted from the
   wrongly-predicted class, again scaled by how confident the mistake was.

Inference is a similarity search: the query gets the label of the most
similar class hypervector.  Queries arrive already in hyperspace (from
:class:`repro.features.hog_hd.HDHOGExtractor` or an encoder from
:mod:`repro.learning.encoders`), so there is no encoding step here - the
property that makes HDFace end-to-end holographic.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng

__all__ = ["HDCClassifier"]


class HDCClassifier:
    """One-hypervector-per-class classifier with adaptive training.

    Parameters
    ----------
    n_classes:
        Number of classes (2 for face/no-face, 7 for emotions).
    lr:
        Learning rate of the adaptive refinement updates.
    epochs:
        Refinement epochs after the single-pass phase (0 = single-pass only,
        the ablation configuration).
    batch_size:
        Queries processed per refinement step; updates within a batch use
        the same model snapshot (mini-batch approximation of the paper's
        per-sample rule, which keeps everything vectorized).
    adaptive:
        If False, single-pass accumulation uses plain bundling without the
        ``1 - delta`` novelty weighting (ablation).
    seed_or_rng:
        Shuffling randomness.

    Attributes
    ----------
    class_hvs_:
        ``(n_classes, D)`` float64 class accumulators after :meth:`fit`.
    """

    def __init__(self, n_classes, lr=1.0, epochs=20, batch_size=64,
                 adaptive=True, seed_or_rng=None):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_classes = int(n_classes)
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.adaptive = bool(adaptive)
        self._rng = as_rng(seed_or_rng)
        self.class_hvs_ = None
        self.history_ = []

    # ------------------------------------------------------------------
    def _check_fitted(self):
        if self.class_hvs_ is None:
            raise RuntimeError("classifier is not fitted")

    def _normalized_model(self):
        norms = np.linalg.norm(self.class_hvs_, axis=1, keepdims=True)
        return self.class_hvs_ / np.maximum(norms, 1e-12)

    def similarities(self, queries):
        """Cosine similarity of each query to each class: ``(n, n_classes)``."""
        self._check_fitted()
        q = np.asarray(queries, dtype=np.float64)
        single = q.ndim == 1
        q = np.atleast_2d(q)
        qn = q / np.maximum(np.linalg.norm(q, axis=1, keepdims=True), 1e-12)
        sims = qn @ self._normalized_model().T
        return sims[0] if single else sims

    def predict(self, queries):
        """Label of the most similar class hypervector per query."""
        sims = self.similarities(queries)
        return np.asarray(sims).argmax(axis=-1)

    def score(self, queries, labels):
        """Mean accuracy on the given queries."""
        return float((self.predict(queries) == np.asarray(labels)).mean())

    # ------------------------------------------------------------------
    def _single_pass(self, queries, labels):
        dim = queries.shape[1]
        self.class_hvs_ = np.zeros((self.n_classes, dim), dtype=np.float64)
        if not self.adaptive:
            for k in range(self.n_classes):
                self.class_hvs_[k] = queries[labels == k].sum(axis=0)
            return
        # Novelty-weighted accumulation, processed in chunks so early
        # samples shape the weighting of later ones.
        order = self._rng.permutation(len(queries))
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            q = queries[idx]
            y = labels[idx]
            norms = np.linalg.norm(self.class_hvs_, axis=1)
            if norms.max() == 0:
                weight = np.ones(len(idx))
            else:
                sims = self.similarities(q)
                weight = 1.0 - sims[np.arange(len(idx)), y]
            np.add.at(self.class_hvs_, y, weight[:, None] * q)

    def _refine_epoch(self, queries, labels):
        order = self._rng.permutation(len(queries))
        errors = 0
        for start in range(0, len(order), self.batch_size):
            idx = order[start : start + self.batch_size]
            q = queries[idx]
            y = labels[idx]
            sims = self.similarities(q)
            pred = sims.argmax(axis=1)
            wrong = pred != y
            errors += int(wrong.sum())
            if not wrong.any():
                continue
            qw = q[wrong]
            yw = y[wrong]
            pw = pred[wrong]
            rows = np.arange(len(qw))
            gain_true = self.lr * (1.0 - sims[wrong, yw])[:, None]
            gain_pred = self.lr * (1.0 - sims[wrong, pw])[:, None]
            np.add.at(self.class_hvs_, yw, gain_true * qw)
            np.add.at(self.class_hvs_, pw, -gain_pred * qw)
            del rows
        return errors

    def fit(self, queries, labels):
        """Train on query hypervectors ``(n, D)`` and integer labels ``(n,)``.

        Returns ``self``.  ``history_`` records the per-epoch training error
        count of the refinement phase.
        """
        queries = np.asarray(queries, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if queries.ndim != 2:
            raise ValueError(f"queries must be (n, D), got {queries.shape}")
        if len(queries) != len(labels):
            raise ValueError("queries and labels length mismatch")
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise ValueError("labels out of range")
        self.history_ = []
        self._single_pass(queries, labels)
        for _ in range(self.epochs):
            errors = self._refine_epoch(queries, labels)
            self.history_.append(errors)
            if errors == 0:
                break
        return self

    def partial_fit(self, queries, labels):
        """Online update with a new batch (no revisiting of old data).

        Implements the paper's "online on-device learning" mode: the novelty
        -weighted single-pass rule absorbs the batch into the existing class
        hypervectors, followed by one adaptive refinement pass over just
        this batch.  The first call initializes the model.
        """
        queries = np.asarray(queries, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if queries.ndim != 2:
            raise ValueError(f"queries must be (n, D), got {queries.shape}")
        if len(queries) != len(labels):
            raise ValueError("queries and labels length mismatch")
        if labels.min() < 0 or labels.max() >= self.n_classes:
            raise ValueError("labels out of range")
        if self.class_hvs_ is None:
            self.class_hvs_ = np.zeros((self.n_classes, queries.shape[1]))
        elif self.class_hvs_.shape[1] != queries.shape[1]:
            raise ValueError("query dimensionality changed between batches")
        norms = np.linalg.norm(self.class_hvs_, axis=1)
        if norms.max() == 0:
            weight = np.ones(len(queries))
        else:
            sims = self.similarities(queries)
            weight = 1.0 - sims[np.arange(len(queries)), labels]
        np.add.at(self.class_hvs_, labels, weight[:, None] * queries)
        self._refine_epoch(queries, labels)
        return self

    # ------------------------------------------------------------------
    def bipolar_model(self):
        """Sign-quantized ``(n_classes, D)`` int8 model.

        This is the binary model the FPGA datapath stores (Sec. 6.5) and the
        object the Table 2 campaign flips bits in.
        """
        self._check_fitted()
        model = np.sign(self.class_hvs_)
        model[model == 0] = 1
        return model.astype(np.int8)

    def with_model(self, class_hvs):
        """Clone carrying an explicit model (used after fault injection)."""
        clone = HDCClassifier(
            self.n_classes, lr=self.lr, epochs=self.epochs,
            batch_size=self.batch_size, adaptive=self.adaptive,
        )
        clone.class_hvs_ = np.asarray(class_hvs, dtype=np.float64).copy()
        return clone

"""Encoders mapping original-space feature vectors into hyperspace.

These implement the *first* HDFace configuration of Section 6.2: "HOG
feature extraction running on original space ... HDC exploits non-linear
encoder to map extracted features into high dimension".  (The second
configuration needs no encoder because :class:`repro.features.hog_hd`
already outputs hypervectors.)

Three standard encoders are provided:

* :class:`NonlinearEncoder` - ``cos(W x + b)`` random-Fourier-style
  projection, the encoder used across the OnlineHD line of work.
* :class:`RandomProjectionEncoder` - ``sign(W x)`` bipolar projection.
* :class:`LevelIDEncoder` - the classical record encoding: bind a random
  per-feature ID hypervector with the level hypervector of the quantized
  feature value and bundle over features.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng, random_hypervector
from ..core.spaces import LevelMemory

__all__ = ["NonlinearEncoder", "RandomProjectionEncoder", "LevelIDEncoder"]


class NonlinearEncoder:
    """Random nonlinear projection ``H = cos(W x + b)``.

    Parameters
    ----------
    dim:
        Output hypervector dimensionality.
    n_features:
        Input feature-vector length.
    binary:
        If True, the output is sign-quantized to bipolar values (matching
        the binary hardware); otherwise the raw cosines are returned.
    bandwidth:
        Standard deviation of the Gaussian projection rows; plays the role
        of an RBF kernel bandwidth.
    """

    def __init__(self, dim, n_features, binary=False, bandwidth=1.0, seed_or_rng=None):
        rng = as_rng(seed_or_rng)
        self.dim = int(dim)
        self.n_features = int(n_features)
        self.binary = bool(binary)
        self.weights = rng.normal(0.0, bandwidth, size=(self.dim, self.n_features))
        self.bias = rng.uniform(0.0, 2.0 * np.pi, size=self.dim)

    def encode(self, features):
        """Encode ``(n_features,)`` or ``(n, n_features)`` arrays."""
        x = np.asarray(features, dtype=np.float64)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        h = np.cos(x @ self.weights.T + self.bias)
        if self.binary:
            h = np.where(h >= 0, 1, -1).astype(np.int8)
        return h[0] if single else h


class RandomProjectionEncoder:
    """Bipolar random projection ``H = sign(W x)``."""

    def __init__(self, dim, n_features, seed_or_rng=None):
        rng = as_rng(seed_or_rng)
        self.dim = int(dim)
        self.n_features = int(n_features)
        self.weights = rng.normal(0.0, 1.0, size=(self.dim, self.n_features))

    def encode(self, features):
        """Encode ``(n_features,)`` or ``(n, n_features)`` arrays."""
        x = np.asarray(features, dtype=np.float64)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        h = np.where(x @ self.weights.T >= 0, 1, -1).astype(np.int8)
        return h[0] if single else h


class LevelIDEncoder:
    """Record encoding: bundle of ``ID_j (*) Level(x_j)`` over features.

    Feature values are min-max quantized into ``levels`` correlative
    hypervectors (:class:`repro.core.spaces.LevelMemory`), bound to an
    independent random ID hypervector per feature position, and summed.
    """

    def __init__(self, dim, n_features, levels=64, value_range=(0.0, 1.0),
                 seed_or_rng=None):
        rng = as_rng(seed_or_rng)
        self.dim = int(dim)
        self.n_features = int(n_features)
        self.vmin, self.vmax = map(float, value_range)
        if self.vmax <= self.vmin:
            raise ValueError("value_range must be increasing")
        self.levels = LevelMemory(dim, levels=levels, seed_or_rng=rng)
        self.ids = random_hypervector(dim, rng, shape=(self.n_features,))

    def encode(self, features):
        """Encode ``(n_features,)`` or ``(n, n_features)`` arrays to int32 sums."""
        x = np.asarray(features, dtype=np.float64)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        if x.shape[1] != self.n_features:
            raise ValueError(
                f"expected {self.n_features} features, got {x.shape[1]}"
            )
        level_hvs = self.levels.encode(x, vmin=self.vmin, vmax=self.vmax)
        bound = level_hvs.astype(np.int32) * self.ids[None, :, :].astype(np.int32)
        h = bound.sum(axis=1, dtype=np.int32)
        return h[0] if single else h

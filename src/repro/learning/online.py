"""Online class-vector refinement: packed-domain bundling with bit counters.

The paper trains its class hypervectors offline; uHD (PAPERS.md) argues
the same memories should keep learning *in deployment*, where the
appearance of the tracked faces drifts away from the training set.  The
obstacle is representation: the serving stack stores class vectors
sign-quantized and bit-packed (:class:`~repro.core.packed.
PackedClassModel`), and a sign bit alone cannot absorb new evidence - two
+1 votes followed by three -1 votes must end at -1, which requires the
*count*, not the sign.

:class:`OnlineCounters` keeps that count the way the packed backend keeps
everything: as **bit-sliced vertical counter planes**.  Plane ``p`` holds
bit ``p`` of the running "+1 vote" count for 64 components of a word at
once, so bundling one packed query into a class is a ripple-carry add
(one XOR + one AND per plane) and never touches an integer tensor.  The
class row is *rematerialized* from the counters by a bit-sliced
carry-out comparator - bit ``d`` is 1 iff ``ones_d >= ceil(total / 2)``,
the exact sign (``0 -> +1``) of the equivalent dense accumulator - so
the packed model and the counters can never disagree.  Memory is bounded:
the planes saturate at ``max_planes`` and then *decay* (halve every
count), which keeps the counters a fixed ``n_classes x max_planes x W``
words forever while acting as an exponential forget - old evidence fades,
which is what an adapting tracker wants anyway.

:class:`DenseSignAccumulator` is the reference twin: the classic dense
sign-accumulator update rule (integer per-component accumulator,
``sign(acc)`` with ``0 -> +1``) expressed over the same (ones, total)
counters, so the property tests can pin the packed update *bitwise* equal
to the dense rule after every step, decays included.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import (
    pack_bits,
    packed_tail_mask,
    packed_words,
    unpack_bits,
)
from ..core.packed import PackedClassModel

__all__ = ["OnlineCounters", "DenseSignAccumulator", "OnlineUpdate"]

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)
_ZERO = np.uint64(0)


def _as_packed(model):
    """Coerce to a :class:`PackedClassModel` (accepts bipolar matrices)."""
    if isinstance(model, PackedClassModel):
        return model
    return PackedClassModel(model)


class OnlineUpdate:
    """One proposed online update: packed weak-label queries for one class.

    ``queries`` is ``(n, W)`` uint64 packed windows (the engine's
    ``window_queries`` output) all carrying the same weak ``label``.
    ``replica_payloads`` optionally substitutes the payload one replica of
    an :class:`~repro.reliability.guard.AdaptiveGuardedModel` sees -
    the delivery-corruption fault surface the chaos harness exercises
    (``{replica_index: queries}``).
    """

    __slots__ = ("label", "queries", "source", "frame", "replica_payloads")

    def __init__(self, label, queries, source="tracker", frame=None,
                 replica_payloads=None):
        self.label = int(label)
        self.queries = np.atleast_2d(np.asarray(queries, dtype=np.uint64))
        self.source = str(source)
        self.frame = frame
        self.replica_payloads = dict(replica_payloads or {})

    def payload_for(self, replica):
        """The queries replica ``replica`` receives (poisoned or clean)."""
        q = self.replica_payloads.get(int(replica))
        if q is None:
            return self.queries
        return np.atleast_2d(np.asarray(q, dtype=np.uint64))

    def __len__(self):
        return self.queries.shape[0]


class OnlineCounters:
    """Per-class bundling counters, stored and updated in the packed domain.

    Parameters
    ----------
    model:
        The starting :class:`~repro.core.packed.PackedClassModel` (or a
        bipolar ``(n_classes, D)`` matrix).  Its sign bits seed the
        counters with ``prior`` votes each, so the materialized model
        starts bitwise equal to it and fresh evidence must accumulate
        ``prior`` net votes to flip a component.
    prior:
        Vote weight of the offline-trained model (>= 1).  Small priors
        adapt fast but forget the training set fast; the default keeps a
        single bad frame from flipping anything.
    max_planes:
        Counter width in bit planes.  Totals that would overflow
        ``2**max_planes - 1`` trigger a *decay* (every count halves),
        bounding memory at ``max_planes * n_classes * W`` words.
    """

    def __init__(self, model, prior=32, max_planes=16):
        base = _as_packed(model)
        self.dim = base.dim
        self.n_classes = base.n_classes
        self.n_words = packed_words(base.dim)
        self.prior = int(prior)
        if self.prior < 1:
            raise ValueError(f"prior must be >= 1, got {prior}")
        self.max_planes = int(max_planes)
        if self.max_planes < self.prior.bit_length() + 1:
            raise ValueError(
                f"max_planes {max_planes} cannot hold prior {prior}")
        self._tail = packed_tail_mask(self.dim)
        n_planes = self.prior.bit_length()
        #: ``(n_planes, n_classes, W)`` vertical counter planes: plane
        #: ``p`` carries bit ``p`` of every component's "+1 vote" count.
        self.planes = np.zeros((n_planes, self.n_classes, self.n_words),
                               dtype=np.uint64)
        for p in range(n_planes):
            if (self.prior >> p) & 1:
                self.planes[p] = base.packed
        #: Votes bundled per class (prior included).
        self.totals = np.full(self.n_classes, self.prior, dtype=np.int64)
        self.updates = 0
        self.decays = 0

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    @property
    def n_planes(self):
        return self.planes.shape[0]

    @property
    def nbytes(self):
        """Counter footprint (bounded by ``max_planes`` planes)."""
        return int(self.planes.nbytes + self.totals.nbytes)

    def _grow(self):
        self.planes = np.concatenate(
            [self.planes, np.zeros((1,) + self.planes.shape[1:],
                                   dtype=np.uint64)])

    def _decay(self, class_id):
        """Halve one class's counts: drop the LSB plane, halve the total."""
        self.planes[:-1, class_id] = self.planes[1:, class_id]
        self.planes[-1, class_id] = _ZERO
        self.totals[class_id] >>= 1
        self.decays += 1

    def _ensure_capacity(self, class_id, n_new):
        cap = (1 << self.max_planes) - 1
        if n_new > cap:
            raise ValueError(
                f"cannot bundle {n_new} votes at once into {self.max_planes} "
                f"planes (capacity {cap})")
        while self.totals[class_id] + n_new > (1 << self.n_planes) - 1:
            if self.n_planes < self.max_planes:
                self._grow()
            else:
                self._decay(class_id)

    # ------------------------------------------------------------------
    # the bundling update
    # ------------------------------------------------------------------
    def add(self, class_id, packed_queries):
        """Bundle packed bipolar votes into one class's counters.

        Each row of ``packed_queries`` (``(n, W)`` uint64, ``+1 -> 1``
        bits) is one vote per component: a set bit increments that
        component's ones-count, a clear bit only increments the total -
        exactly the dense rule ``acc += query`` expressed over
        ``acc = 2 * ones - total``.  Returns the number of votes bundled.
        """
        c = int(class_id)
        if not 0 <= c < self.n_classes:
            raise ValueError(f"class {class_id} out of range")
        q = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
        if q.shape[-1] != self.n_words:
            raise ValueError(
                f"queries must be (n, {self.n_words}) words, got {q.shape}")
        n = q.shape[0]
        if n == 0:
            return 0
        self._ensure_capacity(c, n)
        q = q & self._tail
        for row in q:
            carry = row
            for p in range(self.n_planes):
                plane = self.planes[p, c]
                # evaluate both before writing: ``plane`` views the buffer
                carry, self.planes[p, c] = plane & carry, plane ^ carry
                if not carry.any():
                    break
        self.totals[c] += n
        self.updates += n
        return n

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    def materialize(self):
        """Rematerialize the packed class rows from the counters.

        Bit ``d`` of class ``c`` is 1 iff ``ones >= ceil(total / 2)``,
        i.e. the sign (``0 -> +1``) of the dense accumulator
        ``2 * ones - total`` - computed as a bit-sliced carry-out
        comparator: adding the constant ``2**P - threshold`` to the
        counter planes carries out of plane ``P`` exactly when the count
        reaches the threshold.  Returns ``(n_classes, W)`` uint64.
        """
        p_total = self.n_planes
        thresh = (self.totals + 1) >> 1  # ceil(total / 2), >= 1
        const = (np.uint64(1) << np.uint64(p_total)) - thresh.astype(np.uint64)
        carry = np.zeros((self.n_classes, self.n_words), dtype=np.uint64)
        for p in range(p_total):
            k_bit = ((const >> np.uint64(p)) & np.uint64(1)).astype(bool)
            k_mask = np.where(k_bit[:, None], _ONES, _ZERO)
            plane = self.planes[p]
            carry = (plane & k_mask) | (plane & carry) | (k_mask & carry)
        return carry & self._tail

    def as_model(self):
        """The current counters as a :class:`PackedClassModel` (no copy-in)."""
        clone = object.__new__(PackedClassModel)
        clone.n_classes = self.n_classes
        clone.dim = self.dim
        clone.packed = self.materialize()
        return clone

    def counts(self):
        """Dense ``(n_classes, dim)`` ones-counts (tests, introspection)."""
        total = np.zeros((self.n_classes, self.dim), dtype=np.int64)
        for p in range(self.n_planes):
            plane_bits = unpack_bits(self.planes[p], self.dim) > 0
            total += plane_bits.astype(np.int64) << p
        return total

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state(self):
        """Snapshot for rollback / checkpointing (arrays are copies)."""
        return {
            "planes": self.planes.copy(),
            "totals": self.totals.copy(),
            "prior": self.prior,
            "updates": self.updates,
            "decays": self.decays,
        }

    def load_state(self, state):
        """Restore a :meth:`state` snapshot bitwise."""
        planes = np.asarray(state["planes"], dtype=np.uint64)
        totals = np.asarray(state["totals"], dtype=np.int64)
        if planes.shape[1:] != (self.n_classes, self.n_words):
            raise ValueError(
                f"state planes {planes.shape} do not match "
                f"({self.n_classes}, {self.n_words}) counters")
        self.planes = planes.copy()
        self.totals = totals.copy()
        self.prior = int(state["prior"])
        self.updates = int(state["updates"])
        self.decays = int(state["decays"])
        return self


class DenseSignAccumulator:
    """Reference dense sign-accumulator with the same decay semantics.

    The classic online-HDC update - an integer accumulator per component,
    class bit = ``sign(acc)`` with ``0 -> +1`` - carried as
    ``(ones, total)`` so the bounded-memory decay (halve both) matches
    :class:`OnlineCounters` exactly.  Property tests drive both through
    identical vote streams and require bitwise-equal materialized models
    at every step.
    """

    def __init__(self, model, prior=32):
        base = _as_packed(model)
        self.dim = base.dim
        self.n_classes = base.n_classes
        self.prior = int(prior)
        bits = (unpack_bits(base.packed, base.dim) > 0).astype(np.int64)
        self.ones = bits * self.prior
        self.totals = np.full(self.n_classes, self.prior, dtype=np.int64)

    @property
    def acc(self):
        """The bipolar accumulator ``2 * ones - total`` per component."""
        return 2 * self.ones - self.totals[:, None]

    def add(self, class_id, bipolar_rows):
        """Accumulate bipolar ``(n, D)`` votes into one class."""
        rows = np.atleast_2d(np.asarray(bipolar_rows))
        c = int(class_id)
        self.ones[c] += (rows > 0).sum(axis=0)
        self.totals[c] += rows.shape[0]

    def decay(self, class_id):
        """Halve one class's counts (the bounded-memory forget step)."""
        c = int(class_id)
        self.ones[c] >>= 1
        self.totals[c] >>= 1

    def materialize(self):
        """Packed sign bits of the accumulator (``0 -> +1``)."""
        signs = np.where(self.acc >= 0, 1, -1).astype(np.int8)
        return pack_bits(signs)

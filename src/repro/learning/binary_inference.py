"""Hardware-faithful binary inference: packed model, XOR + popcount search.

The FPGA datapath of Section 6.5 stores one *binary* hypervector per class
and classifies by Hamming distance, computed with XOR gates and a popcount
tree over 64-bit words.  :class:`BinaryHDCEngine` reproduces that exact
computation in software:

1. the trained float class accumulators are sign-quantized to bipolar form;
2. model and queries are packed 64 components per ``uint64`` word;
3. inference is ``argmin`` of packed Hamming distance.

Binarizing the query discards the magnitude information HDFace's weighted
bundles carry, so this engine trades a little accuracy for the bitwise
datapath - the ablation bench quantifies the gap.  It is also the natural
victim for stored-model bit-error experiments, since a "bit" here is
literally one stored bit.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import pack_bits, packed_hamming_distance

__all__ = ["BinaryHDCEngine"]


class BinaryHDCEngine:
    """Packed binary similarity-search engine over a trained HDC model.

    Parameters
    ----------
    classifier:
        A fitted :class:`repro.learning.hdc_classifier.HDCClassifier` (or
        anything exposing ``class_hvs_`` and ``n_classes``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.learning import HDCClassifier
    >>> rng = np.random.default_rng(0)
    >>> x = np.sign(rng.normal(size=(40, 512))); y = (x[:, 0] > 0).astype(int)
    >>> clf = HDCClassifier(2, epochs=5, seed_or_rng=0).fit(x, y)
    >>> engine = BinaryHDCEngine(clf)
    >>> engine.predict(x).shape
    (40,)
    """

    def __init__(self, classifier):
        if getattr(classifier, "class_hvs_", None) is None:
            raise RuntimeError("classifier is not fitted")
        self.n_classes = classifier.n_classes
        self.dim = classifier.class_hvs_.shape[1]
        model = np.sign(classifier.class_hvs_)
        model[model == 0] = 1
        self.model_bipolar = model.astype(np.int8)
        self.model_packed = pack_bits(self.model_bipolar)

    @property
    def model_bits(self):
        """Stored model size in bits (the hardware memory footprint)."""
        return self.n_classes * self.dim

    def binarize(self, queries):
        """Sign-quantize float query hypervectors to bipolar form."""
        q = np.sign(np.atleast_2d(np.asarray(queries, dtype=np.float64)))
        q[q == 0] = 1
        return q.astype(np.int8)

    def distances(self, queries):
        """Packed Hamming distance of each query to each class: ``(n, k)``."""
        packed = pack_bits(self.binarize(queries))
        return packed_hamming_distance(packed[:, None, :], self.model_packed[None])

    def predict(self, queries):
        """Label of the Hamming-nearest class per query."""
        return self.distances(queries).argmin(axis=1)

    def score(self, queries, labels):
        """Mean accuracy of the packed binary datapath."""
        return float((self.predict(queries) == np.asarray(labels)).mean())

    def predict_with_model_bit_errors(self, queries, rate, seed_or_rng=None):
        """Predict after flipping stored model bits at ``rate``.

        Flips are applied to the packed words through an XOR mask - the
        same operation a memory fault performs on the physical storage.
        """
        from ..core.hypervector import as_rng
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        rng = as_rng(seed_or_rng)
        flips = rng.random((self.n_classes, self.dim)) < rate
        pad = (-self.dim) % 64
        if pad:
            flips = np.concatenate(
                [flips, np.zeros((self.n_classes, pad), bool)], axis=1)
        mask = np.packbits(flips.astype(np.uint8), axis=-1, bitorder="little")
        mask = np.ascontiguousarray(mask).view(np.uint64)
        corrupted = np.bitwise_xor(self.model_packed, mask)
        packed = pack_bits(self.binarize(queries))
        dists = packed_hamming_distance(packed[:, None, :], corrupted[None])
        return dists.argmin(axis=1)

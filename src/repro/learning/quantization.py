"""Fixed-point quantization of model parameters and arrays.

Table 2 evaluates the DNN at 16-, 8- and 4-bit weight precision and injects
random bit errors into the stored representation.  This module provides the
symmetric two's-complement fixed-point codec those experiments use, plus a
:class:`QuantizedMLP` wrapper that runs inference from quantized weights.

The same codec quantizes the intermediate buffers of the original-space HOG
pipeline for the ``HDFace+Learn`` rows (bit errors in feature extraction).
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng

__all__ = ["quantize", "dequantize", "flip_int_bits", "QuantizedMLP"]


def default_headroom_bits(bits):
    """Integer headroom a ``bits``-wide embedded Q-format typically reserves.

    Fixed-point DNN implementations pick a Qm.n split once (to keep
    accumulators overflow-safe and share one format across layers); the
    spare integer bits grow with the word width - Q4.11-style for 16-bit,
    Q2.5 for 8-bit, Q1.2 for 4-bit.  This headroom is what makes
    high-precision models *fragile*: a flipped high-order bit injects a
    weight ``2**headroom`` times the real weight range (Table 2's DNN
    trend).  With pure per-tensor max scaling (headroom 0 at every width)
    the expected corruption energy is provably precision-independent and
    the paper's trend disappears.
    """
    return bits // 4


def quantize(arr, bits, scale=None, headroom_bits=None):
    """Symmetric fixed-point quantization to ``bits`` (two's complement).

    Parameters
    ----------
    arr:
        Float array.
    bits:
        Total bits per value, including the sign (2..32).
    scale:
        Value mapped to the top of the *data* range; defaults to
        ``max(|arr|)``.
    headroom_bits:
        Extra integer bits above the data range (see
        :func:`default_headroom_bits`); the effective full-scale becomes
        ``scale * 2**headroom_bits``.

    Returns
    -------
    (codes, scale):
        ``codes`` is an ``int32`` array in ``[-(2^(bits-1)-1), 2^(bits-1)-1]``
        and ``scale`` the effective full-scale needed by :func:`dequantize`.
    """
    if not 2 <= bits <= 32:
        raise ValueError(f"bits must be in [2, 32], got {bits}")
    arr = np.asarray(arr, dtype=np.float64)
    if scale is None:
        scale = float(np.abs(arr).max())
    if headroom_bits is None:
        headroom_bits = default_headroom_bits(bits)
    if scale == 0.0:
        return np.zeros(arr.shape, dtype=np.int32), 1.0
    scale = scale * float(2**headroom_bits)
    qmax = 2 ** (bits - 1) - 1
    codes = np.clip(np.round(arr / scale * qmax), -qmax, qmax).astype(np.int32)
    return codes, scale


def dequantize(codes, scale, bits):
    """Inverse of :func:`quantize`."""
    qmax = 2 ** (bits - 1) - 1
    return np.asarray(codes, dtype=np.float64) * (scale / qmax)


def flip_int_bits(codes, bits, rate, seed_or_rng=None, mode="per_value"):
    """Inject random bit errors into a two's-complement representation.

    ``mode="per_value"`` (default, Table 2's semantics): each stored value
    is hit with probability ``rate``; a hit flips one uniformly-chosen bit.
    A flipped sign or high-magnitude bit changes the value drastically,
    which is why high-precision (headroom-carrying) DNNs are fragile, while
    degradation stays *gradual* in the rate - the paper's trend.

    ``mode="per_bit"``: every stored bit flips independently with
    probability ``rate`` (the harsher model; ~``bits`` times the exposure).
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if mode not in ("per_value", "per_bit"):
        raise ValueError(f"unknown mode {mode!r}")
    rng = as_rng(seed_or_rng)
    codes = np.asarray(codes, dtype=np.int64)
    if rate == 0.0:
        return codes.astype(np.int32)
    mask_bits = (1 << bits) - 1
    unsigned = codes & mask_bits  # two's-complement view in `bits` bits
    if mode == "per_value":
        hit = rng.random(codes.shape) < rate
        which = rng.integers(0, bits, size=codes.shape)
        flip_mask = np.where(hit, np.int64(1) << which, 0)
    else:
        flips = rng.random(codes.shape + (bits,)) < rate
        flip_mask = (flips * (1 << np.arange(bits))).sum(axis=-1).astype(np.int64)
    corrupted = unsigned ^ flip_mask
    # Sign-extend back from `bits` to int64.
    sign_bit = 1 << (bits - 1)
    corrupted = (corrupted ^ sign_bit) - sign_bit
    return corrupted.astype(np.int32)


class QuantizedMLP:
    """Inference wrapper holding a fixed-point copy of an MLP's parameters.

    Parameters
    ----------
    mlp:
        A trained :class:`repro.learning.mlp.MLPClassifier`.
    bits:
        Weight/bias precision (16, 8 or 4 in the paper).

    Notes
    -----
    Quantization itself costs accuracy at low precision (the paper reports
    4-bit costing 2.7 points versus 16-bit), and bit errors cost more at
    high precision; :meth:`predict_with_bit_errors` reproduces both effects.
    """

    def __init__(self, mlp, bits):
        self.mlp = mlp
        self.bits = int(bits)
        self.weight_codes = []
        self.weight_scales = []
        self.bias_codes = []
        self.bias_scales = []
        for w, b in zip(mlp.weights, mlp.biases):
            wc, ws = quantize(w, self.bits)
            bc, bs = quantize(b, self.bits)
            self.weight_codes.append(wc)
            self.weight_scales.append(ws)
            self.bias_codes.append(bc)
            self.bias_scales.append(bs)

    def _materialize(self, rate=0.0, seed_or_rng=None):
        rng = as_rng(seed_or_rng)
        weights, biases = [], []
        for wc, ws, bc, bs in zip(
            self.weight_codes, self.weight_scales, self.bias_codes, self.bias_scales
        ):
            if rate > 0.0:
                wc = flip_int_bits(wc, self.bits, rate, rng)
                bc = flip_int_bits(bc, self.bits, rate, rng)
            weights.append(dequantize(wc, ws, self.bits))
            biases.append(dequantize(bc, bs, self.bits))
        return weights, biases

    def predict(self, x):
        """Predict from clean quantized parameters."""
        weights, biases = self._materialize()
        return self.mlp.predict(x, weights=weights, biases=biases)

    def predict_with_bit_errors(self, x, rate, seed_or_rng=None):
        """Predict after flipping stored parameter bits at ``rate``."""
        weights, biases = self._materialize(rate, seed_or_rng)
        return self.mlp.predict(x, weights=weights, biases=biases)

    def score(self, x, y, rate=0.0, seed_or_rng=None):
        """Accuracy of (optionally corrupted) quantized inference."""
        if rate > 0.0:
            pred = self.predict_with_bit_errors(x, rate, seed_or_rng)
        else:
            pred = self.predict(x)
        return float((pred == np.asarray(y)).mean())

"""Evaluation metrics shared by all classifiers and the benchmark harness."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "quality_loss"]


def accuracy(y_true, y_pred):
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("label arrays must have identical shapes")
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred, n_classes=None):
    """Confusion matrix ``M[i, j]`` = count of true class i predicted as j."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    mat = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(mat, (y_true, y_pred), 1)
    return mat


def quality_loss(clean_accuracy, noisy_accuracy):
    """Accuracy degradation in percentage points (Table 2's metric).

    The paper reports robustness as *quality loss*: how many points of
    accuracy an error rate costs relative to the clean model.  Floors at 0
    so stochastic flukes where noise helps do not report negative loss.
    """
    return max(0.0, float(clean_accuracy) - float(noisy_accuracy)) * 100.0

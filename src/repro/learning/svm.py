"""Linear SVM baseline trained with the Pegasos stochastic subgradient method.

The paper compares HDFace against an SVM over the same HOG features
(Fig. 4).  This is a from-scratch multiclass (one-vs-rest) linear SVM:
hinge loss with L2 regularization, optimized by Pegasos
(Shalev-Shwartz et al., 2007) with the ``1/(lambda t)`` step schedule and
the optional projection step.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng

__all__ = ["LinearSVM"]


class LinearSVM:
    """One-vs-rest linear SVM with Pegasos training.

    Parameters
    ----------
    n_features:
        Input feature dimensionality.
    n_classes:
        Number of classes; each gets an independent binary hyperplane.
    lam:
        Regularization strength (Pegasos lambda).
    epochs:
        Passes over the training set.
    project:
        Apply Pegasos' optional ball projection after each step.
    standardize:
        Standardize features to zero mean / unit variance at fit time
        (statistics are stored and reapplied at prediction).  Pegasos'
        step schedule assumes O(1) feature scales; HOG features are ~0.05
        and converge painfully slowly without this.
    seed_or_rng:
        Shuffling randomness.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> x = rng.normal(size=(200, 5)); y = (x[:, 0] + x[:, 1] > 0).astype(int)
    >>> svm = LinearSVM(5, 2, epochs=20, seed_or_rng=0).fit(x, y)
    >>> svm.score(x, y) > 0.9
    True
    """

    def __init__(self, n_features, n_classes, lam=1e-3, epochs=20,
                 project=True, standardize=True, seed_or_rng=None):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.lam = float(lam)
        self.epochs = int(epochs)
        self.project = bool(project)
        self.standardize = bool(standardize)
        self._rng = as_rng(seed_or_rng)
        self._mean = np.zeros(self.n_features)
        self._std = np.ones(self.n_features)
        # +1 column for the bias (homogeneous coordinates).
        self.weights = np.zeros((self.n_classes, self.n_features + 1))

    def _augment(self, x):
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.n_features:
            raise ValueError(f"expected {self.n_features} features, got {x.shape[1]}")
        if self.standardize:
            x = (x - self._mean) / self._std
        return np.hstack([x, np.ones((len(x), 1))])

    def decision_function(self, x):
        """Per-class margins ``(n, n_classes)``."""
        return self._augment(x) @ self.weights.T

    def predict(self, x):
        """Class with the largest margin."""
        return self.decision_function(x).argmax(axis=1)

    def score(self, x, y):
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    def fit(self, x, y):
        """Train all one-vs-rest hyperplanes; returns ``self``."""
        if self.standardize:
            raw = np.atleast_2d(np.asarray(x, dtype=np.float64))
            self._mean = raw.mean(axis=0)
            self._std = np.maximum(raw.std(axis=0), 1e-9)
        xa = self._augment(x)
        y = np.asarray(y, dtype=np.int64)
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range")
        n = len(xa)
        radius = 1.0 / np.sqrt(self.lam)
        for k in range(self.n_classes):
            target = np.where(y == k, 1.0, -1.0)
            w = np.zeros(xa.shape[1])
            t = 0
            for _ in range(self.epochs):
                order = self._rng.permutation(n)
                for i in order:
                    t += 1
                    eta = 1.0 / (self.lam * t)
                    margin = target[i] * (w @ xa[i])
                    w *= 1.0 - eta * self.lam
                    if margin < 1.0:
                        w += eta * target[i] * xa[i]
                    if self.project:
                        norm = np.linalg.norm(w)
                        if norm > radius:
                            w *= radius / norm
            self.weights[k] = w
        return self

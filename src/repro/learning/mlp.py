"""DNN baseline: a NumPy multilayer perceptron trained with Adam.

The paper's DNN baseline is a four-layer network over HOG features with two
hidden layers whose sizes are swept in Fig. 5b (best at 1024x1024).  This is
a from-scratch implementation - ReLU activations, softmax cross-entropy,
mini-batch Adam, optional L2 regularization - with deterministic seeding so
every benchmark is reproducible.

The weights are exposed as plain arrays so
:mod:`repro.learning.quantization` can produce the 16/8/4-bit fixed-point
inference models whose robustness Table 2 measures.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng

__all__ = ["MLPClassifier"]


def _one_hot(labels, n_classes):
    out = np.zeros((len(labels), n_classes), dtype=np.float64)
    out[np.arange(len(labels)), labels] = 1.0
    return out


def _softmax(z):
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class MLPClassifier:
    """Fully-connected ReLU network with softmax output.

    Parameters
    ----------
    n_features:
        Input dimensionality.
    n_classes:
        Output classes.
    hidden:
        Tuple of hidden-layer widths; ``(1024, 1024)`` reproduces the
        paper's best DNN configuration (a "four layer neural network" -
        input, two hidden, output).
    lr, beta1, beta2, eps:
        Adam hyperparameters.
    l2:
        L2 weight-decay coefficient.
    seed_or_rng:
        Initialization and shuffling randomness.

    Examples
    --------
    >>> import numpy as np
    >>> net = MLPClassifier(4, 2, hidden=(16,), epochs=30, seed_or_rng=0)
    >>> x = np.random.default_rng(0).normal(size=(64, 4))
    >>> y = (x[:, 0] > 0).astype(int)
    >>> net.fit(x, y).score(x, y) > 0.9
    True
    """

    def __init__(self, n_features, n_classes, hidden=(1024, 1024), lr=3e-3,
                 epochs=30, batch_size=32, l2=1e-5, beta1=0.9, beta2=0.999,
                 eps=1e-8, seed_or_rng=None):
        if n_classes < 2:
            raise ValueError("need at least two classes")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.hidden = tuple(int(h) for h in hidden)
        if any(h <= 0 for h in self.hidden):
            raise ValueError("hidden sizes must be positive")
        self.lr = float(lr)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.l2 = float(l2)
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)
        self._rng = as_rng(seed_or_rng)
        sizes = (self.n_features,) + self.hidden + (self.n_classes,)
        self.weights = [
            self._rng.normal(0.0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]
        self.loss_history_ = []

    # ------------------------------------------------------------------
    def _forward(self, x, weights=None, biases=None):
        """Return pre-activations and activations of every layer."""
        weights = self.weights if weights is None else weights
        biases = self.biases if biases is None else biases
        activations = [x]
        for i, (w, b) in enumerate(zip(weights, biases)):
            z = activations[-1] @ w + b
            if i < len(weights) - 1:
                activations.append(np.maximum(z, 0.0))
            else:
                activations.append(z)
        return activations

    def predict_proba(self, x, weights=None, biases=None):
        """Softmax class probabilities ``(n, n_classes)``.

        ``weights``/``biases`` override the trained parameters; the
        quantized/faulty inference paths use this hook.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        logits = self._forward(x, weights, biases)[-1]
        return _softmax(logits)

    def predict(self, x, weights=None, biases=None):
        """Most probable class per sample."""
        return self.predict_proba(x, weights, biases).argmax(axis=1)

    def score(self, x, y):
        """Mean accuracy."""
        return float((self.predict(x) == np.asarray(y)).mean())

    # ------------------------------------------------------------------
    def fit(self, x, y):
        """Train with mini-batch Adam; returns ``self``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if x.ndim != 2 or x.shape[1] != self.n_features:
            raise ValueError(f"expected (n, {self.n_features}) inputs, got {x.shape}")
        if y.min() < 0 or y.max() >= self.n_classes:
            raise ValueError("labels out of range")
        targets = _one_hot(y, self.n_classes)
        m_w = [np.zeros_like(w) for w in self.weights]
        v_w = [np.zeros_like(w) for w in self.weights]
        m_b = [np.zeros_like(b) for b in self.biases]
        v_b = [np.zeros_like(b) for b in self.biases]
        step = 0
        self.loss_history_ = []
        for _ in range(self.epochs):
            order = self._rng.permutation(len(x))
            epoch_loss = 0.0
            for start in range(0, len(order), self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, tb = x[idx], targets[idx]
                acts = self._forward(xb)
                probs = _softmax(acts[-1])
                eps_clip = 1e-12
                epoch_loss += float(
                    -np.log(np.maximum(probs[np.arange(len(idx)), y[idx]], eps_clip)).sum()
                )
                delta = (probs - tb) / len(idx)
                step += 1
                for layer in reversed(range(len(self.weights))):
                    grad_w = acts[layer].T @ delta + self.l2 * self.weights[layer]
                    grad_b = delta.sum(axis=0)
                    if layer > 0:
                        delta = (delta @ self.weights[layer].T) * (acts[layer] > 0)
                    m_w[layer] = self.beta1 * m_w[layer] + (1 - self.beta1) * grad_w
                    v_w[layer] = self.beta2 * v_w[layer] + (1 - self.beta2) * grad_w**2
                    m_b[layer] = self.beta1 * m_b[layer] + (1 - self.beta1) * grad_b
                    v_b[layer] = self.beta2 * v_b[layer] + (1 - self.beta2) * grad_b**2
                    mw_hat = m_w[layer] / (1 - self.beta1**step)
                    vw_hat = v_w[layer] / (1 - self.beta2**step)
                    mb_hat = m_b[layer] / (1 - self.beta1**step)
                    vb_hat = v_b[layer] / (1 - self.beta2**step)
                    self.weights[layer] -= self.lr * mw_hat / (np.sqrt(vw_hat) + self.eps)
                    self.biases[layer] -= self.lr * mb_hat / (np.sqrt(vb_hat) + self.eps)
            self.loss_history_.append(epoch_loss / len(x))
        return self

    # ------------------------------------------------------------------
    def parameter_count(self):
        """Total trainable parameters (drives the hardware cost model)."""
        return int(
            sum(w.size for w in self.weights) + sum(b.size for b in self.biases)
        )

    def layer_sizes(self):
        """Tuple of layer widths including input and output."""
        return (self.n_features,) + self.hidden + (self.n_classes,)

"""Learning algorithms: the HDC classifier and the DNN/SVM baselines."""

from .binary_inference import BinaryHDCEngine
from .encoders import LevelIDEncoder, NonlinearEncoder, RandomProjectionEncoder
from .hdc_classifier import HDCClassifier
from .metrics import accuracy, confusion_matrix, quality_loss
from .mlp import MLPClassifier
from .online import DenseSignAccumulator, OnlineCounters, OnlineUpdate
from .quantization import QuantizedMLP, dequantize, flip_int_bits, quantize
from .svm import LinearSVM

__all__ = [
    "HDCClassifier",
    "BinaryHDCEngine",
    "MLPClassifier",
    "LinearSVM",
    "QuantizedMLP",
    "quantize",
    "dequantize",
    "flip_int_bits",
    "NonlinearEncoder",
    "RandomProjectionEncoder",
    "LevelIDEncoder",
    "accuracy",
    "confusion_matrix",
    "quality_loss",
    "OnlineCounters",
    "OnlineUpdate",
    "DenseSignAccumulator",
]

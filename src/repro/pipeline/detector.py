"""Sliding-window face detection over large scenes (paper Fig. 6).

Fig. 6 visualizes HDFace as a detector: a HOG window slides over an image
"in an overlapping manner" and every window the classifier calls a face is
painted.  :class:`SlidingWindowDetector` reproduces that, returning the
per-window face-confidence map that the Fig. 6 bench renders at different
dimensionalities (false detections at D=1k disappear by D=4k).

Three execution engines scan the same window grid:

* ``"shared"`` (default for HD pipelines) - the
  :class:`~repro.pipeline.engine.SharedFeatureEngine`: per-pixel feature
  stages run once over the whole scene, every window's query is sliced out
  of the cached cell-histogram grid, and all windows are classified by one
  batched similarity matmul.
* ``"perwindow"`` - the keyed reference path: every window re-extracts its
  fields from scratch with position-keyed noise.  Bitwise identical scores
  to ``"shared"`` (the equivalence tests rely on this), at per-window cost.
* ``"legacy"`` - the original crop-based path through
  ``pipeline.similarities`` with the stateful codec rng; kept as the speed
  baseline and for non-HD pipelines.

The module also builds the composite test scenes: a clutter background with
faces pasted at known locations, so detection quality is measurable
(window-level precision/recall against ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng
from ..core.packed import PackedClassModel
from ..datasets.faces import draw_face, draw_nonface, random_face_params
from ..hardware.opcount import (
    hd_hog_profile,
    hdc_infer_profile,
    packed_infer_profile,
)
from ..profiling import NULL_PROFILER
from .engine import SharedFeatureEngine

__all__ = ["SlidingWindowDetector", "DetectionMap", "make_scene"]

ENGINES = ("shared", "perwindow", "legacy")


@dataclass
class DetectionMap:
    """Result of scanning one scene.

    Attributes
    ----------
    scores:
        ``(n_wy, n_wx)`` face-class confidence (similarity margin) per
        window position.
    detections:
        Boolean map, True where the face class wins.
    stride:
        Pixels between window positions.
    window:
        Window side in pixels.
    """

    scores: np.ndarray
    detections: np.ndarray
    stride: int
    window: int

    def window_origin(self, iy, ix):
        """Top-left pixel of window ``(iy, ix)``."""
        return iy * self.stride, ix * self.stride


class SlidingWindowDetector:
    """Scan a scene with a trained binary face/no-face pipeline.

    Parameters
    ----------
    pipeline:
        A fitted binary classifier pipeline exposing ``similarities``
        (:class:`repro.pipeline.hdface.HDFacePipeline`) or decision scores.
    window:
        Window side in pixels (must match the training image size).
    stride:
        Step between windows; smaller = more overlap (the paper scans
        "in an overlapping manner").
    face_class:
        Index of the face class in the pipeline's outputs (1 by
        convention of :func:`repro.datasets.faces.make_face_dataset`).
    engine:
        ``"shared"``, ``"perwindow"``, ``"legacy"``, ``"auto"`` (shared
        when the pipeline exposes the HD shared-pass API, legacy
        otherwise), or a ready :class:`~repro.pipeline.engine.
        SharedFeatureEngine` instance to reuse its cache across detectors
        (the detector adopts that engine's backend).
    backend:
        ``"dense"`` (float reference) or ``"packed"`` (bit-packed binary
        hot path with :class:`~repro.core.packed.PackedClassModel`
        Hamming-argmin classification; shared engine only).
    workers:
        Thread count for the strip-parallel fields pass inside the shared
        engine.  1 = serial; results are bitwise identical either way.
    scrub:
        Enable the shared engine's cache scrubber: cached scene entries
        are digest-verified on every hit and recomputed on mismatch
        instead of being served corrupt (see
        :meth:`~repro.pipeline.engine.SharedFeatureEngine.corrupt_cache`).
    profiler:
        Optional :class:`repro.profiling.Profiler`; scan stages are timed
        and op-counted on it (and on the engine, for shared mode).
    cascade:
        Route scans through the multi-stage early-exit cascade
        (:class:`repro.pipeline.cascade.CascadeScanner`; shared engine +
        packed backend only).  ``True`` builds a default cascade with
        analytic Hoeffding bounds; a
        :class:`~repro.pipeline.cascade.CascadeCalibration` uses its
        fitted stage schedule; a dict is passed as ``CascadeScanner``
        keyword arguments; a ready ``CascadeScanner`` is adopted as-is.
    """

    def __init__(self, pipeline, window, stride=None, face_class=1,
                 engine="auto", profiler=None, backend="dense", workers=1,
                 scrub=False, cascade=None):
        self.pipeline = pipeline
        self.window = int(window)
        self.stride = int(stride) if stride else max(self.window // 2, 1)
        self.face_class = int(face_class)
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.engine = None
        self._packed_model = None
        self.cascade = cascade if cascade else None
        self._cascade_scanner = None
        if isinstance(engine, SharedFeatureEngine):
            self.mode = "shared"
            self.engine = engine
            self.backend = engine.backend
            if profiler is not None:
                self.engine.profiler = self.profiler
        else:
            if engine == "auto":
                engine = "shared" if self._has_shared_api() else "legacy"
            if engine not in ENGINES:
                raise ValueError(f"unknown engine {engine!r}; "
                                 f"expected one of {ENGINES}")
            if backend not in ("dense", "packed"):
                raise ValueError(f"unknown backend {backend!r}; "
                                 "expected 'dense' or 'packed'")
            if backend == "packed" and engine != "shared":
                raise ValueError(
                    "backend='packed' requires the shared engine "
                    f"(got engine={engine!r})")
            self.mode = engine
            self.backend = backend
            if engine == "shared":
                self.engine = SharedFeatureEngine(pipeline.extractor,
                                                  profiler=self.profiler,
                                                  backend=backend,
                                                  workers=workers,
                                                  scrub=scrub)
        if self.cascade is not None and (self.mode != "shared"
                                         or self.backend != "packed"):
            raise ValueError("cascade scanning requires the shared engine "
                             "with backend='packed' (got engine="
                             f"{self.mode!r}, backend={self.backend!r})")

    def cascade_scanner(self):
        """The scanner behind ``cascade=`` (built lazily; None if unset)."""
        if self.cascade is None:
            return None
        if self._cascade_scanner is None:
            from .cascade import CascadeCalibration, CascadeScanner
            c = self.cascade
            if isinstance(c, CascadeScanner):
                self._cascade_scanner = c
            elif isinstance(c, CascadeCalibration):
                self._cascade_scanner = CascadeScanner(self, calibration=c)
            elif isinstance(c, dict):
                self._cascade_scanner = CascadeScanner(self, **c)
            else:
                self._cascade_scanner = CascadeScanner(self)
        return self._cascade_scanner

    def packed_model(self):
        """Sign-quantized packed class model (cached until the model refits).

        Classification against it follows
        :class:`repro.learning.binary_inference.BinaryHDCEngine` semantics
        exactly: sign quantization with ``0 -> +1``, Hamming argmin.
        """
        hvs = self.pipeline.classifier.class_hvs_
        cached = self._packed_model
        if cached is None or cached[0] is not hvs:
            model = PackedClassModel.from_classifier(self.pipeline.classifier)
            self._packed_model = cached = (hvs, model)
        return cached[1]

    def _has_shared_api(self):
        extractor = getattr(self.pipeline, "extractor", None)
        return (hasattr(extractor, "extract_fields")
                and hasattr(self.pipeline, "classifier"))

    def origins(self, scene_shape, stride=None):
        """Window origins and grid shape: ``(list[(y, x)], (n_wy, n_wx))``.

        ``stride`` overrides the configured stride for this call - the
        serving runtime's degradation ladder coarsens the scan grid under
        load without rebuilding the detector.
        """
        stride = int(stride) if stride else self.stride
        if stride < 1:
            raise ValueError(f"stride must be at least 1, got {stride}")
        h, w = scene_shape
        if h < self.window or w < self.window:
            raise ValueError("scene smaller than the detection window")
        ys = range(0, h - self.window + 1, stride)
        xs = range(0, w - self.window + 1, stride)
        return [(y, x) for y in ys for x in xs], (len(ys), len(xs))

    def windows(self, scene):
        """All window crops and their grid shape: ``(crops, (n_wy, n_wx))``."""
        scene = np.asarray(scene, dtype=np.float64)
        origins, grid = self.origins(scene.shape)
        crops = np.stack([
            scene[y : y + self.window, x : x + self.window]
            for y, x in origins
        ])
        return crops, grid

    def _window_queries(self, scene, origins, injector):
        """Query hypervectors for every window, per the selected engine."""
        if self.mode == "shared":
            return self.engine.window_queries(scene, origins, self.window,
                                              injector)
        ext = self.pipeline.extractor
        with self.profiler.stage("perwindow"):
            queries = np.stack([
                ext.window_query(scene, origin, self.window, injector)
                for origin in origins
            ])
        self.profiler.add_profile(
            "perwindow",
            hd_hog_profile((self.window, self.window), ext.dim,
                           n_bins=ext.n_bins, magnitude=ext.magnitude,
                           sqrt_iters=ext.sqrt_iters, gamma=ext.gamma,
                           cell_size=ext.cell_size) * len(origins),
            items=len(origins),
        )
        return queries

    def scan(self, scene, injector=None, model=None, stride=None,
             max_words=None):
        """Classify every window; returns a :class:`DetectionMap`.

        Shared and per-window engines produce bitwise-identical scores
        (dense backend); the legacy engine is statistically equivalent but
        draws different stochastic noise.  The packed backend scores with
        the Hamming-argmin semantics of
        :class:`~repro.learning.binary_inference.BinaryHDCEngine` - margins
        are ``(d_other - d_face) * 2 / D``, sign-compatible with the dense
        cosine margins.

        ``model`` substitutes the stored class model for this scan (the
        fault campaigns' model-attack surface, mirroring
        ``HDFacePipeline.predict(model=)``): a ``(n_classes, D)`` matrix
        for the dense backend, or a :class:`~repro.core.packed.
        PackedClassModel` / :class:`~repro.reliability.guard.
        GuardedClassModel` (anything with ``similarities``) for the
        packed backend.

        ``stride`` overrides the scan stride for this call only (shared /
        perwindow engines; the returned map records the stride actually
        used) - the degradation ladder's coarse-grid rung.

        ``max_words`` caps the packed classification at a word-prefix of
        the model (the ladder's ``word_budget`` dial): cascade scans cap
        their escalation depth, plain packed scans score against the
        matching :meth:`~repro.core.packed.PackedClassModel.truncated`
        view.  Scores at a cap are the truncated model's margins.
        """
        scene = np.asarray(scene, dtype=np.float64)
        prof = self.profiler
        if self.cascade is not None and \
                (model is None or hasattr(model, "distance_block")):
            return self.cascade_scanner().scan(
                scene, injector=injector, model=model, stride=stride,
                max_words=max_words)
        if max_words is not None:
            if self.backend != "packed":
                raise ValueError("max_words requires the packed backend")
            base = model if model is not None else self.packed_model()
            if hasattr(base, "truncated") and \
                    int(max_words) < getattr(base, "n_words", 0):
                model = base.truncated(int(max_words))
        if self.mode == "legacy":
            if model is not None:
                raise ValueError("model substitution requires the shared or "
                                 "perwindow engine")
            if stride is not None and int(stride) != self.stride:
                raise ValueError("stride override requires the shared or "
                                 "perwindow engine")
            with prof.stage("legacy_scan"):
                crops, (n_wy, n_wx) = self.windows(scene)
                sims = self.pipeline.similarities(crops, injector=injector)
            prof.add_ops("legacy_scan", items=n_wy * n_wx)
        else:
            origins, (n_wy, n_wx) = self.origins(scene.shape, stride)
            queries = self._window_queries(scene, origins, injector)
            if self.backend == "packed":
                if model is None:
                    model = self.packed_model()
                elif not hasattr(model, "similarities"):
                    model = PackedClassModel(model)
                with prof.stage("classify"):
                    sims = model.similarities(queries)
                prof.add_profile(
                    "classify",
                    packed_infer_profile(model.dim,
                                         model.n_classes) * len(origins),
                    items=len(origins),
                )
            else:
                clf = self.pipeline.classifier if model is None \
                    else self.pipeline.classifier.with_model(model)
                with prof.stage("classify"):
                    sims = clf.similarities(queries)
                prof.add_profile(
                    "classify",
                    hdc_infer_profile(self.pipeline.dim,
                                      self.pipeline.n_classes) * len(origins),
                    items=len(origins),
                )
        sims = np.atleast_2d(np.asarray(sims))
        margin = sims[:, self.face_class] - np.delete(sims, self.face_class, axis=1).max(axis=1)
        scores = margin.reshape(n_wy, n_wx)
        used = int(stride) if stride else self.stride
        return DetectionMap(scores, scores > 0, used, self.window)


def make_scene(size, face_positions, window, seed_or_rng=None, jitter=0.6):
    """Composite test scene: clutter background with faces at given spots.

    Parameters
    ----------
    size:
        Scene side in pixels.
    face_positions:
        Iterable of (y, x) top-left corners where ``window``-sized faces are
        pasted.
    window:
        Side of each pasted face patch.
    jitter:
        Appearance jitter of the pasted faces.

    Returns
    -------
    (scene, truth):
        The scene in [0, 1] and the list of pasted face rectangles
        ``(y, x, window)`` for ground-truth evaluation.
    """
    rng = as_rng(seed_or_rng)
    scene = draw_nonface(size, rng, kind="smooth")
    truth = []
    for y, x in face_positions:
        if y < 0 or x < 0 or y + window > size or x + window > size:
            raise ValueError(f"face at ({y}, {x}) does not fit the scene")
        scene[y : y + window, x : x + window] = draw_face(
            window, random_face_params(rng, jitter), rng
        )
        truth.append((int(y), int(x), int(window)))
    return scene, truth

"""Sliding-window face detection over large scenes (paper Fig. 6).

Fig. 6 visualizes HDFace as a detector: a HOG window slides over an image
"in an overlapping manner" and every window the classifier calls a face is
painted.  :class:`SlidingWindowDetector` reproduces that, returning the
per-window face-confidence map that the Fig. 6 bench renders at different
dimensionalities (false detections at D=1k disappear by D=4k).

The module also builds the composite test scenes: a clutter background with
faces pasted at known locations, so detection quality is measurable
(window-level precision/recall against ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypervector import as_rng
from ..datasets.faces import draw_face, draw_nonface, random_face_params

__all__ = ["SlidingWindowDetector", "DetectionMap", "make_scene"]


@dataclass
class DetectionMap:
    """Result of scanning one scene.

    Attributes
    ----------
    scores:
        ``(n_wy, n_wx)`` face-class confidence (similarity margin) per
        window position.
    detections:
        Boolean map, True where the face class wins.
    stride:
        Pixels between window positions.
    window:
        Window side in pixels.
    """

    scores: np.ndarray
    detections: np.ndarray
    stride: int
    window: int

    def window_origin(self, iy, ix):
        """Top-left pixel of window ``(iy, ix)``."""
        return iy * self.stride, ix * self.stride


class SlidingWindowDetector:
    """Scan a scene with a trained binary face/no-face pipeline.

    Parameters
    ----------
    pipeline:
        A fitted binary classifier pipeline exposing ``similarities``
        (:class:`repro.pipeline.hdface.HDFacePipeline`) or decision scores.
    window:
        Window side in pixels (must match the training image size).
    stride:
        Step between windows; smaller = more overlap (the paper scans
        "in an overlapping manner").
    face_class:
        Index of the face class in the pipeline's outputs (1 by
        convention of :func:`repro.datasets.faces.make_face_dataset`).
    """

    def __init__(self, pipeline, window, stride=None, face_class=1):
        self.pipeline = pipeline
        self.window = int(window)
        self.stride = int(stride) if stride else max(self.window // 2, 1)
        self.face_class = int(face_class)

    def windows(self, scene):
        """All window crops and their grid shape: ``(crops, (n_wy, n_wx))``."""
        scene = np.asarray(scene, dtype=np.float64)
        h, w = scene.shape
        if h < self.window or w < self.window:
            raise ValueError("scene smaller than the detection window")
        ys = range(0, h - self.window + 1, self.stride)
        xs = range(0, w - self.window + 1, self.stride)
        crops = np.stack([
            scene[y : y + self.window, x : x + self.window]
            for y in ys for x in xs
        ])
        return crops, (len(list(ys)), len(list(xs)))

    def scan(self, scene, injector=None):
        """Classify every window; returns a :class:`DetectionMap`."""
        crops, (n_wy, n_wx) = self.windows(scene)
        sims = self.pipeline.similarities(crops, injector=injector)
        sims = np.atleast_2d(np.asarray(sims))
        margin = sims[:, self.face_class] - np.delete(sims, self.face_class, axis=1).max(axis=1)
        scores = margin.reshape(n_wy, n_wx)
        return DetectionMap(scores, scores > 0, self.stride, self.window)


def make_scene(size, face_positions, window, seed_or_rng=None, jitter=0.6):
    """Composite test scene: clutter background with faces at given spots.

    Parameters
    ----------
    size:
        Scene side in pixels.
    face_positions:
        Iterable of (y, x) top-left corners where ``window``-sized faces are
        pasted.
    window:
        Side of each pasted face patch.
    jitter:
        Appearance jitter of the pasted faces.

    Returns
    -------
    (scene, truth):
        The scene in [0, 1] and the list of pasted face rectangles
        ``(y, x, window)`` for ground-truth evaluation.
    """
    rng = as_rng(seed_or_rng)
    scene = draw_nonface(size, rng, kind="smooth")
    truth = []
    for y, x in face_positions:
        if y < 0 or x < 0 or y + window > size or x + window > size:
            raise ValueError(f"face at ({y}, {x}) does not fit the scene")
        scene[y : y + window, x : x + window] = draw_face(
            window, random_face_params(rng, jitter), rng
        )
        truth.append((int(y), int(x), int(window)))
    return scene, truth

"""Multi-scale detection: image pyramids and non-maximum suppression.

The paper's Fig. 6 scans one window size; real deployments (the
surveillance / camera use-cases of Sec. 1) need faces found at any size.
This module extends the sliding-window detector with the standard tooling:

* :func:`downscale` / :func:`pyramid` - area-averaged image pyramid;
* :class:`PyramidDetector` - runs a fixed-window detector at every pyramid
  level and maps hits back to original coordinates;
* :func:`non_max_suppression` - greedy IoU-based suppression of
  overlapping detections;
* :func:`execute_plan` - the single frame-scan code path: every caller
  (``PyramidDetector.detect``, the serving runtime, the fleet batch gate,
  the CLI) describes *what* to scan with a
  :class:`~repro.pipeline.plan.Plan` and this function runs it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.ndimage import zoom

from .plan import Plan

__all__ = ["Detection", "downscale", "pyramid", "non_max_suppression",
           "PyramidDetector", "execute_plan"]


@dataclass(frozen=True)
class Detection:
    """One detected box in original-image coordinates."""

    y: float
    x: float
    size: float
    score: float

    @property
    def box(self):
        """(y0, x0, y1, x1)."""
        return (self.y, self.x, self.y + self.size, self.x + self.size)


def downscale(image, factor):
    """Downscale a square image by ``factor`` (>1) with interpolation."""
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    img = np.asarray(image, dtype=np.float64)
    if factor == 1.0:
        return img.copy()
    out = zoom(img, 1.0 / factor, order=1, mode="nearest")
    return np.clip(out, 0.0, 1.0)


def pyramid(image, scale_step=1.5, min_size=16):
    """Yield ``(scaled_image, factor)`` pairs until below ``min_size``."""
    if scale_step <= 1.0:
        raise ValueError("scale_step must exceed 1")
    factor = 1.0
    img = np.asarray(image, dtype=np.float64)
    while min(img.shape) / factor >= min_size:
        yield downscale(img, factor), factor
        factor *= scale_step


def iou(a, b):
    """Intersection-over-union of two detections."""
    ay0, ax0, ay1, ax1 = a.box
    by0, bx0, by1, bx1 = b.box
    ih = max(0.0, min(ay1, by1) - max(ay0, by0))
    iw = max(0.0, min(ax1, bx1) - max(ax0, bx0))
    inter = ih * iw
    union = a.size**2 + b.size**2 - inter
    return inter / union if union > 0 else 0.0


def non_max_suppression(detections, iou_threshold=0.3):
    """Greedy NMS: keep the best-scoring box, drop overlaps, repeat.

    Vectorized over the candidate set: one stable descending sort (exact
    score ties keep their input order), then per kept box one array pass
    suppressing its overlaps - semantically identical to the greedy
    pairwise reference, including the zero-area guard (a zero-size box
    never overlaps anything, and two coincident zero-size boxes get IoU
    0, not 0/0).
    """
    if not 0.0 <= iou_threshold <= 1.0:
        raise ValueError("iou_threshold must be in [0, 1]")
    dets = list(detections)
    if not dets:
        return []
    scores = np.asarray([d.score for d in dets], dtype=np.float64)
    y0 = np.asarray([d.y for d in dets], dtype=np.float64)
    x0 = np.asarray([d.x for d in dets], dtype=np.float64)
    size = np.asarray([d.size for d in dets], dtype=np.float64)
    y1, x1, areas = y0 + size, x0 + size, size * size
    order = np.argsort(-scores, kind="stable")
    kept = []
    while order.size:
        i = int(order[0])
        kept.append(dets[i])
        rest = order[1:]
        ih = np.minimum(y1[i], y1[rest]) - np.maximum(y0[i], y0[rest])
        iw = np.minimum(x1[i], x1[rest]) - np.maximum(x0[i], x0[rest])
        inter = np.clip(ih, 0.0, None) * np.clip(iw, 0.0, None)
        union = areas[i] + areas[rest] - inter
        ious = np.zeros(rest.size)
        np.divide(inter, union, out=ious, where=union > 0)
        order = rest[ious < iou_threshold]
    return kept


def execute_plan(detector, scene, plan, *, injector=None, model=None,
                 levels=None, batch_scan=None, cancel=None):
    """Scan one frame exactly as a :class:`~repro.pipeline.plan.Plan` says.

    This is *the* frame-scan code path: ``PyramidDetector.detect``
    translates its per-call knobs into an ad-hoc plan and lands here, the
    serving runtime executes its rung's plan here, and the planner's
    chosen plans run through here unchanged - so the bitwise conformance
    matrix (``tests/test_conformance.py``) covers every caller at once.

    Parameters
    ----------
    detector:
        A :class:`PyramidDetector`.  The plan's ``backend`` and
        ``engine`` must match the wrapped detector's (a plan is a
        complete description; running it on a mismatched detector would
        silently produce a different route).
    scene, injector, model:
        As :meth:`PyramidDetector.detect`.
    levels:
        Precomputed ``(scaled_image, factor)`` pairs (the streaming path
        builds them once per frame); ``plan.max_levels`` still applies.
    batch_scan:
        Optional ``callable(requests, cancel) -> maps`` routing the
        per-level scans through a cross-stream batch gate
        (:class:`repro.runtime.fleet.BatchGate`); bitwise-identical to
        the solo path.  Injector scans always stay solo.
    cancel:
        Cooperative-cancel event forwarded to ``batch_scan``.

    Returns the NMS-suppressed detections, best score first.
    """
    base = detector.detector
    if plan.backend != base.backend:
        raise ValueError(f"plan backend {plan.backend!r} does not match "
                         f"detector backend {base.backend!r}")
    if plan.engine != base.mode:
        raise ValueError(f"plan engine {plan.engine!r} does not match "
                         f"detector engine {base.mode!r}")
    window = base.window
    if levels is None:
        levels = list(pyramid(scene, detector.scale_step, min_size=window))
    if plan.max_levels is not None:
        levels = levels[: plan.max_levels]
    strides = [plan.stride_for(i) for i in range(len(levels))]
    if batch_scan is not None and injector is None:
        from .batcher import ScanRequest
        requests = [ScanRequest(level, stride=strides[i],
                                max_words=plan.max_words, model=model)
                    for i, (level, _) in enumerate(levels)]
        maps = batch_scan(requests, cancel)
    elif plan.workers > 1 and base.mode != "legacy" and len(levels) > 1:
        from concurrent.futures import ThreadPoolExecutor
        workers = min(plan.workers, len(levels))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            maps = list(pool.map(
                lambda iv: base.scan(iv[1][0], injector=injector, model=model,
                                     stride=strides[iv[0]],
                                     max_words=plan.max_words),
                enumerate(levels)))
    else:
        maps = [base.scan(level, injector=injector, model=model,
                          stride=strides[i], max_words=plan.max_words)
                for i, (level, _) in enumerate(levels)]
    return detector.collect(levels, maps)


class PyramidDetector:
    """Fixed-window detector applied across an image pyramid.

    When the wrapped detector runs the shared-feature engine (the default
    for HD pipelines), each pyramid level's whole-image fields land in the
    engine's LRU cache keyed by the level's contents - so repeated
    ``detect`` calls on the same scene (tracking, parameter sweeps) skip
    extraction entirely and go straight to window assembly.  Size the
    engine cache at least as deep as the pyramid (``n_levels ~=
    log(scene / window) / log(scale_step) + 1``).

    Parameters
    ----------
    detector:
        A :class:`repro.pipeline.detector.SlidingWindowDetector` whose
        window size defines the base scale.
    scale_step:
        Pyramid downscale ratio between levels.
    score_threshold:
        Minimum face-margin for a window to become a detection.
    iou_threshold:
        NMS suppression threshold.
    workers:
        Threads scanning pyramid levels concurrently.  Levels are
        independent, the engine's scene cache is thread-safe, and the
        heavy NumPy kernels release the GIL, so ``workers > 1`` overlaps
        the levels' extraction work; detections are identical to the
        serial pass (levels are collected in order).  Legacy-engine
        detectors (stateful codec rng) always scan serially.
    """

    def __init__(self, detector, scale_step=1.5, score_threshold=0.0,
                 iou_threshold=0.3, workers=1):
        self.detector = detector
        self.scale_step = float(scale_step)
        self.score_threshold = float(score_threshold)
        self.iou_threshold = float(iou_threshold)
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")

    def detect(self, scene, injector=None, model=None, levels=None,
               stride=None, max_levels=None, max_words=None):
        """All-scale detections after NMS, best score first.

        ``injector`` and ``model`` are forwarded to every level's
        :meth:`~repro.pipeline.detector.SlidingWindowDetector.scan` - the
        fault-campaign hooks for corrupting the feature datapath and the
        stored class model through the full pyramid path.  ``levels``
        substitutes precomputed ``(scaled_image, factor)`` pairs for the
        pyramid of ``scene`` - the streaming path builds them once for
        the frame-delta update and passes them here instead of
        downscaling twice per frame.

        ``stride``, ``max_levels`` and ``max_words`` are the load-shedding
        knobs of the serving runtime's degradation ladder: a per-call
        stride override coarsens every level's scan grid, ``max_levels``
        scans only the first N pyramid levels (finest first - the deep,
        cheap levels contribute the large-face coverage that a temporal
        tracker coasts through anyway), and ``max_words`` caps the packed
        classification depth per window (cascade escalation depth, or the
        truncated-model prefix on plain packed scans).

        The per-call knobs are packaged into an ad-hoc
        :class:`~repro.pipeline.plan.Plan` and run through
        :func:`execute_plan` - the one frame-scan code path shared with
        the planner and the serving runtime.
        """
        base = self.detector
        plan = Plan(name="adhoc", backend=base.backend, engine=base.mode,
                    stride=None if stride is None else int(stride),
                    max_levels=None if max_levels is None else int(max_levels),
                    max_words=None if max_words is None or
                    base.backend != "packed" else int(max_words),
                    workers=self.workers)
        if max_words is not None and base.backend != "packed":
            # keep the historical error surface: scan() rejects the knob
            raise ValueError("max_words requires the packed backend")
        return execute_plan(self, scene, plan, injector=injector, model=model,
                            levels=levels)

    def collect(self, levels, maps):
        """Threshold + NMS over precomputed per-level detection maps.

        ``maps`` is one :class:`~repro.pipeline.detector.DetectionMap` per
        ``(scaled_image, factor)`` pair in ``levels``, in level order -
        exactly what :meth:`detect` produces internally.  Exposed so a
        caller that scanned the levels elsewhere (the cross-stream
        batcher, which pools windows from many streams into one packed
        classification pass) can reuse the identical coordinate mapping
        and suppression tail.
        """
        window = self.detector.window
        raw = []
        for (level, factor), dmap in zip(levels, maps):
            for iy, ix in np.argwhere(dmap.scores > self.score_threshold):
                y, x = dmap.window_origin(int(iy), int(ix))
                raw.append(Detection(y * factor, x * factor, window * factor,
                                     float(dmap.scores[iy, ix])))
        return non_max_suppression(raw, self.iou_threshold)

"""Execution plans: one value object that fully describes a frame's scan.

Eight PRs of growth left the detection stack with a pile of knobs -
engine {shared,perwindow,legacy}, backend {dense,packed}, stride,
workers, pyramid depth, frame-delta reuse, word truncation, cascade
schedules, keyframe skipping - and every caller (CLI, stream, serving,
fleet) picked them ad hoc.  A :class:`Plan` collects the complete knob
assignment for scanning one frame into a single frozen dataclass, so

* there is exactly one executable description of "how this frame will be
  scanned" (run it with :func:`repro.pipeline.multiscale.execute_plan`);
* the planner (:mod:`repro.runtime.planner`) can price a candidate
  against the :mod:`repro.hardware.opcount` cost model *before* running
  it, and the serving ladder's rungs become planner-generated plans
  instead of a hand-tuned table;
* plans serialize (:meth:`Plan.to_dict` / :meth:`Plan.from_dict`), so a
  chosen plan can be logged, diffed and replayed.

A ``Plan`` is *pure data*: it never touches a detector.  Validation here
covers only internal consistency (the packed-only knobs, positive
strides); whether a plan fits a particular detector is checked by
``execute_plan`` at execution time.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from ..core.hypervector import packed_words

__all__ = ["Plan", "BACKENDS", "PLAN_ENGINES"]

BACKENDS = ("dense", "packed")
PLAN_ENGINES = ("shared", "perwindow", "legacy")


@dataclass(frozen=True)
class Plan:
    """The complete knob assignment for scanning one frame.

    Attributes
    ----------
    name:
        Stable identifier (reported in stats, rung transitions and the
        planner's tables).
    backend:
        ``"dense"`` or ``"packed"`` - must match the executing
        detector's backend.
    engine:
        ``"shared"``, ``"perwindow"`` or ``"legacy"`` - must match the
        executing detector's engine mode.
    stride:
        Absolute scan stride in pixels (None = the detector's configured
        stride).
    level_strides:
        Optional per-pyramid-level stride overrides; entries may be None
        (fall back to ``stride``).  Levels beyond the tuple use
        ``stride``.
    max_levels:
        Scan only the first N pyramid levels (None = all).
    max_words:
        Packed word budget per window: flat scans score against the
        matching :meth:`repro.core.packed.PackedClassModel.truncated`
        view, cascade scans cap their escalation depth.  Packed backend
        only.
    stage_words:
        The cascade's cumulative word schedule this plan assumes (purely
        descriptive - execution uses the detector's own cascade scanner;
        the planner records the schedule it priced).  Packed only.
    delta_reuse:
        Whether a serving loop executing this plan should reuse cached
        per-level features via
        :meth:`repro.pipeline.engine.SharedFeatureEngine.delta_update`
        (bitwise-identical either way; this is purely a cost knob).
    workers:
        Threads scanning pyramid levels concurrently (bitwise-identical
        to serial).
    keyframe_every:
        Detect every k-th frame, predict the rest from the tracker
        (serving loops only; single scans ignore it).
    """

    name: str = "plan"
    backend: str = "packed"
    engine: str = "shared"
    stride: int | None = None
    level_strides: tuple | None = None
    max_levels: int | None = None
    max_words: int | None = None
    stage_words: tuple | None = None
    delta_reuse: bool = True
    workers: int = 1
    keyframe_every: int = 1

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; "
                             f"expected one of {BACKENDS}")
        if self.engine not in PLAN_ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; "
                             f"expected one of {PLAN_ENGINES}")
        if self.stride is not None and int(self.stride) < 1:
            raise ValueError(f"stride must be >= 1, got {self.stride}")
        if self.level_strides is not None:
            strides = tuple(None if s is None else int(s)
                            for s in self.level_strides)
            if any(s is not None and s < 1 for s in strides):
                raise ValueError(
                    f"level_strides must be >= 1, got {self.level_strides}")
            object.__setattr__(self, "level_strides", strides)
        if self.max_levels is not None and int(self.max_levels) < 1:
            raise ValueError(
                f"max_levels must be >= 1 or None, got {self.max_levels}")
        if self.max_words is not None:
            if self.backend != "packed":
                raise ValueError("max_words requires backend='packed'")
            if int(self.max_words) < 1:
                raise ValueError(
                    f"max_words must be >= 1 or None, got {self.max_words}")
        if self.stage_words is not None:
            if self.backend != "packed":
                raise ValueError("stage_words requires backend='packed'")
            words = tuple(int(w) for w in self.stage_words)
            if list(words) != sorted(set(words)) or (words and words[0] < 1):
                raise ValueError("stage_words must be strictly increasing "
                                 f"positive, got {self.stage_words}")
            object.__setattr__(self, "stage_words", words)
        if int(self.workers) < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if int(self.keyframe_every) < 1:
            raise ValueError(
                f"keyframe_every must be >= 1, got {self.keyframe_every}")

    # ------------------------------------------------------------------
    # knob readouts
    # ------------------------------------------------------------------
    def stride_for(self, level):
        """Effective stride override for pyramid level ``level`` (or None)."""
        if self.level_strides is not None and level < len(self.level_strides):
            s = self.level_strides[level]
            if s is not None:
                return s
        return self.stride

    def prefix_words(self, dim):
        """Model words this plan scores against, for dimension ``dim``."""
        total = packed_words(dim)
        if self.max_words is None:
            return total
        return max(1, min(int(self.max_words), total))

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    @classmethod
    def from_rung(cls, rung, *, backend, base_stride, dim, engine="shared",
                  workers=1, delta_reuse=True):
        """Translate a ladder :class:`~repro.runtime.ladder.Rung` to a plan.

        The compatibility bridge for hand-tuned ladders: rungs describe
        knobs *relative* to a detector (``stride_scale``,
        ``prefix_fraction``), plans describe them absolutely.  Planner
        -generated rungs carry their plan directly (``rung.plan``) and
        skip this translation.
        """
        words = rung.prefix_words(dim)
        max_words = words if words < packed_words(dim) else None
        if backend != "packed":
            max_words = None
        stride = int(base_stride) * int(rung.stride_scale) \
            if rung.stride_scale > 1 else None
        return cls(name=rung.name, backend=backend, engine=engine,
                   stride=stride, max_levels=rung.max_levels,
                   max_words=max_words, delta_reuse=delta_reuse,
                   workers=workers, keyframe_every=rung.keyframe_every)

    def with_name(self, name):
        """Copy of this plan under a different name."""
        return replace(self, name=str(name))

    def to_dict(self):
        """JSON-serializable description (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        """Rebuild a plan from :meth:`to_dict` output."""
        data = dict(data)
        for key in ("level_strides", "stage_words"):
            if data.get(key) is not None:
                data[key] = tuple(data[key])
        return cls(**data)

    def describe(self):
        """One human line: the non-default knobs only."""
        bits = [f"backend={self.backend}", f"engine={self.engine}"]
        if self.stride is not None:
            bits.append(f"stride={self.stride}")
        if self.level_strides is not None:
            bits.append(f"level_strides={self.level_strides}")
        if self.max_levels is not None:
            bits.append(f"max_levels={self.max_levels}")
        if self.max_words is not None:
            bits.append(f"max_words={self.max_words}")
        if self.stage_words is not None:
            bits.append(f"stages={self.stage_words}")
        if not self.delta_reuse:
            bits.append("delta_reuse=off")
        if self.workers > 1:
            bits.append(f"workers={self.workers}")
        if self.keyframe_every > 1:
            bits.append(f"keyframe_every={self.keyframe_every}")
        return f"{self.name}({', '.join(bits)})"

"""End-to-end HDFace: stochastic hyperspace HOG -> HDC classification.

This is the system of paper Fig. 1: raw images are encoded into pixel
hypervectors, HOG runs entirely in hyperspace, and the resulting query
hypervectors feed the adaptive HDC classifier directly (no encoding step).
The pipeline object also exposes the fault-injection hooks the robustness
campaign uses and a bipolar (binary) inference mode matching the FPGA
datapath.
"""

from __future__ import annotations

import numpy as np

from ..core.hypervector import as_rng
from ..features.hog_hd import HDHOGExtractor
from ..learning.hdc_classifier import HDCClassifier

__all__ = ["HDFacePipeline"]


class HDFacePipeline:
    """The full HDFace system (configuration 2 of paper Sec. 6.2).

    Parameters
    ----------
    n_classes:
        Output classes.
    dim:
        Hypervector dimensionality shared by feature extraction and
        learning (the paper's single-D design).
    cell_size, n_bins, magnitude, sqrt_iters, gamma:
        Forwarded to :class:`repro.features.hog_hd.HDHOGExtractor`.
    epochs, lr, adaptive:
        Forwarded to :class:`repro.learning.hdc_classifier.HDCClassifier`.
    seed_or_rng:
        Single seed controlling extractor and classifier randomness.

    Examples
    --------
    >>> from repro.datasets import make_face_dataset
    >>> xtr, ytr = make_face_dataset(24, size=24, seed_or_rng=0)
    >>> pipe = HDFacePipeline(2, dim=512, cell_size=8, magnitude="l1",
    ...                       epochs=5, seed_or_rng=0).fit(xtr, ytr)
    >>> pipe.predict(xtr[:2]).shape
    (2,)
    """

    def __init__(self, n_classes, dim=4096, cell_size=8, n_bins=8,
                 magnitude="l2_scaled", sqrt_iters=8, gamma=True, epochs=20,
                 lr=1.0, adaptive=True, seed_or_rng=None,
                 store_policy="store"):
        rng = as_rng(seed_or_rng)
        self.extractor = HDHOGExtractor(
            dim=dim, cell_size=cell_size, n_bins=n_bins, magnitude=magnitude,
            sqrt_iters=sqrt_iters, gamma=gamma, seed_or_rng=rng,
            store_policy=store_policy,
        )
        self.classifier = HDCClassifier(
            n_classes, lr=lr, epochs=epochs, adaptive=adaptive, seed_or_rng=rng,
        )
        self.dim = self.extractor.dim
        self.n_classes = int(n_classes)

    # ------------------------------------------------------------------
    def extract(self, images, injector=None):
        """Query hypervectors for a batch of images ``(n, H, W)``."""
        return self.extractor.extract_batch(images, injector)

    def fit(self, images, labels, injector=None):
        """Extract queries and train the HDC classifier; returns ``self``."""
        queries = self.extract(images, injector)
        self.classifier.fit(queries, np.asarray(labels))
        return self

    def fit_queries(self, queries, labels):
        """Train on precomputed query hypervectors (reused across sweeps)."""
        self.classifier.fit(np.asarray(queries), np.asarray(labels))
        return self

    def predict(self, images, injector=None, model=None):
        """Predict labels for images.

        ``injector`` corrupts the feature-extraction stages; ``model``
        substitutes an (optionally corrupted) class-hypervector matrix,
        enabling the Table 2 fault campaigns end to end.
        """
        queries = self.extract(images, injector)
        return self.predict_queries(queries, model=model)

    def predict_queries(self, queries, model=None):
        """Predict from precomputed queries."""
        clf = self.classifier if model is None else self.classifier.with_model(model)
        return clf.predict(np.asarray(queries))

    def score(self, images, labels, injector=None, model=None):
        """Mean accuracy on an image batch."""
        pred = self.predict(images, injector=injector, model=model)
        return float((pred == np.asarray(labels)).mean())

    def similarities(self, images, injector=None):
        """Per-class similarity scores (detector confidence)."""
        return self.classifier.similarities(self.extract(images, injector))

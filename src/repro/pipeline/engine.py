"""Shared-feature detection engine: extract once, slice per window.

The legacy sliding-window detector re-runs the whole hyperspace HOG
pipeline on every window crop, so with stride < window the expensive
per-pixel stages (pixel encoding, gradients, angle binning, magnitudes)
are recomputed for every pixel once per overlapping window.
:class:`SharedFeatureEngine` restructures the scan around the shared-pass
API of :class:`repro.features.hog_hd.HDHOGExtractor`:

1. **Fields once** - ``extract_fields`` runs stages 1-4 a single time over
   the whole scene with position-keyed noise, yielding per-pixel magnitude
   hypervectors and orientation bins (:class:`~repro.features.hog_hd.
   HDHOGFields`).
2. **Cell grid once** - ``cell_grid_at`` box-filters those fields into
   (cell, bin) bundles at the union of every cell anchor any window needs,
   so overlapping windows share all histogram accumulation.
3. **Cheap per-window assembly** - each window's feature bundle is a pure
   slice of the cached grid, bound to positional keys and summed into its
   query hypervector.

Because the extractor's keyed noise is addressed by absolute scene
position, the queries this engine assembles are *bitwise identical* to a
per-window recompute (``HDHOGExtractor.window_query``) - the equivalence
the engine tests pin down.

Two compute backends execute stages 2-3:

* ``backend="dense"`` - the reference float path: int16 histogram bundles,
  float32 key binding and weighted accumulation, and a float similarity
  matmul downstream.  Bitwise identical to the per-window recompute.
* ``backend="packed"`` - the hardware-faithful binary path (paper Sec.
  6.5): cached fields and cell grids are sign-quantized and bit-packed 64
  components per ``uint64`` word (~8x smaller cache entries, so the LRU
  holds ~8x more scenes at the same byte budget), window assembly is an
  XNOR bind plus a bit-sliced majority vote over word lanes
  (:func:`repro.core.packed.packed_majority`), and classification is one
  XOR + popcount pass against the sign-quantized class model
  (:class:`repro.core.packed.PackedClassModel`) - no float arithmetic on
  the per-window path.  Scores follow
  :class:`~repro.learning.binary_inference.BinaryHDCEngine` semantics
  (Hamming argmin); the accuracy gap against the dense backend is
  quantified in ``benchmarks/bench_packed_backend.py``.

Scene fields (and the grids derived from them) are kept in a small LRU
cache keyed by the scene contents, so an image-pyramid detector that
revisits levels - or any caller that rescans the same scene - skips
straight to assembly.  The cache and counters are guarded by a lock and
the extraction stages are pure, so concurrent ``window_queries`` calls
from a worker pool (see :class:`repro.pipeline.multiscale.
PyramidDetector`) are safe and return bitwise-identical results to serial
execution.  A :class:`repro.profiling.Profiler` can be attached to time
the stages and count their operations in the vocabulary of
:mod:`repro.hardware.opcount`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..core.hypervector import as_rng, pack_bits, packed_words, unpack_bits
from ..core.packed import packed_majority
from ..features.hog_hd import HDHOGFields, HDHOGResult
from ..hardware.opcount import hd_hog_fields_profile, packed_assemble_profile
from ..profiling import NULL_PROFILER
from ..reliability.integrity import digest_arrays

__all__ = ["SharedFeatureEngine", "scene_key", "BACKENDS"]

BACKENDS = ("dense", "packed")


def scene_key(scene):
    """Content hash of a scene: cache key for its extracted fields."""
    arr = np.ascontiguousarray(scene, dtype=np.float64)
    digest = hashlib.blake2s(arr.tobytes(), digest_size=16).digest()
    return (arr.shape, digest)


class _PackedFields:
    """Sign-packed per-pixel fields: the packed backend's cache payload.

    The magnitude hypervectors are bipolar, so packing them is lossless;
    ``dense()`` reconstitutes an :class:`~repro.features.hog_hd.
    HDHOGFields` bit-for-bit when a new anchor set needs the integer
    box-filter pass.
    """

    __slots__ = ("mag_packed", "bins", "dim")

    def __init__(self, fields, dim):
        self.mag_packed = pack_bits(fields.mag)
        self.bins = fields.bins
        self.dim = int(dim)

    @property
    def shape(self):
        """(H, W) of the underlying image."""
        return self.bins.shape

    def nbytes(self):
        """True packed footprint of the cached fields."""
        return int(self.mag_packed.nbytes + self.bins.nbytes)

    def dense(self):
        """Exact dense reconstruction (transient, never cached)."""
        return HDHOGFields(unpack_bits(self.mag_packed, self.dim), self.bins)


class _PackedGrid:
    """Sign-packed cell-histogram grid plus the vote counts.

    ``packed`` is ``(n_y, n_x, B, W)`` uint64 - the sign (``0 -> +1``) of
    each (cell, bin) bundle - and ``counts`` keeps the integer votes so
    empty bins can be excluded from the majority during assembly.
    """

    __slots__ = ("packed", "counts")

    def __init__(self, packed, counts):
        self.packed = packed
        self.counts = counts

    def nbytes(self):
        return int(self.packed.nbytes + self.counts.nbytes)


def _fields_digest(fields):
    """Content digest of a cache entry's fields payload (either backend)."""
    if isinstance(fields, _PackedFields):
        return digest_arrays(fields.mag_packed, fields.bins)
    return digest_arrays(fields.mag, fields.bins)


def _grid_digest(grid):
    """Content digest of a cached cell grid (either backend)."""
    if isinstance(grid, _PackedGrid):
        return digest_arrays(grid.packed, grid.counts)
    return digest_arrays(grid.bundles, grid.counts)


class _CacheEntry:
    """Fields for one scene plus the cell grids already derived from them.

    When the owning engine scrubs, ``fields_digest`` / ``grid_digests``
    hold the content digests taken at insert time; a digest mismatch on a
    later hit means the cached words were corrupted in memory and the
    entry must be recomputed instead of served.
    """

    __slots__ = ("fields", "grids", "fields_digest", "grid_digests")

    def __init__(self, fields, digest=None):
        self.fields = fields
        self.grids = {}
        self.fields_digest = digest
        self.grid_digests = {}

    def nbytes(self):
        """True byte footprint of the entry, whatever the backend stores."""
        total = self.fields.nbytes()
        for grid in self.grids.values():
            if isinstance(grid, _PackedGrid):
                total += grid.nbytes()
            else:
                total += int(grid.bundles.nbytes + grid.counts.nbytes)
        return total


class SharedFeatureEngine:
    """Whole-image feature extraction with per-window slicing and caching.

    Parameters
    ----------
    extractor:
        An :class:`repro.features.hog_hd.HDHOGExtractor` (or anything
        exposing its shared-pass API: ``extract_fields``, ``cell_grid_at``,
        ``bundle_query``, ``cell_size``, ``dim``).
    cache_size:
        Maximum number of scenes whose fields stay cached (LRU).  An image
        pyramid wants this at least as deep as its number of levels.
    profiler:
        Optional :class:`repro.profiling.Profiler`; stages ``fields``,
        ``cell_grid`` and ``assemble`` are timed and op-counted on it.
    backend:
        ``"dense"`` (float reference, bitwise equal to the per-window
        recompute) or ``"packed"`` (bit-packed binary path; see the module
        docstring).  Decides both what the cache stores and what
        :meth:`window_queries` returns.
    workers:
        Thread count for the strip-parallel fields pass (the stochastic
        per-pixel stages release the GIL inside NumPy).  1 = serial.
        Results are bitwise independent of the worker count.
    scrub:
        When True, every cache entry carries a content digest taken at
        insert time and re-checked on every hit; a mismatch (memory
        corruption, see :meth:`corrupt_cache`) recomputes the entry
        instead of serving corrupt features.  Mismatches are counted in
        :meth:`cache_info` (``scrub_checks`` / ``scrub_mismatches``).

    Examples
    --------
    >>> from repro.features.hog_hd import HDHOGExtractor
    >>> ext = HDHOGExtractor(dim=256, cell_size=8, magnitude="l1",
    ...                      seed_or_rng=0)
    >>> eng = SharedFeatureEngine(ext)
    >>> scene = np.random.default_rng(0).random((32, 32))
    >>> q = eng.window_queries(scene, [(0, 0), (8, 8)], window=16)
    >>> q.shape
    (2, 256)
    """

    def __init__(self, extractor, cache_size=8, profiler=None,
                 backend="dense", workers=1, scrub=False):
        self.extractor = extractor
        self.cache_size = int(cache_size)
        if self.cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.backend = backend
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.scrub = bool(scrub)
        self._cache = OrderedDict()
        self._lock = threading.RLock()
        self._packed_keys = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.scrub_checks = 0
        self.scrub_mismatches = 0

    # ------------------------------------------------------------------
    # scene-fields cache
    # ------------------------------------------------------------------
    def _entry(self, scene):
        """Cached fields for ``scene``, extracting (and evicting) as needed.

        Thread-safe: the dict and counters are touched under the lock, the
        slow extraction runs outside it.  If two threads race on the same
        uncached scene both extract (the keyed noise makes their results
        bitwise identical) and the first insert wins.
        """
        key = scene_key(scene)
        with self._lock:
            entry = self._cache.get(key)
            if entry is not None and self.scrub:
                self.scrub_checks += 1
                if _fields_digest(entry.fields) != entry.fields_digest:
                    # corrupt cached fields: recompute instead of serving
                    self.scrub_mismatches += 1
                    del self._cache[key]
                    entry = None
            if entry is not None:
                self.hits += 1
                self._cache.move_to_end(key)
                return entry
            self.misses += 1
        fields = self._extract_fields(scene)
        if self.backend == "packed":
            fields = _PackedFields(fields, self.extractor.dim)
        digest = _fields_digest(fields) if self.scrub else None
        with self._lock:
            entry = self._cache.get(key)
            if entry is None:
                entry = _CacheEntry(fields, digest)
                self._cache[key] = entry
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    self.evictions += 1
            else:
                self._cache.move_to_end(key)
            return entry

    def _extract_fields(self, scene, injector=None):
        ext = self.extractor
        with self.profiler.stage("fields"):
            if self.workers > 1:
                fields = ext.extract_fields(scene, injector,
                                            workers=self.workers)
            else:
                fields = ext.extract_fields(scene, injector)
        self.profiler.add_profile(
            "fields",
            hd_hog_fields_profile(fields.shape, ext.dim, n_bins=ext.n_bins,
                                  magnitude=ext.magnitude,
                                  sqrt_iters=ext.sqrt_iters, gamma=ext.gamma),
            items=fields.shape[0] * fields.shape[1],
        )
        return fields

    def scene_fields(self, scene):
        """Per-pixel fields for ``scene`` (cached).

        Dense backend returns :class:`~repro.features.hog_hd.HDHOGFields`;
        the packed backend returns its packed cache payload (call
        ``.dense()`` for the bipolar reconstruction).
        """
        return self._entry(scene).fields

    def cache_info(self):
        """Cache statistics: backend, hit/miss/eviction counters, true bytes."""
        with self._lock:
            return {
                "backend": self.backend,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._cache),
                "capacity": self.cache_size,
                "bytes": sum(e.nbytes() for e in self._cache.values()),
                "scrub": self.scrub,
                "scrub_checks": self.scrub_checks,
                "scrub_mismatches": self.scrub_mismatches,
            }

    def clear(self):
        """Drop every cached scene (counters keep accumulating)."""
        with self._lock:
            self._cache.clear()

    def corrupt_cache(self, rate, seed_or_rng=None):
        """Flip stored bits of every cached buffer in place (fault surface).

        Models memory corruption of the resident scene cache: each real
        bit of every cached fields tensor and cell grid flips
        independently with ``rate`` (packed entries via
        :func:`repro.reliability.faults.flip_packed_words`, which never
        touches pad bits; dense entries via sign flips on the bipolar
        magnitude field and negation of histogram counters, matching
        :func:`repro.noise.bitflip.flip_bipolar` conventions).  Digests
        taken at insert time are deliberately *not* refreshed, so a
        scrubbing engine detects the corruption on the next hit while a
        non-scrubbing engine serves it.  Returns the number of corrupted
        buffers.
        """
        from ..noise.bitflip import flip_bipolar
        from ..reliability.faults import flip_packed_words
        rng = as_rng(seed_or_rng)
        dim = self.extractor.dim
        corrupted = 0
        with self._lock:
            for entry in self._cache.values():
                fields = entry.fields
                if isinstance(fields, _PackedFields):
                    fields.mag_packed[...] = flip_packed_words(
                        fields.mag_packed, dim, rate, rng)
                else:
                    fields.mag[...] = flip_bipolar(fields.mag, rate, rng)
                corrupted += 1
                for grid in entry.grids.values():
                    if isinstance(grid, _PackedGrid):
                        grid.packed[...] = flip_packed_words(
                            grid.packed, dim, rate, rng)
                    else:
                        grid.bundles[...] = flip_bipolar(
                            grid.bundles, rate, rng)
                    corrupted += 1
        return corrupted

    # ------------------------------------------------------------------
    # window queries
    # ------------------------------------------------------------------
    def _anchors(self, origins, window):
        """Union of cell anchors needed by ``origins``: sorted rows, cols."""
        c = self.extractor.cell_size
        if window % c:
            raise ValueError(
                f"window {window} not divisible by cell_size {c}")
        n = window // c
        ys = sorted({int(y) + c * i for y, _ in origins for i in range(n)})
        xs = sorted({int(x) + c * i for _, x in origins for i in range(n)})
        return np.asarray(ys, dtype=np.int64), np.asarray(xs, dtype=np.int64), n

    def _dense_grid(self, fields, ys, xs):
        """One profiled ``cell_grid_at`` pass over dense fields."""
        ext = self.extractor
        with self.profiler.stage("cell_grid"):
            grid = ext.cell_grid_at(fields, ys, xs)
        h, w = fields.shape
        px_d = float(h * w) * ext.dim
        self.profiler.add_ops(
            "cell_grid", items=len(ys) * len(xs),
            bit=ext.n_bins * px_d, int_add=2 * ext.n_bins * px_d,
            mem_bytes=ext.n_bins * px_d / 4,
        )
        return grid

    def _grid(self, entry_fields, grids, ys, xs, digests=None):
        """Cell grid at the anchor union (cached per scene entry).

        For the packed backend the dense box-filter result is
        sign-quantized and packed before it enters the cache; the dense
        intermediates are transient.  ``digests`` - the owning entry's
        grid-digest store when scrubbing - is checked on every cached-grid
        hit; a mismatch recomputes the grid instead of serving it.
        """
        gkey = (ys.tobytes(), xs.tobytes())
        with self._lock:
            grid = grids.get(gkey)
            if grid is not None and self.scrub and digests is not None:
                self.scrub_checks += 1
                if _grid_digest(grid) != digests.get(gkey):
                    self.scrub_mismatches += 1
                    del grids[gkey]
                    grid = None
        if grid is not None:
            return grid
        if isinstance(entry_fields, _PackedFields):
            dense_grid = self._dense_grid(entry_fields.dense(), ys, xs)
            grid = self._pack_grid(dense_grid)
        else:
            grid = self._dense_grid(entry_fields, ys, xs)
        with self._lock:
            stored = grids.setdefault(gkey, grid)
            if stored is grid and self.scrub and digests is not None:
                digests[gkey] = _grid_digest(grid)
            return stored

    def _pack_grid(self, dense_grid):
        """Sign-quantize (``0 -> +1``) and bit-pack a dense cell grid."""
        signs = np.where(dense_grid.bundles >= 0, 1, -1).astype(np.int8)
        return _PackedGrid(pack_bits(signs), dense_grid.counts)

    def _window_keys_packed(self, n):
        """Packed positional keys for an ``n x n``-cell window (cached)."""
        with self._lock:
            keys = self._packed_keys.get(n)
            if keys is None:
                keys = pack_bits(self.extractor._keys(n, n))
                self._packed_keys[n] = keys
            return keys

    def window_queries(self, scene, origins, window, injector=None):
        """Query hypervectors for windows at ``origins``.

        Dense backend: float32 ``(n_windows, D)`` rows, each bitwise
        identical to ``extractor.window_query(scene, origin, window)`` -
        the per-window recompute - but with the expensive stages run once
        for the whole scene.

        Packed backend: uint64 ``(n_windows, ceil(D / 64))`` packed binary
        queries - each window's sign-quantized (cell, bin) bundles bound to
        the positional keys by XNOR and bundled by a majority vote over the
        non-empty bins, entirely in the packed domain.  Classify them with
        :class:`repro.core.packed.PackedClassModel`.

        ``injector`` (fault-injection hook) bypasses the cache: corrupted
        fields are computed fresh and never stored, so later clean scans of
        the same scene are unaffected.
        """
        window = int(window)
        origins = [(int(y), int(x)) for y, x in origins]
        if not origins:
            raise ValueError("need at least one window origin")
        if injector is None:
            entry = self._entry(scene)
            fields, grids = entry.fields, entry.grids
            digests = entry.grid_digests
        else:
            fields, grids, digests = self._extract_fields(scene, injector), {}, None
            if self.backend == "packed":
                fields = _PackedFields(fields, self.extractor.dim)
        ys, xs, n = self._anchors(origins, window)
        grid = self._grid(fields, grids, ys, xs, digests)
        if self.backend == "packed":
            return self._assemble_packed(grid, origins, ys, xs, n, injector)
        return self._assemble_dense(grid, origins, ys, xs, n, injector)

    def _assemble_dense(self, grid, origins, ys, xs, n, injector):
        """Float reference assembly: slice, bind, weight, accumulate."""
        ext = self.extractor
        c = ext.cell_size
        offsets = c * np.arange(n, dtype=np.int64)
        queries = np.empty((len(origins), ext.dim), dtype=np.float32)
        with self.profiler.stage("assemble"):
            for k, (y, x) in enumerate(origins):
                ri = np.searchsorted(ys, y + offsets)
                ci = np.searchsorted(xs, x + offsets)
                sub = HDHOGResult(grid.bundles[np.ix_(ri, ci)],
                                  grid.counts[np.ix_(ri, ci)],
                                  grid.cell_pixels)
                if injector is not None:
                    sub.bundles = injector(sub.bundles, "histogram")
                queries[k] = ext.bundle_query(sub)
        feats_d = float(n * n * ext.n_bins) * ext.dim
        self.profiler.add_ops("assemble", items=len(origins),
                              bit=feats_d * len(origins),
                              int_add=feats_d * len(origins))
        return queries

    def _assemble_packed(self, grid, origins, ys, xs, n, injector):
        """Packed assembly: gather cells, XNOR-bind keys, majority-bundle.

        Fully vectorized over windows; the only per-feature work is the
        bit-sliced vertical-counter accumulation inside
        :func:`~repro.core.packed.packed_majority`.  ``injector`` (stage
        ``"histogram"``) corrupts the packed cell words before binding.
        """
        ext = self.extractor
        dim = ext.dim
        c = ext.cell_size
        offsets = c * np.arange(n, dtype=np.int64)
        oy = np.asarray([y for y, _ in origins], dtype=np.int64)
        ox = np.asarray([x for _, x in origins], dtype=np.int64)
        with self.profiler.stage("assemble"):
            ri = np.searchsorted(ys, oy[:, None] + offsets[None, :])
            ci = np.searchsorted(xs, ox[:, None] + offsets[None, :])
            cells = grid.packed[ri[:, :, None], ci[:, None, :]]
            counts = grid.counts[ri[:, :, None], ci[:, None, :]]
            if injector is not None:
                cells = injector(cells, "histogram")
            keys = self._window_keys_packed(n)
            bound = ~np.bitwise_xor(cells, keys[None])
            n_feat = n * n * ext.n_bins
            flat = bound.reshape(len(origins), n_feat, packed_words(dim))
            valid = (counts > 0).reshape(len(origins), n_feat)
            queries = packed_majority(flat, dim, valid=valid)
        self.profiler.add_profile(
            "assemble",
            packed_assemble_profile(n * c, dim, cell_size=c,
                                    n_bins=ext.n_bins) * len(origins),
            items=len(origins),
        )
        return queries

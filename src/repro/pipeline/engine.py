"""Shared-feature detection engine: extract once, slice per window.

The legacy sliding-window detector re-runs the whole hyperspace HOG
pipeline on every window crop, so with stride < window the expensive
per-pixel stages (pixel encoding, gradients, angle binning, magnitudes)
are recomputed for every pixel once per overlapping window.
:class:`SharedFeatureEngine` restructures the scan around the shared-pass
API of :class:`repro.features.hog_hd.HDHOGExtractor`:

1. **Fields once** - ``extract_fields`` runs stages 1-4 a single time over
   the whole scene with position-keyed noise, yielding per-pixel magnitude
   hypervectors and orientation bins (:class:`~repro.features.hog_hd.
   HDHOGFields`).
2. **Cell grid once** - ``cell_grid_at`` box-filters those fields into
   (cell, bin) bundles at the union of every cell anchor any window needs,
   so overlapping windows share all histogram accumulation.
3. **Cheap per-window assembly** - each window's feature bundle is a pure
   slice of the cached grid, bound to positional keys and summed into its
   query hypervector.

Because the extractor's keyed noise is addressed by absolute scene
position, the queries this engine assembles are *bitwise identical* to a
per-window recompute (``HDHOGExtractor.window_query``) - the equivalence
the engine tests pin down.

Scene fields (and the grids derived from them) are kept in a small LRU
cache keyed by the scene contents, so an image-pyramid detector that
revisits levels - or any caller that rescans the same scene - skips
straight to assembly.  A :class:`repro.profiling.Profiler` can be attached
to time the stages and count their operations in the vocabulary of
:mod:`repro.hardware.opcount`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

import numpy as np

from ..features.hog_hd import HDHOGResult
from ..hardware.opcount import hd_hog_fields_profile
from ..profiling import NULL_PROFILER

__all__ = ["SharedFeatureEngine", "scene_key"]


def scene_key(scene):
    """Content hash of a scene: cache key for its extracted fields."""
    arr = np.ascontiguousarray(scene, dtype=np.float64)
    digest = hashlib.blake2s(arr.tobytes(), digest_size=16).digest()
    return (arr.shape, digest)


class _CacheEntry:
    """Fields for one scene plus the cell grids already derived from them."""

    __slots__ = ("fields", "grids")

    def __init__(self, fields):
        self.fields = fields
        self.grids = {}

    def nbytes(self):
        total = self.fields.nbytes()
        for grid in self.grids.values():
            total += int(grid.bundles.nbytes + grid.counts.nbytes)
        return total


class SharedFeatureEngine:
    """Whole-image feature extraction with per-window slicing and caching.

    Parameters
    ----------
    extractor:
        An :class:`repro.features.hog_hd.HDHOGExtractor` (or anything
        exposing its shared-pass API: ``extract_fields``, ``cell_grid_at``,
        ``bundle_query``, ``cell_size``, ``dim``).
    cache_size:
        Maximum number of scenes whose fields stay cached (LRU).  An image
        pyramid wants this at least as deep as its number of levels.
    profiler:
        Optional :class:`repro.profiling.Profiler`; stages ``fields``,
        ``cell_grid`` and ``assemble`` are timed and op-counted on it.

    Examples
    --------
    >>> from repro.features.hog_hd import HDHOGExtractor
    >>> ext = HDHOGExtractor(dim=256, cell_size=8, magnitude="l1",
    ...                      seed_or_rng=0)
    >>> eng = SharedFeatureEngine(ext)
    >>> scene = np.random.default_rng(0).random((32, 32))
    >>> q = eng.window_queries(scene, [(0, 0), (8, 8)], window=16)
    >>> q.shape
    (2, 256)
    """

    def __init__(self, extractor, cache_size=8, profiler=None):
        self.extractor = extractor
        self.cache_size = int(cache_size)
        if self.cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._cache = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # scene-fields cache
    # ------------------------------------------------------------------
    def _entry(self, scene):
        """Cached fields for ``scene``, extracting (and evicting) as needed."""
        key = scene_key(scene)
        entry = self._cache.get(key)
        if entry is not None:
            self.hits += 1
            self._cache.move_to_end(key)
            return entry
        self.misses += 1
        entry = _CacheEntry(self._extract_fields(scene))
        self._cache[key] = entry
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return entry

    def _extract_fields(self, scene, injector=None):
        ext = self.extractor
        with self.profiler.stage("fields"):
            fields = ext.extract_fields(scene, injector)
        self.profiler.add_profile(
            "fields",
            hd_hog_fields_profile(fields.shape, ext.dim, n_bins=ext.n_bins,
                                  magnitude=ext.magnitude,
                                  sqrt_iters=ext.sqrt_iters, gamma=ext.gamma),
            items=fields.shape[0] * fields.shape[1],
        )
        return fields

    def scene_fields(self, scene):
        """Per-pixel fields for ``scene`` (cached)."""
        return self._entry(scene).fields

    def cache_info(self):
        """Cache statistics: hits, misses, entries, approximate bytes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cache),
            "bytes": sum(e.nbytes() for e in self._cache.values()),
        }

    def clear(self):
        """Drop every cached scene (counters keep accumulating)."""
        self._cache.clear()

    # ------------------------------------------------------------------
    # window queries
    # ------------------------------------------------------------------
    def _anchors(self, origins, window):
        """Union of cell anchors needed by ``origins``: sorted rows, cols."""
        c = self.extractor.cell_size
        if window % c:
            raise ValueError(
                f"window {window} not divisible by cell_size {c}")
        n = window // c
        ys = sorted({int(y) + c * i for y, _ in origins for i in range(n)})
        xs = sorted({int(x) + c * i for _, x in origins for i in range(n)})
        return np.asarray(ys, dtype=np.int64), np.asarray(xs, dtype=np.int64), n

    def _grid(self, fields, grids, ys, xs):
        """Cell grid at the anchor union (cached per scene entry)."""
        gkey = (ys.tobytes(), xs.tobytes())
        grid = grids.get(gkey)
        if grid is not None:
            return grid
        ext = self.extractor
        with self.profiler.stage("cell_grid"):
            grid = ext.cell_grid_at(fields, ys, xs)
        h, w = fields.shape
        px_d = float(h * w) * ext.dim
        self.profiler.add_ops(
            "cell_grid", items=len(ys) * len(xs),
            bit=ext.n_bins * px_d, int_add=2 * ext.n_bins * px_d,
            mem_bytes=ext.n_bins * px_d / 4,
        )
        grids[gkey] = grid
        return grid

    def window_queries(self, scene, origins, window, injector=None):
        """Query hypervectors ``(n_windows, D)`` for windows at ``origins``.

        Each row is bitwise identical to
        ``extractor.window_query(scene, origin, window)`` - the per-window
        recompute - but the expensive stages run once for the whole scene.

        ``injector`` (fault-injection hook) bypasses the cache: corrupted
        fields are computed fresh and never stored, so later clean scans of
        the same scene are unaffected.
        """
        window = int(window)
        origins = [(int(y), int(x)) for y, x in origins]
        if not origins:
            raise ValueError("need at least one window origin")
        if injector is None:
            entry = self._entry(scene)
            fields, grids = entry.fields, entry.grids
        else:
            fields, grids = self._extract_fields(scene, injector), {}
        ys, xs, n = self._anchors(origins, window)
        grid = self._grid(fields, grids, ys, xs)

        ext = self.extractor
        c = ext.cell_size
        offsets = c * np.arange(n, dtype=np.int64)
        queries = np.empty((len(origins), ext.dim), dtype=np.float32)
        with self.profiler.stage("assemble"):
            for k, (y, x) in enumerate(origins):
                ri = np.searchsorted(ys, y + offsets)
                ci = np.searchsorted(xs, x + offsets)
                sub = HDHOGResult(grid.bundles[np.ix_(ri, ci)],
                                  grid.counts[np.ix_(ri, ci)],
                                  grid.cell_pixels)
                if injector is not None:
                    sub.bundles = injector(sub.bundles, "histogram")
                queries[k] = ext.bundle_query(sub)
        feats_d = float(n * n * ext.n_bins) * ext.dim
        self.profiler.add_ops("assemble", items=len(origins),
                              bit=feats_d * len(origins),
                              int_add=feats_d * len(origins))
        return queries

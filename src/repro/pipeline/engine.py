"""Shared-feature detection engine: extract once, slice per window.

The legacy sliding-window detector re-runs the whole hyperspace HOG
pipeline on every window crop, so with stride < window the expensive
per-pixel stages (pixel encoding, gradients, angle binning, magnitudes)
are recomputed for every pixel once per overlapping window.
:class:`SharedFeatureEngine` restructures the scan around the shared-pass
API of :class:`repro.features.hog_hd.HDHOGExtractor`:

1. **Fields once** - ``extract_fields`` runs stages 1-4 a single time over
   the whole scene with position-keyed noise, yielding per-pixel magnitude
   hypervectors and orientation bins (:class:`~repro.features.hog_hd.
   HDHOGFields`).
2. **Cell grid once** - ``cell_grid_at`` box-filters those fields into
   (cell, bin) bundles at the union of every cell anchor any window needs,
   so overlapping windows share all histogram accumulation.
3. **Cheap per-window assembly** - each window's feature bundle is a pure
   slice of the cached grid, bound to positional keys and summed into its
   query hypervector.

Because the extractor's keyed noise is addressed by absolute scene
position, the queries this engine assembles are *bitwise identical* to a
per-window recompute (``HDHOGExtractor.window_query``) - the equivalence
the engine tests pin down.

Two compute backends execute stages 2-3:

* ``backend="dense"`` - the reference float path: int16 histogram bundles,
  float32 key binding and weighted accumulation, and a float similarity
  matmul downstream.  Bitwise identical to the per-window recompute.
* ``backend="packed"`` - the hardware-faithful binary path (paper Sec.
  6.5): cached fields and cell grids are sign-quantized and bit-packed 64
  components per ``uint64`` word (~8x smaller cache entries, so the LRU
  holds ~8x more scenes at the same byte budget), window assembly is an
  XNOR bind plus a bit-sliced majority vote over word lanes
  (:func:`repro.core.packed.packed_majority`), and classification is one
  XOR + popcount pass against the sign-quantized class model
  (:class:`repro.core.packed.PackedClassModel`) - no float arithmetic on
  the per-window path.  Scores follow
  :class:`~repro.learning.binary_inference.BinaryHDCEngine` semantics
  (Hamming argmin); the accuracy gap against the dense backend is
  quantified in ``benchmarks/bench_packed_backend.py``.

Scene fields (and the grids derived from them) are kept in a small LRU
cache keyed by the scene contents, so an image-pyramid detector that
revisits levels - or any caller that rescans the same scene - skips
straight to assembly.

For video streams the cache grows a third reuse tier beyond hit/miss:
**frame-delta incremental extraction** (:meth:`SharedFeatureEngine.
delta_update`).  A new frame is diffed against the cached previous frame,
the changed pixels are dilated by the one-pixel gradient receptive field
into a dirty rectangle, and only that rectangle's per-pixel fields - plus
the cell-grid cells whose ``cell_size``-square receptive fields intersect
it - are recomputed and patched into the cached entry, which is then
re-keyed to the new frame.  Because the extraction stages draw
position-keyed noise, the patched entry is *bitwise identical* to a full
re-extraction of the new frame on both backends - the property the
streaming equivalence tests pin down.  The cache and counters are guarded by a lock and
the extraction stages are pure, so concurrent ``window_queries`` calls
from a worker pool (see :class:`repro.pipeline.multiscale.
PyramidDetector`) are safe and return bitwise-identical results to serial
execution.  A :class:`repro.profiling.Profiler` can be attached to time
the stages and count their operations in the vocabulary of
:mod:`repro.hardware.opcount`.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from ..core.hypervector import as_rng, pack_bits, packed_words, unpack_bits
from ..core.packed import block_dim, packed_majority
from ..features.hog_hd import HDHOGFields, HDHOGResult
from ..hardware.opcount import hd_hog_fields_profile, packed_assemble_profile
from ..profiling import NULL_PROFILER
from ..reliability.ecc import ecc_correct_array, ecc_encode_array
from ..reliability.integrity import digest_arrays

__all__ = ["SharedFeatureEngine", "scene_key", "validate_scene", "BACKENDS"]

BACKENDS = ("dense", "packed")


def scene_key(scene):
    """Content hash of a scene: cache key for its extracted fields."""
    arr = np.ascontiguousarray(scene, dtype=np.float64)
    digest = hashlib.blake2s(arr.tobytes(), digest_size=16).digest()
    return (arr.shape, digest)


def validate_scene(scene, name="scene"):
    """Boundary check for frames entering the engine; returns the array.

    Garbage that reaches the extraction stages does not crash - it
    silently poisons the scene cache (NaNs propagate through the float
    stages, then the poisoned entry is *served* to every later scan of
    the same content).  So the properties are checked once at entry and
    violations raise :class:`ValueError` naming the offending property:

    * ``dtype`` - must be real-numeric (no complex, object, bool, str);
    * ``ndim`` - must be a 2-D (H, W) grayscale frame;
    * ``empty`` - must contain at least one pixel;
    * ``nan`` / ``inf`` - every value must be finite.
    """
    arr = np.asarray(scene)
    if arr.dtype == object or not (np.issubdtype(arr.dtype, np.floating)
                                   or np.issubdtype(arr.dtype, np.integer)):
        raise ValueError(
            f"{name} dtype must be real-numeric, got {arr.dtype}")
    if arr.ndim != 2:
        raise ValueError(
            f"{name} ndim must be 2 (H, W grayscale), got {arr.ndim} "
            f"(shape {arr.shape})")
    if arr.size == 0:
        raise ValueError(f"{name} is empty (shape {arr.shape})")
    if np.issubdtype(arr.dtype, np.floating):
        if np.isnan(arr).any():
            raise ValueError(f"{name} contains NaN values")
        if np.isinf(arr).any():
            raise ValueError(f"{name} contains infinite values")
    return arr


class _PackedFields:
    """Sign-packed per-pixel fields: the packed backend's cache payload.

    The magnitude hypervectors are bipolar, so packing them is lossless;
    ``dense()`` reconstitutes an :class:`~repro.features.hog_hd.
    HDHOGFields` bit-for-bit when a new anchor set needs the integer
    box-filter pass.
    """

    __slots__ = ("mag_packed", "bins", "dim")

    def __init__(self, fields, dim):
        self.mag_packed = pack_bits(fields.mag)
        self.bins = fields.bins
        self.dim = int(dim)

    @property
    def shape(self):
        """(H, W) of the underlying image."""
        return self.bins.shape

    def nbytes(self):
        """True packed footprint of the cached fields."""
        return int(self.mag_packed.nbytes + self.bins.nbytes)

    def dense(self):
        """Exact dense reconstruction (transient, never cached)."""
        return HDHOGFields(unpack_bits(self.mag_packed, self.dim), self.bins)


class _PackedGrid:
    """Sign-packed cell-histogram grid plus the vote counts.

    ``packed`` is ``(n_y, n_x, B, W)`` uint64 - the sign (``0 -> +1``) of
    each (cell, bin) bundle - and ``counts`` keeps the integer votes so
    empty bins can be excluded from the majority during assembly.
    """

    __slots__ = ("packed", "counts")

    def __init__(self, packed, counts):
        self.packed = packed
        self.counts = counts

    def nbytes(self):
        return int(self.packed.nbytes + self.counts.nbytes)


def _fields_arrays(fields):
    """The long-lived buffers of a fields payload (either backend)."""
    if isinstance(fields, _PackedFields):
        return (fields.mag_packed, fields.bins)
    return (fields.mag, fields.bins)


def _grid_arrays(grid):
    """The long-lived buffers of a cached cell grid (either backend)."""
    if isinstance(grid, _PackedGrid):
        return (grid.packed, grid.counts)
    return (grid.bundles, grid.counts)


def _fields_digest(fields):
    """Content digest of a cache entry's fields payload (either backend)."""
    return digest_arrays(*_fields_arrays(fields))


def _grid_digest(grid):
    """Content digest of a cached cell grid (either backend)."""
    return digest_arrays(*_grid_arrays(grid))


def _fields_parity(fields):
    """SEC-DED parity sidecars for a fields payload (one per buffer)."""
    return tuple(ecc_encode_array(a) for a in _fields_arrays(fields))


def _grid_parity(grid):
    """SEC-DED parity sidecars for a cached cell grid (one per buffer)."""
    return tuple(ecc_encode_array(a) for a in _grid_arrays(grid))


class _CacheEntry:
    """Fields for one scene plus the cell grids already derived from them.

    When the owning engine scrubs, ``fields_digest`` / ``grid_digests``
    hold the content digests taken at insert time and ``fields_parity`` /
    ``grid_parities`` the SEC-DED parity sidecars over the same buffers.
    A digest mismatch on a later hit means the cached words were corrupted
    in memory; the engine then tries an ECC correction in place (one byte
    of parity per ``uint64`` word corrects any single-bit error) and only
    falls back to a full recompute when the digest still disagrees.
    """

    __slots__ = ("fields", "grids", "fields_digest", "grid_digests",
                 "fields_parity", "grid_parities")

    def __init__(self, fields, digest=None, parity=None):
        self.fields = fields
        self.grids = {}
        self.fields_digest = digest
        self.grid_digests = {}
        self.fields_parity = parity
        self.grid_parities = {}

    def nbytes(self):
        """True byte footprint of the entry, whatever the backend stores."""
        total = self.fields.nbytes()
        for grid in self.grids.values():
            if isinstance(grid, _PackedGrid):
                total += grid.nbytes()
            else:
                total += int(grid.bundles.nbytes + grid.counts.nbytes)
        if self.fields_parity is not None:
            total += sum(int(p.nbytes) for p in self.fields_parity)
        for parity in self.grid_parities.values():
            total += sum(int(p.nbytes) for p in parity)
        return total


class SharedFeatureEngine:
    """Whole-image feature extraction with per-window slicing and caching.

    Parameters
    ----------
    extractor:
        An :class:`repro.features.hog_hd.HDHOGExtractor` (or anything
        exposing its shared-pass API: ``extract_fields``, ``cell_grid_at``,
        ``bundle_query``, ``cell_size``, ``dim``).
    cache_size:
        Maximum number of scenes whose fields stay cached (LRU).  An image
        pyramid wants this at least as deep as its number of levels.
    profiler:
        Optional :class:`repro.profiling.Profiler`; stages ``fields``,
        ``cell_grid`` and ``assemble`` are timed and op-counted on it.
    backend:
        ``"dense"`` (float reference, bitwise equal to the per-window
        recompute) or ``"packed"`` (bit-packed binary path; see the module
        docstring).  Decides both what the cache stores and what
        :meth:`window_queries` returns.
    workers:
        Thread count for the strip-parallel fields pass (the stochastic
        per-pixel stages release the GIL inside NumPy).  1 = serial.
        Results are bitwise independent of the worker count.
    scrub:
        When True, every cache entry carries a content digest *and* a
        SEC-DED parity sidecar taken at insert time; the digest is
        re-checked on every hit.  A mismatch (memory corruption, see
        :meth:`corrupt_cache`) walks a repair ladder: ECC-correct the
        buffers in place (any single-bit error per 64-bit word, digest-
        verified), else recompute the entry - corrupt features are never
        served either way.  :meth:`scrub_cache` runs the same ladder as
        a background sweep so corruption is repaired before the unlucky
        hit, not on it.  Outcomes are counted in :meth:`cache_info`
        (``scrub_checks`` / ``scrub_mismatches`` / ``scrub_repairs`` /
        ``scrub_evictions``).

    Examples
    --------
    >>> from repro.features.hog_hd import HDHOGExtractor
    >>> ext = HDHOGExtractor(dim=256, cell_size=8, magnitude="l1",
    ...                      seed_or_rng=0)
    >>> eng = SharedFeatureEngine(ext)
    >>> scene = np.random.default_rng(0).random((32, 32))
    >>> q = eng.window_queries(scene, [(0, 0), (8, 8)], window=16)
    >>> q.shape
    (2, 256)
    """

    def __init__(self, extractor, cache_size=8, profiler=None,
                 backend="dense", workers=1, scrub=False):
        self.extractor = extractor
        self.cache_size = int(cache_size)
        if self.cache_size < 1:
            raise ValueError("cache_size must be at least 1")
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"expected one of {BACKENDS}")
        self.backend = backend
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.scrub = bool(scrub)
        self._cache = OrderedDict()
        self._lock = threading.RLock()
        self._inflight = {}
        self._packed_keys = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.scrub_checks = 0
        self.scrub_mismatches = 0
        self.scrub_repairs = 0
        self.scrub_evictions = 0
        self.ecc_corrected_words = 0
        self.ecc_detected_words = 0
        # frame-delta reuse counters (see delta_update)
        self.delta_updates = 0
        self.delta_reused = 0
        self.delta_patched = 0
        self.delta_full = 0
        self.delta_pixels = 0
        self.delta_dirty_pixels = 0
        # cascade prefix-assembly counters (see window_queries_prefix)
        self.prefix_assembles = 0
        self.prefix_windows = 0
        self.prefix_words = 0

    # ------------------------------------------------------------------
    # scene-fields cache
    # ------------------------------------------------------------------
    def _entry(self, scene):
        """Cached fields for ``scene``, extracting (and evicting) as needed.

        Thread-safe: the dict and counters are touched under the lock, the
        slow extraction runs outside it.  Extraction is *single-flight*:
        when several threads miss on the same uncached scene (the fleet
        regime - N lockstepped streams serving the same content), one
        claims the key in ``_inflight`` and extracts while the rest wait
        on its marker and then serve the cached result, instead of all
        redundantly extracting.  (The keyed noise would make the
        redundant results bitwise identical - the stampede costs time,
        never correctness.)
        """
        key = scene_key(scene)
        while True:
            with self._lock:
                entry = self._cache.get(key)
                if entry is not None and self.scrub:
                    self.scrub_checks += 1
                    if _fields_digest(entry.fields) != entry.fields_digest:
                        # corrupt cached fields: ECC-repair in place if the
                        # damage is within SEC-DED reach, else recompute -
                        # either way, never serve corrupt features
                        self.scrub_mismatches += 1
                        if self._try_ecc(_fields_arrays(entry.fields),
                                         entry.fields_parity,
                                         entry.fields_digest, _fields_digest,
                                         entry.fields):
                            self.scrub_repairs += 1
                        else:
                            del self._cache[key]
                            self.scrub_evictions += 1
                            entry = None
                if entry is not None:
                    self.hits += 1
                    self._cache.move_to_end(key)
                    return entry
                waiter = self._inflight.get(key)
                if waiter is None:
                    self._inflight[key] = threading.Event()
                    self.misses += 1
                    break
            # another thread is extracting this exact scene: wait for its
            # insert, then loop (a re-miss - eviction, scrub - re-claims)
            waiter.wait()
        try:
            fields = self._extract_fields(scene)
            if self.backend == "packed":
                fields = _PackedFields(fields, self.extractor.dim)
            digest = _fields_digest(fields) if self.scrub else None
            parity = _fields_parity(fields) if self.scrub else None
            with self._lock:
                entry = self._cache.get(key)
                if entry is None:
                    entry = _CacheEntry(fields, digest, parity)
                    self._cache[key] = entry
                    while len(self._cache) > self.cache_size:
                        self._cache.popitem(last=False)
                        self.evictions += 1
                else:
                    self._cache.move_to_end(key)
                return entry
        finally:
            with self._lock:
                waiter = self._inflight.pop(key, None)
            if waiter is not None:
                waiter.set()

    def _extract_fields(self, scene, injector=None):
        ext = self.extractor
        with self.profiler.stage("fields"):
            if self.workers > 1:
                fields = ext.extract_fields(scene, injector,
                                            workers=self.workers)
            else:
                fields = ext.extract_fields(scene, injector)
        self.profiler.add_profile(
            "fields",
            hd_hog_fields_profile(fields.shape, ext.dim, n_bins=ext.n_bins,
                                  magnitude=ext.magnitude,
                                  sqrt_iters=ext.sqrt_iters, gamma=ext.gamma),
            items=fields.shape[0] * fields.shape[1],
        )
        return fields

    def scene_fields(self, scene):
        """Per-pixel fields for ``scene`` (cached).

        Dense backend returns :class:`~repro.features.hog_hd.HDHOGFields`;
        the packed backend returns its packed cache payload (call
        ``.dense()`` for the bipolar reconstruction).
        """
        return self._entry(validate_scene(scene)).fields

    def cache_info(self):
        """Cache statistics: backend, hit/miss/eviction counters, true bytes."""
        with self._lock:
            return {
                "backend": self.backend,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._cache),
                "capacity": self.cache_size,
                "bytes": sum(e.nbytes() for e in self._cache.values()),
                "scrub": self.scrub,
                "scrub_checks": self.scrub_checks,
                "scrub_mismatches": self.scrub_mismatches,
                "scrub_repairs": self.scrub_repairs,
                "scrub_evictions": self.scrub_evictions,
                "ecc_corrected_words": self.ecc_corrected_words,
                "ecc_detected_words": self.ecc_detected_words,
                "delta_updates": self.delta_updates,
                "delta_reused": self.delta_reused,
                "delta_patched": self.delta_patched,
                "delta_full": self.delta_full,
                "delta_pixels": self.delta_pixels,
                "delta_dirty_pixels": self.delta_dirty_pixels,
                "prefix_assembles": self.prefix_assembles,
                "prefix_windows": self.prefix_windows,
                "prefix_words": self.prefix_words,
            }

    def cache_nbytes(self):
        """Resident bytes of the scene cache (payloads + parity sidecars)."""
        with self._lock:
            return sum(e.nbytes() for e in self._cache.values())

    def _try_ecc(self, arrays, parity, golden, digest_fn, container):
        """ECC-correct ``arrays`` in place; True when the digest is clean.

        ``parity`` is the insert-time sidecar tuple (None when the entry
        predates scrubbing), ``golden`` the insert-time digest the repaired
        ``container`` must hash back to - a miscorrection (3+ flipped bits
        aliasing to a valid-looking syndrome) therefore cannot pass as a
        repair.  Caller holds the lock.
        """
        if parity is None:
            return False
        for arr, par in zip(arrays, parity):
            corrected, detected = ecc_correct_array(arr, par)
            self.ecc_corrected_words += corrected
            self.ecc_detected_words += detected
        return digest_fn(container) == golden

    def scrub_cache(self):
        """Background sweep: verify and repair every cached buffer now.

        The push half of cache scrubbing (the hit-time check is the pull
        half): digest-checks every cached fields payload and derived grid
        without waiting for an access, ECC-corrects mismatches in place,
        and evicts what SEC-DED cannot bring back (a later access then
        recomputes it - recompute-as-repair).  Called by
        :class:`repro.reliability.scrubber.MemoryScrubber` under its byte
        budget.  Returns the sweep report.
        """
        checked = mismatches = repaired = evicted = 0
        swept = 0
        with self._lock:
            if self.scrub:
                for key in list(self._cache.keys()):
                    entry = self._cache[key]
                    swept += entry.nbytes()
                    checked += 1
                    self.scrub_checks += 1
                    if _fields_digest(entry.fields) != entry.fields_digest:
                        mismatches += 1
                        self.scrub_mismatches += 1
                        if self._try_ecc(_fields_arrays(entry.fields),
                                         entry.fields_parity,
                                         entry.fields_digest, _fields_digest,
                                         entry.fields):
                            repaired += 1
                            self.scrub_repairs += 1
                        else:
                            # fields beyond ECC reach: the derived grids are
                            # suspect too, drop the whole entry
                            del self._cache[key]
                            evicted += 1
                            self.scrub_evictions += 1
                            continue
                    for gkey in list(entry.grids.keys()):
                        grid = entry.grids[gkey]
                        checked += 1
                        self.scrub_checks += 1
                        if _grid_digest(grid) == entry.grid_digests.get(gkey):
                            continue
                        mismatches += 1
                        self.scrub_mismatches += 1
                        if self._try_ecc(_grid_arrays(grid),
                                         entry.grid_parities.get(gkey),
                                         entry.grid_digests.get(gkey),
                                         _grid_digest, grid):
                            repaired += 1
                            self.scrub_repairs += 1
                        else:
                            del entry.grids[gkey]
                            entry.grid_digests.pop(gkey, None)
                            entry.grid_parities.pop(gkey, None)
                            evicted += 1
                            self.scrub_evictions += 1
            else:
                swept = sum(e.nbytes() for e in self._cache.values())
        return {"checked": checked, "mismatches": mismatches,
                "repaired": repaired, "evicted": evicted, "bytes": swept}

    def clear(self):
        """Drop every cached scene (counters keep accumulating)."""
        with self._lock:
            self._cache.clear()

    def corrupt_cache(self, rate, seed_or_rng=None):
        """Flip stored bits of every cached buffer in place (fault surface).

        Models memory corruption of the resident scene cache: each real
        bit of every cached fields tensor and cell grid flips
        independently with ``rate`` (packed entries via
        :func:`repro.reliability.faults.flip_packed_words`, which never
        touches pad bits; dense entries via sign flips on the bipolar
        magnitude field and negation of histogram counters, matching
        :func:`repro.noise.bitflip.flip_bipolar` conventions).  Digests
        and ECC parity taken at insert time are deliberately *not*
        refreshed, so a scrubbing engine detects the corruption on the
        next hit (or :meth:`scrub_cache` sweep) and repairs it, while a
        non-scrubbing engine serves it.  Returns the number of corrupted
        buffers.
        """
        from ..noise.bitflip import flip_bipolar
        from ..reliability.faults import flip_packed_words
        rng = as_rng(seed_or_rng)
        dim = self.extractor.dim
        corrupted = 0
        with self._lock:
            for entry in self._cache.values():
                fields = entry.fields
                if isinstance(fields, _PackedFields):
                    fields.mag_packed[...] = flip_packed_words(
                        fields.mag_packed, dim, rate, rng)
                else:
                    fields.mag[...] = flip_bipolar(fields.mag, rate, rng)
                corrupted += 1
                for grid in entry.grids.values():
                    if isinstance(grid, _PackedGrid):
                        grid.packed[...] = flip_packed_words(
                            grid.packed, dim, rate, rng)
                    else:
                        grid.bundles[...] = flip_bipolar(
                            grid.bundles, rate, rng)
                    corrupted += 1
        return corrupted

    # ------------------------------------------------------------------
    # frame-delta incremental extraction
    # ------------------------------------------------------------------
    @staticmethod
    def _dirty_rect(prev, scene, pad=1):
        """Dirty rectangle ``(y0, y1, x0, x1, n_changed)`` or None.

        The bounding box of the changed pixels, dilated by ``pad`` pixels
        and clamped to the frame: the per-pixel fields read a one-pixel
        gradient context ring (clamped at borders exactly like the
        replicate padding), so every field value outside the dilated box
        is a pure function of unchanged pixels and unchanged keyed noise.
        """
        diff = prev != scene
        rows = np.flatnonzero(diff.any(axis=1))
        if rows.size == 0:
            return None
        cols = np.flatnonzero(diff.any(axis=0))
        h, w = diff.shape
        return (max(int(rows[0]) - pad, 0), min(int(rows[-1]) + 1 + pad, h),
                max(int(cols[0]) - pad, 0), min(int(cols[-1]) + 1 + pad, w),
                int(diff.sum()))

    def _region_fields(self, scene, y0, y1, x0, x1):
        """Profiled stages 1-4 over one rectangle (strip-decomposed).

        Keyed noise makes the result bitwise equal to the matching slice
        of a whole-scene ``extract_fields`` pass, whatever the strip size.
        """
        ext = self.extractor
        w = x1 - x0
        strip_rows = max(8, (1 << 21) // max(w * ext.dim, 1))
        with self.profiler.stage("delta_fields"):
            parts = [
                ext._fields_region(scene, (r0, x0),
                                   (min(strip_rows, y1 - r0), w))
                for r0 in range(y0, y1, strip_rows)
            ]
            if len(parts) == 1:
                mag, bins = parts[0].mag, parts[0].bins
            else:
                mag = np.concatenate([p.mag for p in parts], axis=0)
                bins = np.concatenate([p.bins for p in parts], axis=0)
        self.profiler.add_profile(
            "delta_fields",
            hd_hog_fields_profile((y1 - y0, w), ext.dim, n_bins=ext.n_bins,
                                  magnitude=ext.magnitude,
                                  sqrt_iters=ext.sqrt_iters, gamma=ext.gamma),
            items=(y1 - y0) * w,
        )
        return mag, bins

    def _verify_delta_base(self, entry, prev):
        """Integrity-check a delta-reuse base entry; repair or reject it.

        Corrupted fields are ECC-corrected in place or the entry is
        dropped (None return = the caller takes the full-extraction
        path); corrupted grids are ECC-corrected or individually evicted
        (they recompute on demand).  Caller holds the lock.
        """
        self.scrub_checks += 1
        if _fields_digest(entry.fields) != entry.fields_digest:
            self.scrub_mismatches += 1
            if self._try_ecc(_fields_arrays(entry.fields),
                             entry.fields_parity, entry.fields_digest,
                             _fields_digest, entry.fields):
                self.scrub_repairs += 1
            else:
                self._cache.pop(scene_key(prev), None)
                self.scrub_evictions += 1
                return None
        for gkey in list(entry.grids.keys()):
            grid = entry.grids[gkey]
            self.scrub_checks += 1
            if _grid_digest(grid) == entry.grid_digests.get(gkey):
                continue
            self.scrub_mismatches += 1
            if self._try_ecc(_grid_arrays(grid),
                             entry.grid_parities.get(gkey),
                             entry.grid_digests.get(gkey), _grid_digest,
                             grid):
                self.scrub_repairs += 1
            else:
                del entry.grids[gkey]
                entry.grid_digests.pop(gkey, None)
                entry.grid_parities.pop(gkey, None)
                self.scrub_evictions += 1
        return entry

    @staticmethod
    def _clone_entry(entry):
        """Deep copy of a cache entry (the ``keep_prev`` delta path)."""
        fields = entry.fields
        if isinstance(fields, _PackedFields):
            clone_fields = _PackedFields.__new__(_PackedFields)
            clone_fields.mag_packed = fields.mag_packed.copy()
            clone_fields.bins = fields.bins.copy()
            clone_fields.dim = fields.dim
        else:
            clone_fields = HDHOGFields(fields.mag.copy(), fields.bins.copy())
        clone = _CacheEntry(clone_fields, entry.fields_digest)
        for gkey, grid in entry.grids.items():
            if isinstance(grid, _PackedGrid):
                clone.grids[gkey] = _PackedGrid(grid.packed.copy(),
                                                grid.counts.copy())
            else:
                clone.grids[gkey] = HDHOGResult(grid.bundles.copy(),
                                                grid.counts.copy(),
                                                grid.cell_pixels)
        clone.grid_digests = dict(entry.grid_digests)
        if entry.fields_parity is not None:
            clone.fields_parity = tuple(p.copy()
                                        for p in entry.fields_parity)
        clone.grid_parities = {
            gkey: tuple(p.copy() for p in parity)
            for gkey, parity in entry.grid_parities.items()}
        return clone

    def _patch_grids(self, entry, y0, y1, x0, x1):
        """Recompute the cached grids' cells overlapping the dirty rect.

        A (cell, bin) bundle reads exactly the ``cell_size``-square pixel
        block at its anchor, so only cells whose block intersects
        ``[y0, y1) x [x0, x1)`` can change; the rest keep their cached
        words.  Returns ``(cells_total, cells_recomputed)``.
        """
        ext = self.extractor
        c = ext.cell_size
        fields = entry.fields
        total = dirty = 0
        for gkey, grid in entry.grids.items():
            ys = np.frombuffer(gkey[0], dtype=np.int64)
            xs = np.frombuffer(gkey[1], dtype=np.int64)
            total += ys.size * xs.size
            di = np.flatnonzero((ys < y1) & (ys + c > y0))
            dj = np.flatnonzero((xs < x1) & (xs + c > x0))
            if di.size == 0 or dj.size == 0:
                continue
            dirty += di.size * dj.size
            ra, rb = int(ys[di[0]]), int(ys[di[-1]]) + c
            ca, cb = int(xs[dj[0]]), int(xs[dj[-1]]) + c
            if isinstance(fields, _PackedFields):
                crop = HDHOGFields(
                    unpack_bits(fields.mag_packed[ra:rb, ca:cb], ext.dim),
                    fields.bins[ra:rb, ca:cb])
            else:
                crop = HDHOGFields(fields.mag[ra:rb, ca:cb],
                                   fields.bins[ra:rb, ca:cb])
            with self.profiler.stage("delta_grid"):
                sub = ext.cell_grid_at(crop, ys[di] - ra, xs[dj] - ca)
                if isinstance(grid, _PackedGrid):
                    sub = self._pack_grid(sub)
                    grid.packed[np.ix_(di, dj)] = sub.packed
                else:
                    grid.bundles[np.ix_(di, dj)] = sub.bundles
                grid.counts[np.ix_(di, dj)] = sub.counts
            px_d = float((rb - ra) * (cb - ca)) * ext.dim
            self.profiler.add_ops(
                "delta_grid", items=di.size * dj.size,
                bit=ext.n_bins * px_d, int_add=2 * ext.n_bins * px_d,
                mem_bytes=ext.n_bins * px_d / 4,
            )
            if self.scrub:
                entry.grid_digests[gkey] = _grid_digest(grid)
                entry.grid_parities[gkey] = _grid_parity(grid)
        return total, dirty

    def delta_update(self, prev_scene, scene, keep_prev=False,
                     full_fraction=0.85):
        """Re-key ``prev_scene``'s cached entry to ``scene``, patching deltas.

        The streaming fast path: instead of extracting ``scene`` from
        scratch, diff it against ``prev_scene`` (whose fields must already
        be cached for reuse to happen), recompute stages 1-4 over the
        dirty rectangle only, patch the rectangle and the dirty grid cells
        into the cached entry, and re-insert it under ``scene``'s cache
        key.  A subsequent ``window_queries(scene, ...)`` then hits the
        cache - with results *bitwise identical* to a cold full
        re-extraction, on both backends, because the stochastic stages
        draw position-keyed noise.

        Parameters
        ----------
        prev_scene, scene:
            The previous and the incoming frame (same shape).
        keep_prev:
            When False (default) the previous frame's entry is *moved*:
            patched in place and removed from the cache, which is the
            single-consumer video regime.  True deep-copies the entry so
            the previous frame stays cached (costs one fields-size copy).
        full_fraction:
            When the dirty rectangle covers at least this fraction of the
            frame, fall back to the strip-parallel full extraction pass
            (the patch path's bookkeeping would only add overhead).

        Returns
        -------
        dict with the reuse accounting: ``mode`` (``"reused"`` - frame
        content already cached; ``"full"`` - cold or near-whole-frame
        recompute; ``"patched"`` - the incremental path), ``pixels``,
        ``dirty_pixels``, ``dirty_rect``, ``cells`` / ``dirty_cells``
        (cached-grid cells total / recomputed).
        """
        validate_scene(prev_scene, "prev_scene")
        validate_scene(scene)
        prev = np.ascontiguousarray(prev_scene, dtype=np.float64)
        new = np.ascontiguousarray(scene, dtype=np.float64)
        if prev.shape != new.shape:
            raise ValueError(f"frame shape changed: {prev.shape} -> "
                             f"{new.shape}; delta reuse needs equal shapes")
        stats = {"mode": "patched", "pixels": int(new.size),
                 "dirty_pixels": 0, "dirty_rect": None,
                 "cells": 0, "dirty_cells": 0}
        with self._lock:
            self.delta_updates += 1
            self.delta_pixels += new.size
        new_key = scene_key(new)
        # single-flight per target frame: lockstepped streams all diffing
        # toward the same content (the fleet regime) patch once - the
        # claimer computes, the rest wait and then take the "reused" hit
        token = ("delta", new_key)
        while True:
            with self._lock:
                if new_key in self._cache:
                    # unchanged frame (or already-seen content): no work
                    self._cache.move_to_end(new_key)
                    self.hits += 1
                    self.delta_reused += 1
                    stats["mode"] = "reused"
                    return stats
                waiter = self._inflight.get(token)
                if waiter is None:
                    self._inflight[token] = threading.Event()
                    break
            waiter.wait()
        try:
            with self._lock:
                entry = self._cache.get(scene_key(prev))
                if entry is not None and self.scrub:
                    # the delta path *refreshes* digests after patching, so
                    # reusing a corrupted base would launder the corruption
                    # into the new frame's golden digest - verify (and
                    # repair) the base before trusting it
                    entry = self._verify_delta_base(entry, prev)
            rect = None if entry is None else self._dirty_rect(prev, new)
            if rect is not None:
                y0, y1, x0, x1, n_changed = rect
                stats["dirty_pixels"] = n_changed
                stats["dirty_rect"] = (y0, y1, x0, x1)
                with self._lock:
                    self.delta_dirty_pixels += n_changed
            if rect is None or \
                    (y1 - y0) * (x1 - x0) >= full_fraction * new.size:
                # cold start (no cached base) or near-whole-frame change:
                # the plain extraction path beats patching
                if entry is not None and not keep_prev:
                    with self._lock:
                        self._cache.pop(scene_key(prev), None)
                self._entry(new)
                with self._lock:
                    self.delta_full += 1
                stats["mode"] = "full"
                return stats
            if keep_prev:
                entry = self._clone_entry(entry)
            else:
                with self._lock:
                    self._cache.pop(scene_key(prev), None)
            mag, bins = self._region_fields(new, y0, y1, x0, x1)
            fields = entry.fields
            if isinstance(fields, _PackedFields):
                fields.mag_packed[y0:y1, x0:x1] = pack_bits(mag)
            else:
                fields.mag[y0:y1, x0:x1] = mag
            fields.bins[y0:y1, x0:x1] = bins
            stats["cells"], stats["dirty_cells"] = \
                self._patch_grids(entry, y0, y1, x0, x1)
            if self.scrub:
                entry.fields_digest = _fields_digest(fields)
                entry.fields_parity = _fields_parity(fields)
            with self._lock:
                self._cache.setdefault(new_key, entry)
                self._cache.move_to_end(new_key)
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
                    self.evictions += 1
                self.delta_patched += 1
            return stats
        finally:
            with self._lock:
                waiter = self._inflight.pop(token, None)
            if waiter is not None:
                waiter.set()

    # ------------------------------------------------------------------
    # window queries
    # ------------------------------------------------------------------
    def _anchors(self, origins, window):
        """Union of cell anchors needed by ``origins``: sorted rows, cols."""
        c = self.extractor.cell_size
        if window % c:
            raise ValueError(
                f"window {window} not divisible by cell_size {c}")
        n = window // c
        ys = sorted({int(y) + c * i for y, _ in origins for i in range(n)})
        xs = sorted({int(x) + c * i for _, x in origins for i in range(n)})
        return np.asarray(ys, dtype=np.int64), np.asarray(xs, dtype=np.int64), n

    def _dense_grid(self, fields, ys, xs):
        """One profiled ``cell_grid_at`` pass over dense fields."""
        ext = self.extractor
        with self.profiler.stage("cell_grid"):
            grid = ext.cell_grid_at(fields, ys, xs)
        h, w = fields.shape
        px_d = float(h * w) * ext.dim
        self.profiler.add_ops(
            "cell_grid", items=len(ys) * len(xs),
            bit=ext.n_bins * px_d, int_add=2 * ext.n_bins * px_d,
            mem_bytes=ext.n_bins * px_d / 4,
        )
        return grid

    def _grid(self, entry_fields, grids, ys, xs, digests=None,
              parities=None):
        """Cell grid at the anchor union (cached per scene entry).

        For the packed backend the dense box-filter result is
        sign-quantized and packed before it enters the cache; the dense
        intermediates are transient.  ``digests`` / ``parities`` - the
        owning entry's grid-digest and parity stores when scrubbing - are
        checked on every cached-grid hit; a mismatch is ECC-corrected in
        place when possible, else the grid is recomputed from the (itself
        digest-checked) cached fields.
        """
        gkey = (ys.tobytes(), xs.tobytes())
        with self._lock:
            grid = grids.get(gkey)
            if grid is not None and self.scrub and digests is not None:
                self.scrub_checks += 1
                if _grid_digest(grid) != digests.get(gkey):
                    self.scrub_mismatches += 1
                    if self._try_ecc(
                            _grid_arrays(grid),
                            None if parities is None else parities.get(gkey),
                            digests.get(gkey), _grid_digest, grid):
                        self.scrub_repairs += 1
                    else:
                        del grids[gkey]
                        if parities is not None:
                            parities.pop(gkey, None)
                        self.scrub_evictions += 1
                        grid = None
        if grid is not None:
            return grid
        if isinstance(entry_fields, _PackedFields):
            dense_grid = self._dense_grid(entry_fields.dense(), ys, xs)
            grid = self._pack_grid(dense_grid)
        else:
            grid = self._dense_grid(entry_fields, ys, xs)
        with self._lock:
            stored = grids.setdefault(gkey, grid)
            if stored is grid and self.scrub and digests is not None:
                digests[gkey] = _grid_digest(grid)
                if parities is not None:
                    parities[gkey] = _grid_parity(grid)
            return stored

    def _pack_grid(self, dense_grid):
        """Sign-quantize (``0 -> +1``) and bit-pack a dense cell grid."""
        signs = np.where(dense_grid.bundles >= 0, 1, -1).astype(np.int8)
        return _PackedGrid(pack_bits(signs), dense_grid.counts)

    def _window_keys_packed(self, n):
        """Packed positional keys for an ``n x n``-cell window (cached)."""
        with self._lock:
            keys = self._packed_keys.get(n)
            if keys is None:
                keys = pack_bits(self.extractor._keys(n, n))
                self._packed_keys[n] = keys
            return keys

    def window_queries(self, scene, origins, window, injector=None):
        """Query hypervectors for windows at ``origins``.

        Dense backend: float32 ``(n_windows, D)`` rows, each bitwise
        identical to ``extractor.window_query(scene, origin, window)`` -
        the per-window recompute - but with the expensive stages run once
        for the whole scene.

        Packed backend: uint64 ``(n_windows, ceil(D / 64))`` packed binary
        queries - each window's sign-quantized (cell, bin) bundles bound to
        the positional keys by XNOR and bundled by a majority vote over the
        non-empty bins, entirely in the packed domain.  Classify them with
        :class:`repro.core.packed.PackedClassModel`.

        ``injector`` (fault-injection hook) bypasses the cache: corrupted
        fields are computed fresh and never stored, so later clean scans of
        the same scene are unaffected.
        """
        return self._queries(scene, origins, window, injector, None)

    def window_queries_prefix(self, scene, origins, window,
                              word_start, word_stop, injector=None,
                              anchors=None):
        """Packed query *word block* ``[word_start, word_stop)`` only.

        The cascade scanner's assembly primitive (packed backend only):
        returns uint64 ``(n_windows, word_stop - word_start)`` - bitwise
        identical to the same word slice of :meth:`window_queries`,
        because :func:`~repro.core.packed.packed_majority` votes each
        word lane independently and the empty-bin mask is per-feature,
        not per-word.  Assembling a short prefix therefore costs only
        the prefix's fraction of the full bind+majority work, which is
        what makes stage-1 cascade rejection cheap.

        Work is recorded under the profiler stage ``assemble_prefix``
        (not ``assemble``) and counted in :meth:`cache_info` under
        ``prefix_assembles`` / ``prefix_windows`` / ``prefix_words``, so
        cascade reuse stays attributable in benchmarks.

        ``anchors=(ys, xs)`` substitutes a precomputed cell-anchor union
        (a superset of the origins' own anchors, e.g. the whole cascade
        pass's union) so successive escalation stages over shrinking
        survivor sets share one cached cell grid instead of deriving a
        new grid per subset.
        """
        if self.backend != "packed":
            raise ValueError(
                "window_queries_prefix requires backend='packed'; the dense "
                "backend has no word-prefix axis")
        w0, w1 = int(word_start), int(word_stop)
        block_dim(self.extractor.dim, w0, w1)  # validates the range
        return self._queries(scene, origins, window, injector, (w0, w1),
                             anchors)

    def _prepare(self, scene, origins, window, injector, anchors=None):
        """Validate inputs and resolve the cell grid one assembly needs.

        Returns ``(grid, origins, ys, xs, n)``: the cached (or injector-
        fresh) cell grid at the anchor union plus the normalized origins.
        Shared by the query assembly paths and :meth:`window_gather`.
        """
        window = int(window)
        scene = validate_scene(scene)
        origins = [(int(y), int(x)) for y, x in origins]
        if not origins:
            raise ValueError("need at least one window origin")
        if injector is None:
            entry = self._entry(scene)
            fields, grids = entry.fields, entry.grids
            digests, parities = entry.grid_digests, entry.grid_parities
        else:
            fields, grids = self._extract_fields(scene, injector), {}
            digests = parities = None
            if self.backend == "packed":
                fields = _PackedFields(fields, self.extractor.dim)
        if anchors is None:
            ys, xs, n = self._anchors(origins, window)
        else:
            ys, xs = (np.asarray(a, dtype=np.int64) for a in anchors)
            n = window // self.extractor.cell_size
        grid = self._grid(fields, grids, ys, xs, digests, parities)
        return grid, origins, ys, xs, n

    def _queries(self, scene, origins, window, injector, word_range,
                 anchors=None):
        grid, origins, ys, xs, n = self._prepare(scene, origins, window,
                                                 injector, anchors)
        if self.backend == "packed":
            return self._assemble_packed(grid, origins, ys, xs, n, injector,
                                         word_range)
        return self._assemble_dense(grid, origins, ys, xs, n, injector)

    def window_gather(self, scene, origins, window, word_start=None,
                      word_stop=None, injector=None, anchors=None):
        """Bound-but-unbundled packed window features (the batching primitive).

        Returns ``(flat, valid)``: ``flat`` is uint64 ``(n_windows,
        n_features, words)`` - every window's packed cell words already
        XNOR-bound to the positional keys - and ``valid`` is the per-
        feature non-empty-bin mask.  This is exactly the input
        :func:`~repro.core.packed.packed_majority` bundles into queries,
        exposed separately so a cross-stream batcher can *concatenate*
        the gathers of many scenes and run one majority + one XOR+popcount
        classification over all of them.  Because the majority votes each
        window row independently, the batched results are bitwise
        identical to per-scene :meth:`window_queries` /
        :meth:`window_queries_prefix` calls.

        ``word_start`` / ``word_stop`` restrict the gather to a word
        block (both None = full width); ``anchors`` substitutes a
        precomputed cell-anchor union as in
        :meth:`window_queries_prefix`.
        """
        if self.backend != "packed":
            raise ValueError(
                "window_gather requires backend='packed'; the dense backend "
                "has no concatenation-safe batched path")
        dim = self.extractor.dim
        w0 = 0 if word_start is None else int(word_start)
        w1 = packed_words(dim) if word_stop is None else int(word_stop)
        block_dim(dim, w0, w1)  # validates the range
        grid, origins, ys, xs, n = self._prepare(scene, origins, window,
                                                 injector, anchors)
        with self.profiler.stage("gather"):
            flat, valid = self._gather_packed(grid, origins, ys, xs, n,
                                              injector, w0, w1)
        return flat, valid

    def _assemble_dense(self, grid, origins, ys, xs, n, injector):
        """Float reference assembly: slice, bind, weight, accumulate."""
        ext = self.extractor
        c = ext.cell_size
        offsets = c * np.arange(n, dtype=np.int64)
        queries = np.empty((len(origins), ext.dim), dtype=np.float32)
        with self.profiler.stage("assemble"):
            for k, (y, x) in enumerate(origins):
                ri = np.searchsorted(ys, y + offsets)
                ci = np.searchsorted(xs, x + offsets)
                sub = HDHOGResult(grid.bundles[np.ix_(ri, ci)],
                                  grid.counts[np.ix_(ri, ci)],
                                  grid.cell_pixels)
                if injector is not None:
                    sub.bundles = injector(sub.bundles, "histogram")
                queries[k] = ext.bundle_query(sub)
        feats_d = float(n * n * ext.n_bins) * ext.dim
        self.profiler.add_ops("assemble", items=len(origins),
                              bit=feats_d * len(origins),
                              int_add=feats_d * len(origins))
        return queries

    def _assemble_packed(self, grid, origins, ys, xs, n, injector,
                         word_range=None):
        """Packed assembly: gather cells, XNOR-bind keys, majority-bundle.

        Fully vectorized over windows; the only per-feature work is the
        bit-sliced vertical-counter accumulation inside
        :func:`~repro.core.packed.packed_majority`.  ``injector`` (stage
        ``"histogram"``) corrupts the packed cell words before binding.

        ``word_range=(w0, w1)`` restricts gather, bind and majority to
        that word block: the majority votes word lanes independently, so
        the result equals ``full_queries[:, w0:w1]`` bit for bit while
        touching only ``(w1 - w0) / W`` of the words.
        """
        ext = self.extractor
        dim = ext.dim
        if word_range is None:
            w0, w1 = 0, packed_words(dim)
            bdim, stage = dim, "assemble"
        else:
            w0, w1 = word_range
            bdim, stage = block_dim(dim, w0, w1), "assemble_prefix"
        c = ext.cell_size
        with self.profiler.stage(stage):
            flat, valid = self._gather_packed(grid, origins, ys, xs, n,
                                              injector, w0, w1)
            queries = packed_majority(flat, bdim, valid=valid)
        self.profiler.add_profile(
            stage,
            packed_assemble_profile(n * c, bdim, cell_size=c,
                                    n_bins=ext.n_bins) * len(origins),
            items=len(origins),
        )
        if word_range is not None:
            with self._lock:
                self.prefix_assembles += 1
                self.prefix_windows += len(origins)
                self.prefix_words += (w1 - w0) * len(origins)
        return queries

    def _gather_packed(self, grid, origins, ys, xs, n, injector, w0, w1):
        """Gather and XNOR-bind the packed cells for ``origins``.

        Returns ``(flat, valid)`` ready for
        :func:`~repro.core.packed.packed_majority`: ``flat`` is uint64
        ``(n_windows, n_features, w1 - w0)``, ``valid`` the non-empty-bin
        mask.  Window rows are independent, so gathers from different
        scenes may be concatenated before one shared majority - the
        invariant the cross-stream batcher builds on.
        """
        ext = self.extractor
        c = ext.cell_size
        offsets = c * np.arange(n, dtype=np.int64)
        oy = np.asarray([y for y, _ in origins], dtype=np.int64)
        ox = np.asarray([x for _, x in origins], dtype=np.int64)
        ri = np.searchsorted(ys, oy[:, None] + offsets[None, :])
        ci = np.searchsorted(xs, ox[:, None] + offsets[None, :])
        cells = grid.packed[ri[:, :, None], ci[:, None, :], :, w0:w1]
        counts = grid.counts[ri[:, :, None], ci[:, None, :]]
        if injector is not None:
            cells = injector(cells, "histogram")
        keys = self._window_keys_packed(n)[..., w0:w1]
        bound = ~np.bitwise_xor(cells, keys[None])
        n_feat = n * n * ext.n_bins
        flat = bound.reshape(len(origins), n_feat, w1 - w0)
        valid = (counts > 0).reshape(len(origins), n_feat)
        return flat, valid

"""Multi-stage cascade scanning: early-exit rejection on word prefixes.

The packed backend scores every window against all ``W = ceil(D / 64)``
words of the class model even though a short word-prefix of a holographic
model already separates faces from clutter - the paper's dimensionality-
scaling observation, exploited defensively by
:class:`repro.core.packed.TruncatedClassModel` and offensively here.
Because the components of a random hypervector are exchangeable, the
Hamming distance over the first ``n`` components concentrates around
``n / D`` times the full-D distance, so a window whose *prefix* margin is
far below zero is overwhelmingly unlikely to have a positive full margin.

:class:`CascadeScanner` turns that into a sublinear scan on both axes of
the window x word product:

* **word axis** - stage 1 assembles and scores only the first ``k1``
  words of every candidate window (one batched XOR+popcount over the
  prefix), rejects windows whose prefix margin falls below a calibrated
  bound, and escalates survivors through wider prefixes to the full
  model.  Escalation is *incremental*: each stage assembles only the new
  word block (:meth:`repro.pipeline.engine.SharedFeatureEngine.
  window_queries_prefix`) and adds its block Hamming distances
  (:meth:`repro.core.packed.PackedClassModel.distance_block`) onto the
  accumulated stage-1 popcounts - no word is ever XOR'd or popcounted
  twice.
* **window axis** - *coarse-seed-then-refine*: only every ``seed_factor``-th
  grid position is scanned first, and the dense stride-1 grid is re-scanned
  locally around seeds whose score clears ``-refine_band``.  Windows in
  neither set keep the floor score (never detections).

Rejection thresholds come from :class:`CascadeCalibrator`: either the
``fn_budget``-quantile of the prefix margins of *full-model-accepted*
calibration windows (empirical, clamped to <= 0 so a rejected window can
never out-score the detection threshold), or the distribution-free
Hoeffding bound :func:`hoeffding_threshold` - the analytic fallback that
needs no calibration data.  Calibrations persist as JSON
(:meth:`CascadeCalibration.save`) and ship with the model.

The scanner plugs into the existing stack as a scan mode:
``SlidingWindowDetector(..., cascade=...)`` routes :meth:`~repro.pipeline.
detector.SlidingWindowDetector.scan` through a cascade,
``PyramidDetector.detect(..., max_words=...)`` caps the cascade depth per
call, and the serving ladder's ``word_budget`` rungs shed cascade depth
under load (:func:`repro.runtime.ladder.cascade_ladder`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from ..core.packed import PackedClassModel
from ..hardware.opcount import cascade_stage_profile
from .detector import DetectionMap

__all__ = ["CascadeStage", "CascadeCalibration", "CascadeCalibrator",
           "CascadeScanner", "default_word_schedule", "hoeffding_threshold"]

#: Score assigned to grid positions the coarse-seed pass never visited.
#: The minimum possible margin (similarities live in [-1, 1]), so skipped
#: windows sort below every scored window and are never detections.
FLOOR_SCORE = -2.0


def hoeffding_threshold(n_prefix, fn_budget):
    """Distribution-free rejection threshold for an ``n_prefix``-component
    prefix margin at false-negative budget ``fn_budget``.

    A window the full model accepts has full margin > 0.  The prefix
    margin is the mean of ``n_prefix`` exchangeable per-component margin
    contributions bounded in ``[-2, 2]`` (range 4), so by Hoeffding's
    inequality the probability that the prefix margin of an accepted
    window undershoots its full-D value by more than ``t`` is at most
    ``exp(-2 n t^2 / 16)``.  Solving for ``t`` at ``fn_budget`` gives the
    threshold ``-4 sqrt(ln(1 / fn_budget) / (2 n))``: rejecting prefix
    margins below it drops accepted windows with probability at most
    ``fn_budget`` - with no calibration data at all.
    """
    n = int(n_prefix)
    if n < 1:
        raise ValueError("n_prefix must be at least 1")
    if not 0.0 < fn_budget < 1.0:
        raise ValueError("fn_budget must be in (0, 1)")
    return -4.0 * math.sqrt(math.log(1.0 / fn_budget) / (2.0 * n))


def default_word_schedule(total_words, factor=4, min_words=2):
    """Geometric stage-width schedule ending at the full model width.

    Each stage widens by ``factor``; e.g. 64 words -> ``[4, 16, 64]``.
    A model too narrow to split yields the single full-width stage.
    """
    total = int(total_words)
    if total < 1:
        raise ValueError("total_words must be at least 1")
    sched = [total]
    w = total
    while w // factor >= min_words:
        w //= factor
        sched.append(w)
    return sorted(set(sched))


@dataclass(frozen=True)
class CascadeStage:
    """One rung of the escalation schedule.

    Attributes
    ----------
    words:
        Cumulative model-word budget of this stage: windows surviving it
        have been scored against the first ``words`` words.
    threshold:
        Prefix-margin rejection bound (<= 0): windows whose margin over
        the first ``words`` words falls below it are rejected with their
        prefix margin as the final score.  Must be non-positive so a
        rejected window's score can never clear a detection threshold
        at or above zero.  The final stage's threshold is unused.
    """

    words: int
    threshold: float = 0.0

    def __post_init__(self):
        if int(self.words) < 1:
            raise ValueError("stage words must be at least 1")
        if self.threshold > 0.0:
            raise ValueError(
                f"stage threshold must be <= 0 (got {self.threshold}); a "
                "positive bound could reject windows the full model accepts "
                "at score 0")
        object.__setattr__(self, "words", int(self.words))
        object.__setattr__(self, "threshold", float(self.threshold))


@dataclass(frozen=True)
class CascadeCalibration:
    """A persisted stage schedule with its provenance.

    ``escalation[i]`` is the fraction of calibration windows still alive
    *after* stage ``i`` - the measured escalation rates that
    :func:`repro.hardware.opcount.cascade_scan_profile` prices and the
    tuning guide in ``docs/cascade.md`` reads.
    """

    dim: int
    face_class: int
    fn_budget: float
    method: str
    stages: tuple
    escalation: tuple = ()
    windows: int = 0
    accepted: int = 0
    positives: str = "accepted"

    def to_dict(self):
        return {
            "dim": int(self.dim),
            "face_class": int(self.face_class),
            "fn_budget": float(self.fn_budget),
            "method": self.method,
            "stages": [{"words": s.words, "threshold": s.threshold}
                       for s in self.stages],
            "escalation": [float(e) for e in self.escalation],
            "windows": int(self.windows),
            "accepted": int(self.accepted),
            "positives": self.positives,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            dim=int(data["dim"]),
            face_class=int(data["face_class"]),
            fn_budget=float(data["fn_budget"]),
            method=str(data["method"]),
            stages=tuple(CascadeStage(s["words"], s["threshold"])
                         for s in data["stages"]),
            escalation=tuple(float(e) for e in data.get("escalation", ())),
            windows=int(data.get("windows", 0)),
            accepted=int(data.get("accepted", 0)),
            positives=str(data.get("positives", "accepted")),
        )

    def save(self, path):
        """Write the calibration as JSON (the artifact shipped with a model)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path):
        with open(path, encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


class CascadeCalibrator:
    """Fit per-stage rejection thresholds on held-out scenes.

    Parameters
    ----------
    detector:
        A :class:`~repro.pipeline.detector.SlidingWindowDetector` on the
        shared engine with the packed backend.
    words:
        Ascending cumulative word budgets per stage (default: the
        geometric :func:`default_word_schedule` of the model width).
    fn_budget:
        Per-stage false-negative budget: the calibrated bound drops at
        most this fraction of windows the full model accepts.
    method:
        ``"empirical"`` - the ``fn_budget``-quantile of the accepted
        calibration windows' prefix margins, clamped to <= 0 (tight, needs
        positives in the calibration set; stages without positives fall
        back to the analytic bound).  ``"hoeffding"`` - the
        distribution-free :func:`hoeffding_threshold` (loose but needs no
        data and holds for any input distribution).
    """

    def __init__(self, detector, words=None, fn_budget=0.01,
                 method="empirical"):
        if getattr(detector, "mode", None) != "shared" \
                or getattr(detector, "backend", None) != "packed":
            raise ValueError("cascade calibration requires a shared-engine "
                             "detector with backend='packed'")
        if method not in ("empirical", "hoeffding"):
            raise ValueError(f"unknown method {method!r}; "
                             "expected 'empirical' or 'hoeffding'")
        if not 0.0 < fn_budget < 1.0:
            raise ValueError("fn_budget must be in (0, 1)")
        self.detector = detector
        self.words = None if words is None else sorted(int(w) for w in words)
        self.fn_budget = float(fn_budget)
        self.method = method

    @staticmethod
    def _truth_hits(origins, window, rects, min_overlap=0.9):
        """Boolean mask over ``origins``: window covers a truth rect."""
        hits = np.zeros(len(origins), dtype=bool)
        for i, (y, x) in enumerate(origins):
            for ty, tx, tw in rects:
                oy = max(0, min(y + window, ty + tw) - max(y, ty))
                ox = max(0, min(x + window, tx + tw) - max(x, tx))
                if oy * ox >= min_overlap * window * window:
                    hits[i] = True
                    break
        return hits

    def calibrate(self, scenes, stride=None, model=None, truth=None,
                  min_overlap=0.9):
        """Measure prefix margins over ``scenes`` and fit the thresholds.

        Every window of every scene is assembled at full width once; each
        stage's prefix margin is then recovered from the cumulative block
        distances, so calibration costs one full scan per scene plus
        arithmetic.  Returns a :class:`CascadeCalibration`.

        ``truth`` optionally gives the positives the fn budget protects:
        a list (parallel to ``scenes``) of ``(y, x, size)`` face rects, as
        returned by :func:`~repro.pipeline.detector.make_scene`.  The
        budget then applies to *ground-truth face windows* (at least
        ``min_overlap`` overlap with a rect, and full-model-accepted) -
        the windows detection recall is measured on - instead of every
        full-model-accepted window.  Truth-anchored thresholds are much
        tighter: borderline background windows that happen to clear the
        detection threshold no longer drag the quantile down, so the
        cascade sheds them early at no recall cost.
        """
        det = self.detector
        if model is None:
            model = det.packed_model()
        total = model.n_words
        dim = model.dim
        schedule = self.words or default_word_schedule(total)
        if schedule[-1] > total:
            raise ValueError(f"stage words {schedule[-1]} exceed the model's "
                             f"{total} words")
        if truth is not None and len(truth) != len(scenes):
            raise ValueError(f"truth has {len(truth)} entries for "
                             f"{len(scenes)} scenes")
        face = det.face_class
        per_stage = [[] for _ in schedule]
        hits = [] if truth is not None else None
        for si_scene, scene in enumerate(scenes):
            scene = np.asarray(scene, dtype=np.float64)
            origins, _ = det.origins(scene.shape, stride)
            queries = det.engine.window_queries(scene, origins, det.window)
            if hits is not None:
                hits.append(self._truth_hits(origins, det.window,
                                             truth[si_scene], min_overlap))
            acc = np.zeros((len(origins), model.n_classes), dtype=np.int64)
            w_prev = 0
            for si, w1 in enumerate(schedule):
                acc += model.distance_block(queries, w_prev, w1)
                pdim = min(64 * w1, dim)
                sims = 1.0 - (2.0 / pdim) * acc
                margins = (sims[:, face]
                           - np.delete(sims, face, axis=1).max(axis=1))
                per_stage[si].append(margins)
                w_prev = w1
        per_stage = [np.concatenate(m) for m in per_stage]
        full = per_stage[-1] if schedule[-1] == total else None
        if full is None:
            # schedule stops short of the model: score the remainder too
            raise ValueError("the last stage must cover the full model "
                             f"({total} words) for calibration")
        accepted = full > 0.0
        if hits is not None:
            accepted &= np.concatenate(hits)
        n_acc = int(accepted.sum())
        stages = []
        for si, w1 in enumerate(schedule):
            pdim = min(64 * w1, dim)
            if si == len(schedule) - 1:
                stages.append(CascadeStage(w1, 0.0))
                continue
            if self.method == "empirical" and n_acc > 0:
                thr = min(0.0, float(np.quantile(per_stage[si][accepted],
                                                 self.fn_budget)))
            else:
                thr = hoeffding_threshold(pdim, self.fn_budget)
            stages.append(CascadeStage(w1, thr))
        # measured escalation: fraction of windows alive after each stage
        alive = np.ones(full.shape[0], dtype=bool)
        escalation = []
        for si, stage in enumerate(stages[:-1]):
            alive &= per_stage[si] >= stage.threshold
            escalation.append(float(alive.mean()) if alive.size else 0.0)
        escalation.append(escalation[-1] if escalation else 1.0)
        return CascadeCalibration(
            dim=dim, face_class=face, fn_budget=self.fn_budget,
            method=self.method, stages=tuple(stages),
            escalation=tuple(escalation), windows=int(full.shape[0]),
            accepted=n_acc,
            positives="truth" if truth is not None else "accepted")


class CascadeScanner:
    """Staged early-exit scan over a sliding-window grid.

    Parameters
    ----------
    detector:
        A shared-engine, packed-backend
        :class:`~repro.pipeline.detector.SlidingWindowDetector`.
    calibration:
        A :class:`CascadeCalibration` providing the stage schedule (the
        tight, data-fitted thresholds).
    stages:
        Explicit :class:`CascadeStage` list (overrides ``calibration``).
    fn_budget:
        When neither is given, stages come from
        :func:`default_word_schedule` with analytic
        :func:`hoeffding_threshold` bounds at this budget - a cascade
        that is safe out of the box, just looser than a calibrated one.
    seed_factor:
        Coarse-seed grid spacing in fine-grid steps (1 = scan every
        position; 2 = seed every other row/column and refine locally).
    refine_band:
        A seed whose score exceeds ``-refine_band`` opens its
        ``seed_factor - 1``-neighborhood for the dense re-scan.  Larger
        bands trade extra windows for recall safety on marginal seeds.
    profile:
        Record per-stage op counts on the detector's profiler (stages
        ``cascade_stage{i}``).  On by default; the stage *timings* are
        recorded regardless.

    Thread safety: concurrent :meth:`scan` calls (pyramid workers) are
    safe - per-scan state is local; :attr:`last_stats` holds the most
    recently completed scan's accounting.
    """

    def __init__(self, detector, calibration=None, stages=None,
                 fn_budget=0.01, seed_factor=2, refine_band=0.5,
                 profile=True):
        if getattr(detector, "mode", None) != "shared" \
                or getattr(detector, "backend", None) != "packed":
            raise ValueError("cascade scanning requires a shared-engine "
                             "detector with backend='packed'")
        self.detector = detector
        self.calibration = calibration
        self.fn_budget = float(fn_budget)
        self.seed_factor = int(seed_factor)
        if self.seed_factor < 1:
            raise ValueError("seed_factor must be at least 1")
        self.refine_band = float(refine_band)
        if self.refine_band < 0.0:
            raise ValueError("refine_band must be non-negative")
        self.profile = bool(profile)
        if stages is not None:
            self.stages = [s if isinstance(s, CascadeStage)
                           else CascadeStage(*s) for s in stages]
        elif calibration is not None:
            self.stages = list(calibration.stages)
        else:
            dim = detector.pipeline.extractor.dim
            total = (int(dim) + 63) // 64
            schedule = default_word_schedule(total)
            self.stages = [
                CascadeStage(w, 0.0 if w == schedule[-1]
                             else hoeffding_threshold(min(64 * w, dim),
                                                      self.fn_budget))
                for w in schedule
            ]
        words = [s.words for s in self.stages]
        if words != sorted(set(words)):
            raise ValueError(f"stage words must be strictly increasing, "
                             f"got {words}")
        self.last_stats = None

    def _effective_stages(self, total_words, max_words):
        """Stage schedule clipped to the model width and a word budget.

        Capping replaces the tail of the schedule with one final stage at
        the cap - its margins are exactly the
        :class:`~repro.core.packed.TruncatedClassModel` margins at that
        width, which is how the ladder's ``word_budget`` rungs shed depth.
        """
        cap = int(total_words)
        if max_words is not None:
            cap = max(1, min(int(max_words), cap))
        eff = [s for s in self.stages if s.words < cap]
        eff.append(CascadeStage(cap, 0.0))
        return eff

    def seed_indices(self, n_wy, n_wx):
        """Flat indices of the coarse seed grid; None = scan every window.

        The window-axis plan of one scan, shared verbatim by the
        cross-stream batcher so batched and solo scans visit identical
        window sets.  Every ``seed_factor``-th row/column plus the last
        of each, so the grid borders are always probed.
        """
        r = self.seed_factor
        if r <= 1 or (n_wy <= r and n_wx <= r):
            return None
        sy = np.unique(np.append(np.arange(0, n_wy, r), n_wy - 1))
        sx = np.unique(np.append(np.arange(0, n_wx, r), n_wx - 1))
        return (sy[:, None] * n_wx + sx[None, :]).ravel()

    def refine_indices(self, scores, seed_idx, n_wy, n_wx):
        """Unvisited neighbors of promising seeds, due for the dense pass.

        A seed scoring above ``-refine_band`` opens its ``seed_factor -
        1``-neighborhood (clipped to the grid); positions already seeded
        are excluded.  Deterministic in ``scores``, so the batcher's
        refine sets match the solo scanner's exactly.
        """
        r = self.seed_factor
        visited = np.zeros(n_wy * n_wx, dtype=bool)
        visited[seed_idx] = True
        promising = seed_idx[scores[seed_idx] > -self.refine_band]
        if not promising.size:
            return np.empty(0, dtype=np.int64)
        neigh = np.zeros((n_wy, n_wx), dtype=bool)
        py, px = promising // n_wx, promising % n_wx
        for dy in range(-(r - 1), r):
            for dx in range(-(r - 1), r):
                ny = np.clip(py + dy, 0, n_wy - 1)
                nx = np.clip(px + dx, 0, n_wx - 1)
                neigh[ny, nx] = True
        return np.flatnonzero(neigh.ravel() & ~visited)

    def scan(self, scene, injector=None, model=None, stride=None,
             max_words=None):
        """Cascade-classify the window grid; returns a
        :class:`~repro.pipeline.detector.DetectionMap`.

        Surviving windows carry their exact full-model margin (bitwise
        the packed scan's score); rejected windows carry the (<= 0)
        prefix margin they were rejected at; unvisited coarse-grid
        positions carry :data:`FLOOR_SCORE`.  ``max_words`` caps the
        escalation depth (the degradation ladder's dial); ``model``
        substitutes the class model as in the plain scan and must expose
        ``distance_block``.
        """
        det = self.detector
        scene = np.asarray(scene, dtype=np.float64)
        if model is None:
            model = det.packed_model()
        elif not hasattr(model, "similarities"):
            model = PackedClassModel(model)
        if not hasattr(model, "distance_block"):
            raise ValueError(
                "cascade scanning needs a model with distance_block "
                f"(got {type(model).__name__}); use the plain packed scan "
                "for model substitutes without block rescoring")
        stages = self._effective_stages(model.n_words, max_words)
        origins, (n_wy, n_wx) = det.origins(scene.shape, stride)
        scores = np.full(n_wy * n_wx, FLOOR_SCORE, dtype=np.float64)
        stats = {"stages": [{"words": s.words, "threshold": s.threshold,
                             "evaluated": 0, "rejected": 0}
                            for s in stages],
                 "windows": n_wy * n_wx, "seeded": 0, "refined": 0,
                 "skipped": 0, "seed_factor": self.seed_factor}
        seed_idx = self.seed_indices(n_wy, n_wx)
        if seed_idx is None:
            idx = np.arange(n_wy * n_wx)
            scores[idx] = self._cascade_pass(
                scene, origins, idx, model, injector, stages, stats)
            stats["seeded"] = idx.size
        else:
            scores[seed_idx] = self._cascade_pass(
                scene, origins, seed_idx, model, injector, stages, stats)
            stats["seeded"] = seed_idx.size
            refine_idx = self.refine_indices(scores, seed_idx, n_wy, n_wx)
            if refine_idx.size:
                scores[refine_idx] = self._cascade_pass(
                    scene, origins, refine_idx, model, injector, stages,
                    stats)
            stats["refined"] = int(refine_idx.size)
            stats["skipped"] = int(
                n_wy * n_wx - seed_idx.size - refine_idx.size)
        scores = scores.reshape(n_wy, n_wx)
        used = int(stride) if stride else det.stride
        self.last_stats = stats
        return DetectionMap(scores, scores > 0, used, det.window)

    def _cascade_pass(self, scene, origins, idx, model, injector, stages,
                      stats):
        """Run the escalation ladder over the windows at flat indices
        ``idx``; returns their final scores (same order)."""
        det = self.detector
        eng = det.engine
        prof = det.profiler
        sub_origins = [origins[int(i)] for i in idx]
        n = len(sub_origins)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        # one anchor union for the whole pass, so every stage's prefix
        # assembly hits the same cached cell grid
        ys, xs, _ = eng._anchors(sub_origins, det.window)
        dim = model.dim
        face = det.face_class
        alive = np.arange(n)
        acc = np.zeros((n, model.n_classes), dtype=np.int64)
        out = np.empty(n, dtype=np.float64)
        w_prev = 0
        for si, stage in enumerate(stages):
            w1 = stage.words
            live = [sub_origins[int(j)] for j in alive]
            block = eng.window_queries_prefix(
                scene, live, det.window, w_prev, w1, injector,
                anchors=(ys, xs))
            name = f"cascade_stage{si}"
            with prof.stage(name):
                acc[alive] += model.distance_block(block, w_prev, w1)
                pdim = min(64 * w1, dim)
                sims = 1.0 - (2.0 / pdim) * acc[alive]
                margins = (sims[:, face]
                           - np.delete(sims, face, axis=1).max(axis=1))
            if self.profile:
                prof.add_profile(
                    name,
                    cascade_stage_profile(det.window, dim, w_prev, w1,
                                          n_classes=model.n_classes,
                                          cell_size=det.pipeline.extractor
                                          .cell_size,
                                          n_bins=det.pipeline.extractor
                                          .n_bins) * len(live),
                    items=len(live))
            st = stats["stages"][si]
            st["evaluated"] += len(live)
            if si == len(stages) - 1:
                out[alive] = margins
                break
            keep = margins >= stage.threshold
            out[alive[~keep]] = margins[~keep]
            st["rejected"] += int((~keep).sum())
            alive = alive[keep]
            if alive.size == 0:
                break
            w_prev = w1
        return out

"""Cross-stream window batching: many scenes, one packed classification.

The packed backend's primitives are all *per-window-row* reductions:
:func:`~repro.core.packed.packed_majority` votes each window's bit-plane
counters independently, and
:meth:`~repro.core.packed.PackedClassModel.distance_block` /
``similarities`` reduce each query row against the model on its own.
Concatenating the windows of many scenes into one matrix and running one
majority + one XOR+popcount pass is therefore *bitwise identical* to
scanning each scene separately - but amortizes the fixed per-call cost
(Python dispatch, the bit-plane loop, small-array overhead of the late
cascade stages) across every stream on the machine.  That is the
fleet serving runtime's headline optimization, and the primitive-
saturation argument of the HDC acceleration literature: the Hamming
datapath only pays off when its batches are large.

:class:`CrossStreamBatcher` exposes one entry point, :meth:`scan_many`:
a list of :class:`ScanRequest`\\ s (one per stream frame pyramid level)
comes back as the exact :class:`~repro.pipeline.detector.DetectionMap`
list that per-request :meth:`~repro.pipeline.detector.
SlidingWindowDetector.scan` calls would produce.  Three routes keep that
contract:

* **flat packed** - full-width scans (optionally against a truncated
  model) gather their bound-but-unbundled features per scene
  (:meth:`~repro.pipeline.engine.SharedFeatureEngine.window_gather`),
  concatenate, and share one majority + one ``similarities`` call.
* **batched cascade** - scans routed through the
  :class:`~repro.pipeline.cascade.CascadeScanner` reuse its exact seed /
  refine / stage plans per scene, but pool every scene's live windows
  into one gather + majority + ``distance_block`` per stage: stage-0
  batches across streams, survivors escalate together.
* **solo fallback** - the dense backend's float matmul is BLAS-blocked
  (shape-dependent summation order, not concatenation-safe) and
  injectors may be stateful, so those requests run through the ordinary
  per-scene ``scan`` - correctness first, batching where it is free.

Requests are grouped by (class model, word budget); different strides
and scene sizes batch together freely since every row knows its scene.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.packed import PackedClassModel, block_dim, packed_majority
from ..hardware.opcount import (
    batched_stage_profile,
    packed_assemble_profile,
    packed_infer_profile,
)
from .cascade import FLOOR_SCORE
from .detector import DetectionMap

__all__ = ["ScanRequest", "CrossStreamBatcher"]


@dataclass
class ScanRequest:
    """One deferred ``SlidingWindowDetector.scan`` call.

    Field-for-field the keyword surface of :meth:`~repro.pipeline.
    detector.SlidingWindowDetector.scan`; the batcher guarantees the
    result is bitwise what that call would have returned.
    """

    scene: np.ndarray
    stride: int = None
    max_words: int = None
    model: object = None
    injector: object = None


class CrossStreamBatcher:
    """Batch many streams' window scans through one shared detector.

    Parameters
    ----------
    detector:
        The shared :class:`~repro.pipeline.detector.SlidingWindowDetector`
        every stream scans with (typically constructed on a shared
        :class:`~repro.pipeline.engine.SharedFeatureEngine` so scene
        feature caches are fleet-wide too).  The packed backend batches;
        the dense backend and injector requests fall back to solo scans.

    Thread safety: :meth:`scan_many` may be called concurrently (the
    engine and model are thread-safe and all per-call state is local),
    but the intended topology is one rendezvous thread per fleet
    (:class:`repro.runtime.fleet.BatchGate`) issuing large batches.
    """

    def __init__(self, detector):
        if getattr(detector, "mode", None) != "shared":
            raise ValueError("cross-stream batching requires a shared-engine "
                             "detector")
        self.detector = detector
        self.last_stats = None

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, req):
        """Which execution path reproduces ``scan`` for this request."""
        det = self.detector
        if det.backend != "packed" or req.injector is not None:
            return "solo"
        if det.cascade is not None and (req.model is None
                                        or hasattr(req.model,
                                                   "distance_block")):
            return "cascade"
        return "flat"

    def _group_key(self, req):
        """Requests batch together iff they score the same (model, cap)."""
        det = self.detector
        base = req.model if req.model is not None else det.packed_model()
        cap = None
        if req.max_words is not None and hasattr(base, "truncated") and \
                int(req.max_words) < getattr(base, "n_words", 0):
            cap = int(req.max_words)
        return id(base), cap

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def scan_many(self, requests):
        """Scan every request; returns DetectionMaps in request order.

        Equivalent by construction to ``[detector.scan(r.scene,
        injector=r.injector, model=r.model, stride=r.stride,
        max_words=r.max_words) for r in requests]`` - the equivalence
        property test pins this bitwise, cascade included.
        """
        requests = list(requests)
        out = [None] * len(requests)
        groups = {}
        stats = {"requests": len(requests), "solo": 0, "flat": 0,
                 "cascade": 0, "groups": 0, "windows": 0}
        for i, req in enumerate(requests):
            route = self._route(req)
            if route == "solo":
                stats["solo"] += 1
                out[i] = self.detector.scan(
                    req.scene, injector=req.injector, model=req.model,
                    stride=req.stride, max_words=req.max_words)
                continue
            key = (route,) + self._group_key(req)
            groups.setdefault(key, []).append((i, req))
        for (route, _, cap), members in groups.items():
            idxs = [i for i, _ in members]
            reqs = [r for _, r in members]
            stats["groups"] += 1
            stats[route] += len(reqs)
            if route == "flat":
                stats["windows"] += self._scan_flat_group(reqs, idxs, out)
            else:
                stats["windows"] += self._scan_cascade_group(reqs, idxs, out,
                                                             cap)
        self.last_stats = stats
        return out

    # ------------------------------------------------------------------
    # flat packed path
    # ------------------------------------------------------------------
    def _flat_model(self, req):
        """Resolve the effective packed model exactly as ``scan`` does."""
        det = self.detector
        model = req.model
        if req.max_words is not None:
            base = model if model is not None else det.packed_model()
            if hasattr(base, "truncated") and \
                    int(req.max_words) < getattr(base, "n_words", 0):
                model = base.truncated(int(req.max_words))
        if model is None:
            model = det.packed_model()
        elif not hasattr(model, "similarities"):
            model = PackedClassModel(model)
        return model

    def _scan_flat_group(self, reqs, idxs, out):
        """One majority + one similarities call for a whole group."""
        det = self.detector
        eng = det.engine
        prof = det.profiler
        ext = det.pipeline.extractor
        model = self._flat_model(reqs[0])
        plans, flats, valids = [], [], []
        for req in reqs:
            scene = np.asarray(req.scene, dtype=np.float64)
            origins, grid_shape = det.origins(scene.shape, req.stride)
            flat, valid = eng.window_gather(scene, origins, det.window)
            plans.append((req, grid_shape, len(origins)))
            flats.append(flat)
            valids.append(valid)
        n_total = sum(n for _, _, n in plans)
        with prof.stage("batch_assemble"):
            queries = packed_majority(np.concatenate(flats), ext.dim,
                                      valid=np.concatenate(valids))
        prof.add_profile(
            "batch_assemble",
            packed_assemble_profile(det.window, ext.dim,
                                    cell_size=ext.cell_size,
                                    n_bins=ext.n_bins) * n_total,
            items=n_total)
        with prof.stage("batch_classify"):
            sims = model.similarities(queries)
        prof.add_profile(
            "batch_classify",
            packed_infer_profile(model.dim, model.n_classes) * n_total,
            items=n_total)
        sims = np.atleast_2d(np.asarray(sims))
        face = det.face_class
        margin = sims[:, face] - np.delete(sims, face, axis=1).max(axis=1)
        pos = 0
        for (req, (n_wy, n_wx), n), i in zip(plans, idxs):
            scores = margin[pos:pos + n].reshape(n_wy, n_wx)
            pos += n
            used = int(req.stride) if req.stride else det.stride
            out[i] = DetectionMap(scores, scores > 0, used, det.window)
        return n_total

    # ------------------------------------------------------------------
    # batched cascade path
    # ------------------------------------------------------------------
    def _scan_cascade_group(self, reqs, idxs, out, cap):
        """Seed + refine passes with cross-scene stage batching.

        Per-scene plans (seed grid, refine neighborhoods, stage
        schedule) come verbatim from the group's
        :class:`~repro.pipeline.cascade.CascadeScanner`; only the
        *execution* of each stage is pooled.
        """
        det = self.detector
        scanner = det.cascade_scanner()
        model = reqs[0].model
        if model is None:
            model = det.packed_model()
        elif not hasattr(model, "similarities"):
            model = PackedClassModel(model)
        stages = scanner._effective_stages(model.n_words, cap)
        plans = []
        for req in reqs:
            scene = np.asarray(req.scene, dtype=np.float64)
            origins, (n_wy, n_wx) = det.origins(scene.shape, req.stride)
            scores = np.full(n_wy * n_wx, FLOOR_SCORE, dtype=np.float64)
            seed_idx = scanner.seed_indices(n_wy, n_wx)
            dense = seed_idx is None
            if dense:
                seed_idx = np.arange(n_wy * n_wx)
            plans.append({"req": req, "scene": scene, "origins": origins,
                          "shape": (n_wy, n_wx), "scores": scores,
                          "seed_idx": seed_idx, "dense": dense})
        n_windows = 0
        seed_vals = self._batched_pass(
            [(p["scene"], [p["origins"][int(i)] for i in p["seed_idx"]])
             for p in plans], model, stages)
        for p, vals in zip(plans, seed_vals):
            p["scores"][p["seed_idx"]] = vals
            n_windows += vals.size
        refine_plans, refine_items = [], []
        for p in plans:
            if p["dense"]:
                continue
            n_wy, n_wx = p["shape"]
            refine_idx = scanner.refine_indices(p["scores"], p["seed_idx"],
                                                n_wy, n_wx)
            if refine_idx.size:
                p["refine_idx"] = refine_idx
                refine_plans.append(p)
                refine_items.append(
                    (p["scene"],
                     [p["origins"][int(i)] for i in refine_idx]))
        if refine_items:
            refine_vals = self._batched_pass(refine_items, model, stages)
            for p, vals in zip(refine_plans, refine_vals):
                p["scores"][p["refine_idx"]] = vals
                n_windows += vals.size
        for p, i in zip(plans, idxs):
            n_wy, n_wx = p["shape"]
            req = p["req"]
            scores = p["scores"].reshape(n_wy, n_wx)
            used = int(req.stride) if req.stride else det.stride
            out[i] = DetectionMap(scores, scores > 0, used, det.window)
        return n_windows

    def _batched_pass(self, items, model, stages):
        """One escalation ladder over the pooled windows of many scenes.

        ``items`` is ``[(scene, sub_origins), ...]``; returns each item's
        final scores in order.  Mirrors ``CascadeScanner._cascade_pass``
        stage for stage - same anchor-union per scene, same accumulated
        block distances, same thresholds - but every stage runs one
        majority and one ``distance_block`` over all scenes' live rows.
        """
        det = self.detector
        eng = det.engine
        prof = det.profiler
        ext = det.pipeline.extractor
        per = []
        for scene, sub in items:
            ys, xs, _ = eng._anchors(sub, det.window)
            per.append((scene, sub, ys, xs))
        counts = [len(sub) for _, sub, _, _ in per]
        starts = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        n_total = int(starts[-1])
        if n_total == 0:
            return [np.empty(0, dtype=np.float64) for _ in per]
        item_of = np.repeat(np.arange(len(per)), counts)
        dim = model.dim
        face = det.face_class
        alive = np.arange(n_total)
        acc = np.zeros((n_total, model.n_classes), dtype=np.int64)
        scores = np.empty(n_total, dtype=np.float64)
        w_prev = 0
        for si, stage in enumerate(stages):
            w1 = stage.words
            flats, valids = [], []
            n_live = 0
            for k, (scene, sub, ys, xs) in enumerate(per):
                rows = alive[item_of[alive] == k]
                if rows.size == 0:
                    continue
                live = [sub[int(j)] for j in rows - starts[k]]
                flat, valid = eng.window_gather(
                    scene, live, det.window, w_prev, w1, anchors=(ys, xs))
                flats.append(flat)
                valids.append(valid)
                n_live += len(live)
            bdim = block_dim(dim, w_prev, w1)
            name = f"batch_cascade_stage{si}"
            with prof.stage(name):
                block = packed_majority(np.concatenate(flats), bdim,
                                        valid=np.concatenate(valids))
                acc[alive] += model.distance_block(block, w_prev, w1)
                pdim = min(64 * w1, dim)
                sims = 1.0 - (2.0 / pdim) * acc[alive]
                margins = (sims[:, face]
                           - np.delete(sims, face, axis=1).max(axis=1))
            if det.cascade_scanner().profile:
                prof.add_profile(
                    name,
                    batched_stage_profile(det.window, dim, w_prev, w1,
                                          n_live,
                                          n_classes=model.n_classes,
                                          cell_size=ext.cell_size,
                                          n_bins=ext.n_bins),
                    items=n_live)
            if si == len(stages) - 1:
                scores[alive] = margins
                break
            keep = margins >= stage.threshold
            scores[alive[~keep]] = margins[~keep]
            alive = alive[keep]
            if alive.size == 0:
                break
            w_prev = w1
        return [scores[starts[k]:starts[k + 1]] for k in range(len(per))]

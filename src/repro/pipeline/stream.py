"""Streaming video detection: frame-delta reuse, tracking, bounded queues.

HDFace's motivating workload is the always-on, low-power camera (paper
Sec. 1), which is a *video* workload: consecutive frames share most of
their pixels, yet a per-frame detector re-extracts whole-image HOG-HD
fields from scratch.  This module turns the still-image detection stack
into a streaming one around three pieces:

* **Frame-delta feature reuse** - every pyramid level of the incoming
  frame is diffed against the cached previous level and only the dirty
  cells are recomputed (:meth:`repro.pipeline.engine.SharedFeatureEngine.
  delta_update`), with results bitwise identical to a full re-extraction.
  On mostly-static scenes this removes the dominant per-pixel stochastic
  stages from the per-frame cost.
* **Temporal tracking** - per-frame NMS output feeds an IoU-gated
  :class:`TemporalTracker`: greedy best-overlap association, exponential
  score smoothing, and appear/disappear hysteresis (a track must be seen
  ``min_hits`` times before it is reported, and coasts through
  ``max_misses`` missed frames before it is dropped), so one noisy frame
  neither spawns nor kills a reported face.
* **Bounded scheduling** - frames enter through a :class:`FrameQueue`
  with an explicit policy: ``"drop_oldest"`` (the camera regime - never
  block the producer, shed the stalest frame and count it) or
  ``"block"`` (backpressure the producer until the consumer catches up).

:class:`VideoStreamDetector` composes the three over a
:class:`~repro.pipeline.multiscale.PyramidDetector` and reports per-frame
latency plus cache-reuse accounting; attach a
:class:`repro.profiling.Profiler` to see the ``delta_fields`` /
``delta_grid`` stages next to the usual scan stages and to convert the
measured op counts into modeled hardware time
(:func:`repro.hardware.opcount.incremental_extract_profile` prices the
same path analytically).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from .multiscale import PyramidDetector, iou, pyramid

__all__ = ["Track", "TemporalTracker", "FrameQueue", "QueueClosedError",
           "StreamFrameResult", "VideoStreamDetector", "QUEUE_POLICIES"]

QUEUE_POLICIES = ("drop_oldest", "block")


class QueueClosedError(ValueError):
    """Raised by :meth:`FrameQueue.put` once the queue has been closed.

    Subclasses :class:`ValueError` for backwards compatibility with
    callers that caught the old generic error.
    """


@dataclass
class Track:
    """One tracked face: smoothed box/score plus the lifecycle counters.

    Exposes ``box``/``size`` like :class:`~repro.pipeline.multiscale.
    Detection`, so :func:`~repro.pipeline.multiscale.iou` applies
    directly.
    """

    track_id: int
    y: float
    x: float
    size: float
    score: float
    hits: int = 1
    misses: int = 0
    age: int = 1
    confirmed: bool = False

    @property
    def box(self):
        """(y0, x0, y1, x1)."""
        return (self.y, self.x, self.y + self.size, self.x + self.size)


class TemporalTracker:
    """IoU-gated track association with smoothing and hysteresis.

    The per-track state machine:

    * a detection matched to no track births a *tentative* track;
    * a track seen ``min_hits`` times (in total) becomes *confirmed* and
      is reported by :meth:`active`;
    * a matched track snaps to the matched detection's box and smooths
      its score exponentially (``score_alpha`` is the weight of the new
      evidence);
    * an unmatched track *coasts*: it keeps its last box and is still
      reported if confirmed, until ``max_misses`` consecutive missed
      frames delete it.

    Association is greedy best-IoU with a ``iou_threshold`` gate, ties
    broken deterministically by (track, detection) order, so a stream
    replay reproduces identical track ids and lifecycles.
    """

    def __init__(self, iou_threshold=0.3, score_alpha=0.5, min_hits=2,
                 max_misses=2):
        if not 0.0 <= iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be in [0, 1]")
        if not 0.0 < score_alpha <= 1.0:
            raise ValueError("score_alpha must be in (0, 1]")
        if min_hits < 1:
            raise ValueError("min_hits must be at least 1")
        if max_misses < 0:
            raise ValueError("max_misses must be non-negative")
        self.iou_threshold = float(iou_threshold)
        self.score_alpha = float(score_alpha)
        self.min_hits = int(min_hits)
        self.max_misses = int(max_misses)
        self.tracks = []
        self.frames = 0
        self._next_id = 0

    def update(self, detections):
        """Advance one frame with the NMS detections; returns :meth:`active`."""
        self.frames += 1
        dets = list(detections)
        pairs = []
        for ti, track in enumerate(self.tracks):
            for di, det in enumerate(dets):
                overlap = iou(track, det)
                if overlap >= self.iou_threshold:
                    pairs.append((-overlap, ti, di))
        pairs.sort()
        matched_tracks, matched_dets = set(), set()
        for _, ti, di in pairs:
            if ti in matched_tracks or di in matched_dets:
                continue
            matched_tracks.add(ti)
            matched_dets.add(di)
            track, det = self.tracks[ti], dets[di]
            track.y, track.x, track.size = det.y, det.x, det.size
            track.score = (self.score_alpha * det.score
                           + (1.0 - self.score_alpha) * track.score)
            track.hits += 1
            track.misses = 0
            track.age += 1
            if track.hits >= self.min_hits:
                track.confirmed = True
        survivors = []
        for ti, track in enumerate(self.tracks):
            if ti in matched_tracks:
                survivors.append(track)
                continue
            track.misses += 1
            track.age += 1
            if track.misses <= self.max_misses:
                survivors.append(track)
        for di, det in enumerate(dets):
            if di in matched_dets:
                continue
            survivors.append(Track(self._next_id, det.y, det.x, det.size,
                                   det.score, confirmed=self.min_hits <= 1))
            self._next_id += 1
        self.tracks = survivors
        return self.active()

    def active(self):
        """Confirmed tracks (including coasting ones), best score first."""
        return sorted((t for t in self.tracks if t.confirmed),
                      key=lambda t: -t.score)


class FrameQueue:
    """Bounded producer/consumer frame buffer with an explicit drop policy.

    ``policy="drop_oldest"``: :meth:`put` never blocks; when the queue is
    full the *oldest* queued frame is discarded (counted in ``dropped``) -
    the always-on camera regime, where the freshest frame matters more
    than completeness.  ``policy="block"``: :meth:`put` exerts
    backpressure, blocking until the consumer frees a slot (or the
    timeout expires, returning False).
    """

    def __init__(self, maxsize=4, policy="drop_oldest"):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        if policy not in QUEUE_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; "
                             f"expected one of {QUEUE_POLICIES}")
        self.maxsize = int(maxsize)
        self.policy = policy
        self.dropped = 0
        self._items = deque()
        self._cond = threading.Condition()
        self._closed = False

    def __len__(self):
        with self._cond:
            return len(self._items)

    @property
    def closed(self):
        """True once :meth:`close` has been called."""
        with self._cond:
            return self._closed

    def put(self, item, timeout=None):
        """Enqueue; returns False only on a ``block``-policy timeout.

        Raises :class:`QueueClosedError` if the queue is (or becomes,
        while this call is blocked) closed - a put can never succeed after
        close, so silently accepting one would lose the frame.
        """
        with self._cond:
            if self._closed:
                raise QueueClosedError(
                    "put on a closed FrameQueue: the consumer has shut "
                    "down and will never drain this frame")
            if self.policy == "block":
                ok = self._cond.wait_for(
                    lambda: len(self._items) < self.maxsize or self._closed,
                    timeout)
                if self._closed:
                    raise QueueClosedError(
                        "FrameQueue closed while this put was blocked; "
                        "the frame was not enqueued")
                if not ok:
                    return False
            elif len(self._items) >= self.maxsize:
                self._items.popleft()
                self.dropped += 1
            self._items.append(item)
            self._cond.notify_all()
            return True

    def get(self, timeout=None):
        """Dequeue the oldest frame; None once closed and drained.

        Safe to call concurrently from several consumers after
        :meth:`close`: every blocked getter is woken and either drains a
        remaining frame or observes the close and returns None - no
        getter is left waiting forever.
        """
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._items or self._closed, timeout)
            if not ok:
                raise TimeoutError("no frame arrived in time")
            if self._items:
                item = self._items.popleft()
                self._cond.notify_all()
                return item
            return None

    def close(self):
        """Stop intake; queued frames remain gettable, then get() -> None.

        Idempotent.  Wakes every waiter: blocked getters proceed to drain
        or observe end-of-stream, blocked putters raise
        :class:`QueueClosedError`.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()


@dataclass
class StreamFrameResult:
    """Everything the stream reports for one processed frame."""

    index: int
    detections: list
    tracks: list
    latency: float
    reuse: dict


class VideoStreamDetector:
    """Detect-and-track over a frame stream with frame-delta reuse.

    Parameters
    ----------
    detector:
        A :class:`~repro.pipeline.multiscale.PyramidDetector` whose
        wrapped :class:`~repro.pipeline.detector.SlidingWindowDetector`
        runs the shared-feature engine (the delta path lives in its scene
        cache).  Size the engine cache at least as deep as the pyramid,
        or patched levels will have been evicted before the next frame.
    tracker:
        A :class:`TemporalTracker` (a default-configured one if omitted).
    incremental:
        When False, skip the delta updates and re-extract every frame -
        the baseline the throughput bench compares against.
    queue_size, policy:
        The :class:`FrameQueue` bound and policy for the async intake
        (:meth:`submit` / :meth:`start` / :meth:`stop`).  The synchronous
        :meth:`run` / :meth:`step` path does not queue.
    profiler:
        Optional :class:`repro.profiling.Profiler`, attached to the
        detector and engine so scan stages and the ``delta_fields`` /
        ``delta_grid`` stages land in one table.

    Examples
    --------
    >>> results = list(stream.run(frames))          # doctest: +SKIP
    >>> stream.stats()["reused_pixel_fraction"]     # doctest: +SKIP
    0.93
    """

    def __init__(self, detector, tracker=None, incremental=True,
                 queue_size=4, policy="drop_oldest", profiler=None):
        if not isinstance(detector, PyramidDetector):
            raise ValueError("detector must be a PyramidDetector")
        base = detector.detector
        if getattr(base, "engine", None) is None:
            raise ValueError("streaming requires the shared-feature engine "
                             "(engine='shared' detector)")
        self.pyramid = detector
        self.base = base
        self.engine = base.engine
        self.tracker = tracker if tracker is not None else TemporalTracker()
        self.incremental = bool(incremental)
        self.queue = FrameQueue(queue_size, policy)
        if profiler is not None:
            base.profiler = profiler
            self.engine.profiler = profiler
        self.profiler = base.profiler
        self.completed = []
        self.frames_in = 0
        self.frames_done = 0
        self.rejected = 0
        self._latencies = []
        self._prev_levels = None
        self._thread = None
        self._done_lock = threading.Lock()

    # ------------------------------------------------------------------
    # synchronous path
    # ------------------------------------------------------------------
    def step(self, frame, submitted_at=None):
        """Process one frame end to end; returns a :class:`StreamFrameResult`.

        Latency is measured from ``submitted_at`` (the async path passes
        the enqueue time, so queueing delay is included) or from the
        start of processing.
        """
        start = time.perf_counter()
        t0 = start if submitted_at is None else submitted_at
        frame = np.asarray(frame, dtype=np.float64)
        window = self.base.window
        levels = list(pyramid(frame, self.pyramid.scale_step,
                              min_size=window))
        reuse = {"mode": "cold", "levels": len(levels), "patched_levels": 0,
                 "pixels": 0, "dirty_pixels": 0, "dirty_cells": 0,
                 "cells": 0}
        prev = self._prev_levels
        if (self.incremental and prev is not None and len(prev) == len(levels)
                and prev[0][0].shape == levels[0][0].shape):
            reuse["mode"] = "delta"
            for (prev_level, _), (level, _) in zip(prev, levels):
                stats = self.engine.delta_update(prev_level, level)
                reuse["pixels"] += stats["pixels"]
                reuse["dirty_pixels"] += stats["dirty_pixels"]
                reuse["cells"] += stats["cells"]
                reuse["dirty_cells"] += stats["dirty_cells"]
                reuse["patched_levels"] += stats["mode"] == "patched"
        detections = self.pyramid.detect(frame, levels=levels)
        tracks = [replace(t) for t in self.tracker.update(detections)]
        self._prev_levels = levels
        latency = time.perf_counter() - t0
        result = StreamFrameResult(self.frames_done, detections, tracks,
                                   latency, reuse)
        self.frames_done += 1
        self._latencies.append(latency)
        return result

    def run(self, frames):
        """Synchronous pump: yield a result per frame, in order."""
        for frame in frames:
            yield self.step(frame)

    # ------------------------------------------------------------------
    # asynchronous path (bounded queue between producer and consumer)
    # ------------------------------------------------------------------
    def submit(self, frame, timeout=None):
        """Producer side: enqueue a frame (the policy decides if full).

        Returns True when enqueued, False on a ``block``-policy timeout
        *or* when the stream has already been stopped (the race between a
        still-running producer and :meth:`stop` is expected during
        shutdown; rejected frames are counted in ``rejected``, and the
        producer should stop submitting once it sees False after a stop).
        """
        try:
            ok = self.queue.put((frame, time.perf_counter()), timeout)
        except QueueClosedError:
            self.rejected += 1
            return False
        if ok:
            self.frames_in += 1
        return ok

    def start(self):
        """Start the consumer thread; results accumulate in ``completed``."""
        if self._thread is not None:
            raise RuntimeError("stream already started")
        self._thread = threading.Thread(target=self._consume, daemon=True)
        self._thread.start()
        return self

    def _consume(self):
        while True:
            item = self.queue.get()
            if item is None:
                return
            frame, submitted_at = item
            result = self.step(frame, submitted_at)
            with self._done_lock:
                self.completed.append(result)

    def stop(self):
        """Close the intake, drain queued frames, join; returns results."""
        self.queue.close()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        return self.completed

    # ------------------------------------------------------------------
    def stats(self):
        """Aggregate throughput, latency and reuse accounting."""
        lat = np.asarray(self._latencies, dtype=np.float64)
        total = float(lat.sum())
        info = self.engine.cache_info()
        pixels = info["delta_pixels"]
        dirty = info["delta_dirty_pixels"]
        return {
            "frames": self.frames_done,
            "submitted": self.frames_in,
            "dropped": self.queue.dropped,
            "rejected": self.rejected,
            "seconds": total,
            "fps": self.frames_done / total if total > 0 else 0.0,
            "latency_mean": float(lat.mean()) if lat.size else 0.0,
            "latency_p50": float(np.median(lat)) if lat.size else 0.0,
            "latency_p95": float(np.percentile(lat, 95)) if lat.size else 0.0,
            "latency_p99": float(np.percentile(lat, 99)) if lat.size else 0.0,
            "latency_max": float(lat.max()) if lat.size else 0.0,
            "delta_updates": info["delta_updates"],
            "delta_patched": info["delta_patched"],
            "delta_full": info["delta_full"],
            "delta_reused": info["delta_reused"],
            "reused_pixel_fraction":
                1.0 - dirty / pixels if pixels else 0.0,
            "tracks_alive": len(self.tracker.tracks),
            "tracks_confirmed": len(self.tracker.active()),
        }

"""End-to-end pipelines: HDFace, baselines and the sliding-window detector."""

from .baselines import HOGPipeline
from .batcher import CrossStreamBatcher, ScanRequest
from .cascade import (CascadeCalibration, CascadeCalibrator, CascadeScanner,
                      CascadeStage, default_word_schedule, hoeffding_threshold)
from .detector import DetectionMap, SlidingWindowDetector, make_scene
from .engine import SharedFeatureEngine
from .hdface import HDFacePipeline
from .multiscale import (Detection, PyramidDetector, execute_plan,
                         non_max_suppression, pyramid)
from .plan import Plan
from .stream import (FrameQueue, QueueClosedError, StreamFrameResult,
                     TemporalTracker, Track, VideoStreamDetector)

__all__ = [
    "HDFacePipeline",
    "HOGPipeline",
    "SlidingWindowDetector",
    "SharedFeatureEngine",
    "DetectionMap",
    "make_scene",
    "CascadeStage",
    "CascadeCalibration",
    "CascadeCalibrator",
    "CascadeScanner",
    "default_word_schedule",
    "hoeffding_threshold",
    "Detection",
    "Plan",
    "execute_plan",
    "PyramidDetector",
    "non_max_suppression",
    "pyramid",
    "VideoStreamDetector",
    "TemporalTracker",
    "Track",
    "FrameQueue",
    "QueueClosedError",
    "StreamFrameResult",
    "CrossStreamBatcher",
    "ScanRequest",
]
